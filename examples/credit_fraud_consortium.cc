// Scenario from the paper's introduction: several credit-card companies
// hold transactions of overlapping customers and want a joint fraud model
// with *user-level* DP — a user's pattern must be protected even though
// their records are spread over every company.
//
// This example compares all methods at the same noise level: DEFAULT
// (non-private), ULDP-NAIVE, ULDP-GROUP-k, ULDP-AVG, ULDP-AVG-w and
// ULDP-SGD, printing the utility/epsilon table the paper's Figure 4 plots.

#include <iostream>
#include <memory>

#include "core/experiment.h"
#include "core/uldp_avg.h"
#include "core/uldp_group.h"
#include "core/uldp_naive.h"
#include "core/uldp_sgd.h"
#include "data/allocation.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"

int main() {
  using namespace uldp;
  Rng rng(7);
  const int kUsers = 100, kSilos = 5;

  auto data = MakeCreditcardLike(8000, 2000, rng);
  AllocationOptions alloc;
  alloc.kind = AllocationKind::kZipf;
  if (!AllocateUsersAndSilos(data.train, kUsers, kSilos, alloc, rng).ok()) {
    return 1;
  }
  FederatedDataset dataset(data.train, data.test, kUsers, kSilos);
  std::cout << "Consortium: " << kSilos << " companies, " << kUsers
            << " shared customers, " << dataset.num_train_records()
            << " transactions (mean " << dataset.MeanRecordsPerUser()
            << " per customer, max " << dataset.MaxRecordsPerUser()
            << ").\n\n";

  auto model = MakeMlp({30, 16}, 2);
  FlConfig base;
  base.local_lr = 0.1;
  base.clip = 1.0;
  base.sigma = 5.0;
  base.local_epochs = 2;
  base.seed = 11;

  ExperimentConfig experiment;
  experiment.rounds = 25;
  experiment.eval_every = 5;

  auto run = [&](FlAlgorithm& alg) {
    auto trace = RunExperiment(alg, *model, dataset, experiment);
    if (!trace.ok()) {
      std::cerr << alg.name() << ": " << trace.status().ToString() << "\n";
      return;
    }
    PrintTrace(alg.name(), trace.value());
    std::cout << "\n";
  };

  {
    FlConfig cfg = base;
    cfg.global_lr = 1.0;
    FedAvgTrainer alg(dataset, *model, cfg);
    run(alg);
  }
  {
    FlConfig cfg = base;
    cfg.global_lr = 1.0;
    UldpNaiveTrainer alg(dataset, *model, cfg);
    run(alg);
  }
  {
    FlConfig cfg = base;
    cfg.global_lr = 1.0;
    UldpGroupTrainer alg(dataset, *model, cfg, GroupSizeSpec::Fixed(8),
                         /*dp_sample_rate=*/0.1, /*dp_steps_per_round=*/10);
    std::cout << alg.name() << " keeps " << alg.num_kept_records() << "/"
              << dataset.num_train_records()
              << " records after contribution bounding.\n";
    run(alg);
  }
  {
    FlConfig cfg = base;
    cfg.global_lr = 30.0;
    UldpAvgTrainer alg(dataset, *model, cfg);
    run(alg);
  }
  {
    FlConfig cfg = base;
    cfg.global_lr = 30.0;
    UldpAvgOptions opt;
    opt.weighting = WeightingStrategy::kEnhanced;
    UldpAvgTrainer alg(dataset, *model, cfg, opt);
    run(alg);
  }
  {
    FlConfig cfg = base;
    cfg.global_lr = 50.0;
    UldpSgdTrainer alg(dataset, *model, cfg);
    run(alg);
  }
  return 0;
}
