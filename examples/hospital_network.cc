// Cross-silo healthcare scenario (FLamby HeartDisease-style): four
// hospitals, patients visiting several of them, training with
// ULDP-AVG-w where the enhanced weights are computed by the *private
// weighting protocol* — no hospital or server ever sees another party's
// per-patient record counts.

#include <iostream>

#include "core/experiment.h"
#include "core/private_weighting.h"
#include "core/uldp_avg.h"
#include "data/allocation.h"
#include "data/synthetic.h"

int main() {
  using namespace uldp;
  Rng rng(19);
  const int kUsers = 30;

  auto data = MakeHeartDiseaseLike(rng);
  AllocationOptions alloc;
  alloc.kind = AllocationKind::kZipf;  // patients concentrate in one hospital
  if (!AllocateUsersWithinSilos(data.train, kUsers, data.num_silos, alloc,
                                rng)
           .ok()) {
    return 1;
  }
  FederatedDataset dataset(data.train, data.test, kUsers, data.num_silos);
  std::cout << "Hospital network: " << data.num_silos << " hospitals, "
            << kUsers << " patients, " << dataset.num_train_records()
            << " visits.\n";

  // Protocol setup: each hospital contributes only its blinded histogram.
  ProtocolConfig protocol_config;
  protocol_config.paillier_bits = 768;  // demo scale; the paper uses 3072
  protocol_config.n_max = 100;
  protocol_config.seed = 5;
  PrivateWeightingProtocol protocol(protocol_config, dataset.num_silos(),
                                    kUsers);
  std::vector<std::vector<int>> histograms(
      dataset.num_silos(), std::vector<int>(kUsers, 0));
  for (int s = 0; s < dataset.num_silos(); ++s) {
    for (int u = 0; u < kUsers; ++u) histograms[s][u] = dataset.CountOf(s, u);
  }
  Status st = protocol.Setup(histograms);
  if (!st.ok()) {
    std::cerr << "protocol setup: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "Private weighting protocol ready (Paillier "
            << protocol_config.paillier_bits << "-bit, C_LCM "
            << protocol.c_lcm().BitLength() << " bits).\n\n";

  // Logistic model trained with the protocol-backed ULDP-AVG-w.
  auto model = MakeMlp({13}, 2);
  FlConfig config;
  config.local_lr = 0.2;
  config.global_lr = 20.0;
  config.clip = 1.0;
  config.sigma = 5.0;
  config.local_epochs = 2;
  UldpAvgOptions options;
  options.private_protocol = &protocol;
  UldpAvgTrainer trainer(dataset, *model, config, options);

  ExperimentConfig experiment;
  experiment.rounds = 4;
  experiment.eval_every = 2;
  auto trace = RunExperiment(trainer, *model, dataset, experiment);
  if (!trace.ok()) {
    std::cerr << trace.status().ToString() << "\n";
    return 1;
  }
  PrintTrace(trainer.name(), trace.value());

  const auto& t = protocol.timings();
  std::cout << "\nProtocol wall-times (s): key-exchange "
            << t.key_exchange_s << ", histograms " << t.histogram_s
            << ", weight-encryption " << t.encrypt_weights_s
            << ", silo weighting " << t.silo_weighting_s << ", aggregation "
            << t.aggregation_s << ", decryption " << t.decryption_s << "\n";
  std::cout << "The server only ever saw blinded histograms and masked "
               "ciphertexts (Theorem 5).\n";
  return 0;
}
