// Quickstart: train a model with user-level DP across silos in ~30 lines.
//
//   1. make (or load) records tagged with user and silo ids,
//   2. wrap them in a FederatedDataset,
//   3. pick a model and run UldpAvgTrainer for T rounds,
//   4. read off accuracy and the accumulated (eps, delta)-ULDP guarantee.

#include <iostream>

#include "core/experiment.h"
#include "core/uldp_avg.h"
#include "data/allocation.h"
#include "data/synthetic.h"

int main() {
  using namespace uldp;
  Rng rng(42);

  // Synthetic credit-card-style data; 5 companies (silos) share 100 users,
  // records skewed across both (zipf), as in the paper's motivation.
  auto data = MakeCreditcardLike(/*n_train=*/6000, /*n_test=*/1500, rng);
  AllocationOptions alloc;
  alloc.kind = AllocationKind::kZipf;
  Status st = AllocateUsersAndSilos(data.train, /*num_users=*/100,
                                    /*num_silos=*/5, alloc, rng);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  FederatedDataset dataset(data.train, data.test, 100, 5);

  // A small MLP, the ULDP-AVG trainer (Algorithm 3), and the runner.
  auto model = MakeMlp({30, 16}, 2);
  FlConfig config;
  config.local_lr = 0.1;
  config.global_lr = 30.0;  // ULDP-AVG wants a large eta_g (Remark 2)
  config.clip = 1.0;        // C
  config.sigma = 5.0;       // noise multiplier
  config.local_epochs = 2;  // Q
  UldpAvgTrainer trainer(dataset, *model, config);

  ExperimentConfig experiment;
  experiment.rounds = 20;
  experiment.eval_every = 5;
  auto trace = RunExperiment(trainer, *model, dataset, experiment);
  if (!trace.ok()) {
    std::cerr << trace.status().ToString() << "\n";
    return 1;
  }
  PrintTrace(trainer.name(), trace.value());
  std::cout << "\nFinal model satisfies (" << trace.value().back().epsilon
            << ", 1e-5)-ULDP across silos.\n";
  return 0;
}
