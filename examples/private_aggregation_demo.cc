// Standalone walk-through of Protocol 1 with the per-party views printed,
// so you can see exactly what the server and the silos observe at each
// step — and verify against the plaintext computation at the end.

#include <iostream>

#include "core/private_weighting.h"

int main() {
  using namespace uldp;
  const int kSilos = 3, kUsers = 4, kDim = 2;

  // Silo-private histograms n_{s,u}: who holds how many records per user.
  std::vector<std::vector<int>> histograms = {
      {3, 0, 2, 1},  // silo 0
      {1, 4, 0, 1},  // silo 1
      {0, 2, 2, 1},  // silo 2
  };
  std::vector<int> totals(kUsers, 0);
  for (const auto& h : histograms) {
    for (int u = 0; u < kUsers; ++u) totals[u] += h[u];
  }

  ProtocolConfig config;
  config.paillier_bits = 768;
  config.n_max = 16;
  config.seed = 3;
  PrivateWeightingProtocol protocol(config, kSilos, kUsers);
  Status st = protocol.Setup(histograms);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::cout << "=== Setup complete ===\n";
  std::cout << "True totals N_u:          ";
  for (int t : totals) std::cout << t << " ";
  std::cout << "\nServer sees B(N_u) (blinded, first 16 hex digits):\n  ";
  for (const auto& b : protocol.server_view().blinded_totals) {
    std::cout << b.ToHex().substr(0, 16) << "... ";
  }
  std::cout << "\n-> the server cannot recover any N_u from these "
               "(information-theoretic blinding, Theorem 5).\n\n";

  // One weighting round with known deltas so the result is checkable.
  Rng rng(9);
  std::vector<std::vector<Vec>> deltas(kSilos, std::vector<Vec>(kUsers));
  std::vector<Vec> noise(kSilos, Vec(kDim, 0.0));
  Vec expect(kDim, 0.0);
  for (int s = 0; s < kSilos; ++s) {
    for (int u = 0; u < kUsers; ++u) {
      if (histograms[s][u] == 0) continue;
      deltas[s][u] = {rng.Gaussian(), rng.Gaussian()};
      double w = static_cast<double>(histograms[s][u]) / totals[u];
      for (int d = 0; d < kDim; ++d) expect[d] += w * deltas[s][u][d];
    }
  }
  std::vector<bool> sampled(kUsers, true);
  auto out = protocol.WeightingRound(0, deltas, noise, sampled);
  if (!out.ok()) {
    std::cerr << out.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Weighting round ===\n";
  std::cout << "Silo 0 received encrypted weights (ciphertext bits): ";
  for (const auto& c : protocol.silo_view(0).encrypted_weights) {
    std::cout << c.BitLength() << " ";
  }
  std::cout << "\nDecrypted aggregate (server):  ";
  for (double v : out.value()) std::cout << v << " ";
  std::cout << "\nPlaintext reference:           ";
  for (double v : expect) std::cout << v << " ";
  double max_err = 0.0;
  for (int d = 0; d < kDim; ++d) {
    max_err = std::max(max_err, std::abs(out.value()[d] - expect[d]));
  }
  std::cout << "\nMax error: " << max_err
            << "  (Theorem 4: below the fixed-point precision)\n";
  return max_err < 1e-8 ? 0 : 1;
}
