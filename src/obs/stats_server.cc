#include "obs/stats_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/metrics.h"

namespace uldp {
namespace obs {

namespace {

void SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to report
    }
    done += static_cast<size_t>(n);
  }
}

}  // namespace

Result<std::unique_ptr<StatsServer>> StatsServer::Start(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("stats: port " + std::to_string(port) +
                                   " out of range [0, 65535]");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("stats: socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status status =
        Status::Internal("stats: bind 127.0.0.1:" + std::to_string(port) +
                         ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status = Status::Internal(std::string("stats: listen: ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    Status status = Status::Internal(std::string("stats: getsockname: ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::unique_ptr<StatsServer> server(new StatsServer());
  server->listen_fd_ = fd;
  server->port_ = ntohs(sa.sin_port);
  server->thread_ = std::thread([s = server.get()] { s->Serve(); });
  return server;
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() wakes the thread blocked in accept() (net/tcp.cc applies
    // the same pattern to TcpListener::Close).
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void StatsServer::Serve() {
  while (!stop_.load()) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or unusable
    }
    // Read (and discard) the request line + headers; the response is the
    // same for every path.
    char buf[4096];
    ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    (void)n;
    const std::string body = MetricsRegistry::Global().ToPrometheus();
    std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n"
        "\r\n" +
        body;
    SendAll(client, response);
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

}  // namespace obs
}  // namespace uldp
