// Scoped phase tracing: TraceSpan measures the lifetime of a scope and
// records it into a process-wide preallocated event buffer, written out
// as Chrome trace-event JSON ("X" complete events — loadable in
// about://tracing and Perfetto).
//
// Cost model: when tracing is disabled (the default) a span's constructor
// is one relaxed atomic load and its destructor a null check — and with
// ULDP_DISABLE_TRACING defined the span compiles to an empty object, so
// instrumented hot loops carry zero code. When enabled, recording is one
// fetch_add to claim a slot plus a POD store; the buffer never allocates
// after Enable() and never blocks. A full buffer drops new events (and
// counts them) rather than overwriting — a torn half-written slot can
// never reach the output file.
//
// Span names (and arg names) must be string literals or otherwise outlive
// the buffer: only the pointer is stored.
//
// Tracing is strictly passive: no Rng stream is touched and no
// instrumented computation observes whether the buffer is enabled, so
// traced runs are bitwise-identical to untraced runs (tested).

#ifndef ULDP_OBS_TRACE_H_
#define ULDP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace uldp {
namespace obs {

struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no arg
  uint64_t ts_ns = 0;              // NowNs() at span start
  uint64_t dur_ns = 0;
  int64_t arg = 0;
  uint32_t tid = 0;
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 18;  // 256k events

  static TraceBuffer& Global();

  /// Allocates the ring and turns recording on. Re-enabling an enabled
  /// buffer keeps existing events (capacity is only applied when the
  /// buffer grows from zero).
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one complete event; drops (and counts) when full or disabled.
  void Record(const char* name, uint64_t ts_ns, uint64_t dur_ns,
              const char* arg_name = nullptr, int64_t arg = 0) {
    if (!enabled()) return;
    const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceEvent& e = events_[idx];
    e.name = name;
    e.arg_name = arg_name;
    e.ts_ns = ts_ns;
    e.dur_ns = dur_ns;
    e.arg = arg;
    e.tid = ThreadId();
  }

  /// Events recorded so far (capped at capacity).
  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded event and resets the dropped count; recording
  /// state and capacity are unchanged.
  void Clear();

  /// Writes Chrome trace-event JSON ({"traceEvents": [...]}) sorted by
  /// timestamp, via tmp + rename so an interrupted writer never leaves a
  /// truncated file. Safe to call with recording still enabled (events
  /// racing the snapshot are simply not included). Writes an empty but
  /// valid trace when nothing was recorded.
  Status WriteJson(const std::string& path) const;

  /// Serializes the same JSON to a string (tests).
  std::string ToJson() const;

 private:
  static uint32_t ThreadId();

  mutable std::mutex mu_;  // guards events_ growth (Enable) and snapshots
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<bool> enabled_{false};
};

#ifdef ULDP_DISABLE_TRACING

/// Compiled-out span: same shape, zero code.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) { (void)name; }
  TraceSpan(const char* name, const char* arg_name, int64_t arg) {
    (void)name;
    (void)arg_name;
    (void)arg;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#else  // !ULDP_DISABLE_TRACING

/// Scoped span: construction stamps the start, destruction records one
/// complete event covering the scope. When tracing is disabled the
/// constructor leaves name_ null and the destructor does nothing.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, nullptr, 0) {}
  TraceSpan(const char* name, const char* arg_name, int64_t arg) {
    TraceBuffer& buffer = TraceBuffer::Global();
    if (!buffer.enabled()) return;
    name_ = name;
    arg_name_ = arg_name;
    arg_ = arg;
    start_ns_ = NowNs();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    TraceBuffer::Global().Record(name_, start_ns_, NowNs() - start_ns_,
                                 arg_name_, arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  int64_t arg_ = 0;
  uint64_t start_ns_ = 0;
};

#endif  // ULDP_DISABLE_TRACING

/// Always-empty span with the same interface as the compiled-out
/// TraceSpan — the overhead bench measures it against a bare loop in the
/// same binary to certify that ULDP_DISABLE_TRACING builds carry no cost.
class NullSpan {
 public:
  explicit NullSpan(const char* name) { (void)name; }
  NullSpan(const char* name, const char* arg_name, int64_t arg) {
    (void)name;
    (void)arg_name;
    (void)arg;
  }
  NullSpan(const NullSpan&) = delete;
  NullSpan& operator=(const NullSpan&) = delete;
};

}  // namespace obs
}  // namespace uldp

#endif  // ULDP_OBS_TRACE_H_
