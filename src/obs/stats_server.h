// Minimal live-stats HTTP endpoint: one loopback listener + one serving
// thread answering every GET with the global metrics registry rendered in
// Prometheus text exposition format (--stats-port on the protocol and
// async servers). Deliberately tiny: HTTP/1.1, connection: close, no
// routing — `curl localhost:<port>` or a Prometheus scrape both work.

#ifndef ULDP_OBS_STATS_SERVER_H_
#define ULDP_OBS_STATS_SERVER_H_

#include <atomic>
#include <memory>
#include <thread>

#include "common/status.h"

namespace uldp {
namespace obs {

class StatsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the bound port back from
  /// port()) and starts the serving thread.
  static Result<std::unique_ptr<StatsServer>> Start(int port);

  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  int port() const { return port_; }

  /// Stops the serving thread and closes the listener. Idempotent; the
  /// destructor calls it.
  void Stop();

 private:
  StatsServer() = default;
  void Serve();

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace uldp

#endif  // ULDP_OBS_STATS_SERVER_H_
