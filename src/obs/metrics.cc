#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

namespace uldp {
namespace obs {

uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

// ---------------------------------------------------------------------------
// Metric instances

Counter::Counter(std::string name)
    : Counter(&MetricsRegistry::Global(), std::move(name)) {}

Counter::Counter(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {
  registry_->Register(this);
}

Counter::~Counter() { registry_->Unregister(this); }

Gauge::Gauge(std::string name, Agg agg)
    : Gauge(&MetricsRegistry::Global(), std::move(name), agg) {}

Gauge::Gauge(MetricsRegistry* registry, std::string name, Agg agg)
    : registry_(registry), name_(std::move(name)), agg_(agg) {
  registry_->Register(this);
}

Gauge::~Gauge() { registry_->Unregister(this); }

Histogram::Histogram(std::string name)
    : Histogram(&MetricsRegistry::Global(), std::move(name)) {}

Histogram::Histogram(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {
  registry_->Register(this);
}

Histogram::~Histogram() { registry_->Unregister(this); }

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metrics owned by static-lifetime objects may
  // unregister after main() returns, so the registry must outlive them.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

void MetricsRegistry::Register(Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[c->name()].push_back(c);
}

void MetricsRegistry::Unregister(Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& live = counters_[c->name()];
  live.erase(std::remove(live.begin(), live.end(), c), live.end());
  retained_counters_[c->name()] += c->value();
}

void MetricsRegistry::Register(Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[g->name()].push_back(g);
}

void MetricsRegistry::Unregister(Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& live = gauges_[g->name()];
  live.erase(std::remove(live.begin(), live.end(), g), live.end());
  auto it = retained_gauges_.find(g->name());
  if (it == retained_gauges_.end()) {
    retained_gauges_[g->name()] = {g->agg(), g->value()};
  } else if (g->agg() == Gauge::Agg::kMax) {
    it->second.second = std::max(it->second.second, g->value());
  } else {
    it->second.second += g->value();
  }
}

void MetricsRegistry::Register(Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[h->name()].push_back(h);
}

void MetricsRegistry::Unregister(Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& live = histograms_[h->name()];
  live.erase(std::remove(live.begin(), live.end(), h), live.end());
  RetainedHist& fold = retained_histograms_[h->name()];
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    fold.buckets[i] += h->bucket(i);
  }
  fold.sum += h->sum();
  fold.count += h->count();
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  retained_counters_[name] += n;
}

void MetricsRegistry::RecordHistogram(const std::string& name, uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  RetainedHist& fold = retained_histograms_[name];
  fold.buckets[Histogram::BucketIndex(v)] += 1;
  fold.sum += v;
  fold.count += 1;
}

void MetricsRegistry::MaxGauge(const std::string& name, int64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = retained_gauges_.find(name);
  if (it == retained_gauges_.end()) {
    retained_gauges_[name] = {Gauge::Agg::kMax, v};
  } else {
    it->second.second = std::max(it->second.second, v);
  }
}

void MetricsRegistry::ResetRetained() {
  std::lock_guard<std::mutex> lock(mu_);
  retained_counters_.clear();
  retained_gauges_.clear();
  retained_histograms_.clear();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;

  // Counters: retained + every live instance, merged by sum.
  std::map<std::string, uint64_t> counter_totals = retained_counters_;
  for (const auto& entry : counters_) {
    uint64_t& total = counter_totals[entry.first];
    for (const Counter* c : entry.second) total += c->value();
  }
  for (const auto& entry : counter_totals) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = entry.first;
    s.counter_value = entry.second;
    out.push_back(std::move(s));
  }

  // Gauges: merged per the gauge's declared aggregation.
  std::map<std::string, std::pair<Gauge::Agg, int64_t>> gauge_totals =
      retained_gauges_;
  for (const auto& entry : gauges_) {
    for (const Gauge* g : entry.second) {
      auto it = gauge_totals.find(entry.first);
      if (it == gauge_totals.end()) {
        gauge_totals[entry.first] = {g->agg(), g->value()};
      } else if (g->agg() == Gauge::Agg::kMax) {
        it->second.second = std::max(it->second.second, g->value());
      } else {
        it->second.second += g->value();
      }
    }
  }
  for (const auto& entry : gauge_totals) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = entry.first;
    s.gauge_value = entry.second.second;
    out.push_back(std::move(s));
  }

  // Histograms: bucket-wise sums.
  std::map<std::string, RetainedHist> hist_totals = retained_histograms_;
  for (const auto& entry : histograms_) {
    RetainedHist& fold = hist_totals[entry.first];
    for (const Histogram* h : entry.second) {
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        fold.buckets[i] += h->bucket(i);
      }
      fold.sum += h->sum();
      fold.count += h->count();
    }
  }
  for (const auto& entry : hist_totals) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = entry.first;
    s.hist_count = entry.second.count;
    s.hist_sum = entry.second.sum;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (entry.second.buckets[i] == 0) continue;
      s.hist_buckets.emplace_back(Histogram::BucketUpperBound(i),
                                  entry.second.buckets[i]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

std::string PrometheusName(const std::string& name) {
  std::string out = "uldp_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::vector<MetricSnapshot> snaps = Snapshot();
  std::ostringstream os;
  os << "{\"schema\": \"uldp.metrics.v1\"";
  for (auto kind : {MetricSnapshot::Kind::kCounter,
                    MetricSnapshot::Kind::kGauge,
                    MetricSnapshot::Kind::kHistogram}) {
    const char* section = kind == MetricSnapshot::Kind::kCounter ? "counters"
                          : kind == MetricSnapshot::Kind::kGauge
                              ? "gauges"
                              : "histograms";
    os << ", \"" << section << "\": {";
    bool first = true;
    for (const MetricSnapshot& s : snaps) {
      if (s.kind != kind) continue;
      if (!first) os << ", ";
      first = false;
      AppendJsonString(os, s.name);
      os << ": ";
      if (kind == MetricSnapshot::Kind::kCounter) {
        os << s.counter_value;
      } else if (kind == MetricSnapshot::Kind::kGauge) {
        os << s.gauge_value;
      } else {
        os << "{\"count\": " << s.hist_count << ", \"sum\": " << s.hist_sum
           << ", \"buckets\": [";
        for (size_t i = 0; i < s.hist_buckets.size(); ++i) {
          if (i > 0) os << ", ";
          os << "{\"le\": " << s.hist_buckets[i].first
             << ", \"count\": " << s.hist_buckets[i].second << "}";
        }
        os << "]}";
      }
    }
    os << "}";
  }
  os << "}\n";
  return os.str();
}

std::string MetricsRegistry::ToPrometheus() const {
  std::vector<MetricSnapshot> snaps = Snapshot();
  std::ostringstream os;
  for (const MetricSnapshot& s : snaps) {
    const std::string name = PrometheusName(s.name);
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << s.counter_value << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << s.gauge_value << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (const auto& bucket : s.hist_buckets) {
          cumulative += bucket.second;
          os << name << "_bucket{le=\"" << bucket.first << "\"} "
             << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << s.hist_count << "\n"
           << name << "_sum " << s.hist_sum << "\n"
           << name << "_count " << s.hist_count << "\n";
        break;
      }
    }
  }
  return os.str();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("metrics: cannot open " + tmp + " for writing");
  }
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("metrics: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("metrics: cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace uldp
