// Process-wide metrics registry: lock-free counters, gauges, and
// log-bucketed latency histograms, snapshot-able to a stable JSON schema
// (uldp.metrics.v1) and to Prometheus text exposition format.
//
// Hot-path cost model: an increment is one relaxed atomic op on a member
// the owning object holds by value — the registry mutex is only taken at
// metric construction, destruction, and snapshot time. Metric instances
// register themselves by name; many instances may share a name (every
// transport owns a "net.transport.bytes_sent" counter) and a snapshot
// merges them, so per-object accessors stay exact while the registry
// reports fleet totals. When an instance is destroyed its final value
// folds into a per-name retained aggregate, so counters from closed
// connections or finished phases survive into the end-of-run snapshot.
//
// Telemetry is strictly passive: nothing here touches an Rng stream, and
// reads use relaxed loads so instrumented code is bitwise-identical with
// or without a snapshot ever being taken.

#ifndef ULDP_OBS_METRICS_H_
#define ULDP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace uldp {
namespace obs {

/// Nanoseconds on the steady clock since a process-wide epoch (the first
/// call). Shared by histograms timing waits and the trace buffer, so span
/// timestamps and latency samples line up.
uint64_t NowNs();

class MetricsRegistry;

/// Monotonic counter. Construct with a name to register with the global
/// registry, or pass a registry explicitly (tests).
class Counter {
 public:
  explicit Counter(std::string name);
  Counter(MetricsRegistry* registry, std::string name);
  ~Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Signed gauge. Aggregation across same-name instances (and into the
/// retained fold) is either kSum (queue depths, in-flight counts) or kMax
/// (high-water marks like the largest frame on any connection).
class Gauge {
 public:
  enum class Agg { kSum, kMax };

  explicit Gauge(std::string name, Agg agg = Agg::kSum);
  Gauge(MetricsRegistry* registry, std::string name, Agg agg = Agg::kSum);
  ~Gauge();
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below (CAS-max).
  void SetMax(int64_t v) {
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev && !value_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }
  /// Returns the current value and replaces it with `v` atomically.
  int64_t Exchange(int64_t v) {
    return value_.exchange(v, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  Agg agg() const { return agg_; }
  const std::string& name() const { return name_; }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Agg agg_;
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram: value v lands in bucket bit_width(v), i.e.
/// bucket 0 holds exactly 0 and bucket i >= 1 holds [2^(i-1), 2^i - 1]
/// (upper bound "le" = 2^i - 1). Covers the full uint64 range in
/// kNumBuckets fixed slots — no allocation ever, Record is three relaxed
/// atomic adds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  explicit Histogram(std::string name);
  Histogram(MetricsRegistry* registry, std::string name);
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

  static int BucketIndex(uint64_t v) {
    int bits = 0;
    while (v != 0) {
      ++bits;
      v >>= 1;
    }
    return bits;
  }
  /// Inclusive upper bound of bucket i (2^i - 1; bucket 0 holds only 0).
  static uint64_t BucketUpperBound(int i) {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Scoped latency sample: records NowNs() elapsed between construction
/// and destruction into a histogram.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* hist)
      : hist_(hist), start_ns_(hist == nullptr ? 0 : NowNs()) {}
  ~ScopedTimerNs() {
    if (hist_ != nullptr) hist_->Record(NowNs() - start_ns_);
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

/// One merged per-name view, produced by MetricsRegistry::Snapshot().
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  uint64_t counter_value = 0;  // kCounter
  int64_t gauge_value = 0;     // kGauge (after Agg merge)
  uint64_t hist_count = 0;     // kHistogram
  uint64_t hist_sum = 0;
  /// Nonzero buckets only, ascending: (inclusive upper bound, count).
  std::vector<std::pair<uint64_t, uint64_t>> hist_buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every default-constructed metric joins.
  static MetricsRegistry& Global();

  /// Cold-path conveniences for call sites without a natural owner for a
  /// metric object (per-stream setup, per-phase accounting): bump the
  /// retained aggregate directly under the registry mutex.
  void AddCounter(const std::string& name, uint64_t n);
  void RecordHistogram(const std::string& name, uint64_t v);
  void MaxGauge(const std::string& name, int64_t v);

  /// Merged (live + retained) view of every metric, sorted by name within
  /// each kind.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Stable JSON: {"schema": "uldp.metrics.v1", "counters": {...},
  /// "gauges": {...}, "histograms": {name: {count, sum, buckets: [
  /// {le, count}]}}}. Bucket counts are per-bucket (not cumulative).
  std::string ToJson() const;

  /// Prometheus text exposition format (names prefixed "uldp_", '.'/'-'
  /// replaced by '_'; histogram buckets cumulative with a +Inf bucket).
  std::string ToPrometheus() const;

  /// Writes ToJson() via tmp + rename so a crash mid-write never leaves a
  /// truncated file behind.
  Status WriteJsonFile(const std::string& path) const;

  /// Drops all retained aggregates (live metrics are untouched) — test
  /// isolation for registry-convenience counters.
  void ResetRetained();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct RetainedHist {
    uint64_t buckets[Histogram::kNumBuckets] = {};
    uint64_t sum = 0;
    uint64_t count = 0;
  };

  void Register(Counter* c);
  void Unregister(Counter* c);
  void Register(Gauge* g);
  void Unregister(Gauge* g);
  void Register(Histogram* h);
  void Unregister(Histogram* h);

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Counter*>> counters_;
  std::map<std::string, uint64_t> retained_counters_;
  std::map<std::string, std::vector<Gauge*>> gauges_;
  std::map<std::string, std::pair<Gauge::Agg, int64_t>> retained_gauges_;
  std::map<std::string, std::vector<Histogram*>> histograms_;
  std::map<std::string, RetainedHist> retained_histograms_;
};

}  // namespace obs
}  // namespace uldp

#endif  // ULDP_OBS_METRICS_H_
