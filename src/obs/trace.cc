#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace uldp {
namespace obs {

TraceBuffer& TraceBuffer::Global() {
  // Leaked like the metrics registry: spans owned by static-lifetime
  // objects may fire after main() returns.
  static TraceBuffer* global = new TraceBuffer();
  return *global;
}

uint32_t TraceBuffer::ThreadId() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid = next_tid.fetch_add(1);
  return tid;
}

void TraceBuffer::Enable(size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.empty()) {
      events_.resize(capacity == 0 ? kDefaultCapacity : capacity);
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(
      std::min<uint64_t>(next_.load(std::memory_order_relaxed),
                         events_.size()));
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceBuffer::ToJson() const {
  std::vector<TraceEvent> snapshot;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t n = std::min<uint64_t>(
        next_.load(std::memory_order_relaxed), events_.size());
    snapshot.assign(events_.begin(),
                    events_.begin() + static_cast<long>(n));
    dropped = dropped_.load(std::memory_order_relaxed);
  }
  // A slot claimed but not yet fully written by a racing span still has a
  // null name; skip it rather than emit a half-event.
  snapshot.erase(std::remove_if(snapshot.begin(), snapshot.end(),
                                [](const TraceEvent& e) {
                                  return e.name == nullptr;
                                }),
                 snapshot.end());
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  // Chrome trace ts/dur are microseconds; keep ns precision as a
  // zero-padded 3-digit decimal fraction.
  const auto micros = [](uint64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": \""
     << dropped << "\"}, \"traceEvents\": [";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    if (i > 0) os << ",";
    os << "\n{\"name\": \"" << e.name << "\", \"cat\": \"uldp\", "
       << "\"ph\": \"X\", \"pid\": 0, \"tid\": " << e.tid << ", \"ts\": "
       << micros(e.ts_ns) << ", \"dur\": " << micros(e.dur_ns);
    if (e.arg_name != nullptr) {
      os << ", \"args\": {\"" << e.arg_name << "\": " << e.arg << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

Status TraceBuffer::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("trace: cannot open " + tmp + " for writing");
  }
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("trace: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("trace: cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace uldp
