#include "fl/local_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "crypto/fixed_point.h"
#include "crypto/secure_agg.h"

namespace uldp {

void TrainLocalSgd(Model& model, const std::vector<Example>& examples,
                   int epochs, int batch_size, double learning_rate,
                   Rng& rng) {
  ULDP_CHECK_GE(epochs, 1);
  ULDP_CHECK_GE(batch_size, 1);
  if (examples.empty()) return;
  std::vector<size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  Vec params = model.GetParams();
  Vec grad(params.size(), 0.0);
  std::vector<const Example*> batch;
  for (int e = 0; e < epochs; ++e) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(batch_size)) {
      size_t end = std::min(order.size(), start + batch_size);
      batch.clear();
      for (size_t i = start; i < end; ++i) batch.push_back(&examples[order[i]]);
      std::fill(grad.begin(), grad.end(), 0.0);
      model.LossAndGrad(batch, &grad);
      Axpy(-learning_rate, grad, params);
      model.SetParams(params);
    }
  }
}

namespace {

// Public 256-bit prime field for the secure-aggregation simulation. Fixed
// (it is public anyway) so aggregation is deterministic across parties.
const char* kAggFieldPrimeHex =
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";

}  // namespace

double AsyncNoiseMargin(const FlConfig& config, int num_silos) {
  if (!config.async_rounds) return 1.0;
  const int k =
      config.async_buffer <= 0 ? num_silos : config.async_buffer;
  // Exactly 1.0 at the barrier defaults (K = |S|, max_staleness = 0), so
  // scaling by it keeps the async barrier bitwise identical to sync.
  return (1.0 + config.max_staleness) *
         std::sqrt(static_cast<double>(num_silos) / k);
}

Vec AggregateDeltas(const std::vector<Vec>& silo_deltas, bool secure,
                    uint64_t round_tag, ThreadPool* pool) {
  ULDP_CHECK(!silo_deltas.empty());
  const size_t dim = silo_deltas[0].size();
  if (!secure) {
    return SumVecs(silo_deltas);
  }
  const int parties = static_cast<int>(silo_deltas.size());
  auto prime = BigInt::FromHex(kAggFieldPrimeHex);
  ULDP_CHECK(prime.ok());
  SecureAggregator agg(prime.value(), std::max(parties, 2));
  FixedPointCodec codec(prime.value(), 1e-10);

  // Pairwise keys: in production these come from the DH exchange; the
  // simulation derives them from the public pair id (masks still cancel and
  // the code path is identical).
  std::vector<std::vector<ChaChaRng::Key>> keys(
      parties, std::vector<ChaChaRng::Key>(std::max(parties, 2)));
  for (int i = 0; i < parties; ++i) {
    for (int j = i + 1; j < parties; ++j) {
      auto key = ChaChaRng::DeriveKey("agg-sim|" + std::to_string(i) + "," +
                                      std::to_string(j));
      keys[i][j] = key;
      keys[j][i] = key;
    }
  }

  std::vector<std::vector<BigInt>> masked(parties);
  for (int s = 0; s < parties; ++s) {
    std::vector<BigInt> enc(dim);
    for (size_t d = 0; d < dim; ++d) {
      auto e = codec.Encode(silo_deltas[s][d]);
      ULDP_CHECK_MSG(e.ok(), e.status().ToString());
      enc[d] = std::move(e.value());
    }
    if (parties >= 2) {
      auto mask = agg.MaskVector(s, keys[s], round_tag, dim, pool);
      agg.AddMasks(enc, mask);
    }
    masked[s] = std::move(enc);
  }
  std::vector<BigInt> total = agg.SumVectors(masked);
  Vec out(dim);
  for (size_t d = 0; d < dim; ++d) out[d] = codec.DecodePlain(total[d]);
  return out;
}

}  // namespace uldp
