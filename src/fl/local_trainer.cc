#include "fl/local_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "crypto/fixed_point.h"
#include "crypto/secure_agg.h"

namespace uldp {

void TrainLocalSgd(Model& model, const std::vector<Example>& examples,
                   int epochs, int batch_size, double learning_rate,
                   Rng& rng) {
  ULDP_CHECK_GE(epochs, 1);
  ULDP_CHECK_GE(batch_size, 1);
  if (examples.empty()) return;
  std::vector<size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  Vec params = model.GetParams();
  Vec grad(params.size(), 0.0);
  std::vector<const Example*> batch;
  for (int e = 0; e < epochs; ++e) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(batch_size)) {
      size_t end = std::min(order.size(), start + batch_size);
      batch.clear();
      for (size_t i = start; i < end; ++i) batch.push_back(&examples[order[i]]);
      std::fill(grad.begin(), grad.end(), 0.0);
      model.LossAndGrad(batch, &grad);
      Axpy(-learning_rate, grad, params);
      model.SetParams(params);
    }
  }
}

namespace {

// Public 256-bit prime field for the secure-aggregation simulation. Fixed
// (it is public anyway) so aggregation is deterministic across parties.
const char* kAggFieldPrimeHex =
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";

BigInt AggFieldPrime() {
  auto prime = BigInt::FromHex(kAggFieldPrimeHex);
  ULDP_CHECK(prime.ok());
  return std::move(prime.value());
}

// Pairwise keys for `party`: in production these come from the DH
// exchange; the simulation derives them from the public pair id (masks
// still cancel and the code path is identical).
std::vector<ChaChaRng::Key> PairwiseAggKeys(int party, int num_parties) {
  std::vector<ChaChaRng::Key> keys(std::max(num_parties, 2));
  for (int j = 0; j < num_parties; ++j) {
    if (j == party) continue;
    const int lo = std::min(party, j);
    const int hi = std::max(party, j);
    keys[j] = ChaChaRng::DeriveKey("agg-sim|" + std::to_string(lo) + "," +
                                   std::to_string(hi));
  }
  return keys;
}

}  // namespace

double AsyncNoiseMargin(const FlConfig& config, int num_silos) {
  if (!config.async_rounds) return 1.0;
  const int k =
      config.async_buffer <= 0 ? num_silos : config.async_buffer;
  // Exactly 1.0 at the barrier defaults (K = |S|, max_staleness = 0), so
  // scaling by it keeps the async barrier bitwise identical to sync.
  return (1.0 + config.max_staleness) *
         std::sqrt(static_cast<double>(num_silos) / k);
}

std::vector<BigInt> MaskSiloDelta(const Vec& delta, int party,
                                  int num_parties, uint64_t round_tag,
                                  ThreadPool* pool) {
  const size_t dim = delta.size();
  BigInt prime = AggFieldPrime();
  SecureAggregator agg(prime, std::max(num_parties, 2));
  FixedPointCodec codec(prime, 1e-10);
  std::vector<BigInt> enc(dim);
  for (size_t d = 0; d < dim; ++d) {
    auto e = codec.Encode(delta[d]);
    ULDP_CHECK_MSG(e.ok(), e.status().ToString());
    enc[d] = std::move(e.value());
  }
  if (num_parties >= 2) {
    auto keys = PairwiseAggKeys(party, num_parties);
    auto mask = agg.MaskVector(party, keys, round_tag, dim, pool);
    agg.AddMasks(enc, mask);
  }
  return enc;
}

Vec UnmaskMaskedSum(const std::vector<std::vector<BigInt>>& masked) {
  ULDP_CHECK(!masked.empty());
  const size_t dim = masked[0].size();
  BigInt prime = AggFieldPrime();
  SecureAggregator agg(prime, std::max(static_cast<int>(masked.size()), 2));
  FixedPointCodec codec(prime, 1e-10);
  std::vector<BigInt> total = agg.SumVectors(masked);
  Vec out(dim);
  for (size_t d = 0; d < dim; ++d) out[d] = codec.DecodePlain(total[d]);
  return out;
}

Vec AggregateDeltas(const std::vector<Vec>& silo_deltas, bool secure,
                    uint64_t round_tag, ThreadPool* pool) {
  ULDP_CHECK(!silo_deltas.empty());
  if (!secure) {
    return SumVecs(silo_deltas);
  }
  const int parties = static_cast<int>(silo_deltas.size());
  std::vector<std::vector<BigInt>> masked(parties);
  for (int s = 0; s < parties; ++s) {
    masked[s] = MaskSiloDelta(silo_deltas[s], s, parties, round_tag, pool);
  }
  return UnmaskMaskedSum(masked);
}

}  // namespace uldp
