// Shared FL machinery: the algorithm interface every trainer implements,
// the common hyper-parameter block (Table 1 of the paper), plain local SGD
// (the client-side optimizer), and the delta-aggregation helper with an
// optional secure-aggregation simulation.

#ifndef ULDP_FL_LOCAL_TRAINER_H_
#define ULDP_FL_LOCAL_TRAINER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "math/bigint.h"
#include "nn/model.h"

namespace uldp {

/// Where the DP noise is injected. The paper's protocol is distributed
/// (each silo adds its share so no party ever sees a low-noise aggregate,
/// matching the secure-aggregation trust model); central mode adds the
/// equivalent total noise once at the server and exists for cross-checking
/// and for deployments that trust the aggregator.
enum class NoisePlacement {
  kDistributed,
  kCentral,
};

/// Common hyper-parameters (paper Table 1).
struct FlConfig {
  double local_lr = 0.05;   // eta_l
  double global_lr = 1.0;   // eta_g
  double clip = 1.0;        // C
  double sigma = 5.0;       // noise multiplier
  int local_epochs = 1;     // Q
  int batch_size = 32;      // local mini-batch size
  uint64_t seed = 1;
  /// Round-engine thread count: per-silo work is scheduled across this
  /// many threads (<= 0 resolves via ULDP_THREADS env, then hardware
  /// concurrency). Results are bitwise independent of this value — all
  /// randomness comes from Rng::Fork(round, silo, user) substreams.
  int num_threads = 0;
  NoisePlacement noise_placement = NoisePlacement::kDistributed;
  /// When true, silo deltas are routed through fixed-point encoding and
  /// pairwise-masked summation over a public prime field before the server
  /// sees them (functional secure-aggregation simulation; §3.1 assumes
  /// aggregation is secure in all algorithms). Adds BigInt cost per
  /// coordinate; identical result up to the fixed-point precision.
  bool secure_aggregation = false;
  /// Asynchronous staleness-bounded rounds: silo deltas are applied as
  /// they land instead of barrier-waiting on the slowest silo. A server
  /// step flushes once `async_buffer` updates arrived; an update computed
  /// against a model `tau` versions old is accepted iff tau <=
  /// max_staleness, discounted by 1 / (1 + tau). With max_staleness = 0
  /// and async_buffer = num_silos (the defaults) every step is a barrier
  /// over all silos and the result is bitwise identical to the
  /// synchronous engine.
  ///
  /// DP accounting note: per-user clipping happens inside the silo
  /// *before* submission, so a user's contribution to any single flushed
  /// aggregate still has L2 sensitivity <= C — the discount alpha(tau)
  /// <= 1 scales its terms and can only shrink that bound. Rejected
  /// (over-stale) updates are discarded without release, which costs no
  /// budget. Noise calibration: with the barrier defaults (async_buffer =
  /// num_silos, max_staleness = 0) a flush carries exactly the
  /// synchronous round's noise and the paper's per-step composition
  /// applies verbatim. With a partial buffer K < |S| or a positive
  /// staleness bound, a flush pools noise from only K (possibly
  /// discounted) shares, so the noise-pooling trainers (ULDP-AVG/SGD)
  /// scale each share by AsyncNoiseMargin = (1 + max_staleness) *
  /// sqrt(|S| / K): even the worst flush (K maximally discounted shares)
  /// then carries at least the noise the accountant charges for, at the
  /// cost of over-noising fresh updates — a conservative calibration.
  /// ULDP-NAIVE needs no inflation (its per-silo shares are already
  /// over-calibrated for any K-subset; see the Cauchy-Schwarz note in
  /// uldp_naive.cc), and ULDP-GROUP's noise protects its own silo's
  /// records and scales with its own delta, so discounting is pure
  /// post-processing there.
  /// Central noise placement sidesteps the inflation entirely (the
  /// server noises each flushed aggregate in full) and is the
  /// recommended pairing for aggressive staleness settings.
  bool async_rounds = false;
  /// Maximum accepted staleness tau (async_rounds only).
  int max_staleness = 0;
  /// Arrivals buffered before a server step flushes (async_rounds only);
  /// <= 0 resolves to the silo count. Values < num_silos let fast silos
  /// outpace a straggler (its update lands late, discounted or rejected).
  int async_buffer = 0;
  /// > 0: split each silo's per-user protocol sweep into shards of at
  /// most this many users, scheduled as independent round-engine tasks
  /// (RoundEngine::RunSiloShards) — a single dominant silo no longer owns
  /// the round's critical path. Bitwise-identical for any value: per-user
  /// work draws from Rng::Fork(round, silo, user) substreams and each
  /// silo's noise share is computed by its first shard from the same
  /// substream either way. Applies to the private-protocol path only —
  /// the plaintext paths accumulate silo deltas in floating point, where
  /// a shard split would change the summation order (and hence the bits),
  /// so they stay unsharded.
  int shard_users = 0;
};

/// A federated algorithm: owns its per-silo state and privacy accounting;
/// the experiment runner drives rounds and evaluation.
class FlAlgorithm {
 public:
  virtual ~FlAlgorithm() = default;

  /// Executes round `round`, updating `global_params` in place.
  virtual Status RunRound(int round, Vec& global_params) = 0;

  /// Accumulated user-level epsilon after the rounds run so far
  /// (+infinity for non-private baselines).
  virtual Result<double> EpsilonSpent(double delta) const = 0;

  /// Charges the accountant for `rounds` rounds that ran before this
  /// process started (checkpoint resume: the restored model already paid
  /// that privacy budget, so EpsilonSpent must report it). Default no-op
  /// — correct for non-private baselines.
  virtual void AccountRestoredRounds(int64_t rounds) { (void)rounds; }

  virtual std::string name() const = 0;
};

/// Mini-batch SGD on `model` over `examples` for `epochs` passes.
/// Examples are shuffled each epoch with `rng`. This is the paper's local
/// optimization subroutine (Algorithm 1/3 inner loops).
void TrainLocalSgd(Model& model, const std::vector<Example>& examples,
                   int epochs, int batch_size, double learning_rate, Rng& rng);

class ThreadPool;

/// Inflation factor for a silo's distributed noise share under async
/// rounds (the FlConfig DP note): 1 exactly for synchronous runs and for
/// the async barrier defaults; (1 + max_staleness) * sqrt(num_silos / K)
/// otherwise, so even a flush of K maximally discounted shares carries
/// the noise the accountant charges for.
double AsyncNoiseMargin(const FlConfig& config, int num_silos);

/// Sums per-silo delta vectors. With `secure` set, each delta is
/// fixed-point-encoded, masked with pairwise ChaCha masks that cancel in
/// the sum, and decoded after summation — so a curious server summing the
/// transcripts learns only the total (Bonawitz-style aggregation).
/// `pool` (optional) parallelizes mask generation; the result is bitwise
/// identical at any thread count. Callers with a thread-count knob (the
/// round engine) pass their own pool so the knob stays authoritative.
Vec AggregateDeltas(const std::vector<Vec>& silo_deltas, bool secure,
                    uint64_t round_tag, ThreadPool* pool = nullptr);

/// One party's side of the secure reduce, split out so a real transport
/// can ship masked vectors instead of plain deltas (net/async_rounds.h
/// masked mode): fixed-point-encodes `delta` and adds this party's
/// pairwise masks for round `round_tag`. Masking every party and summing
/// with UnmaskMaskedSum is bitwise identical to
/// AggregateDeltas(..., secure=true, ...) on the same inputs.
std::vector<BigInt> MaskSiloDelta(const Vec& delta, int party,
                                  int num_parties, uint64_t round_tag,
                                  ThreadPool* pool = nullptr);

/// The server's side: sums the masked vectors (masks cancel) and decodes
/// the fixed-point total back to doubles.
Vec UnmaskMaskedSum(const std::vector<std::vector<BigInt>>& masked);

}  // namespace uldp

#endif  // ULDP_FL_LOCAL_TRAINER_H_
