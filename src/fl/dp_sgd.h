// DP-SGD (Abadi et al., CCS'16): per-record gradient clipping + Gaussian
// noise with Poisson-sampled lots. This is the record-level-DP local
// subroutine of the ULDP-GROUP-k baseline (Algorithm 2, line 9).

#ifndef ULDP_FL_DP_SGD_H_
#define ULDP_FL_DP_SGD_H_

#include "common/rng.h"
#include "common/status.h"
#include "nn/model.h"

namespace uldp {

struct DpSgdOptions {
  double learning_rate = 0.05;
  double clip = 1.0;          // per-record gradient clip C
  double sigma = 5.0;         // noise multiplier
  double sample_rate = 0.1;   // Poisson lot rate gamma
  int steps = 10;             // noisy SGD steps
};

/// Runs DP-SGD in place on `model`. Each step Poisson-samples a lot at
/// `sample_rate`, clips each per-record gradient to `clip`, sums, adds
/// N(0, sigma^2 clip^2 I), and normalizes by the expected lot size
/// (gamma * |data|), the standard Abadi et al. estimator.
/// Record-level RDP: `steps` sub-sampled Gaussian compositions at rate
/// gamma — tracked by the caller via PrivacyTracker::ForGroup.
Status RunDpSgd(Model& model, const std::vector<Example>& data,
                const DpSgdOptions& options, Rng& rng);

}  // namespace uldp

#endif  // ULDP_FL_DP_SGD_H_
