#include "fl/session.h"

#include <cstdio>
#include <cstring>

#include "net/messages.h"  // WireDigest
#include "net/wire.h"

namespace uldp {
namespace {

/// Session checkpoint format version; bump on any layout change.
constexpr uint16_t kSessionFormatVersion = 1;
constexpr uint8_t kMagic[4] = {'U', 'L', 'S', 'S'};

}  // namespace

const char* SiloStatusName(SiloStatus status) {
  switch (status) {
    case SiloStatus::kJoined:
      return "joined";
    case SiloStatus::kActive:
      return "active";
    case SiloStatus::kLeft:
      return "left";
    case SiloStatus::kEvicted:
      return "evicted";
  }
  return "unknown";
}

bool SiloMember::operator==(const SiloMember& o) const {
  return silo_id == o.silo_id && status == o.status &&
         join_round == o.join_round && depart_round == o.depart_round &&
         last_version == o.last_version && user_count == o.user_count &&
         weight == o.weight;
}

bool MembershipEpochRecord::operator==(const MembershipEpochRecord& o) const {
  return epoch == o.epoch && start_round == o.start_round &&
         active_silos == o.active_silos && user_total == o.user_total;
}

bool SessionStats::operator==(const SessionStats& o) const {
  return applied == o.applied && rejected == o.rejected &&
         dropped == o.dropped && steps == o.steps &&
         max_staleness_seen == o.max_staleness_seen;
}

bool SessionState::operator==(const SessionState& o) const {
  return seed == o.seed && dim == o.dim && round == o.round &&
         membership_epoch == o.membership_epoch && model == o.model &&
         members == o.members && epochs == o.epochs && stats == o.stats;
}

const SiloMember* SessionState::Find(uint32_t silo_id) const {
  for (const auto& m : members) {
    if (m.silo_id == silo_id) return &m;
  }
  return nullptr;
}

SiloMember* SessionState::Find(uint32_t silo_id) {
  for (auto& m : members) {
    if (m.silo_id == silo_id) return &m;
  }
  return nullptr;
}

SiloMember& SessionState::Upsert(uint32_t silo_id) {
  if (SiloMember* m = Find(silo_id)) return *m;
  SiloMember fresh;
  fresh.silo_id = silo_id;
  members.push_back(fresh);
  return members.back();
}

int SessionState::ActiveCount() const {
  int n = 0;
  for (const auto& m : members) {
    if (m.status == SiloStatus::kActive) ++n;
  }
  return n;
}

uint64_t SessionState::ActiveUserTotal() const {
  uint64_t n = 0;
  for (const auto& m : members) {
    if (m.status == SiloStatus::kActive) n += m.user_count;
  }
  return n;
}

const MembershipEpochRecord& SessionState::SealEpoch(uint64_t start_round) {
  int active = ActiveCount();
  for (auto& m : members) {
    m.weight =
        (m.status == SiloStatus::kActive && active > 0) ? 1.0 / active : 0.0;
  }
  ++membership_epoch;
  MembershipEpochRecord record;
  record.epoch = membership_epoch;
  record.start_round = start_round;
  record.active_silos = static_cast<uint32_t>(active);
  record.user_total = ActiveUserTotal();
  epochs.push_back(record);
  return epochs.back();
}

std::vector<uint8_t> SessionState::Serialize() const {
  net::WireWriter w;
  for (uint8_t c : kMagic) w.U8(c);
  w.U16(kSessionFormatVersion);
  w.U64(seed);
  w.U32(dim);
  w.U64(round);
  w.U64(membership_epoch);
  w.F64Vec(model);
  w.U32(static_cast<uint32_t>(members.size()));
  for (const auto& m : members) {
    w.U32(m.silo_id);
    w.U8(static_cast<uint8_t>(m.status));
    w.U64(m.join_round);
    w.U64(m.depart_round);
    w.U64(m.last_version);
    w.U32(m.user_count);
    w.F64(m.weight);
  }
  w.U32(static_cast<uint32_t>(epochs.size()));
  for (const auto& e : epochs) {
    w.U64(e.epoch);
    w.U64(e.start_round);
    w.U32(e.active_silos);
    w.U64(e.user_total);
  }
  w.U64(static_cast<uint64_t>(stats.applied));
  w.U64(static_cast<uint64_t>(stats.rejected));
  w.U64(static_cast<uint64_t>(stats.dropped));
  w.U64(static_cast<uint64_t>(stats.steps));
  w.U32(static_cast<uint32_t>(stats.max_staleness_seen));
  uint64_t digest = net::WireDigest(w.buffer());
  w.U64(digest);
  return w.Take();
}

Result<SessionState> SessionState::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 8) {
    return Status::InvalidArgument(
        "session checkpoint too short to hold its digest");
  }
  size_t payload_size = bytes.size() - 8;
  uint64_t stored = 0;
  {
    net::WireReader tail(bytes.data() + payload_size, 8);
    ULDP_RETURN_IF_ERROR(tail.U64(&stored));
  }
  uint64_t computed = net::WireDigest(bytes.data(), payload_size);
  if (stored != computed) {
    return Status::InvalidArgument(
        "session checkpoint digest mismatch (corrupted or truncated)");
  }

  net::WireReader r(bytes.data(), payload_size);
  uint8_t magic[4];
  for (uint8_t& c : magic) ULDP_RETURN_IF_ERROR(r.U8(&c));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a session checkpoint (bad magic)");
  }
  uint16_t version = 0;
  ULDP_RETURN_IF_ERROR(r.U16(&version));
  if (version != kSessionFormatVersion) {
    return Status::InvalidArgument(
        "unsupported session format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kSessionFormatVersion) + ")");
  }

  SessionState state;
  ULDP_RETURN_IF_ERROR(r.U64(&state.seed));
  ULDP_RETURN_IF_ERROR(r.U32(&state.dim));
  ULDP_RETURN_IF_ERROR(r.U64(&state.round));
  ULDP_RETURN_IF_ERROR(r.U64(&state.membership_epoch));
  ULDP_RETURN_IF_ERROR(r.F64Vec(&state.model));
  if (state.model.size() != state.dim) {
    return Status::InvalidArgument(
        "session checkpoint model size disagrees with its dim field");
  }
  uint32_t member_count = 0;
  ULDP_RETURN_IF_ERROR(r.U32(&member_count));
  state.members.reserve(member_count);
  for (uint32_t i = 0; i < member_count; ++i) {
    SiloMember m;
    uint8_t status = 0;
    ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
    ULDP_RETURN_IF_ERROR(r.U8(&status));
    if (status > static_cast<uint8_t>(SiloStatus::kEvicted)) {
      return Status::InvalidArgument("session checkpoint has invalid silo "
                                     "status " + std::to_string(status));
    }
    m.status = static_cast<SiloStatus>(status);
    ULDP_RETURN_IF_ERROR(r.U64(&m.join_round));
    ULDP_RETURN_IF_ERROR(r.U64(&m.depart_round));
    ULDP_RETURN_IF_ERROR(r.U64(&m.last_version));
    ULDP_RETURN_IF_ERROR(r.U32(&m.user_count));
    ULDP_RETURN_IF_ERROR(r.F64(&m.weight));
    state.members.push_back(m);
  }
  uint32_t epoch_count = 0;
  ULDP_RETURN_IF_ERROR(r.U32(&epoch_count));
  state.epochs.reserve(epoch_count);
  for (uint32_t i = 0; i < epoch_count; ++i) {
    MembershipEpochRecord e;
    ULDP_RETURN_IF_ERROR(r.U64(&e.epoch));
    ULDP_RETURN_IF_ERROR(r.U64(&e.start_round));
    ULDP_RETURN_IF_ERROR(r.U32(&e.active_silos));
    ULDP_RETURN_IF_ERROR(r.U64(&e.user_total));
    state.epochs.push_back(e);
  }
  uint64_t applied = 0, rejected = 0, dropped = 0, steps = 0;
  uint32_t max_staleness = 0;
  ULDP_RETURN_IF_ERROR(r.U64(&applied));
  ULDP_RETURN_IF_ERROR(r.U64(&rejected));
  ULDP_RETURN_IF_ERROR(r.U64(&dropped));
  ULDP_RETURN_IF_ERROR(r.U64(&steps));
  ULDP_RETURN_IF_ERROR(r.U32(&max_staleness));
  state.stats.applied = static_cast<int64_t>(applied);
  state.stats.rejected = static_cast<int64_t>(rejected);
  state.stats.dropped = static_cast<int64_t>(dropped);
  state.stats.steps = static_cast<int64_t>(steps);
  state.stats.max_staleness_seen = static_cast<int32_t>(max_staleness);
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "session checkpoint has trailing bytes before its digest");
  }
  return state;
}

Status SessionState::WriteFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint file " + tmp);
  }
  size_t wrote = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1,
                                                 bytes.size(), f);
  bool flushed = std::fflush(f) == 0;
  bool closed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to checkpoint file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename checkpoint into place at " + path);
  }
  return Status::Ok();
}

Result<SessionState> SessionState::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no session checkpoint at " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("error reading session checkpoint " + path);
  }
  return Deserialize(bytes);
}

}  // namespace uldp
