// Unified parallel round engine. Every FL algorithm in this codebase is a
// cross-silo round: silos compute local contributions independently, and
// the server reduces them. The engine owns that structure once — a silo-
// actor scheduler on a work-stealing pool plus the deterministic reduce —
// so trainers only register their per-silo LocalWork callback.
//
// Determinism contract: the engine never hands callbacks a shared RNG.
// Algorithms draw all randomness from Rng::Fork(round, silo, user)
// substreams (pure functions of the seed and counters) and the engine
// reduces silo outputs in silo order, so a run on N threads is bitwise
// identical to a serial run. Thread count is purely a performance knob
// (FlConfig::num_threads / ULDP_THREADS).
//
// The engine also owns the asynchronous staleness-bounded round mode
// (FlConfig::async_rounds): silo deltas are applied as they land, bounded
// by FlConfig::max_staleness and discounted by 1/(1 + staleness), instead
// of barrier-waiting on the slowest silo. With max_staleness = 0 and a
// full buffer the async path degenerates to the synchronous barrier and
// is bitwise identical to RunRound; with an injected arrival schedule any
// async configuration is fully deterministic (tests rely on both).

#ifndef ULDP_FL_ROUND_ENGINE_H_
#define ULDP_FL_ROUND_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "nn/model.h"
#include "obs/metrics.h"

namespace uldp {

struct FlConfig;
struct SessionState;

struct RoundEngineConfig {
  /// <= 0 resolves via ThreadPool::DefaultThreadCount().
  int num_threads = 0;
  /// Route the silo-delta reduce through the secure-aggregation simulation
  /// (pairwise-masked fixed-point sums) instead of a plain sum.
  bool secure_aggregation = false;
};

/// Engine settings carried by the shared FL hyper-parameter block.
RoundEngineConfig EngineConfigFrom(const FlConfig& config);

/// Async-mode knobs (see FlConfig::async_rounds for semantics).
struct AsyncOptions {
  int max_staleness = 0;
  /// Arrivals per server step; <= 0 resolves to num_silos.
  int buffer_size = 0;
  /// Test hook: when non-empty, silo tasks "arrive" in exactly this order
  /// (each entry names the silo whose in-flight task completes next) and
  /// everything runs serially on the caller — a fixed arrival schedule
  /// makes an async run fully deterministic. Empty = real completion
  /// order on worker threads.
  std::vector<int> arrival_schedule;
  /// When set, the engine's aggregator binds to this session (fl/session.h):
  /// it adopts the session's round counter and cumulative stats at
  /// StartAsync and mirrors them back after every flush — StepAsync then
  /// resumes at session->round, which is how checkpoint-resume continues a
  /// run bitwise-identically. Not owned; must outlive async mode.
  SessionState* session = nullptr;
};

/// Async-mode settings carried by the shared FL hyper-parameter block.
AsyncOptions AsyncOptionsFrom(const FlConfig& config);

struct AsyncStats {
  /// Updates applied (after discounting), dropped for staleness, and
  /// server steps flushed.
  int64_t applied = 0;
  int64_t rejected = 0;
  int64_t steps = 0;
  /// Accepted offers later discarded because their silo was evicted
  /// before the flush (elastic membership only).
  int64_t dropped = 0;
  /// Largest accepted staleness.
  int max_staleness_seen = 0;
};

/// Staleness discount: an update computed `staleness` versions ago is
/// scaled by 1 / (1 + staleness) before aggregation (FedBuff-style
/// polynomial discounting). Exactly 1 at staleness 0.
double StalenessDiscount(int staleness);

/// The staleness-bounded buffered update rule, transport-agnostic: both
/// the in-process async engine and the net-layer async round server feed
/// arrivals into one of these. Not thread-safe — callers serialize access.
class AsyncAggregator {
 public:
  AsyncAggregator(int num_silos, int max_staleness, int buffer_size);

  /// Server version = flushed steps so far.
  int version() const { return version_; }
  int buffer_size() const { return buffer_size_; }
  int max_staleness() const { return max_staleness_; }
  int buffered() const { return static_cast<int>(entries_.size()); }

  /// Offers one silo update computed against version `pull_version`.
  /// Returns the staleness it was accepted at, or -1 when rejected for
  /// exceeding max_staleness (the caller re-dispatches the silo against
  /// the current model). Accepted deltas are discounted in place.
  int Offer(int silo, int pull_version, Vec delta);

  bool ReadyToFlush() const {
    return static_cast<int>(entries_.size()) >= buffer_size_;
  }

  /// Applies one server step: reduces the buffered (already discounted)
  /// deltas in (pull_version, silo) order — so the reduce is a pure
  /// function of the buffer contents, never of arrival order — and
  /// advances the version. With max_staleness = 0 and buffer = num_silos
  /// the entry order is exactly silo order and the reduce is bitwise
  /// identical to the synchronous engine's AggregateDeltas call.
  Vec Flush(bool secure, uint64_t round_tag, ThreadPool* pool);

  const AsyncStats& stats() const { return stats_; }

  /// Binds this aggregator to a session (fl/session.h): the version and
  /// cumulative stats are ADOPTED from the session now (resume), and
  /// mirrored back after every Flush/DropSilo. Pass nullptr to unbind.
  /// Unbound aggregators behave exactly as before.
  void BindSession(SessionState* session);

  /// Discards any buffered entries from `silo` (eviction/leave): they
  /// count as `dropped`, not un-applied — `applied` keeps meaning
  /// "offers accepted".
  void DropSilo(int silo);

  /// Elastic membership shrinks/grows the flush threshold with the active
  /// population; clamped to [1, num_silos].
  void SetBufferSize(int buffer_size);

 private:
  /// Mirrors version + stats into the bound session (no-op unbound).
  void SyncSession();

  struct Entry {
    int pull_version;
    int silo;
    Vec delta;
  };
  int num_silos_;
  int max_staleness_;
  int buffer_size_;
  int version_ = 0;
  std::vector<Entry> entries_;
  /// Authoritative counters (serialized into sessions). The registry
  /// metrics below mirror them so one snapshot reports async health next
  /// to every other subsystem; stats() stays the exact per-aggregator
  /// read.
  AsyncStats stats_;
  SessionState* session_ = nullptr;
  obs::Counter applied_metric_{"fl.async.applied"};
  obs::Counter rejected_metric_{"fl.async.rejected"};
  obs::Counter dropped_metric_{"fl.async.dropped"};
  obs::Counter steps_metric_{"fl.async.steps"};
  obs::Gauge max_staleness_metric_{"fl.async.max_staleness_seen",
                                   obs::Gauge::Agg::kMax};
};

/// Schedules per-silo round work across threads and reduces the results.
/// One engine instance per trainer; it owns a small pool of model clones
/// (one per concurrently running silo task — models carry scratch state,
/// so two in-flight tasks must not share one, but a silo task sets all
/// parameters before use, so clones are reusable across silos and rounds).
class RoundEngine {
 public:
  /// Per-silo local work for one round. `model`'s parameters are set to
  /// the round's global parameters before the call; the callback fills
  /// `delta` (preallocated to the global size, zeroed) with the silo's
  /// already-weighted, already-noised contribution. Runs concurrently
  /// across silos — touch only silo-local state and forked RNGs.
  using LocalWork = std::function<Status(int silo, Model& model, Vec& delta)>;

  /// Async local work for one pulled model version. `snapshot` holds the
  /// version-`version` global parameters; `model`'s parameters are set to
  /// the snapshot before the call; the callback fills `delta` (preallocated
  /// to the global size, zeroed) with the silo's clipped, weighted, noised
  /// contribution. All randomness must come from Rng::Fork(version, silo,
  /// user) substreams so a task's content depends only on (version, silo),
  /// never on scheduling.
  using AsyncLocalWork = std::function<Status(
      int version, int silo, const Vec& snapshot, Model& model, Vec& delta)>;

  RoundEngine(const Model& model, int num_silos, RoundEngineConfig config);
  ~RoundEngine();

  /// Runs `work` for every silo on the pool and returns the reduced total
  /// (plain or secure-aggregated sum over silos, keyed by `round`).
  Result<Vec> RunRound(int round, const Vec& global, const LocalWork& work);

  /// Runs `work` for every silo without the reduce step — for algorithms
  /// with a custom server-side reduce (e.g. Protocol 1's encrypted
  /// weighting). Deltas land in `silo_deltas` (resized to num_silos);
  /// pass nullptr when the algorithm stores its results elsewhere — the
  /// callback then receives an empty scratch Vec it may ignore.
  Status RunSilos(const Vec& global, const LocalWork& work,
                  std::vector<Vec>* silo_deltas);

  /// Shard-level local work: one deterministic slice of a silo's user
  /// sweep. `model`'s parameters are set to the round's global parameters
  /// before the call. Shards of one silo run concurrently with each other
  /// and with other silos' shards, so the callback must write only
  /// shard-local state (e.g. disjoint per-user output slots).
  using ShardWork = std::function<Status(int silo, int shard, Model& model)>;

  /// Runs `work` for every (silo, shard) pair — `silo_shard_counts[s]`
  /// shards for silo s, all >= 1 — as independent pool tasks, so one
  /// dominant silo's user sweep no longer owns the round's critical path.
  /// No reduce step: results must be stored by the callback. Bitwise
  /// determinism is the caller's contract — per-shard randomness must come
  /// from Rng::Fork substreams keyed by (round, silo, user), never from
  /// shard-count-dependent state. Grows the model-clone pool up to the
  /// thread count on first use (sharding exists precisely for
  /// silos < threads, where the per-silo clone bound would serialize it).
  Status RunSiloShards(const Vec& global,
                       const std::vector<int>& silo_shard_counts,
                       const ShardWork& work);

  // -- Asynchronous staleness-bounded rounds --------------------------------
  //
  // StartAsync installs the per-silo work callback and (unless an arrival
  // schedule is injected) spins up min(num_silos, num_threads) worker
  // threads. Each StepAsync(r, global) call then performs exactly one
  // staleness-bounded server step: it publishes `global` as the version-r
  // snapshot, releases every idle silo to train against it, consumes
  // arrivals (applying the staleness rule) until the buffer flushes, and
  // returns the discounted silo-delta sum — the trainer applies its usual
  // server update and calls StepAsync(r + 1, ...) next. Stragglers keep
  // computing across steps; their updates land late with a discount (or
  // are rejected and retrained) instead of stalling every round.

  /// Enters async mode. `work` must stay valid until StopAsync()/dtor.
  Status StartAsync(AsyncLocalWork work, AsyncOptions options);
  /// One server step; `round` must equal the engine's current version.
  Result<Vec> StepAsync(int round, const Vec& global);
  /// Joins the async workers (idempotent; also run by the destructor).
  /// Owners whose work callback touches members declared after the engine
  /// must call this in their own destructor.
  void StopAsync();
  bool async_active() const { return async_ != nullptr; }
  /// Snapshot of the async counters (valid while async mode is active).
  AsyncStats async_stats() const;

  int num_silos() const { return num_silos_; }
  int num_threads() const { return pool_->num_threads(); }
  ThreadPool& pool() { return *pool_; }

 private:
  struct AsyncState;

  /// Checks a model clone out of the free list, blocking until one is
  /// available (stolen work can briefly oversubscribe the pool).
  Model* AcquireModel();
  void ReleaseModel(Model* model);
  /// Grows the clone pool to `n` clones (from the pristine prototype —
  /// checked-out clones may be mutating concurrently).
  void EnsureClones(int n);

  void AsyncWorkerLoop();
  /// Serial-mode step: consumes injected arrival-schedule events.
  Result<Vec> StepAsyncScheduled(int round);
  /// Threaded-mode step: waits on real worker arrivals.
  Result<Vec> StepAsyncThreaded(int round);

  int num_silos_;
  RoundEngineConfig config_;
  PoolHandle pool_;
  /// Never checked out or mutated: the EnsureClones template.
  std::unique_ptr<Model> prototype_;
  std::vector<std::unique_ptr<Model>> model_clones_;
  std::vector<Model*> free_models_;
  std::mutex model_mu_;
  std::condition_variable model_cv_;
  std::unique_ptr<AsyncState> async_;
};

}  // namespace uldp

#endif  // ULDP_FL_ROUND_ENGINE_H_
