// Unified parallel round engine. Every FL algorithm in this codebase is a
// cross-silo round: silos compute local contributions independently, and
// the server reduces them. The engine owns that structure once — a silo-
// actor scheduler on a work-stealing pool plus the deterministic reduce —
// so trainers only register their per-silo LocalWork callback.
//
// Determinism contract: the engine never hands callbacks a shared RNG.
// Algorithms draw all randomness from Rng::Fork(round, silo, user)
// substreams (pure functions of the seed and counters) and the engine
// reduces silo outputs in silo order, so a run on N threads is bitwise
// identical to a serial run. Thread count is purely a performance knob
// (FlConfig::num_threads / ULDP_THREADS).

#ifndef ULDP_FL_ROUND_ENGINE_H_
#define ULDP_FL_ROUND_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "nn/model.h"

namespace uldp {

struct FlConfig;

struct RoundEngineConfig {
  /// <= 0 resolves via ThreadPool::DefaultThreadCount().
  int num_threads = 0;
  /// Route the silo-delta reduce through the secure-aggregation simulation
  /// (pairwise-masked fixed-point sums) instead of a plain sum.
  bool secure_aggregation = false;
};

/// Engine settings carried by the shared FL hyper-parameter block.
RoundEngineConfig EngineConfigFrom(const FlConfig& config);

/// Schedules per-silo round work across threads and reduces the results.
/// One engine instance per trainer; it owns a small pool of model clones
/// (one per concurrently running silo task — models carry scratch state,
/// so two in-flight tasks must not share one, but a silo task sets all
/// parameters before use, so clones are reusable across silos and rounds).
class RoundEngine {
 public:
  /// Per-silo local work for one round. `model`'s parameters are set to
  /// the round's global parameters before the call; the callback fills
  /// `delta` (preallocated to the global size, zeroed) with the silo's
  /// already-weighted, already-noised contribution. Runs concurrently
  /// across silos — touch only silo-local state and forked RNGs.
  using LocalWork = std::function<Status(int silo, Model& model, Vec& delta)>;

  RoundEngine(const Model& model, int num_silos, RoundEngineConfig config);

  /// Runs `work` for every silo on the pool and returns the reduced total
  /// (plain or secure-aggregated sum over silos, keyed by `round`).
  Result<Vec> RunRound(int round, const Vec& global, const LocalWork& work);

  /// Runs `work` for every silo without the reduce step — for algorithms
  /// with a custom server-side reduce (e.g. Protocol 1's encrypted
  /// weighting). Deltas land in `silo_deltas` (resized to num_silos);
  /// pass nullptr when the algorithm stores its results elsewhere — the
  /// callback then receives an empty scratch Vec it may ignore.
  Status RunSilos(const Vec& global, const LocalWork& work,
                  std::vector<Vec>* silo_deltas);

  int num_silos() const { return num_silos_; }
  int num_threads() const { return pool_->num_threads(); }
  ThreadPool& pool() { return *pool_; }

 private:
  /// Checks a model clone out of the free list, blocking until one is
  /// available (stolen work can briefly oversubscribe the pool).
  Model* AcquireModel();
  void ReleaseModel(Model* model);

  int num_silos_;
  RoundEngineConfig config_;
  PoolHandle pool_;
  std::vector<std::unique_ptr<Model>> model_clones_;
  std::vector<Model*> free_models_;
  std::mutex model_mu_;
  std::condition_variable model_cv_;
};

}  // namespace uldp

#endif  // ULDP_FL_ROUND_ENGINE_H_
