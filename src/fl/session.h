// Explicit serializable session state: the single owned home for the
// server-side training state that used to live scattered across
// RoundEngine/AsyncAggregator (src/fl), AsyncRoundServer (src/net), and
// ProtocolServer (src/net/protocol_node) — the global model, the
// round/version counter, the silo membership table with per-silo user
// counts, the membership-epoch log feeding reweighting + DP accounting,
// and the aggregation counters.
//
// SessionState is a plain value type. The engines BIND to one (see
// AsyncOptions::session, AsyncRoundServer) and mirror their progress into
// it, so Checkpoint = Serialize(state) and Restore = Deserialize + rebind:
// a resumed run continues bitwise-identically to the uninterrupted run on
// the same seed, because every trainer derives its randomness from
// Rng::Fork(round, silo, ...) counters that the state carries.
//
// Serialized layout (versioned, digest-checked; WireWriter canonical
// encoding):
//
//   payload:
//     "ULSS" magic (4 bytes)         format version (u16, currently 1)
//     seed (u64)  dim (u32)  round (u64)  membership_epoch (u64)
//     model (f64 vec)
//     member count (u32) + members   epoch count (u32) + epoch records
//     stats (applied/rejected/dropped/steps u64, max_staleness u32)
//   trailer:
//     FNV-1a digest of the payload bytes (u64)
//
// The digest is checked BEFORE any field is parsed, so a corrupted or
// truncated checkpoint is rejected with one clear error instead of a
// field-level parse failure deep inside. WriteFile is atomic
// (tmp + rename): a crash mid-checkpoint leaves the previous checkpoint
// intact.

#ifndef ULDP_FL_SESSION_H_
#define ULDP_FL_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace uldp {

/// Lifecycle of one silo inside a session.
///
///   kJoined --admit--> kActive --leave--> kLeft
///                         |
///                         +----evict----> kEvicted
///
/// kJoined: handshake accepted, waiting for the next flush boundary to be
/// admitted. kActive: participating; its updates are aggregated and its
/// users count toward the weighting population. kLeft/kEvicted: departed
/// (voluntarily / declared dead); buffered updates dropped, weight 0.
/// Serialized as one byte — values are wire-stable, append only.
enum class SiloStatus : uint8_t {
  kJoined = 0,
  kActive = 1,
  kLeft = 2,
  kEvicted = 3,
};

const char* SiloStatusName(SiloStatus status);

/// One row of the membership table.
struct SiloMember {
  uint32_t silo_id = 0;
  SiloStatus status = SiloStatus::kJoined;
  uint64_t join_round = 0;    // server version at admission
  uint64_t depart_round = 0;  // server version at leave/evict (else 0)
  uint64_t last_version = 0;  // most recent model version released to it
  /// Users this silo contributes to the weighting population. The
  /// fixed-membership paths never read it (they weight by 1/num_silos);
  /// elastic reweighting divides each epoch's budget over the user total
  /// of the silos actually present.
  uint32_t user_count = 1;
  /// Per-silo aggregation weight for the current membership epoch
  /// (recomputed by SealEpoch; 0 for departed silos).
  double weight = 0.0;

  bool operator==(const SiloMember& o) const;
};

/// One entry of the membership-epoch log: the population between two
/// membership changes. The DP accountant consumes this log — each epoch's
/// rounds are accounted against the users actually participating.
struct MembershipEpochRecord {
  uint64_t epoch = 0;
  uint64_t start_round = 0;
  uint32_t active_silos = 0;
  uint64_t user_total = 0;

  bool operator==(const MembershipEpochRecord& o) const;
};

/// Aggregation counters mirrored from AsyncAggregator / the round server
/// so a restored run reports cumulative totals, not post-resume ones.
struct SessionStats {
  int64_t applied = 0;
  int64_t rejected = 0;
  int64_t dropped = 0;  // accepted offers discarded by eviction
  int64_t steps = 0;
  int32_t max_staleness_seen = 0;

  bool operator==(const SessionStats& o) const;
};

/// The serializable session: everything a server needs to continue a run
/// after a process restart.
struct SessionState {
  uint64_t seed = 0;
  uint32_t dim = 0;
  /// Server model version == next round/step index to execute.
  uint64_t round = 0;
  uint64_t membership_epoch = 0;
  Vec model;
  std::vector<SiloMember> members;
  std::vector<MembershipEpochRecord> epochs;
  SessionStats stats;

  /// Membership-table row for `silo_id`, or nullptr.
  const SiloMember* Find(uint32_t silo_id) const;
  SiloMember* Find(uint32_t silo_id);
  /// Returns the row for `silo_id`, inserting a default one if absent.
  SiloMember& Upsert(uint32_t silo_id);

  int ActiveCount() const;
  uint64_t ActiveUserTotal() const;

  /// Recomputes per-silo weights for the current population (1/active for
  /// active silos, 0 otherwise), advances the epoch counter, and appends
  /// an epoch record starting at `start_round`. Call on every membership
  /// change that takes aggregation effect.
  const MembershipEpochRecord& SealEpoch(uint64_t start_round);

  /// Canonical digest-checked bytes (layout in the header comment).
  std::vector<uint8_t> Serialize() const;
  /// Strict inverse: rejects corrupted/truncated input (digest mismatch),
  /// unknown format versions, invalid enum values, a model whose size
  /// disagrees with `dim`, and trailing bytes.
  static Result<SessionState> Deserialize(const std::vector<uint8_t>& bytes);

  /// Atomic checkpoint to `path` (write `path`.tmp, rename over `path`).
  Status WriteFile(const std::string& path) const;
  /// NotFound when no checkpoint exists at `path`.
  static Result<SessionState> ReadFile(const std::string& path);

  bool operator==(const SessionState& o) const;
};

}  // namespace uldp

#endif  // ULDP_FL_SESSION_H_
