#include "fl/dp_sgd.h"

#include <algorithm>

#include "common/check.h"

namespace uldp {

Status RunDpSgd(Model& model, const std::vector<Example>& data,
                const DpSgdOptions& options, Rng& rng) {
  if (options.sample_rate <= 0.0 || options.sample_rate > 1.0) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  if (options.clip <= 0.0) {
    return Status::InvalidArgument("clip bound must be positive");
  }
  if (data.empty()) return Status::Ok();

  const double expected_lot = options.sample_rate * data.size();
  Vec params = model.GetParams();
  Vec noisy_grad(params.size());
  Vec per_example(params.size());
  std::vector<const Example*> one(1);

  for (int step = 0; step < options.steps; ++step) {
    std::fill(noisy_grad.begin(), noisy_grad.end(), 0.0);
    for (const Example& ex : data) {
      if (!rng.Bernoulli(options.sample_rate)) continue;
      std::fill(per_example.begin(), per_example.end(), 0.0);
      one[0] = &ex;
      model.LossAndGrad(one, &per_example);
      ClipToL2Ball(per_example, options.clip);
      Axpy(1.0, per_example, noisy_grad);
    }
    AddGaussianNoise(noisy_grad, options.sigma * options.clip, rng);
    Scale(1.0 / std::max(expected_lot, 1.0), noisy_grad);
    Axpy(-options.learning_rate, noisy_grad, params);
    model.SetParams(params);
  }
  return Status::Ok();
}

}  // namespace uldp
