#include "fl/round_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "fl/local_trainer.h"
#include "fl/session.h"
#include "obs/trace.h"

namespace uldp {

RoundEngineConfig EngineConfigFrom(const FlConfig& config) {
  RoundEngineConfig ec;
  ec.num_threads = config.num_threads;
  ec.secure_aggregation = config.secure_aggregation;
  return ec;
}

AsyncOptions AsyncOptionsFrom(const FlConfig& config) {
  AsyncOptions opt;
  opt.max_staleness = config.max_staleness;
  opt.buffer_size = config.async_buffer;
  return opt;
}

double StalenessDiscount(int staleness) {
  return staleness == 0 ? 1.0 : 1.0 / (1.0 + staleness);
}

// ---------------------------------------------------------------------------
// AsyncAggregator

AsyncAggregator::AsyncAggregator(int num_silos, int max_staleness,
                                 int buffer_size)
    : num_silos_(num_silos),
      max_staleness_(max_staleness),
      buffer_size_(buffer_size <= 0 ? num_silos : buffer_size) {
  ULDP_CHECK_GE(num_silos_, 1);
  ULDP_CHECK_GE(max_staleness_, 0);
  ULDP_CHECK_GE(buffer_size_, 1);
  ULDP_CHECK_LE(buffer_size_, num_silos_);
}

int AsyncAggregator::Offer(int silo, int pull_version, Vec delta) {
  ULDP_CHECK_GE(pull_version, 0);
  ULDP_CHECK_LE(pull_version, version_);
  const int staleness = version_ - pull_version;
  if (staleness > max_staleness_) {
    ++stats_.rejected;
    rejected_metric_.Add(1);
    return -1;
  }
  // Discount in place (skip the exact no-op multiply at staleness 0 so the
  // synchronous-equivalence argument never leans on 1.0 * x == x).
  if (staleness > 0) {
    const double alpha = StalenessDiscount(staleness);
    for (double& v : delta) v *= alpha;
  }
  entries_.push_back(Entry{pull_version, silo, std::move(delta)});
  ++stats_.applied;
  stats_.max_staleness_seen = std::max(stats_.max_staleness_seen, staleness);
  applied_metric_.Add(1);
  max_staleness_metric_.SetMax(staleness);
  return staleness;
}

void AsyncAggregator::BindSession(SessionState* session) {
  session_ = session;
  if (session_ == nullptr) return;
  // Adopt, then mirror: a restored session carries the interrupted run's
  // counters; a fresh session carries zeros (same as ours). The registry
  // mirrors adopt the restored totals too, so a resumed run's metrics
  // snapshot continues the interrupted run's counts.
  if (session_->stats.applied > stats_.applied) {
    applied_metric_.Add(
        static_cast<uint64_t>(session_->stats.applied - stats_.applied));
  }
  if (session_->stats.rejected > stats_.rejected) {
    rejected_metric_.Add(
        static_cast<uint64_t>(session_->stats.rejected - stats_.rejected));
  }
  if (session_->stats.dropped > stats_.dropped) {
    dropped_metric_.Add(
        static_cast<uint64_t>(session_->stats.dropped - stats_.dropped));
  }
  if (session_->stats.steps > stats_.steps) {
    steps_metric_.Add(
        static_cast<uint64_t>(session_->stats.steps - stats_.steps));
  }
  max_staleness_metric_.SetMax(session_->stats.max_staleness_seen);
  version_ = static_cast<int>(session_->round);
  stats_.applied = session_->stats.applied;
  stats_.rejected = session_->stats.rejected;
  stats_.dropped = session_->stats.dropped;
  stats_.steps = session_->stats.steps;
  stats_.max_staleness_seen = session_->stats.max_staleness_seen;
  SyncSession();
}

void AsyncAggregator::SyncSession() {
  if (session_ == nullptr) return;
  session_->round = static_cast<uint64_t>(version_);
  session_->stats.applied = stats_.applied;
  session_->stats.rejected = stats_.rejected;
  session_->stats.dropped = stats_.dropped;
  session_->stats.steps = stats_.steps;
  session_->stats.max_staleness_seen = stats_.max_staleness_seen;
}

void AsyncAggregator::DropSilo(int silo) {
  auto removed = std::remove_if(
      entries_.begin(), entries_.end(),
      [silo](const Entry& e) { return e.silo == silo; });
  stats_.dropped += entries_.end() - removed;
  dropped_metric_.Add(static_cast<uint64_t>(entries_.end() - removed));
  entries_.erase(removed, entries_.end());
  SyncSession();
}

void AsyncAggregator::SetBufferSize(int buffer_size) {
  buffer_size_ = std::max(1, std::min(buffer_size, num_silos_));
}

Vec AsyncAggregator::Flush(bool secure, uint64_t round_tag, ThreadPool* pool) {
  ULDP_CHECK(!entries_.empty());
  obs::TraceSpan span("engine.async_flush", "entries",
                      static_cast<int64_t>(entries_.size()));
  steps_metric_.Add(1);
  // Deterministic reduce order: a silo contributes at most once per pulled
  // version, so (pull_version, silo) is a unique key and the sorted order
  // is independent of arrival interleaving.
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.pull_version != b.pull_version
                         ? a.pull_version < b.pull_version
                         : a.silo < b.silo;
            });
  std::vector<Vec> deltas;
  deltas.reserve(entries_.size());
  for (Entry& e : entries_) deltas.push_back(std::move(e.delta));
  entries_.clear();
  ++version_;
  ++stats_.steps;
  // Offers since the last flush updated stats_ too, so one mirror per
  // step keeps the bound session exactly current at checkpoint time.
  SyncSession();
  return AggregateDeltas(deltas, secure, round_tag, pool);
}

// Async-mode shared state. `mu` guards everything below it; workers block
// on `ready_cv` for dispatchable silos, the stepping thread blocks on
// `arrivals_cv` for completed tasks.
struct RoundEngine::AsyncState {
  AsyncLocalWork work;
  AsyncOptions options;
  AsyncAggregator aggregator;
  bool secure = false;

  std::mutex mu;
  std::condition_variable ready_cv;
  std::condition_variable arrivals_cv;
  bool done = false;
  /// Version-`snapshot_version` global parameters, valid from the StepAsync
  /// call that published them until the next one.
  Vec snapshot;
  int snapshot_version = -1;
  /// Silos ready to pull the current snapshot, in release order.
  std::deque<int> ready;
  /// Silos whose last update was consumed and that wait for the next
  /// snapshot (all silos start here).
  std::vector<bool> waiting;
  struct Arrival {
    int silo;
    int pull_version;
    Vec delta;
    Status status;
  };
  std::deque<Arrival> arrivals;
  std::vector<std::thread> workers;
  // Injected-schedule mode only: next event index and per-silo task state.
  size_t schedule_pos = 0;
  std::vector<int> pull_version;   // per silo, valid while busy
  std::vector<Vec> pull_snapshot;  // per silo, valid while busy
  std::vector<bool> busy;

  AsyncState(int num_silos, const AsyncOptions& opt)
      : options(opt),
        aggregator(num_silos, opt.max_staleness, opt.buffer_size),
        waiting(num_silos, true),
        pull_version(num_silos, -1),
        pull_snapshot(num_silos),
        busy(num_silos, false) {}
};

RoundEngine::RoundEngine(const Model& model, int num_silos,
                         RoundEngineConfig config)
    : num_silos_(num_silos),
      config_(config),
      pool_(config.num_threads),
      prototype_(model.Clone()) {
  ULDP_CHECK_GE(num_silos_, 1);
  // At most min(silos, threads) silo tasks run concurrently, so that many
  // clones suffice — memory stays bounded by parallelism, not silo count.
  // (RunSiloShards grows the pool to the thread count on first use.)
  const int clones = std::min(num_silos_, pool_->num_threads());
  model_clones_.reserve(clones);
  for (int i = 0; i < clones; ++i) {
    model_clones_.push_back(model.Clone());
    free_models_.push_back(model_clones_.back().get());
  }
}

RoundEngine::~RoundEngine() { StopAsync(); }

Model* RoundEngine::AcquireModel() {
  std::unique_lock<std::mutex> lock(model_mu_);
  model_cv_.wait(lock, [this] { return !free_models_.empty(); });
  Model* model = free_models_.back();
  free_models_.pop_back();
  return model;
}

void RoundEngine::ReleaseModel(Model* model) {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    free_models_.push_back(model);
  }
  model_cv_.notify_one();
}

void RoundEngine::EnsureClones(int n) {
  std::lock_guard<std::mutex> lock(model_mu_);
  while (static_cast<int>(model_clones_.size()) < n) {
    model_clones_.push_back(prototype_->Clone());
    free_models_.push_back(model_clones_.back().get());
  }
}

Status RoundEngine::RunSilos(const Vec& global, const LocalWork& work,
                             std::vector<Vec>* silo_deltas) {
  ULDP_CHECK_EQ(global.size(), model_clones_[0]->NumParams());
  std::vector<Vec> scratch(silo_deltas == nullptr ? num_silos_ : 0);
  if (silo_deltas != nullptr) silo_deltas->assign(num_silos_, Vec());
  std::vector<Status> statuses(num_silos_, Status::Ok());
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    obs::TraceSpan span("engine.silo_task", "silo",
                        static_cast<int64_t>(s));
    Model* model = AcquireModel();
    model->SetParams(global);
    Vec& delta = silo_deltas != nullptr ? (*silo_deltas)[s] : scratch[s];
    if (silo_deltas != nullptr) delta.assign(global.size(), 0.0);
    statuses[s] = work(static_cast<int>(s), *model, delta);
    ReleaseModel(model);
  });
  return FirstError(statuses);
}

Status RoundEngine::RunSiloShards(const Vec& global,
                                  const std::vector<int>& silo_shard_counts,
                                  const ShardWork& work) {
  ULDP_CHECK_EQ(global.size(), prototype_->NumParams());
  ULDP_CHECK_EQ(silo_shard_counts.size(), static_cast<size_t>(num_silos_));
  // Flatten to (silo, shard) tasks, silo-major — a deterministic plan
  // independent of the thread count (which only schedules it).
  std::vector<std::pair<int, int>> tasks;
  for (int s = 0; s < num_silos_; ++s) {
    ULDP_CHECK_GE(silo_shard_counts[s], 1);
    for (int c = 0; c < silo_shard_counts[s]; ++c) tasks.emplace_back(s, c);
  }
  EnsureClones(std::min(static_cast<int>(tasks.size()),
                        pool_->num_threads()));
  std::vector<Status> statuses(tasks.size(), Status::Ok());
  pool_->ParallelFor(tasks.size(), [&](size_t t) {
    obs::TraceSpan span("engine.shard_task", "silo",
                        static_cast<int64_t>(tasks[t].first));
    Model* model = AcquireModel();
    model->SetParams(global);
    statuses[t] = work(tasks[t].first, tasks[t].second, *model);
    ReleaseModel(model);
  });
  return FirstError(statuses);
}

Result<Vec> RoundEngine::RunRound(int round, const Vec& global,
                                  const LocalWork& work) {
  obs::TraceSpan span("engine.round", "round", round);
  std::vector<Vec> deltas;
  ULDP_RETURN_IF_ERROR(RunSilos(global, work, &deltas));
  // The engine's pool (sized by the num_threads knob) also drives mask
  // generation, so the knob bounds every thread this round spawns.
  return AggregateDeltas(deltas, config_.secure_aggregation,
                         static_cast<uint64_t>(round), &*pool_);
}

// ---------------------------------------------------------------------------
// Async mode

Status RoundEngine::StartAsync(AsyncLocalWork work, AsyncOptions options) {
  if (async_ != nullptr) {
    return Status::FailedPrecondition("async mode already started");
  }
  if (options.max_staleness < 0) {
    return Status::InvalidArgument("max_staleness must be >= 0");
  }
  const int k = options.buffer_size <= 0 ? num_silos_ : options.buffer_size;
  if (k < 1 || k > num_silos_) {
    return Status::InvalidArgument(
        "async_buffer must be in [1, num_silos]; got " + std::to_string(k));
  }
  for (int s : options.arrival_schedule) {
    if (s < 0 || s >= num_silos_) {
      return Status::InvalidArgument("arrival schedule names silo " +
                                     std::to_string(s) + " of " +
                                     std::to_string(num_silos_));
    }
  }
  async_ = std::make_unique<AsyncState>(num_silos_, options);
  async_->work = std::move(work);
  async_->secure = config_.secure_aggregation;
  // Binding adopts the session's round counter, so a resumed engine's
  // first StepAsync call must pass session->round, not 0.
  async_->aggregator.BindSession(options.session);
  if (options.arrival_schedule.empty()) {
    const int workers = std::min(num_silos_, pool_->num_threads());
    async_->workers.reserve(workers);
    for (int i = 0; i < workers; ++i) {
      async_->workers.emplace_back([this] { AsyncWorkerLoop(); });
    }
  }
  return Status::Ok();
}

void RoundEngine::StopAsync() {
  if (async_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(async_->mu);
    async_->done = true;
  }
  async_->ready_cv.notify_all();
  for (std::thread& t : async_->workers) t.join();
  async_->workers.clear();
}

AsyncStats RoundEngine::async_stats() const {
  ULDP_CHECK(async_ != nullptr);
  std::lock_guard<std::mutex> lock(async_->mu);
  return async_->aggregator.stats();
}

void RoundEngine::AsyncWorkerLoop() {
  AsyncState& st = *async_;
  std::unique_lock<std::mutex> lock(st.mu);
  for (;;) {
    st.ready_cv.wait(lock, [&] { return st.done || !st.ready.empty(); });
    if (st.done) return;
    const int silo = st.ready.front();
    st.ready.pop_front();
    // Pull at pop time: the task binds to the latest published snapshot,
    // minimizing the staleness it will be charged on arrival.
    const int pull_version = st.snapshot_version;
    Vec snapshot = st.snapshot;
    lock.unlock();

    Model* model = AcquireModel();
    model->SetParams(snapshot);
    Vec delta(snapshot.size(), 0.0);
    Status status;
    {
      obs::TraceSpan span("engine.async_task", "silo", silo);
      status = st.work(pull_version, silo, snapshot, *model, delta);
    }
    ReleaseModel(model);

    lock.lock();
    st.arrivals.push_back(AsyncState::Arrival{silo, pull_version,
                                              std::move(delta),
                                              std::move(status)});
    st.arrivals_cv.notify_all();
  }
}

Result<Vec> RoundEngine::StepAsync(int round, const Vec& global) {
  obs::TraceSpan span("engine.async_step", "round", round);
  if (async_ == nullptr) {
    return Status::FailedPrecondition("StartAsync() has not run");
  }
  AsyncState& st = *async_;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (round != st.aggregator.version()) {
      return Status::FailedPrecondition(
          "StepAsync round " + std::to_string(round) +
          " does not match the engine version " +
          std::to_string(st.aggregator.version()));
    }
    ULDP_CHECK_EQ(global.size(), model_clones_[0]->NumParams());
    st.snapshot = global;
    st.snapshot_version = round;
  }
  return st.options.arrival_schedule.empty() ? StepAsyncThreaded(round)
                                             : StepAsyncScheduled(round);
}

Result<Vec> RoundEngine::StepAsyncThreaded(int round) {
  AsyncState& st = *async_;
  std::unique_lock<std::mutex> lock(st.mu);
  // Release every silo that was waiting for this snapshot, in silo order.
  for (int s = 0; s < num_silos_; ++s) {
    if (!st.waiting[s]) continue;
    st.waiting[s] = false;
    st.ready.push_back(s);
  }
  st.ready_cv.notify_all();

  while (!st.aggregator.ReadyToFlush()) {
    st.arrivals_cv.wait(lock, [&] { return !st.arrivals.empty(); });
    AsyncState::Arrival arrival = std::move(st.arrivals.front());
    st.arrivals.pop_front();
    if (!arrival.status.ok()) return arrival.status;
    const int staleness = st.aggregator.Offer(
        arrival.silo, arrival.pull_version, std::move(arrival.delta));
    if (staleness < 0) {
      // Over the bound: discard and retrain against the current snapshot.
      st.ready.push_back(arrival.silo);
      st.ready_cv.notify_all();
    } else {
      st.waiting[arrival.silo] = true;
    }
  }
  // Flush outside the lock: the reduce (which may run masks on the pool)
  // must not block workers pulling the next snapshot. The entries and the
  // version advance atomically inside the aggregator call below, which is
  // only reached by this (single) stepping thread.
  AsyncAggregator& agg = st.aggregator;
  const bool secure = st.secure;
  lock.unlock();
  return agg.Flush(secure, static_cast<uint64_t>(round), &*pool_);
}

Result<Vec> RoundEngine::StepAsyncScheduled(int round) {
  AsyncState& st = *async_;
  // Serial deterministic mode: no locking — everything runs on the caller.
  for (int s = 0; s < num_silos_; ++s) {
    if (!st.waiting[s]) continue;
    st.waiting[s] = false;
    st.busy[s] = true;
    st.pull_version[s] = round;
    st.pull_snapshot[s] = st.snapshot;
  }
  while (!st.aggregator.ReadyToFlush()) {
    if (st.schedule_pos >= st.options.arrival_schedule.size()) {
      return Status::InvalidArgument(
          "arrival schedule exhausted before step " + std::to_string(round) +
          " flushed");
    }
    const int silo = st.options.arrival_schedule[st.schedule_pos++];
    if (!st.busy[silo]) {
      return Status::InvalidArgument(
          "arrival schedule names silo " + std::to_string(silo) +
          " which has no task in flight");
    }
    Model* model = AcquireModel();
    model->SetParams(st.pull_snapshot[silo]);
    Vec delta(st.pull_snapshot[silo].size(), 0.0);
    Status status = st.work(st.pull_version[silo], silo,
                            st.pull_snapshot[silo], *model, delta);
    ReleaseModel(model);
    if (!status.ok()) return status;
    st.busy[silo] = false;
    const int staleness =
        st.aggregator.Offer(silo, st.pull_version[silo], std::move(delta));
    if (staleness < 0) {
      // Retrain immediately against the current snapshot.
      st.busy[silo] = true;
      st.pull_version[silo] = st.aggregator.version();
      st.pull_snapshot[silo] = st.snapshot;
    } else {
      st.waiting[silo] = true;
    }
  }
  return st.aggregator.Flush(st.secure, static_cast<uint64_t>(round),
                             &*pool_);
}

}  // namespace uldp
