#include "fl/round_engine.h"

#include <algorithm>

#include "common/check.h"
#include "fl/local_trainer.h"

namespace uldp {

RoundEngineConfig EngineConfigFrom(const FlConfig& config) {
  RoundEngineConfig ec;
  ec.num_threads = config.num_threads;
  ec.secure_aggregation = config.secure_aggregation;
  return ec;
}

RoundEngine::RoundEngine(const Model& model, int num_silos,
                         RoundEngineConfig config)
    : num_silos_(num_silos), config_(config), pool_(config.num_threads) {
  ULDP_CHECK_GE(num_silos_, 1);
  // At most min(silos, threads) silo tasks run concurrently, so that many
  // clones suffice — memory stays bounded by parallelism, not silo count.
  const int clones = std::min(num_silos_, pool_->num_threads());
  model_clones_.reserve(clones);
  for (int i = 0; i < clones; ++i) {
    model_clones_.push_back(model.Clone());
    free_models_.push_back(model_clones_.back().get());
  }
}

Model* RoundEngine::AcquireModel() {
  std::unique_lock<std::mutex> lock(model_mu_);
  model_cv_.wait(lock, [this] { return !free_models_.empty(); });
  Model* model = free_models_.back();
  free_models_.pop_back();
  return model;
}

void RoundEngine::ReleaseModel(Model* model) {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    free_models_.push_back(model);
  }
  model_cv_.notify_one();
}

Status RoundEngine::RunSilos(const Vec& global, const LocalWork& work,
                             std::vector<Vec>* silo_deltas) {
  ULDP_CHECK_EQ(global.size(), model_clones_[0]->NumParams());
  std::vector<Vec> scratch(silo_deltas == nullptr ? num_silos_ : 0);
  if (silo_deltas != nullptr) silo_deltas->assign(num_silos_, Vec());
  std::vector<Status> statuses(num_silos_, Status::Ok());
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    Model* model = AcquireModel();
    model->SetParams(global);
    Vec& delta = silo_deltas != nullptr ? (*silo_deltas)[s] : scratch[s];
    if (silo_deltas != nullptr) delta.assign(global.size(), 0.0);
    statuses[s] = work(static_cast<int>(s), *model, delta);
    ReleaseModel(model);
  });
  return FirstError(statuses);
}

Result<Vec> RoundEngine::RunRound(int round, const Vec& global,
                                  const LocalWork& work) {
  std::vector<Vec> deltas;
  ULDP_RETURN_IF_ERROR(RunSilos(global, work, &deltas));
  // The engine's pool (sized by the num_threads knob) also drives mask
  // generation, so the knob bounds every thread this round spawns.
  return AggregateDeltas(deltas, config_.secure_aggregation,
                         static_cast<uint64_t>(round), &*pool_);
}

}  // namespace uldp
