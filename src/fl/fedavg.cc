#include "fl/fedavg.h"

#include <limits>

#include "common/check.h"

namespace uldp {

FedAvgTrainer::FedAvgTrainer(const FederatedDataset& data, const Model& model,
                             FlConfig config)
    : data_(data),
      config_(config),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)) {
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    silo_examples_[s] = data_.MakeExamples(data_.RecordsOfSilo(s));
  }
  if (config_.async_rounds) {
    Status started = engine_.StartAsync(
        [this](int version, int silo, const Vec& snapshot, Model& model,
               Vec& delta) {
          return LocalSiloWork(static_cast<uint64_t>(version), snapshot, silo,
                               model, delta);
        },
        AsyncOptionsFrom(config_));
    ULDP_CHECK_MSG(started.ok(), started.ToString());
  }
}

FedAvgTrainer::~FedAvgTrainer() { engine_.StopAsync(); }

Status FedAvgTrainer::LocalSiloWork(uint64_t version, const Vec& snapshot,
                                    int silo, Model& model, Vec& delta) {
  Rng local = rng_.Fork(version, static_cast<uint64_t>(silo));
  TrainLocalSgd(model, silo_examples_[silo], config_.local_epochs,
                config_.batch_size, config_.local_lr, local);
  delta = model.GetParams();
  Axpy(-1.0, snapshot, delta);  // delta = trained - global
  return Status::Ok();
}

Status FedAvgTrainer::RunRound(int round, Vec& global_params) {
  auto total =
      config_.async_rounds
          ? engine_.StepAsync(round, global_params)
          : engine_.RunRound(round, global_params,
                             [&](int s, Model& model, Vec& delta) {
                               return LocalSiloWork(
                                   static_cast<uint64_t>(round),
                                   global_params, s, model, delta);
                             });
  if (!total.ok()) return total.status();
  Axpy(config_.global_lr / data_.num_silos(), total.value(), global_params);
  return Status::Ok();
}

Result<double> FedAvgTrainer::EpsilonSpent(double) const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace uldp
