#include "fl/fedavg.h"

#include <limits>

#include "common/check.h"

namespace uldp {

FedAvgTrainer::FedAvgTrainer(const FederatedDataset& data, const Model& model,
                             FlConfig config)
    : data_(data),
      config_(config),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)) {
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    silo_examples_[s] = data_.MakeExamples(data_.RecordsOfSilo(s));
  }
}

Status FedAvgTrainer::RunRound(int round, Vec& global_params) {
  auto total = engine_.RunRound(
      round, global_params, [&](int s, Model& model, Vec& delta) {
        Rng local = rng_.Fork(static_cast<uint64_t>(round),
                              static_cast<uint64_t>(s));
        TrainLocalSgd(model, silo_examples_[s], config_.local_epochs,
                      config_.batch_size, config_.local_lr, local);
        delta = model.GetParams();
        Axpy(-1.0, global_params, delta);  // delta = trained - global
        return Status::Ok();
      });
  if (!total.ok()) return total.status();
  Axpy(config_.global_lr / data_.num_silos(), total.value(), global_params);
  return Status::Ok();
}

Result<double> FedAvgTrainer::EpsilonSpent(double) const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace uldp
