#include "fl/fedavg.h"

#include <limits>

#include "common/check.h"

namespace uldp {

FedAvgTrainer::FedAvgTrainer(const FederatedDataset& data, const Model& model,
                             FlConfig config)
    : data_(data),
      work_model_(model.Clone()),
      config_(config),
      rng_(config.seed) {
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    silo_examples_[s] = data_.MakeExamples(data_.RecordsOfSilo(s));
  }
}

Status FedAvgTrainer::RunRound(int round, Vec& global_params) {
  ULDP_CHECK_EQ(global_params.size(), work_model_->NumParams());
  std::vector<Vec> deltas;
  deltas.reserve(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    work_model_->SetParams(global_params);
    TrainLocalSgd(*work_model_, silo_examples_[s], config_.local_epochs,
                  config_.batch_size, config_.local_lr, rng_);
    Vec delta = work_model_->GetParams();
    Axpy(-1.0, global_params, delta);  // delta = trained - global
    deltas.push_back(std::move(delta));
  }
  Vec total = AggregateDeltas(deltas, config_.secure_aggregation,
                              static_cast<uint64_t>(round));
  Axpy(config_.global_lr / data_.num_silos(), total, global_params);
  return Status::Ok();
}

Result<double> FedAvgTrainer::EpsilonSpent(double) const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace uldp
