// DEFAULT baseline: non-private FedAVG with two-sided learning rates
// (Yang et al., ICLR'21 — the paper's non-private reference point in every
// figure).

#ifndef ULDP_FL_FEDAVG_H_
#define ULDP_FL_FEDAVG_H_

#include "fl/local_trainer.h"
#include "fl/round_engine.h"

namespace uldp {

class FedAvgTrainer final : public FlAlgorithm {
 public:
  /// `model` provides the architecture (cloned per silo for local work).
  FedAvgTrainer(const FederatedDataset& data, const Model& model,
                FlConfig config);
  ~FedAvgTrainer() override;

  Status RunRound(int round, Vec& global_params) override;
  Result<double> EpsilonSpent(double delta) const override;
  std::string name() const override { return "DEFAULT"; }

 private:
  /// Per-silo round work against `snapshot` (the version-`version` global
  /// parameters) — shared verbatim by the synchronous barrier path and the
  /// async staleness-bounded path, so the two are bitwise comparable.
  Status LocalSiloWork(uint64_t version, const Vec& snapshot, int silo,
                       Model& model, Vec& delta);

  const FederatedDataset& data_;
  FlConfig config_;
  Rng rng_;
  RoundEngine engine_;
  std::vector<std::vector<Example>> silo_examples_;
};

}  // namespace uldp

#endif  // ULDP_FL_FEDAVG_H_
