#include "crypto/hmac.h"

#include <cstring>

namespace uldp {

namespace {
constexpr size_t kBlockSize = 64;  // SHA-256 block
}  // namespace

Sha256Digest HmacSha256(const uint8_t* key, size_t key_len,
                        const uint8_t* data, size_t data_len) {
  // K' = key padded (or hashed, if longer than a block) to the block size.
  uint8_t k[kBlockSize] = {0};
  if (key_len > kBlockSize) {
    Sha256Digest kh = Sha256(key, key_len);
    std::memcpy(k, kh.data(), kh.size());
  } else if (key_len > 0) {
    std::memcpy(k, key, key_len);
  }

  // inner = H((K' ^ ipad) || data)
  std::vector<uint8_t> inner(kBlockSize + data_len);
  for (size_t i = 0; i < kBlockSize; ++i) inner[i] = k[i] ^ 0x36;
  if (data_len > 0) std::memcpy(inner.data() + kBlockSize, data, data_len);
  Sha256Digest inner_hash = Sha256(inner.data(), inner.size());

  // outer = H((K' ^ opad) || inner)
  uint8_t outer[kBlockSize + 32];
  for (size_t i = 0; i < kBlockSize; ++i) outer[i] = k[i] ^ 0x5c;
  std::memcpy(outer + kBlockSize, inner_hash.data(), inner_hash.size());
  return Sha256(outer, sizeof(outer));
}

Sha256Digest HmacSha256(const std::vector<uint8_t>& key,
                        const std::vector<uint8_t>& data) {
  return HmacSha256(key.data(), key.size(), data.data(), data.size());
}

bool DigestEquals(const Sha256Digest& a, const Sha256Digest& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace uldp
