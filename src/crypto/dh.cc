#include "crypto/dh.h"

#include <algorithm>

#include "common/check.h"
#include "math/fixed_base.h"
#include "math/montgomery.h"
#include "math/primes.h"

namespace uldp {

namespace {

// RFC 3526 section 3: 2048-bit MODP group (id 14).
constexpr const char* kModp2048Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

// RFC 3526 section 4: 3072-bit MODP group (id 15).
constexpr const char* kModp3072Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33"
    "A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7"
    "ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864"
    "D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2"
    "08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF";

DhGroup GroupFromHex(const char* hex) {
  auto p = BigInt::FromHex(hex);
  ULDP_CHECK_MSG(p.ok(), "bad built-in group constant");
  DhGroup group{std::move(p.value()), BigInt(2), nullptr, nullptr};
  group.EnsureMont();
  return group;
}

}  // namespace

const Montgomery& DhGroup::EnsureMont() {
  if (mont == nullptr) mont = std::make_shared<const Montgomery>(p);
  return *mont;
}

const FixedBaseTable& DhGroup::EnsureGeneratorTable() {
  if (g_table == nullptr) {
    // Exponents are drawn below p, so the table covers full-width values;
    // the uses hint assumes the heavy-reuse workloads this exists for
    // (per-slot OT exponentiations across all users of a round).
    g_table = std::make_shared<const FixedBaseTable>(
        EnsureMont(), g, p.BitLength(), /*expected_uses=*/4096);
  }
  return *g_table;
}

BigInt DhGroup::Exp(const BigInt& base, const BigInt& e) const {
  if (mont != nullptr) return mont->MontExp(base, e);
  return base.ModExp(e, p);
}

BigInt DhGroup::ExpG(const BigInt& e) const {
  if (g_table != nullptr) return g_table->Exp(e);
  return Exp(g, e);
}

DhGroup DhGroup::Rfc3526Modp2048() { return GroupFromHex(kModp2048Hex); }

DhGroup DhGroup::Rfc3526Modp3072() { return GroupFromHex(kModp3072Hex); }

DhGroup DhGroup::GenerateSafePrimeGroup(int bits, Rng& rng) {
  BigInt p = GenerateSafePrime(bits, rng);
  // For a safe prime p = 2q+1, any g with g^2 != 1 and g^q != 1 generates a
  // large subgroup; 2 generates the quadratic residues iff 2^q = 1.
  // Use 4 = 2^2, which is always a QR and has order q.
  DhGroup group{std::move(p), BigInt(4), nullptr, nullptr};
  group.EnsureMont();
  return group;
}

DhKeyPair GenerateDhKeyPair(const DhGroup& group, Rng& rng) {
  // Secret uniform in [2, p-2].
  BigInt secret =
      BigInt::RandomBelow(group.p - BigInt(3), rng) + BigInt(2);
  BigInt pub = group.ExpG(secret);
  return DhKeyPair{std::move(secret), std::move(pub)};
}

Result<BigInt> ComputeSharedSecret(const DhGroup& group,
                                   const BigInt& my_secret,
                                   const BigInt& their_public) {
  if (their_public <= BigInt(1) || their_public >= group.p - BigInt(1)) {
    return Status::InvalidArgument("peer DH public key out of range");
  }
  return group.Exp(their_public, my_secret);
}

std::string DeriveSharedSeedMaterial(const BigInt& shared_secret,
                                     const std::string& label, int party_a,
                                     int party_b) {
  int lo = std::min(party_a, party_b);
  int hi = std::max(party_a, party_b);
  return "uldp-fl/v1|" + label + "|" + std::to_string(lo) + "|" +
         std::to_string(hi) + "|" + shared_secret.ToHex();
}

}  // namespace uldp
