#include "crypto/paillier_ctx.h"

#include "common/check.h"

namespace uldp {

PaillierContext::PaillierContext(const PaillierPublicKey& pk)
    : pk_(pk), mont_n2_(pk.n_squared) {
  ULDP_CHECK_MSG(pk_.n_squared == pk_.n * pk_.n,
                 "public key n_squared inconsistent with n");
}

PaillierContext::PaillierContext(const PaillierPublicKey& pk,
                                 const PaillierSecretKey& sk)
    : PaillierContext(pk) {
  ULDP_CHECK_MSG(sk.p * sk.q == pk.n, "secret key factors do not match n");
  has_sk_ = true;
  p_ = sk.p;
  q_ = sk.q;
  p2_ = p_ * p_;
  q2_ = q_ * q_;
  p_minus_1_ = p_ - BigInt(1);
  q_minus_1_ = q_ - BigInt(1);
  mont_p2_ = std::make_unique<Montgomery>(p2_);
  mont_q2_ = std::make_unique<Montgomery>(q2_);
  // h_p = L_p((1+n)^(p-1) mod p^2)^{-1} mod p. With g = n + 1 and
  // n^2 = 0 mod p^2, (1+n)^(p-1) = 1 + (p-1)*n mod p^2, so the L_p value
  // is ((p-1)*n mod p^2) / p = (p-1)*q mod p — a unit of F_p.
  BigInt lp = (p_minus_1_ * pk_.n).Mod(p2_) / p_;
  auto hp = lp.ModInverse(p_);
  ULDP_CHECK_MSG(hp.ok(), "CRT precompute: L_p value not invertible");
  h_p_ = std::move(hp.value());
  BigInt lq = (q_minus_1_ * pk_.n).Mod(q2_) / q_;
  auto hq = lq.ModInverse(q_);
  ULDP_CHECK_MSG(hq.ok(), "CRT precompute: L_q value not invertible");
  h_q_ = std::move(hq.value());
  auto qinv = q_.ModInverse(p_);
  ULDP_CHECK_MSG(qinv.ok(), "CRT precompute: q not invertible mod p");
  q_inv_mod_p_ = std::move(qinv.value());
}

Status PaillierContext::CheckCiphertext(const BigInt& c) const {
  if (c.IsNegative() || c >= pk_.n_squared) {
    return Status::InvalidArgument("ciphertext out of range [0, n^2)");
  }
  return Status::Ok();
}

BigInt PaillierContext::ComputeRandomizer(Rng& rng) const {
  // Paillier::DrawUnit keeps the draw sequence identical to the static
  // Encrypt; only the exponentiation goes through the cached context.
  return mont_n2_.MontExp(Paillier::DrawUnit(pk_, rng), pk_.n);
}

std::vector<BigInt> PaillierContext::PrecomputeRandomizers(
    size_t count, const std::function<Rng(size_t)>& fork,
    ThreadPool& pool) const {
  std::vector<BigInt> out(count);
  pool.ParallelFor(count, [&](size_t i) {
    Rng rng = fork(i);
    out[i] = ComputeRandomizer(rng);
  });
  return out;
}

Result<BigInt> PaillierContext::EncryptWithRandomizer(
    const BigInt& m, const BigInt& r_n) const {
  if (m.IsNegative() || m >= pk_.n) {
    return Status::InvalidArgument(
        "Paillier plaintext must be in [0, n); map signed values with the "
        "fixed-point codec first");
  }
  // The only per-plaintext work: one modular multiply (shared composition
  // helper — a lone multiply gains nothing from the cached context).
  return Paillier::ComposeCiphertext(pk_, m, r_n);
}

Result<BigInt> PaillierContext::Encrypt(const BigInt& m, Rng& rng) const {
  if (m.IsNegative() || m >= pk_.n) {
    return Status::InvalidArgument(
        "Paillier plaintext must be in [0, n); map signed values with the "
        "fixed-point codec first");
  }
  return EncryptWithRandomizer(m, ComputeRandomizer(rng));
}

Result<std::vector<BigInt>> PaillierContext::EncryptBatch(
    const std::vector<BigInt>& ms, const std::function<Rng(size_t)>& fork,
    ThreadPool& pool) const {
  // Fail fast on range errors (limb comparisons) before spending an
  // n-bit exponentiation per item on randomizers.
  for (const BigInt& m : ms) {
    if (m.IsNegative() || m >= pk_.n) {
      return Status::InvalidArgument(
          "Paillier plaintext must be in [0, n); map signed values with the "
          "fixed-point codec first");
    }
  }
  std::vector<BigInt> randomizers = PrecomputeRandomizers(ms.size(), fork,
                                                          pool);
  std::vector<BigInt> out(ms.size());
  pool.ParallelFor(ms.size(), [&](size_t i) {
    out[i] = Paillier::ComposeCiphertext(pk_, ms[i], randomizers[i]);
  });
  return out;
}

Result<BigInt> PaillierContext::Decrypt(const BigInt& c) const {
  if (!has_sk_) {
    return Status::FailedPrecondition(
        "PaillierContext built without a secret key cannot decrypt");
  }
  ULDP_RETURN_IF_ERROR(CheckCiphertext(c));
  // gcd(c, n^2) = 1 iff gcd(c, n) = 1 (same prime support) — the half-size
  // gcd keeps the validity check off the critical path.
  if (BigInt::Gcd(c, pk_.n) != BigInt(1)) {
    return Status::InvalidArgument("ciphertext not in Z*_{n^2}");
  }
  // Write c = (1+n)^a * b^n mod n^2. Then c^(p-1) = 1 + a(p-1)n mod p^2
  // (the b-part has order dividing p-1 . p and vanishes), so
  //   m_p = L_p(c^(p-1) mod p^2) * h_p = a mod p,
  // and symmetrically m_q = a mod q. Garner recombination returns the
  // same a in [0, n) the classic L(c^lambda)*mu path produces.
  BigInt xp = mont_p2_->MontExp(c.Mod(p2_), p_minus_1_);
  BigInt mp = ((xp - BigInt(1)) / p_).ModMul(h_p_, p_);
  BigInt xq = mont_q2_->MontExp(c.Mod(q2_), q_minus_1_);
  BigInt mq = ((xq - BigInt(1)) / q_).ModMul(h_q_, q_);
  BigInt h = mp.ModSub(mq.Mod(p_), p_).ModMul(q_inv_mod_p_, p_);
  return mq + q_ * h;
}

BigInt PaillierContext::AddCiphertexts(const BigInt& c1,
                                       const BigInt& c2) const {
  // A lone modular multiply gains nothing from the cached context (plain
  // multiply + reduce beats a Montgomery round trip), so these delegate to
  // the static implementation — one copy of the code, one behavior.
  return Paillier::AddCiphertexts(pk_, c1, c2);
}

BigInt PaillierContext::AddPlaintext(const BigInt& c, const BigInt& k) const {
  return Paillier::AddPlaintext(pk_, c, k);
}

BigInt PaillierContext::MulPlaintext(const BigInt& c, const BigInt& k) const {
  // Match the cold path's base reduction (BigInt::ModExp reduces first) so
  // out-of-range ciphertexts behave identically on both paths; in-range
  // values — the hot path — pay only a limb comparison.
  if (c.IsNegative() || c >= pk_.n_squared) {
    return mont_n2_.MontExp(c.Mod(pk_.n_squared), k.Mod(pk_.n));
  }
  return mont_n2_.MontExp(c, k.Mod(pk_.n));
}

FixedBaseTable PaillierContext::MakeMulPlaintextTable(
    const BigInt& c, size_t expected_uses) const {
  // Same base reduction as MulPlaintext so out-of-range ciphertexts build
  // the table MontExp would have seen.
  if (c.IsNegative() || c >= pk_.n_squared) {
    return FixedBaseTable(mont_n2_, c.Mod(pk_.n_squared), pk_.n.BitLength(),
                          expected_uses);
  }
  return FixedBaseTable(mont_n2_, c, pk_.n.BitLength(), expected_uses);
}

BigInt PaillierContext::MulPlaintextWithTable(const FixedBaseTable& table,
                                              const BigInt& k) const {
  return table.Exp(k.Mod(pk_.n));
}

Result<BigInt> PaillierContext::Rerandomize(const BigInt& c, Rng& rng) const {
  auto zero = Encrypt(BigInt(0), rng);
  if (!zero.ok()) return zero.status();
  return AddCiphertexts(c, zero.value());
}

}  // namespace uldp
