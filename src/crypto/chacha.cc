#include "crypto/chacha.h"

#include <cstring>

#include "common/check.h"
#include "crypto/sha256.h"

namespace uldp {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

void ChaChaBlock(const std::array<uint32_t, 16>& in,
                 std::array<uint8_t, 64>& out) {
  std::array<uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = x[i] + in[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace

ChaChaRng::ChaChaRng(const Key& key, const Nonce& nonce) {
  // "expand 32-byte k" constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = uint32_t{key[4 * i]} | (uint32_t{key[4 * i + 1]} << 8) |
                    (uint32_t{key[4 * i + 2]} << 16) |
                    (uint32_t{key[4 * i + 3]} << 24);
  }
  state_[12] = 0;  // block counter
  for (int i = 0; i < 3; ++i) {
    state_[13 + i] = uint32_t{nonce[4 * i]} | (uint32_t{nonce[4 * i + 1]} << 8) |
                     (uint32_t{nonce[4 * i + 2]} << 16) |
                     (uint32_t{nonce[4 * i + 3]} << 24);
  }
}

ChaChaRng::Key ChaChaRng::DeriveKey(const std::string& material) {
  Sha256Digest digest = Sha256(material);
  Key key;
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

ChaChaRng::Nonce ChaChaRng::MakeNonce(uint64_t tag, uint32_t stream_id) {
  Nonce nonce;
  for (int i = 0; i < 8; ++i) nonce[i] = static_cast<uint8_t>(tag >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<uint8_t>(stream_id >> (8 * i));
  }
  return nonce;
}

void ChaChaRng::RefillBlock() {
  ChaChaBlock(state_, block_);
  state_[12] += 1;
  ULDP_CHECK_MSG(state_[12] != 0, "ChaCha20 block counter exhausted");
  offset_ = 0;
}

uint64_t ChaChaRng::NextUint64() {
  if (offset_ + 8 > block_.size()) RefillBlock();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(block_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

BigInt ChaChaRng::UniformBelow(const BigInt& modulus) {
  ULDP_CHECK(!modulus.IsZero() && !modulus.IsNegative());
  int bits = modulus.BitLength();
  size_t nlimbs = (bits + 63) / 64;
  int top_bits = bits - static_cast<int>(nlimbs - 1) * 64;
  uint64_t top_mask =
      top_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << top_bits) - 1;
  for (;;) {
    std::vector<uint64_t> limbs(nlimbs);
    for (auto& l : limbs) l = NextUint64();
    limbs.back() &= top_mask;
    BigInt candidate = BigInt::FromLimbs(std::move(limbs));
    if (candidate < modulus) return candidate;
  }
}

}  // namespace uldp
