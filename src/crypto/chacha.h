// ChaCha20 stream generator used as the PRF for deriving secure-aggregation
// masks and multiplicative blinds from Diffie-Hellman shared secrets
// (Protocol 1 steps 1.(c)-(e)).
//
// This is the plain RFC 8439 block function in counter mode; the "Rng"
// wrapper exposes the keystream as uniform integers and finite-field
// elements.

#ifndef ULDP_CRYPTO_CHACHA_H_
#define ULDP_CRYPTO_CHACHA_H_

#include <array>
#include <cstdint>
#include <string>

#include "math/bigint.h"

namespace uldp {

/// Deterministic cryptographic stream: ChaCha20 keyed by a 256-bit key and
/// a 96-bit nonce. Two parties holding the same (key, nonce) derive the
/// same stream — the property pairwise secure-aggregation masks rely on.
class ChaChaRng {
 public:
  using Key = std::array<uint8_t, 32>;
  using Nonce = std::array<uint8_t, 12>;

  ChaChaRng(const Key& key, const Nonce& nonce);

  /// Builds a key from an arbitrary string (hashed with SHA-256) — used to
  /// bind a DH shared secret plus a context label to a stream.
  static Key DeriveKey(const std::string& material);
  /// Builds a nonce from a round/tag pair so per-round streams differ.
  static Nonce MakeNonce(uint64_t tag, uint32_t stream_id = 0);

  /// Next 64 uniform bits of keystream.
  uint64_t NextUint64();

  /// Uniform element of [0, modulus) by rejection sampling.
  BigInt UniformBelow(const BigInt& modulus);

 private:
  void RefillBlock();

  std::array<uint32_t, 16> state_;
  std::array<uint8_t, 64> block_;
  size_t offset_ = 64;  // forces refill on first use
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_CHACHA_H_
