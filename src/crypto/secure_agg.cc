#include "crypto/secure_agg.h"

#include "common/check.h"
#include "common/parallel.h"

namespace uldp {

SecureAggregator::SecureAggregator(BigInt modulus, int num_parties)
    : modulus_(std::move(modulus)), num_parties_(num_parties) {
  ULDP_CHECK_GE(num_parties_, 2);
  ULDP_CHECK(modulus_ > BigInt(1));
}

std::vector<BigInt> SecureAggregator::MaskVector(
    int me, const std::vector<ChaChaRng::Key>& pairwise_keys, uint64_t tag,
    size_t dim, ThreadPool* pool) const {
  ULDP_CHECK_GE(me, 0);
  ULDP_CHECK_LT(me, num_parties_);
  ULDP_CHECK_EQ(static_cast<int>(pairwise_keys.size()), num_parties_);
  std::vector<BigInt> mask(dim, BigInt(0));
  if (pool != nullptr) {
    // Each peer's stream is one sequential ChaCha evaluation, so generation
    // parallelizes across peers; the combine afterwards walks peers in
    // index order, reproducing the serial accumulation op-for-op.
    std::vector<std::vector<BigInt>> streams(num_parties_);
    pool->ParallelFor(static_cast<size_t>(num_parties_), [&](size_t other) {
      if (static_cast<int>(other) == me) return;
      ChaChaRng stream(pairwise_keys[other], ChaChaRng::MakeNonce(tag));
      std::vector<BigInt> values(dim);
      for (size_t d = 0; d < dim; ++d) {
        values[d] = stream.UniformBelow(modulus_);
      }
      streams[other] = std::move(values);
    });
    for (int other = 0; other < num_parties_; ++other) {
      if (other == me) continue;
      const bool add = me < other;
      for (size_t d = 0; d < dim; ++d) {
        const BigInt& m = streams[other][d];
        mask[d] =
            add ? mask[d].ModAdd(m, modulus_) : mask[d].ModSub(m, modulus_);
      }
    }
    return mask;
  }
  for (int other = 0; other < num_parties_; ++other) {
    if (other == me) continue;
    // Both parties of the pair seed the identical stream; the smaller index
    // adds the mask, the larger subtracts, so the pair cancels in the sum.
    ChaChaRng stream(pairwise_keys[other], ChaChaRng::MakeNonce(tag));
    bool add = me < other;
    for (size_t d = 0; d < dim; ++d) {
      BigInt m = stream.UniformBelow(modulus_);
      mask[d] = add ? mask[d].ModAdd(m, modulus_) : mask[d].ModSub(m, modulus_);
    }
  }
  return mask;
}

void SecureAggregator::AddMasks(std::vector<BigInt>& values,
                                const std::vector<BigInt>& masks) const {
  ULDP_CHECK_EQ(values.size(), masks.size());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = values[i].ModAdd(masks[i], modulus_);
  }
}

std::vector<BigInt> SecureAggregator::SumVectors(
    const std::vector<std::vector<BigInt>>& vectors) const {
  ULDP_CHECK(!vectors.empty());
  size_t dim = vectors[0].size();
  std::vector<BigInt> out(dim, BigInt(0));
  for (const auto& v : vectors) {
    ULDP_CHECK_EQ(v.size(), dim);
    for (size_t i = 0; i < dim; ++i) out[i] = out[i].ModAdd(v[i], modulus_);
  }
  return out;
}

}  // namespace uldp
