#include "crypto/fixed_point.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

namespace {

// Sub-unit resolution used when dividing out C_LCM: the quotient is
// computed at 10^15 extra digits so the final double conversion keeps
// ~15 significant digits below one fixed-point unit.
const uint64_t kDecodeScale = 1000000000000000ull;  // 1e15

}  // namespace

FixedPointCodec::FixedPointCodec(BigInt modulus, double precision)
    : modulus_(std::move(modulus)), precision_(precision) {
  ULDP_CHECK(modulus_ > BigInt(3));
  ULDP_CHECK_GT(precision_, 0.0);
  half_modulus_ = modulus_ >> 1;
}

Result<BigInt> FixedPointCodec::Encode(double x) const {
  if (!std::isfinite(x)) {
    return Status::InvalidArgument("cannot encode non-finite value");
  }
  double scaled = x / precision_;
  // Guard well inside int64 so later multiplications by small integers in
  // protocol terms cannot silently wrap before reaching BigInt domain.
  if (std::fabs(scaled) >= 4.6e18) {
    return Status::OutOfRange("value too large for fixed-point range");
  }
  int64_t units = std::llround(scaled);
  BigInt v(units);
  // Ambiguity check: the signed value must survive centering, which maps
  // field elements into (-n/2, n/2]. Magnitudes above n/2 alias; for an
  // even modulus, -n/2 and +n/2 land on the same field element (Decode
  // returns it as +n/2), so exactly -n/2 is rejected as well.
  BigInt mag = v.Abs();
  if (mag > half_modulus_ ||
      (v.IsNegative() && modulus_.IsEven() && mag == half_modulus_)) {
    return Status::OutOfRange("encoded magnitude exceeds modulus/2");
  }
  return v.Mod(modulus_);
}

BigInt FixedPointCodec::Center(const BigInt& x) const {
  ULDP_CHECK(!x.IsNegative() && x < modulus_);
  if (x > half_modulus_) return x - modulus_;
  return x;
}

double FixedPointCodec::DecodePlain(const BigInt& x) const {
  return Center(x).ToDouble() * precision_;
}

double FixedPointCodec::Decode(const BigInt& x, const BigInt& c_lcm) const {
  ULDP_CHECK(c_lcm > BigInt(0));
  BigInt centered = Center(x);
  bool negative = centered.IsNegative();
  BigInt mag = centered.Abs();
  // q = round(mag * 1e15 / c_lcm); double(q) stays far below 2^1024 for all
  // admissible protocol values, unlike double(c_lcm) which may overflow.
  BigInt q = (mag * BigInt(kDecodeScale) + (c_lcm >> 1)) / c_lcm;
  double out = q.ToDouble() / static_cast<double>(kDecodeScale) * precision_;
  return negative ? -out : out;
}

}  // namespace uldp
