#include "crypto/fixed_point.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

namespace {

// Sub-unit resolution used when dividing out C_LCM: the quotient is
// computed at 10^15 extra digits so the final double conversion keeps
// ~15 significant digits below one fixed-point unit.
const uint64_t kDecodeScale = 1000000000000000ull;  // 1e15

// Shared with Encode: |x/P| must stay well inside int64 so later
// multiplications by small integers in protocol terms cannot silently
// wrap before reaching BigInt domain.
constexpr double kMaxUnits = 4.6e18;

}  // namespace

FixedPointCodec::FixedPointCodec(BigInt modulus, double precision)
    : modulus_(std::move(modulus)), precision_(precision) {
  ULDP_CHECK(modulus_ > BigInt(3));
  ULDP_CHECK_GT(precision_, 0.0);
  half_modulus_ = modulus_ >> 1;
}

Result<BigInt> FixedPointCodec::Encode(double x) const {
  if (!std::isfinite(x)) {
    return Status::InvalidArgument("cannot encode non-finite value");
  }
  double scaled = x / precision_;
  if (std::fabs(scaled) >= kMaxUnits) {
    return Status::OutOfRange("value too large for fixed-point range");
  }
  int64_t units = std::llround(scaled);
  BigInt v(units);
  // Ambiguity check: the signed value must survive centering, which maps
  // field elements into (-n/2, n/2]. Magnitudes above n/2 alias; for an
  // even modulus, -n/2 and +n/2 land on the same field element (Decode
  // returns it as +n/2), so exactly -n/2 is rejected as well.
  BigInt mag = v.Abs();
  if (mag > half_modulus_ ||
      (v.IsNegative() && modulus_.IsEven() && mag == half_modulus_)) {
    return Status::OutOfRange("encoded magnitude exceeds modulus/2");
  }
  return v.Mod(modulus_);
}

BigInt FixedPointCodec::Center(const BigInt& x) const {
  ULDP_CHECK(!x.IsNegative() && x < modulus_);
  if (x > half_modulus_) return x - modulus_;
  return x;
}

double FixedPointCodec::DecodePlain(const BigInt& x) const {
  return Center(x).ToDouble() * precision_;
}

double FixedPointCodec::Decode(const BigInt& x, const BigInt& c_lcm) const {
  return DecodeCentered(Center(x), c_lcm);
}

double FixedPointCodec::DecodeCentered(const BigInt& centered,
                                       const BigInt& c_lcm) const {
  ULDP_CHECK(c_lcm > BigInt(0));
  bool negative = centered.IsNegative();
  BigInt mag = centered.Abs();
  // q = round(mag * 1e15 / c_lcm); double(q) stays far below 2^1024 for all
  // admissible protocol values, unlike double(c_lcm) which may overflow.
  BigInt q = (mag * BigInt(kDecodeScale) + (c_lcm >> 1)) / c_lcm;
  double out = q.ToDouble() / static_cast<double>(kDecodeScale) * precision_;
  return negative ? -out : out;
}

Result<PackedCodec> PackedCodec::Create(const BigInt& modulus,
                                        double precision, int pack_slots,
                                        double pack_clip, const BigInt& c_lcm,
                                        int num_silos, int num_users) {
  if (pack_slots < 1 || pack_slots > 64) {
    return Status::InvalidArgument("pack_slots must be in [1, 64]");
  }
  if (!(precision > 0.0) || !(pack_clip > 0.0) || !std::isfinite(pack_clip)) {
    return Status::InvalidArgument(
        "pack_clip and precision must be positive and finite");
  }
  if (c_lcm <= BigInt(0) || num_silos < 1 || num_users < 1) {
    return Status::InvalidArgument("invalid packing aggregate bounds");
  }
  PackedCodec codec;
  codec.modulus_ = modulus;
  codec.half_modulus_ = modulus >> 1;
  codec.precision_ = precision;
  codec.pack_clip_ = pack_clip;
  if (pack_slots == 1) return codec;  // inactive

  const double units = std::ceil(pack_clip / precision);
  if (units >= kMaxUnits) {
    return Status::OutOfRange("pack_clip/precision exceeds fixed-point range");
  }
  codec.units_max_ = std::llround(units);
  // Worst-case per-slot aggregate magnitude: every one of num_users
  // weighted terms at full clip with weight factor n_su·C_LCM/N_u <= C_LCM,
  // plus num_silos noise terms each carrying C_LCM. Two guard bits on top
  // of that bound keep the signed digit strictly inside (-2^(B-1), 2^(B-1)).
  const BigInt bound = c_lcm * BigInt(codec.units_max_) *
                       BigInt(static_cast<int64_t>(num_users) + num_silos);
  codec.slot_bits_ = bound.BitLength() + 2;
  codec.slots_ = pack_slots;
  // The full packed aggregate Σ_j V_j·2^(jB) must survive centering in
  // (-n/2, n/2]: k·B significant bits plus sign headroom.
  if (codec.slot_bits_ * pack_slots + 2 > modulus.BitLength()) {
    return Status::FailedPrecondition(
        "pack_slots x slot width does not fit the modulus: " +
        std::to_string(pack_slots) + " slots x " +
        std::to_string(codec.slot_bits_) + " bits vs " +
        std::to_string(modulus.BitLength()) +
        "-bit key; lower pack_slots/pack_clip/n_max or use a larger key");
  }
  codec.slot_base_ = BigInt(1) << codec.slot_bits_;
  codec.slot_half_ = BigInt(1) << (codec.slot_bits_ - 1);
  return codec;
}

Result<BigInt> PackedCodec::EncodeGroup(const double* xs, size_t count) const {
  ULDP_CHECK(active());
  ULDP_CHECK(count >= 1 && count <= static_cast<size_t>(slots_));
  BigInt sum;
  for (size_t j = 0; j < count; ++j) {
    if (!std::isfinite(xs[j])) {
      return Status::InvalidArgument("cannot encode non-finite value");
    }
    const double scaled = xs[j] / precision_;
    if (std::fabs(scaled) >= kMaxUnits) {
      return Status::OutOfRange("value too large for fixed-point range");
    }
    const int64_t units = std::llround(scaled);
    // The carry guard was sized for |x| <= pack_clip; anything beyond it
    // could bleed into the neighboring slot, so it is a hard error here.
    if (units > units_max_ || units < -units_max_) {
      return Status::OutOfRange("weight magnitude exceeds pack_clip");
    }
    if (units != 0) sum += BigInt(units) << (static_cast<int>(j) * slot_bits_);
  }
  return sum.Mod(modulus_);
}

Status PackedCodec::DecodeGroup(const BigInt& x, const FixedPointCodec& codec,
                                const BigInt& c_lcm, size_t count,
                                double* out) const {
  ULDP_CHECK(active());
  if (count < 1 || count > static_cast<size_t>(slots_)) {
    return Status::InvalidArgument("packed group count out of range");
  }
  if (x.IsNegative() || x >= modulus_) {
    return Status::InvalidArgument("packed aggregate not reduced mod n");
  }
  // Center, then shift every slot by 2^(B-1) so the digits become plain
  // non-negative radix-2^B digits: s = t + Σ_j 2^(B-1)·2^(jB).
  BigInt s = x > half_modulus_ ? x - modulus_ : x;
  for (size_t j = 0; j < count; ++j) {
    s += slot_half_ << (static_cast<int>(j) * slot_bits_);
  }
  if (s.IsNegative()) {
    return Status::InvalidArgument(
        "packed aggregate underflows the slot layout");
  }
  for (size_t j = 0; j < count; ++j) {
    BigInt digit = s.Mod(slot_base_);
    out[j] = codec.DecodeCentered(digit - slot_half_, c_lcm);
    s = s >> slot_bits_;
  }
  if (!s.IsZero()) {
    return Status::InvalidArgument(
        "packed aggregate has a nonzero residue past the last slot "
        "(corrupt frame or slot overflow)");
  }
  return Status::Ok();
}

}  // namespace uldp
