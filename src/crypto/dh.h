// Finite-field Diffie-Hellman key agreement (Protocol 1 setup step 1.(a)-(b)):
// every pair of silos derives a shared secret via the server-relayed public
// keys, from which pairwise secure-aggregation masks are derived.
//
// Groups: the RFC 3526 MODP groups (2048- and 3072-bit) with generator 2,
// or a freshly generated safe-prime group for test-scale parameters.

#ifndef ULDP_CRYPTO_DH_H_
#define ULDP_CRYPTO_DH_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "math/bigint.h"

namespace uldp {

class FixedBaseTable;
class Montgomery;

/// A multiplicative group (Z/pZ)* with prime p and generator g.
struct DhGroup {
  BigInt p;
  BigInt g;
  /// Cached Montgomery context for p, shared by copies of the group so all
  /// exponentiations (key generation, shared secrets, every OT slot) reuse
  /// one set of REDC constants. The factory functions populate it; Exp()
  /// never mutates it, so a group is safe to share across threads once
  /// constructed.
  std::shared_ptr<const Montgomery> mont;

  /// Fixed-base power table for the generator g, shared like `mont`. Not
  /// built by the factories (the build only pays off under heavy generator
  /// reuse — OT runs one g^x per slot per user); call EnsureGeneratorTable
  /// once before such workloads. ExpG falls back to Exp(g, e) without it.
  std::shared_ptr<const FixedBaseTable> g_table;

  /// Builds the cached context if absent. Mutates the group: call from a
  /// single thread (e.g. right after hand-assembling a DhGroup{p, g})
  /// before sharing it.
  const Montgomery& EnsureMont();
  /// Builds the generator fixed-base table (and the Montgomery context it
  /// needs) if absent. Same single-threaded mutation rule as EnsureMont.
  const FixedBaseTable& EnsureGeneratorTable();
  /// base^e mod p — through the cached context when present, else the
  /// generic (rebuild-per-call) path.
  BigInt Exp(const BigInt& base, const BigInt& e) const;
  /// g^e mod p — through the generator fixed-base table when present
  /// (bitwise identical to Exp(g, e)), else Exp(g, e). Requires
  /// e.BitLength() <= p.BitLength() (all group exponents are drawn below
  /// p); wider exponents are a programmer error and CHECK-abort once the
  /// table exists.
  BigInt ExpG(const BigInt& e) const;

  /// RFC 3526 group 14: 2048-bit MODP, generator 2.
  static DhGroup Rfc3526Modp2048();
  /// RFC 3526 group 15: 3072-bit MODP, generator 2. The paper's 3072-bit
  /// security parameter.
  static DhGroup Rfc3526Modp3072();
  /// Generates a fresh safe-prime group of `bits` bits (slow for large
  /// sizes; intended for tests).
  static DhGroup GenerateSafePrimeGroup(int bits, Rng& rng);
};

struct DhKeyPair {
  BigInt secret_key;  // x, uniform in [2, p-2]
  BigInt public_key;  // g^x mod p
};

/// Samples a DH key pair in the group.
DhKeyPair GenerateDhKeyPair(const DhGroup& group, Rng& rng);

/// g^(xy) mod p from own secret and peer public key. Errors if the peer key
/// is outside (1, p-1) — small-subgroup sanity check.
Result<BigInt> ComputeSharedSecret(const DhGroup& group, const BigInt& my_secret,
                                   const BigInt& their_public);

/// Derives a fixed-size seed string from a shared secret and a context
/// label; feed into ChaChaRng::DeriveKey. Both sides must use the same
/// label. The party pair is encoded canonically (smaller id first).
std::string DeriveSharedSeedMaterial(const BigInt& shared_secret,
                                     const std::string& label, int party_a,
                                     int party_b);

}  // namespace uldp

#endif  // ULDP_CRYPTO_DH_H_
