// 1-out-of-P oblivious transfer (Bellare-Micali style over a DH group),
// used by the *private user-level sub-sampling* extension (§4.1): the
// server offers P ciphertext slots per user (one real Enc(B_inv), P-1
// dummies Enc(0)); the silo retrieves one slot without the server learning
// which, and without the silo learning the sampling outcome (the payload is
// Paillier-encrypted either way).
//
// Semi-honest security: receiver privacy is information-theoretic (the
// choice message is uniform); sender privacy reduces to CDH in the group.

#ifndef ULDP_CRYPTO_OBLIVIOUS_TRANSFER_H_
#define ULDP_CRYPTO_OBLIVIOUS_TRANSFER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "crypto/dh.h"
#include "math/bigint.h"

namespace uldp {

/// One 1-out-of-P OT execution. Message flow:
///   sender:   SenderInit()            -> publishes {C_0..C_{P-1}, A}
///   receiver: ReceiverChoose(sigma)   -> sends B
///   sender:   SenderEncrypt(messages) -> sends {E_0..E_{P-1}}
///   receiver: ReceiverDecrypt(E)      -> m_sigma
class ObliviousTransfer {
 public:
  struct SenderState {
    std::vector<BigInt> c;  // random group elements, one per slot (public)
    BigInt a;               // A = g^r (public)
    BigInt r;               // sender secret
  };

  struct ReceiverState {
    BigInt b;  // B = C_sigma * g^{-k} (sent to sender)
    BigInt k;  // receiver secret
    size_t sigma = 0;
  };

  ObliviousTransfer(DhGroup group, size_t num_slots);

  /// Sender side: samples per-slot group elements and the sender secret.
  SenderState SenderInit(Rng& rng) const;

  /// Samples one random element of the cyclic subgroup (one slot's C_i).
  /// Slot elements are independent, so callers batching across a pool can
  /// draw each from its own Rng::Fork substream and assemble the state
  /// with SenderInitWithSlots — SenderInit is exactly that, serially.
  BigInt SampleSlotElement(Rng& rng) const;

  /// Builds the sender state from pre-sampled slot elements (`slots` must
  /// have num_slots() entries); samples only the sender secret from `rng`.
  SenderState SenderInitWithSlots(std::vector<BigInt> slots, Rng& rng) const;

  /// Samples the sender secret r (uniform in [2, p-2], as
  /// SenderInitWithSlots draws it) without computing A — so the
  /// exponentiation A = g^r can join a flat parallel sweep.
  BigInt SampleSenderSecret(Rng& rng) const;

  /// A = g^r for a secret from SampleSenderSecret: the one exponentiation
  /// of sender initialization, exposed as a pure function so batched
  /// senders can run it inside a flat (user × slot) sweep.
  BigInt SenderElement(const BigInt& r) const;

  /// Assembles a sender state from independently computed parts (`a` must
  /// equal SenderElement(r); `slots` must have num_slots() entries).
  SenderState AssembleSender(std::vector<BigInt> slots, BigInt r,
                             BigInt a) const;

  /// Receiver side: commits to slot `sigma` (0-based). The message `b` is
  /// uniform in the group regardless of sigma, so the sender learns nothing.
  Result<ReceiverState> ReceiverChoose(const SenderState& sender_public,
                                       size_t sigma, Rng& rng) const;

  /// Receiver commitment from the chosen slot element alone — the unit of
  /// ReceiverChoose, for batched receivers that hold sender messages in a
  /// different layout than SenderState.
  Result<ReceiverState> ReceiverCommit(const BigInt& c_sigma, size_t sigma,
                                       Rng& rng) const;

  /// Sender side: encrypts every slot. messages[i] must all have equal
  /// length. Key for slot i is H((C_i / B)^r); only slot sigma's key is
  /// computable by the receiver.
  Result<std::vector<std::vector<uint8_t>>> SenderEncrypt(
      const SenderState& sender, const BigInt& receiver_b,
      const std::vector<std::vector<uint8_t>>& messages) const;

  /// Range-checks the receiver message B and returns B^{-1} mod p, the
  /// per-receiver value SenderEncryptSlot amortizes across slots.
  Result<BigInt> InvertReceiverMessage(const BigInt& receiver_b) const;

  /// Encrypts a single slot: the per-slot unit of SenderEncrypt, exposed so
  /// one receiver's slots can be encrypted concurrently (each slot costs a
  /// group exponentiation). `receiver_b_inv` comes from
  /// InvertReceiverMessage; slots of one sender state may run in any order.
  std::vector<uint8_t> SenderEncryptSlot(const SenderState& sender,
                                         const BigInt& receiver_b_inv,
                                         const std::vector<uint8_t>& message,
                                         size_t slot) const;

  /// Receiver side: recovers m_sigma from its slot.
  Result<std::vector<uint8_t>> ReceiverDecrypt(
      const ReceiverState& receiver, const SenderState& sender_public,
      const std::vector<std::vector<uint8_t>>& encrypted) const;

  /// K_sigma = A^k — the one exponentiation of ReceiverDecrypt, exposed so
  /// batched receivers can run it inside a flat parallel sweep.
  BigInt ReceiverKeyElement(const BigInt& sender_a, const BigInt& k) const;

  /// XOR-pads `data` with the stream derived from `key_element` — the
  /// symmetric-encryption half shared by SenderEncryptSlot (pad with K_i)
  /// and ReceiverDecrypt (un-pad with K_sigma).
  std::vector<uint8_t> ApplyPad(const BigInt& key_element,
                                std::vector<uint8_t> data) const;

  size_t num_slots() const { return num_slots_; }

 private:
  /// XOR pad of `len` bytes derived from a group element via SHA-256 in
  /// counter mode.
  std::vector<uint8_t> Pad(const BigInt& key_element, size_t len) const;

  DhGroup group_;
  size_t num_slots_;
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_OBLIVIOUS_TRANSFER_H_
