#include "crypto/paillier.h"

#include "common/check.h"
#include "common/parallel.h"
#include "math/primes.h"

namespace uldp {

Status Paillier::GenerateKeyPair(int modulus_bits, Rng& rng,
                                 PaillierPublicKey* public_key,
                                 PaillierSecretKey* secret_key,
                                 ThreadPool* pool) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier modulus must be >= 64 bits");
  }
  if (modulus_bits % 2 != 0) {
    return Status::InvalidArgument("Paillier modulus bits must be even");
  }
  int half = modulus_bits / 2;
  ThreadPool& search_pool = pool != nullptr ? *pool : ThreadPool::Global();
  // Salt drawn before the parallel region: distinct calls on the same rng
  // get distinct keys, while the substreams themselves stay pure functions
  // of (salt, attempt, side) — the pool's thread count cannot change them.
  const uint64_t salt = rng.NextUint64();
  for (uint64_t attempt = 0;; ++attempt) {
    BigInt pq[2];
    search_pool.ParallelFor(2, [&](size_t side) {
      // Stream id in Fork's reserved third slot, so prime-search streams
      // can never collide with the protocol's per-user streams.
      Rng prime_rng = rng.Fork(salt, 2 * attempt + side, kRngStreamKeygen);
      pq[side] = GeneratePrime(half, prime_rng);
    });
    BigInt p = std::move(pq[0]);
    BigInt q = std::move(pq[1]);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != modulus_bits) continue;
    // gcd(n, (p-1)(q-1)) == 1 holds automatically for same-size primes,
    // but verify defensively.
    BigInt p1 = p - BigInt(1);
    BigInt q1 = q - BigInt(1);
    if (BigInt::Gcd(n, p1 * q1) != BigInt(1)) continue;

    BigInt lambda = BigInt::Lcm(p1, q1);
    auto mu = lambda.ModInverse(n);
    if (!mu.ok()) continue;

    public_key->n = n;
    public_key->n_squared = n * n;
    public_key->modulus_bits = modulus_bits;
    secret_key->lambda = lambda;
    secret_key->mu = std::move(mu.value());
    secret_key->p = std::move(p);
    secret_key->q = std::move(q);
    return Status::Ok();
  }
}

BigInt Paillier::DrawUnit(const PaillierPublicKey& pk, Rng& rng) {
  BigInt r;
  do {
    r = BigInt::RandomBelow(pk.n, rng);
  } while (r.IsZero() || BigInt::Gcd(r, pk.n) != BigInt(1));
  return r;
}

BigInt Paillier::ComposeCiphertext(const PaillierPublicKey& pk,
                                   const BigInt& m, const BigInt& r_n) {
  BigInt g_m = (BigInt(1) + m * pk.n).Mod(pk.n_squared);
  return g_m.ModMul(r_n, pk.n_squared);
}

Result<BigInt> Paillier::Encrypt(const PaillierPublicKey& pk, const BigInt& m,
                                 Rng& rng) {
  if (m.IsNegative() || m >= pk.n) {
    return Status::InvalidArgument(
        "Paillier plaintext must be in [0, n); map signed values with the "
        "fixed-point codec first");
  }
  // (1 + m*n) * r^n mod n^2.
  BigInt r_n = DrawUnit(pk, rng).ModExp(pk.n, pk.n_squared);
  return ComposeCiphertext(pk, m, r_n);
}

Result<BigInt> Paillier::Decrypt(const PaillierPublicKey& pk,
                                 const PaillierSecretKey& sk, const BigInt& c) {
  if (c.IsNegative() || c >= pk.n_squared) {
    return Status::InvalidArgument("ciphertext out of range [0, n^2)");
  }
  if (BigInt::Gcd(c, pk.n_squared) != BigInt(1)) {
    return Status::InvalidArgument("ciphertext not in Z*_{n^2}");
  }
  // L(c^lambda mod n^2) * mu mod n, L(x) = (x - 1) / n.
  BigInt x = c.ModExp(sk.lambda, pk.n_squared);
  BigInt l = (x - BigInt(1)) / pk.n;
  return l.ModMul(sk.mu, pk.n);
}

BigInt Paillier::AddCiphertexts(const PaillierPublicKey& pk, const BigInt& c1,
                                const BigInt& c2) {
  return c1.ModMul(c2, pk.n_squared);
}

BigInt Paillier::AddPlaintext(const PaillierPublicKey& pk, const BigInt& c,
                              const BigInt& k) {
  // c * g^k = c * (1 + k*n) mod n^2.
  BigInt g_k = (BigInt(1) + k.Mod(pk.n) * pk.n).Mod(pk.n_squared);
  return c.ModMul(g_k, pk.n_squared);
}

BigInt Paillier::MulPlaintext(const PaillierPublicKey& pk, const BigInt& c,
                              const BigInt& k) {
  return c.ModExp(k.Mod(pk.n), pk.n_squared);
}

Result<BigInt> Paillier::Rerandomize(const PaillierPublicKey& pk,
                                     const BigInt& c, Rng& rng) {
  auto zero = Encrypt(pk, BigInt(0), rng);
  if (!zero.ok()) return zero.status();
  return AddCiphertexts(pk, c, zero.value());
}

}  // namespace uldp
