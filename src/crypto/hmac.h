// HMAC-SHA256 (RFC 2104 / FIPS 198-1) over the from-scratch SHA-256 in
// crypto/sha256.h. Used as the keyed finalizer over a transcript log's
// hash-chain head (net/transcript.h): the chain alone proves internal
// consistency, the HMAC additionally binds the chain to a key a forger
// who re-hashes a doctored log does not hold.

#ifndef ULDP_CRYPTO_HMAC_H_
#define ULDP_CRYPTO_HMAC_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace uldp {

/// One-shot HMAC-SHA256 of `data` under `key`. Keys longer than the
/// 64-byte SHA-256 block are hashed first, per the RFC; any key length
/// (including empty) is accepted.
Sha256Digest HmacSha256(const uint8_t* key, size_t key_len,
                        const uint8_t* data, size_t data_len);
Sha256Digest HmacSha256(const std::vector<uint8_t>& key,
                        const std::vector<uint8_t>& data);

/// Constant-time digest comparison, so a verifier cannot be timed to
/// recover how many leading MAC bytes a forgery got right.
bool DigestEquals(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace uldp

#endif  // ULDP_CRYPTO_HMAC_H_
