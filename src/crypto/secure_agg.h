// Pairwise additive-mask secure aggregation over a finite field F_n
// (Bonawitz et al., CCS'17, simplified to the cross-silo setting where all
// parties participate in every round, so no dropout recovery is needed —
// exactly the assumption in the paper §3.1).
//
// Party i adds +PRF(s_{ij}) for every j > i and -PRF(s_{ij}) for every
// j < i; summing all parties' masked values cancels every mask (Theorem 4's
// first step). Mask streams are ChaCha20 keyed by pairwise DH secrets.

#ifndef ULDP_CRYPTO_SECURE_AGG_H_
#define ULDP_CRYPTO_SECURE_AGG_H_

#include <vector>

#include "crypto/chacha.h"
#include "math/bigint.h"

namespace uldp {

class ThreadPool;

/// Secure aggregation context for a fixed party set and modulus.
class SecureAggregator {
 public:
  /// `modulus`: the field F_n (Paillier n for Protocol 1, or any public
  /// prime for standalone use). `num_parties` >= 2.
  SecureAggregator(BigInt modulus, int num_parties);

  /// Computes the length-`dim` mask vector of party `me` for round `tag`.
  /// `pairwise_keys[j]` is the ChaCha key shared between `me` and party j
  /// (entry for j == me is ignored). Both parties of a pair must have
  /// derived identical keys (see DeriveSharedSeedMaterial).
  /// With a `pool`, the per-peer PRF streams are generated concurrently
  /// (each peer's stream is an independent ChaCha evaluation) and combined
  /// in fixed peer order, so the result is bitwise identical to the serial
  /// path at any thread count.
  std::vector<BigInt> MaskVector(int me,
                                 const std::vector<ChaChaRng::Key>& pairwise_keys,
                                 uint64_t tag, size_t dim,
                                 ThreadPool* pool = nullptr) const;

  /// values[i] = (values[i] + masks[i]) mod n, in place.
  void AddMasks(std::vector<BigInt>& values,
                const std::vector<BigInt>& masks) const;

  /// Element-wise sum of all parties' vectors mod n (the server-side
  /// reduce; masks cancel if every party masked its vector).
  std::vector<BigInt> SumVectors(
      const std::vector<std::vector<BigInt>>& vectors) const;

  const BigInt& modulus() const { return modulus_; }
  int num_parties() const { return num_parties_; }

 private:
  BigInt modulus_;
  int num_parties_;
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_SECURE_AGG_H_
