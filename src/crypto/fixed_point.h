// Fixed-point encoding of real numbers into a finite field F_n
// (Algorithm 5, "Encode and Decode"). Negative values map to the upper
// half of the field; Decode centers them back.
//
// Decode additionally divides out the C_LCM factor that Protocol 1
// multiplies into every term so that the 1/N_u weights stay integral.
//
// PackedCodec layers a slot layout on top: k weights share one Paillier
// plaintext as signed radix-2^B digits, with B sized from the worst-case
// aggregate magnitude (C_LCM · clip/P units · (users + silos) terms) plus
// guard bits, so additive aggregation across every user and silo provably
// cannot carry across a slot boundary. Configurations where it could are
// rejected at Create() time.

#ifndef ULDP_CRYPTO_FIXED_POINT_H_
#define ULDP_CRYPTO_FIXED_POINT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "math/bigint.h"

namespace uldp {

class FixedPointCodec {
 public:
  /// `modulus`: the field size n. `precision`: the paper's P, e.g. 1e-10
  /// (one fixed-point unit corresponds to P in real space).
  FixedPointCodec(BigInt modulus, double precision);

  /// Encode(x, P, n): x/P rounded to integer, mapped into F_n.
  /// Errors if |x/P| does not fit a 63-bit integer or exceeds n/2 (value
  /// would be ambiguous under centering).
  Result<BigInt> Encode(double x) const;

  /// Decode for values carrying no C_LCM factor: center then scale by P.
  double DecodePlain(const BigInt& x) const;

  /// Decode(x, P, C_LCM, n): center into (-n/2, n/2], divide by c_lcm
  /// (rounded), then scale by P.
  double Decode(const BigInt& x, const BigInt& c_lcm) const;

  /// The arithmetic tail of Decode on an already-centered signed value:
  /// divide by c_lcm (rounded), scale by P. Shared with the packed path so
  /// packed and unpacked aggregates decode to bitwise-identical doubles.
  double DecodeCentered(const BigInt& centered, const BigInt& c_lcm) const;

  const BigInt& modulus() const { return modulus_; }
  double precision() const { return precision_; }

 private:
  /// Maps field element to signed representative in (-n/2, n/2].
  BigInt Center(const BigInt& x) const;

  BigInt modulus_;
  BigInt half_modulus_;
  double precision_;
};

/// Slot layout packing up to `slots` fixed-point weights into one field
/// element as signed radix-2^B digits. Homomorphic aggregation is mod-n
/// linear, so the final aggregate is congruent to Σ_j V_j · 2^(jB) with
/// V_j the per-slot signed aggregate; DecodeGroup recovers the digits
/// exactly as long as |V_j| stays inside the carry guard, which Create()
/// verifies against the worst admissible protocol inputs.
///
/// Default-constructed instances are inactive (slots() == 1, PackedDim is
/// the identity) so the codec can live by value in copied param structs.
class PackedCodec {
 public:
  PackedCodec() = default;

  /// Builds the layout for `pack_slots` slots of weights clipped to
  /// |x| <= pack_clip, aggregated across at most num_users weighted terms
  /// plus num_silos noise terms, each carrying a C_LCM factor. Fails with
  /// FailedPrecondition when slots · B cannot fit the modulus — the caller
  /// must shrink pack_slots, pack_clip, or n_max, or grow the key.
  /// pack_slots == 1 yields an inactive codec.
  static Result<PackedCodec> Create(const BigInt& modulus, double precision,
                                    int pack_slots, double pack_clip,
                                    const BigInt& c_lcm, int num_silos,
                                    int num_users);

  bool active() const { return slots_ > 1; }
  int slots() const { return slots_; }
  int slot_bits() const { return slot_bits_; }
  double pack_clip() const { return pack_clip_; }
  /// Ciphertexts needed for a model of `dim` coordinates: ceil(dim/slots).
  size_t PackedDim(size_t dim) const {
    return slots_ <= 1 ? dim
                       : (dim + static_cast<size_t>(slots_) - 1) /
                             static_cast<size_t>(slots_);
  }

  /// Σ_j units(xs[j]) · 2^(jB) mod n over `count` (1..slots) weights —
  /// the packed counterpart of FixedPointCodec::Encode, with units(x) the
  /// identical llround(x/P). Errors on non-finite input or |x| beyond the
  /// clip bound the carry guard was sized for.
  Result<BigInt> EncodeGroup(const double* xs, size_t count) const;

  /// Decodes an aggregate group plaintext: center into (-n/2, n/2],
  /// extract `count` signed radix-2^B digits, decode each through
  /// codec.DecodeCentered — bitwise identical to the unpacked Decode of
  /// the same per-coordinate aggregate. Errors when the residue past the
  /// last slot is nonzero (corrupt or overflowed aggregate).
  Status DecodeGroup(const BigInt& x, const FixedPointCodec& codec,
                     const BigInt& c_lcm, size_t count, double* out) const;

 private:
  BigInt modulus_;
  BigInt half_modulus_;
  double precision_ = 0.0;
  double pack_clip_ = 0.0;
  int64_t units_max_ = 0;  // ceil(pack_clip / precision)
  int slots_ = 1;
  int slot_bits_ = 0;  // B
  BigInt slot_base_;   // 2^B
  BigInt slot_half_;   // 2^(B-1)
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_FIXED_POINT_H_
