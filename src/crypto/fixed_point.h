// Fixed-point encoding of real numbers into a finite field F_n
// (Algorithm 5, "Encode and Decode"). Negative values map to the upper
// half of the field; Decode centers them back.
//
// Decode additionally divides out the C_LCM factor that Protocol 1
// multiplies into every term so that the 1/N_u weights stay integral.

#ifndef ULDP_CRYPTO_FIXED_POINT_H_
#define ULDP_CRYPTO_FIXED_POINT_H_

#include "common/status.h"
#include "math/bigint.h"

namespace uldp {

class FixedPointCodec {
 public:
  /// `modulus`: the field size n. `precision`: the paper's P, e.g. 1e-10
  /// (one fixed-point unit corresponds to P in real space).
  FixedPointCodec(BigInt modulus, double precision);

  /// Encode(x, P, n): x/P rounded to integer, mapped into F_n.
  /// Errors if |x/P| does not fit a 63-bit integer or exceeds n/2 (value
  /// would be ambiguous under centering).
  Result<BigInt> Encode(double x) const;

  /// Decode for values carrying no C_LCM factor: center then scale by P.
  double DecodePlain(const BigInt& x) const;

  /// Decode(x, P, C_LCM, n): center into (-n/2, n/2], divide by c_lcm
  /// (rounded), then scale by P.
  double Decode(const BigInt& x, const BigInt& c_lcm) const;

  const BigInt& modulus() const { return modulus_; }
  double precision() const { return precision_; }

 private:
  /// Maps field element to signed representative in (-n/2, n/2].
  BigInt Center(const BigInt& x) const;

  BigInt modulus_;
  BigInt half_modulus_;
  double precision_;
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_FIXED_POINT_H_
