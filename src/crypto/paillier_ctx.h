// Long-lived Paillier evaluation context — the crypto fast path behind
// Protocol 1. The static Paillier API rebuilds a Montgomery context (REDC
// constants, R^2 mod m) for every single modular exponentiation; at one
// encryption per (silo, user) plus one MulPlaintext and one decryption per
// model coordinate, that setup cost and the generic multiplication path
// dominate the protocol's wall clock. A PaillierContext instead:
//
//   * owns the Montgomery context for n^2 (and p^2/q^2 with the secret
//     key) for the lifetime of the key, so every exponentiation (Encrypt's
//     r^n, MulPlaintext, Rerandomize, CRT Decrypt) reuses it — lone
//     modular multiplies (AddCiphertexts / AddPlaintext) stay on the
//     plain multiply+reduce path, which is faster than a Montgomery
//     round trip for a single product;
//   * decrypts via the Chinese Remainder Theorem when the secret key is
//     present: c^(p-1) mod p^2 and c^(q-1) mod q^2 with half-size exponents
//     over half-size moduli, then Garner recombination — a ~4x asymptotic
//     win over the classic L(c^lambda mod n^2) path, bitwise-identical
//     output;
//   * separates encryption into a plaintext-independent randomizer
//     (r^n mod n^2) and a single modular multiply, so randomizers can be
//     precomputed in batch on a ThreadPool while preserving the engine's
//     bitwise thread-count-invariance (each item draws r from its own
//     Rng::Fork substream in the same order a sequential Encrypt would).
//
// All operations produce bitwise-identical results to the static Paillier
// shim given the same randomness stream.

#ifndef ULDP_CRYPTO_PAILLIER_CTX_H_
#define ULDP_CRYPTO_PAILLIER_CTX_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/paillier.h"
#include "math/bigint.h"
#include "math/fixed_base.h"
#include "math/montgomery.h"

namespace uldp {

class PaillierContext {
 public:
  /// Evaluation-only context (encrypt + homomorphic ops). Decrypt errors.
  explicit PaillierContext(const PaillierPublicKey& pk);
  /// Full context: adds CRT decryption from the stored p, q factors.
  PaillierContext(const PaillierPublicKey& pk, const PaillierSecretKey& sk);

  const PaillierPublicKey& public_key() const { return pk_; }
  bool has_secret_key() const { return has_sk_; }

  /// Encrypts m in [0, n). Draws r exactly as Paillier::Encrypt does, so
  /// the ciphertext is bitwise identical given the same rng substream.
  Result<BigInt> Encrypt(const BigInt& m, Rng& rng) const;

  /// CRT decryption of c in [0, n^2). Bitwise-identical to the classic
  /// Paillier::Decrypt for every ciphertext in Z*_{n^2}.
  Result<BigInt> Decrypt(const BigInt& c) const;

  BigInt AddCiphertexts(const BigInt& c1, const BigInt& c2) const;
  BigInt AddPlaintext(const BigInt& c, const BigInt& k) const;
  BigInt MulPlaintext(const BigInt& c, const BigInt& k) const;
  Result<BigInt> Rerandomize(const BigInt& c, Rng& rng) const;

  // -- Fixed-base MulPlaintext ----------------------------------------------
  // MulPlaintext is c^k mod n^2 with k < n. When one ciphertext is raised
  // to many scalars — the silo-weighting loop raises Enc(B_inv(N_u)) once
  // per model coordinate — a per-ciphertext fixed-base table removes every
  // squaring from those exponentiations (math/fixed_base.h).

  /// Precomputes the fixed-base table for ciphertext `c` over the cached
  /// n^2 context. `expected_uses` is the number of MulPlaintextWithTable
  /// calls the table will serve (sizes the window). The table is immutable
  /// and safe to share across threads; it must not outlive this context.
  FixedBaseTable MakeMulPlaintextTable(const BigInt& c,
                                       size_t expected_uses) const;

  /// c^k mod n^2 through `table` (built from c by MakeMulPlaintextTable).
  /// Bitwise identical to MulPlaintext(c, k).
  BigInt MulPlaintextWithTable(const FixedBaseTable& table,
                               const BigInt& k) const;

  // -- Randomizer pipeline --------------------------------------------------
  // r^n mod n^2 does not depend on the plaintext, so it can be produced
  // ahead of (or concurrently with) the rest of a round and consumed by a
  // one-multiply encryption.

  /// Draws r from `rng` exactly as Encrypt would (uniform unit of F_n,
  /// retry on non-units) and returns r^n mod n^2.
  BigInt ComputeRandomizer(Rng& rng) const;

  /// Batch-precomputes `count` randomizers on `pool`. `fork(i)` must return
  /// the independent Rng substream the i-th Encrypt would consume (it is
  /// called concurrently and must be a pure function of i). The output is
  /// bitwise independent of the pool's thread count.
  std::vector<BigInt> PrecomputeRandomizers(
      size_t count, const std::function<Rng(size_t)>& fork,
      ThreadPool& pool) const;

  /// Encryption hot path: (1 + m*n) * r_n mod n^2 — one modular multiply.
  /// `r_n` must come from ComputeRandomizer / PrecomputeRandomizers.
  Result<BigInt> EncryptWithRandomizer(const BigInt& m,
                                       const BigInt& r_n) const;

  /// Encrypts ms[i] under randomness fork(i) with the randomizer pipeline
  /// on `pool`. Bitwise equal to calling Encrypt(ms[i], fork(i)) serially,
  /// at any thread count.
  Result<std::vector<BigInt>> EncryptBatch(
      const std::vector<BigInt>& ms, const std::function<Rng(size_t)>& fork,
      ThreadPool& pool) const;

  /// Cached n^2 context, exposed for callers with bespoke exponentiations.
  const Montgomery& mont_n_squared() const { return mont_n2_; }

 private:
  Status CheckCiphertext(const BigInt& c) const;

  PaillierPublicKey pk_;
  Montgomery mont_n2_;

  // CRT decryption state (present iff constructed with the secret key).
  bool has_sk_ = false;
  BigInt p_, q_;
  BigInt p2_, q2_;                  // p^2, q^2
  BigInt p_minus_1_, q_minus_1_;    // half-size CRT exponents
  BigInt h_p_, h_q_;                // L_p((1+n)^(p-1) mod p^2)^{-1} mod p, ~q
  BigInt q_inv_mod_p_;              // Garner recombination constant
  std::unique_ptr<Montgomery> mont_p2_, mont_q2_;
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_PAILLIER_CTX_H_
