// Paillier additively homomorphic cryptosystem (Paillier, EUROCRYPT'99),
// implemented from scratch on the BigInt substrate. Used by the private
// weighting protocol (Protocol 1) so silos can weight their clipped model
// deltas by encrypted inverse histograms without learning them.
//
// We use the standard g = n + 1 simplification:
//   Enc(m; r) = (1 + m*n) * r^n  mod n^2
//   Dec(c)    = L(c^lambda mod n^2) * mu  mod n,  L(x) = (x-1)/n
// with lambda = lcm(p-1, q-1) and mu = lambda^{-1} mod n.

#ifndef ULDP_CRYPTO_PAILLIER_H_
#define ULDP_CRYPTO_PAILLIER_H_

#include "common/rng.h"
#include "common/status.h"
#include "math/bigint.h"

namespace uldp {

class ThreadPool;

/// Public key: modulus n (and cached n^2). Plaintexts live in F_n; signed
/// quantities are mapped into F_n by the fixed-point codec.
struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;
  int modulus_bits = 0;
};

/// Secret key. Holding it allows decryption of any ciphertext under the
/// matching public key — which is exactly why Protocol 1 layers secure
/// aggregation masks on top (the server holds SK).
struct PaillierSecretKey {
  BigInt lambda;  // lcm(p-1, q-1)
  BigInt mu;      // lambda^{-1} mod n
  BigInt p;
  BigInt q;
};

/// Static one-shot Paillier operations. These rebuild the modular-arithmetic
/// contexts on every call; hot paths (Protocol 1, the benches) should hold a
/// PaillierContext (crypto/paillier_ctx.h) instead, which produces
/// bitwise-identical results while caching the Montgomery state and
/// decrypting via CRT. This API is kept as the simple compatibility surface
/// and as the cold-path baseline the micro benchmarks compare against.
class Paillier {
 public:
  /// Generates a key pair with an `modulus_bits`-bit modulus n = p*q
  /// (p, q random primes of modulus_bits/2 bits each).
  /// modulus_bits >= 64; the paper's default security parameter is 3072.
  /// The two prime searches are independent and run concurrently on `pool`
  /// (the process-global pool when null); each search draws from its own
  /// deterministic Rng::Fork substream, so the generated key is a pure
  /// function of `rng`'s state regardless of the pool's thread count.
  static Status GenerateKeyPair(int modulus_bits, Rng& rng,
                                PaillierPublicKey* public_key,
                                PaillierSecretKey* secret_key,
                                ThreadPool* pool = nullptr);

  /// Encrypts plaintext m in [0, n). Randomness r drawn from rng.
  static Result<BigInt> Encrypt(const PaillierPublicKey& pk, const BigInt& m,
                                Rng& rng);

  /// Draws the encryption randomizer base: r uniform in [1, n) with
  /// gcd(r, n) = 1 (holds w.h.p.; retries otherwise). Shared by Encrypt
  /// and PaillierContext so both consume identical draw sequences — the
  /// bitwise fast/cold parity contract depends on this being the single
  /// implementation.
  static BigInt DrawUnit(const PaillierPublicKey& pk, Rng& rng);

  /// (1 + m*n) * r_n mod n^2 for a precomputed r_n = r^n mod n^2. The
  /// plaintext-dependent half of encryption, shared with PaillierContext.
  /// No range checks: m must be in [0, n).
  static BigInt ComposeCiphertext(const PaillierPublicKey& pk, const BigInt& m,
                                  const BigInt& r_n);

  /// Decrypts ciphertext c in [0, n^2) to the plaintext in [0, n).
  static Result<BigInt> Decrypt(const PaillierPublicKey& pk,
                                const PaillierSecretKey& sk, const BigInt& c);

  /// Homomorphic addition: Dec(AddCiphertexts(c1, c2)) = m1 + m2 mod n.
  static BigInt AddCiphertexts(const PaillierPublicKey& pk, const BigInt& c1,
                               const BigInt& c2);

  /// Homomorphic plaintext addition: Dec(out) = m + k mod n.
  static BigInt AddPlaintext(const PaillierPublicKey& pk, const BigInt& c,
                             const BigInt& k);

  /// Homomorphic scalar multiplication: Dec(out) = m * k mod n.
  static BigInt MulPlaintext(const PaillierPublicKey& pk, const BigInt& c,
                             const BigInt& k);

  /// Re-randomizes a ciphertext (multiplies by a fresh encryption of 0),
  /// making it unlinkable to the original.
  static Result<BigInt> Rerandomize(const PaillierPublicKey& pk,
                                    const BigInt& c, Rng& rng);
};

}  // namespace uldp

#endif  // ULDP_CRYPTO_PAILLIER_H_
