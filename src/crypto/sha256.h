// SHA-256 (FIPS 180-4), implemented from scratch. Used as the KDF /
// commitment hash for the DH key exchange, oblivious transfer, and
// ChaCha key derivation.

#ifndef ULDP_CRYPTO_SHA256_H_
#define ULDP_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace uldp {

using Sha256Digest = std::array<uint8_t, 32>;

/// One-shot SHA-256 of a byte buffer.
Sha256Digest Sha256(const uint8_t* data, size_t len);
Sha256Digest Sha256(const std::string& data);
Sha256Digest Sha256(const std::vector<uint8_t>& data);

/// Hex rendering of a digest (lowercase).
std::string DigestToHex(const Sha256Digest& digest);

}  // namespace uldp

#endif  // ULDP_CRYPTO_SHA256_H_
