// Strict string-to-number parsing for user-facing inputs (CLI flags,
// host:port endpoints). std::atoi silently maps garbage to 0, which turned
// typos like --threads=fast into "auto" and --serve=80O0 into port 0; these
// helpers reject anything that is not a complete, in-range numeral with a
// clear Status instead.

#ifndef ULDP_COMMON_PARSE_H_
#define ULDP_COMMON_PARSE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace uldp {

/// Parses a base-10 signed integer. The whole string must be consumed
/// (optional leading '-', no whitespace, no trailing junk) and the value
/// must lie in [min, max]. `what` names the input in error messages
/// (e.g. "--threads").
Result<int64_t> ParseInt(const std::string& s, int64_t min, int64_t max,
                         const std::string& what);

/// Parses a base-10 unsigned integer in [0, max].
Result<uint64_t> ParseUint(const std::string& s, uint64_t max,
                           const std::string& what);

/// Parses a finite floating-point number (strtod grammar, whole string).
Result<double> ParseDouble(const std::string& s, const std::string& what);

/// Splits "host:port" and range-checks the port into [1, 65535].
struct HostPort {
  std::string host;
  int port = 0;
};
Result<HostPort> ParseHostPort(const std::string& s, const std::string& what);

}  // namespace uldp

#endif  // ULDP_COMMON_PARSE_H_
