#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace uldp {

namespace {

// Set while a thread is executing pool tasks; nested ParallelFor calls on
// such a thread run inline instead of re-entering the scheduler.
thread_local bool t_inside_pool = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads > 0 ? num_threads : DefaultThreadCount()) {
  const size_t workers = static_cast<size_t>(num_threads_ - 1);
  queues_ = std::vector<Queue>(workers);
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("ULDP_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  // Own queue first (LIFO: best locality for the most recent push), then
  // steal the oldest task from a peer.
  const size_t count = queues_.size();
  for (size_t probe = 0; probe <= count && !task; ++probe) {
    size_t q = probe == 0 ? self : (self + probe) % count;
    if (probe == 0 && self >= count) continue;  // caller has no own queue
    if (probe > 0 && q == self) continue;
    Queue& queue = queues_[q];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.tasks.empty()) continue;
    if (q == self) {
      task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
  }
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    --pending_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  t_inside_pool = true;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (stop_ && pending_ == 0) return;
    }
    while (RunOneTask(self)) {
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1 || threads_.empty() || t_inside_pool) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunk into a few tasks per thread so stealing can balance uneven
  // per-index costs without per-index scheduling overhead.
  const size_t chunks =
      std::min(n, static_cast<size_t>(num_threads_) * 4);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  std::atomic<size_t> done{0};

  // Count the tasks before publishing any: a worker still draining a
  // previous call may pop a fresh task immediately, and its --pending_
  // must never underflow.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_ += chunks;
  }
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    auto task = [&fn, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      done.fetch_add(end - begin, std::memory_order_release);
    };
    Queue& queue = queues_[c % queues_.size()];
    {
      std::lock_guard<std::mutex> lock(queue.mu);
      queue.tasks.emplace_back(std::move(task));
    }
    begin = end;
  }
  wake_cv_.notify_all();

  // The caller works too: steal chunks until every iteration has finished
  // (some may still be running on workers after the queues drain).
  t_inside_pool = true;
  while (done.load(std::memory_order_acquire) < n) {
    if (!RunOneTask(queues_.size())) std::this_thread::yield();
  }
  t_inside_pool = false;
}

}  // namespace uldp
