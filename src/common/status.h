// Status / Result<T> error handling, following the RocksDB/Abseil idiom:
// recoverable failures are returned as values, never thrown.

#ifndef ULDP_COMMON_STATUS_H_
#define ULDP_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace uldp {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kNotFound,
  kUnimplemented,
  kDeadlineExceeded,
};

/// Lightweight status value. `Status::Ok()` is the success value; all other
/// codes carry a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: n must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// First non-ok entry (in index order) of a parallel region's per-item
/// statuses, or Ok() — the deterministic error reduce used after
/// ThreadPool::ParallelFor.
Status FirstError(const std::vector<Status>& statuses);

/// Holds either a value of type T or an error Status. Modeled after
/// absl::StatusOr but minimal: check `ok()` before calling `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "Result::value() on error: " << status_.ToString() << "\n";
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

}  // namespace uldp

/// Propagates a non-ok Status from the current function.
#define ULDP_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::uldp::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // ULDP_COMMON_STATUS_H_
