// Deterministic random-number utilities used across the simulator.
//
// All stochastic components in the library take an explicit `Rng&` (or a
// seed) so that experiments are exactly reproducible. The statistical
// samplers (Gaussian, Poisson trial, Zipf) live here so every module draws
// from one audited implementation.

#ifndef ULDP_COMMON_RNG_H_
#define ULDP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace uldp {

/// Reserved stream ids for `Rng::Fork`'s third argument. User-indexed
/// streams use the user id directly; whole-silo streams use 0; the values
/// below are far outside any valid user id so the streams never collide
/// within one generator.
constexpr uint64_t kRngStreamNoise = ~0ull;         // per-silo noise share
constexpr uint64_t kRngStreamSampling = ~0ull - 1;  // server user sampling
constexpr uint64_t kRngStreamServer = ~0ull - 2;    // central server noise
constexpr uint64_t kRngStreamEncrypt = ~0ull - 3;   // per-user encryption
constexpr uint64_t kRngStreamKeygen = ~0ull - 4;    // Paillier prime search
// OT-mode private sub-sampling (§4.1). The per-slot streams pack
// (user, slot) into Fork's second counter, so one stream id serves every
// slot of every user without colliding with the per-user streams above.
constexpr uint64_t kRngStreamOtShuffle = ~0ull - 5;   // per-user slot shuffle
constexpr uint64_t kRngStreamOtFlow = ~0ull - 6;      // per-user OT messages
constexpr uint64_t kRngStreamOtSlotEnc = ~0ull - 7;   // per-(user, slot) enc
constexpr uint64_t kRngStreamOtSlotElem = ~0ull - 8;  // per-(user, slot) C_i
// Distributed Protocol 1 (src/net/): every per-party value is derived from
// its own Fork substream of the protocol seed, never from a shared
// sequentially-consumed generator, so a remote endpoint reconstructs
// exactly the value the in-process simulation would have drawn.
constexpr uint64_t kRngStreamOtSender = ~0ull - 9;    // per-user OT sender r
constexpr uint64_t kRngStreamOtReceiver = ~0ull - 10;  // per-user OT recv k
constexpr uint64_t kRngStreamDhKey = ~0ull - 11;       // per-silo DH key pair
constexpr uint64_t kRngStreamSharedSeed = ~0ull - 12;  // silo 0's seed R
constexpr uint64_t kRngStreamOtGroup = ~0ull - 13;     // OT safe-prime group

/// Deterministic pseudo-random generator (mt19937_64 core) with the
/// distribution helpers the Uldp-FL algorithms need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Counter-based substream derivation: returns an independent generator
  /// whose seed is a pure function of this generator's *constructor seed*
  /// and the (a, b, c) counters — typically (round, silo, user). Forking
  /// does not consume or depend on draws from this generator, so a run
  /// that schedules work items across N threads produces bitwise-identical
  /// streams to a serial run.
  Rng Fork(uint64_t a, uint64_t b = 0, uint64_t c = 0) const;

  /// Raw 64 random bits.
  uint64_t NextUint64() { return engine_(); }

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Standard normal sample.
  double Gaussian() { return normal_(engine_); }

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Bernoulli trial: true with probability p (the "Poisson sampling"
  /// primitive used for record- and user-level sub-sampling).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, n) from a (not necessarily normalized)
  /// non-negative weight vector.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples from a Zipf distribution over ranks {1, ..., n} with exponent
  /// alpha: P(rank = r) ∝ r^{-alpha}. Returns a value in [1, n].
  /// Matches the record-allocation scheme of the paper (§5.1.1).
  uint64_t Zipf(uint64_t n, double alpha);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

/// Adds i.i.d. N(0, stddev^2) noise to every coordinate of `v`.
void AddGaussianNoise(std::vector<double>& v, double stddev, Rng& rng);

}  // namespace uldp

#endif  // ULDP_COMMON_RNG_H_
