// Minimal aligned-table / CSV printer used by the benchmark harness so every
// figure reproduction prints uniform, machine-greppable rows.

#ifndef ULDP_COMMON_TABLE_H_
#define ULDP_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace uldp {

/// Collects rows of string cells and renders them as an aligned text table.
/// Usage:
///   Table t({"round", "method", "acc", "eps"});
///   t.AddRow({"1", "ULDP-AVG", "0.91", "0.35"});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment and a separator line under the header.
  void Print(std::ostream& os) const;

  /// Renders as comma-separated values (header first).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (benchmark output
/// convention).
std::string FormatG(double value, int digits = 5);

}  // namespace uldp

#endif  // ULDP_COMMON_TABLE_H_
