// Work-stealing thread pool backing the federated round engine and the
// private weighting protocol. Parallelism never changes results: callers
// pair every work item with a deterministic Rng::Fork substream and reduce
// outputs in index order, so an N-thread run is bitwise identical to a
// serial one. The thread count is a pure performance knob.

#ifndef ULDP_COMMON_PARALLEL_H_
#define ULDP_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uldp {

/// Fixed-size pool of `num_threads - 1` worker threads plus the calling
/// thread. Each worker owns a deque; idle workers steal from peers, so
/// uneven per-item costs (e.g. silos with very different record counts)
/// balance automatically.
class ThreadPool {
 public:
  /// `num_threads` <= 0 resolves via DefaultThreadCount(). A pool of 1
  /// spawns no threads and runs everything inline on the caller.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), blocking until all iterations
  /// finish. The calling thread participates in the work. Iterations may
  /// execute in any order on any thread, so fn must be data-race free
  /// across indices and must not throw. Nested calls from inside a worker
  /// run their iterations inline (serially) to avoid deadlock.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  int num_threads() const { return num_threads_; }

  /// ULDP_THREADS environment variable (>= 1) if set, otherwise
  /// std::thread::hardware_concurrency() (min 1).
  static int DefaultThreadCount();

  /// Process-wide pool sized DefaultThreadCount(), created on first use.
  static ThreadPool& Global();

 private:
  struct Queue {
    std::deque<std::function<void()>> tasks;
    std::mutex mu;
  };

  void WorkerLoop(size_t self);
  /// Pops one task (own queue first, then steals); returns false if none.
  bool RunOneTask(size_t self);

  int num_threads_;
  std::vector<Queue> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  size_t pending_ = 0;  // queued-but-unclaimed tasks, guarded by wake_mu_
};

/// Resolves a thread-count knob to a pool: the process-wide Global() pool
/// for auto (<= 0), else a privately owned pool of the requested size.
/// Shared by every component exposing a num_threads setting so the
/// resolution rule lives in one place.
class PoolHandle {
 public:
  explicit PoolHandle(int num_threads)
      : owned_(num_threads > 0 ? std::make_unique<ThreadPool>(num_threads)
                               : nullptr),
        pool_(owned_ != nullptr ? owned_.get() : &ThreadPool::Global()) {}

  ThreadPool* operator->() const { return pool_; }
  ThreadPool& operator*() const { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

}  // namespace uldp

#endif  // ULDP_COMMON_PARALLEL_H_
