#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

namespace {

// SplitMix64 finalizer (Steele et al.) — the standard mixer for deriving
// statistically independent seeds from structured counters.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::Fork(uint64_t a, uint64_t b, uint64_t c) const {
  uint64_t h = SplitMix64(seed_);
  h = SplitMix64(h ^ SplitMix64(a));
  h = SplitMix64(h ^ SplitMix64(b));
  h = SplitMix64(h ^ SplitMix64(c));
  return Rng(h);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  ULDP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ULDP_CHECK_GE(w, 0.0);
    total += w;
  }
  ULDP_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::Zipf(uint64_t n, double alpha) {
  ULDP_CHECK_GE(n, 1u);
  // Inverse-CDF sampling over the finite support. For the sizes used in the
  // experiments (n ≤ a few thousand) a linear scan is cheap and exact.
  // Cache-free implementation: recompute normalization each call only for
  // small n; for large n use the rejection-inversion method would be an
  // optimization, unnecessary at our scale.
  double norm = 0.0;
  for (uint64_t r = 1; r <= n; ++r) norm += std::pow(static_cast<double>(r), -alpha);
  double u = Uniform() * norm;
  double acc = 0.0;
  for (uint64_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -alpha);
    if (u < acc) return r;
  }
  return n;
}

void AddGaussianNoise(std::vector<double>& v, double stddev, Rng& rng) {
  if (stddev == 0.0) return;
  for (double& x : v) x += rng.Gaussian(0.0, stddev);
}

}  // namespace uldp
