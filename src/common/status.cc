#include "common/status.h"

namespace uldp {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace uldp
