#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace uldp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ULDP_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ",";
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatG(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return std::string(buf);
}

}  // namespace uldp
