// CHECK macros for programmer errors (invariant violations abort the
// process). Library-visible recoverable errors use Status instead.

#ifndef ULDP_COMMON_CHECK_H_
#define ULDP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

#define ULDP_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__       \
                << ": " #cond << std::endl;                                \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define ULDP_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__       \
                << ": " #cond << " — " << (msg) << std::endl;              \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define ULDP_CHECK_EQ(a, b) ULDP_CHECK((a) == (b))
#define ULDP_CHECK_NE(a, b) ULDP_CHECK((a) != (b))
#define ULDP_CHECK_LT(a, b) ULDP_CHECK((a) < (b))
#define ULDP_CHECK_LE(a, b) ULDP_CHECK((a) <= (b))
#define ULDP_CHECK_GT(a, b) ULDP_CHECK((a) > (b))
#define ULDP_CHECK_GE(a, b) ULDP_CHECK((a) >= (b))

#endif  // ULDP_COMMON_CHECK_H_
