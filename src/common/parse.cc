#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace uldp {

namespace {

std::string Quoted(const std::string& s) { return "\"" + s + "\""; }

// strtoll/strtod silently skip leading whitespace; a flag value with
// whitespace is a quoting mistake, not a number.
bool HasLeadingSpace(const std::string& s) {
  return !s.empty() && std::isspace(static_cast<unsigned char>(s[0])) != 0;
}

}  // namespace

Result<int64_t> ParseInt(const std::string& s, int64_t min, int64_t max,
                         const std::string& what) {
  if (s.empty() || HasLeadingSpace(s)) {
    return Status::InvalidArgument(what + ": empty or malformed value");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || end == s.c_str()) {
    return Status::InvalidArgument(what + ": " + Quoted(s) +
                                   " is not an integer");
  }
  if (errno == ERANGE || v < min || v > max) {
    return Status::OutOfRange(what + ": " + Quoted(s) + " out of range [" +
                              std::to_string(min) + ", " +
                              std::to_string(max) + "]");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint(const std::string& s, uint64_t max,
                           const std::string& what) {
  if (s.empty() || HasLeadingSpace(s)) {
    return Status::InvalidArgument(what + ": empty or malformed value");
  }
  if (s[0] == '-') {
    return Status::OutOfRange(what + ": " + Quoted(s) + " is negative");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || end == s.c_str()) {
    return Status::InvalidArgument(what + ": " + Quoted(s) +
                                   " is not an integer");
  }
  if (errno == ERANGE || v > max) {
    return Status::OutOfRange(what + ": " + Quoted(s) + " out of range [0, " +
                              std::to_string(max) + "]");
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(const std::string& s, const std::string& what) {
  if (s.empty() || HasLeadingSpace(s)) {
    return Status::InvalidArgument(what + ": empty or malformed value");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || end == s.c_str()) {
    return Status::InvalidArgument(what + ": " + Quoted(s) +
                                   " is not a number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    return Status::OutOfRange(what + ": " + Quoted(s) + " is not finite");
  }
  return v;
}

Result<HostPort> ParseHostPort(const std::string& s, const std::string& what) {
  size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument(what + ": " + Quoted(s) +
                                   " is not host:port");
  }
  auto port = ParseInt(s.substr(colon + 1), 1, 65535, what + " port");
  if (!port.ok()) return port.status();
  HostPort hp;
  hp.host = s.substr(0, colon);
  hp.port = static_cast<int>(port.value());
  return hp;
}

}  // namespace uldp
