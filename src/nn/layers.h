// Per-sample neural-network layers with manual backprop. Each layer owns
// its parameters and gradient accumulator; models flatten them into one
// parameter vector for the FL machinery (clipping and noising operate on
// flat model deltas).

#ifndef ULDP_NN_LAYERS_H_
#define ULDP_NN_LAYERS_H_

#include <cstddef>
#include <memory>

#include "common/rng.h"
#include "nn/tensor.h"

namespace uldp {

/// Layer interface. Forward caches whatever Backward needs (single-sample
/// state; training loops are sequential per sample).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual size_t in_dim() const = 0;
  virtual size_t out_dim() const = 0;
  virtual size_t num_params() const { return 0; }

  /// Copies this layer's parameters into params[offset...]; returns the
  /// number of values written.
  virtual size_t ReadParams(Vec& params, size_t offset) const;
  /// Loads parameters from params[offset...]; returns values consumed.
  virtual size_t WriteParams(const Vec& params, size_t offset);
  /// Adds the accumulated gradient into grad[offset...]; returns count.
  virtual size_t ReadGrad(Vec& grad, size_t offset) const;
  /// Zeroes the gradient accumulator.
  virtual void ZeroGrad() {}
  /// Random init (He-style for layers with weights).
  virtual void InitParams(Rng& rng);

  virtual void Forward(const Vec& in, Vec* out) = 0;
  /// dout: gradient w.r.t. this layer's output. din: filled with gradient
  /// w.r.t. the input. Parameter gradients are accumulated internally.
  virtual void Backward(const Vec& dout, Vec* din) = 0;
};

/// Fully connected: out = W*in + b.
class LinearLayer final : public Layer {
 public:
  LinearLayer(size_t in_dim, size_t out_dim);

  size_t in_dim() const override { return in_dim_; }
  size_t out_dim() const override { return out_dim_; }
  size_t num_params() const override { return in_dim_ * out_dim_ + out_dim_; }

  size_t ReadParams(Vec& params, size_t offset) const override;
  size_t WriteParams(const Vec& params, size_t offset) override;
  size_t ReadGrad(Vec& grad, size_t offset) const override;
  void ZeroGrad() override;
  void InitParams(Rng& rng) override;

  void Forward(const Vec& in, Vec* out) override;
  void Backward(const Vec& dout, Vec* din) override;

 private:
  size_t in_dim_;
  size_t out_dim_;
  Matrix weight_;       // out x in
  Vec bias_;            // out
  Matrix weight_grad_;  // accumulated
  Vec bias_grad_;
  Vec last_in_;
};

/// Element-wise ReLU.
class ReluLayer final : public Layer {
 public:
  explicit ReluLayer(size_t dim) : dim_(dim) {}

  size_t in_dim() const override { return dim_; }
  size_t out_dim() const override { return dim_; }

  void Forward(const Vec& in, Vec* out) override;
  void Backward(const Vec& dout, Vec* din) override;

 private:
  size_t dim_;
  Vec last_in_;
};

/// 2D convolution, kernel 3x3, stride 1, zero padding 1 (shape-preserving).
/// Input layout: channels x height x width, flattened row-major.
class Conv3x3Layer final : public Layer {
 public:
  Conv3x3Layer(size_t in_channels, size_t out_channels, size_t height,
               size_t width);

  size_t in_dim() const override { return in_channels_ * height_ * width_; }
  size_t out_dim() const override { return out_channels_ * height_ * width_; }
  size_t num_params() const override {
    return out_channels_ * in_channels_ * 9 + out_channels_;
  }

  size_t ReadParams(Vec& params, size_t offset) const override;
  size_t WriteParams(const Vec& params, size_t offset) override;
  size_t ReadGrad(Vec& grad, size_t offset) const override;
  void ZeroGrad() override;
  void InitParams(Rng& rng) override;

  void Forward(const Vec& in, Vec* out) override;
  void Backward(const Vec& dout, Vec* din) override;

 private:
  double& KernelAt(Vec& k, size_t oc, size_t ic, size_t kr, size_t kc) const;

  size_t in_channels_, out_channels_, height_, width_;
  Vec kernel_;       // oc x ic x 3 x 3
  Vec bias_;         // oc
  Vec kernel_grad_;
  Vec bias_grad_;
  Vec last_in_;
};

/// 2x2 max pooling, stride 2. Requires even height/width.
class MaxPool2Layer final : public Layer {
 public:
  MaxPool2Layer(size_t channels, size_t height, size_t width);

  size_t in_dim() const override { return channels_ * height_ * width_; }
  size_t out_dim() const override {
    return channels_ * (height_ / 2) * (width_ / 2);
  }

  void Forward(const Vec& in, Vec* out) override;
  void Backward(const Vec& dout, Vec* din) override;

 private:
  size_t channels_, height_, width_;
  std::vector<size_t> argmax_;
};

}  // namespace uldp

#endif  // ULDP_NN_LAYERS_H_
