#include "nn/model.h"

#include <algorithm>

#include "common/check.h"
#include "nn/loss.h"

namespace uldp {

// ---- SequentialClassifier --------------------------------------------------

SequentialClassifier::SequentialClassifier(
    std::vector<std::unique_ptr<Layer>> layers, size_t num_classes)
    : layers_(std::move(layers)), num_classes_(num_classes) {
  ULDP_CHECK(!layers_.empty());
  ULDP_CHECK_EQ(layers_.back()->out_dim(), num_classes_);
}

size_t SequentialClassifier::NumParams() const {
  size_t n = 0;
  for (const auto& l : layers_) n += l->num_params();
  return n;
}

Vec SequentialClassifier::GetParams() const {
  Vec params(NumParams(), 0.0);
  size_t offset = 0;
  for (const auto& l : layers_) offset += l->ReadParams(params, offset);
  return params;
}

void SequentialClassifier::SetParams(const Vec& params) {
  ULDP_CHECK_EQ(params.size(), NumParams());
  size_t offset = 0;
  for (auto& l : layers_) offset += l->WriteParams(params, offset);
}

void SequentialClassifier::InitParams(Rng& rng) {
  for (auto& l : layers_) l->InitParams(rng);
}

std::unique_ptr<Model> SequentialClassifier::Clone() const {
  std::vector<std::unique_ptr<Layer>> layers;
  for (const auto& s : spec_) {
    switch (s.kind) {
      case LayerSpec::Kind::kLinear:
        layers.push_back(std::make_unique<LinearLayer>(s.a, s.b));
        break;
      case LayerSpec::Kind::kRelu:
        layers.push_back(std::make_unique<ReluLayer>(s.a));
        break;
      case LayerSpec::Kind::kConv3x3:
        layers.push_back(std::make_unique<Conv3x3Layer>(s.a, s.b, s.c, s.d));
        break;
      case LayerSpec::Kind::kMaxPool2:
        layers.push_back(std::make_unique<MaxPool2Layer>(s.a, s.b, s.c));
        break;
    }
  }
  auto clone = std::make_unique<SequentialClassifier>(std::move(layers),
                                                      num_classes_);
  clone->spec_ = spec_;
  clone->SetParams(GetParams());
  return clone;
}

const Vec& SequentialClassifier::ForwardLogits(const Vec& x) {
  scratch_a_ = x;
  for (auto& l : layers_) {
    l->Forward(scratch_a_, &scratch_b_);
    std::swap(scratch_a_, scratch_b_);
  }
  return scratch_a_;
}

double SequentialClassifier::LossAndGrad(
    const std::vector<const Example*>& batch, Vec* grad) {
  ULDP_CHECK(!batch.empty());
  if (grad != nullptr) {
    ULDP_CHECK_EQ(grad->size(), NumParams());
    for (auto& l : layers_) l->ZeroGrad();
  }
  double total_loss = 0.0;
  Vec dlogits, da, db;
  for (const Example* ex : batch) {
    const Vec& logits = ForwardLogits(ex->x);
    total_loss +=
        SoftmaxCrossEntropy(logits, ex->label, grad ? &dlogits : nullptr);
    if (grad != nullptr) {
      da = dlogits;
      for (size_t i = layers_.size(); i-- > 0;) {
        layers_[i]->Backward(da, &db);
        std::swap(da, db);
      }
    }
  }
  double inv = 1.0 / static_cast<double>(batch.size());
  if (grad != nullptr) {
    size_t offset = 0;
    Vec layer_grads(NumParams(), 0.0);
    for (const auto& l : layers_) offset += l->ReadGrad(layer_grads, offset);
    for (size_t i = 0; i < grad->size(); ++i) {
      (*grad)[i] += layer_grads[i] * inv;
    }
  }
  return total_loss * inv;
}

int SequentialClassifier::Predict(const Vec& x) {
  const Vec& logits = ForwardLogits(x);
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                          logits.begin());
}

double SequentialClassifier::Score(const Vec& x) {
  const Vec& logits = ForwardLogits(x);
  Vec probs;
  Softmax(logits, &probs);
  // Probability of class 1 for binary problems; max prob otherwise.
  if (num_classes_ == 2) return probs[1];
  return *std::max_element(probs.begin(), probs.end());
}

std::unique_ptr<SequentialClassifier> MakeMlp(const std::vector<size_t>& dims,
                                              size_t num_classes) {
  ULDP_CHECK(!dims.empty());
  ULDP_CHECK_GE(num_classes, 2u);
  std::vector<std::unique_ptr<Layer>> layers;
  std::vector<SequentialClassifier::LayerSpec> spec;
  using Kind = SequentialClassifier::LayerSpec::Kind;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers.push_back(std::make_unique<LinearLayer>(dims[i], dims[i + 1]));
    spec.push_back({Kind::kLinear, dims[i], dims[i + 1], 0, 0});
    layers.push_back(std::make_unique<ReluLayer>(dims[i + 1]));
    spec.push_back({Kind::kRelu, dims[i + 1], 0, 0, 0});
  }
  layers.push_back(std::make_unique<LinearLayer>(dims.back(), num_classes));
  spec.push_back({Kind::kLinear, dims.back(), num_classes, 0, 0});
  auto model = std::make_unique<SequentialClassifier>(std::move(layers),
                                                      num_classes);
  model->spec_ = std::move(spec);
  return model;
}

std::unique_ptr<SequentialClassifier> MakeSmallCnn(size_t side,
                                                   size_t channels,
                                                   size_t num_classes) {
  ULDP_CHECK_GE(side, 4u);
  ULDP_CHECK_EQ(side % 2, 0u);
  std::vector<std::unique_ptr<Layer>> layers;
  std::vector<SequentialClassifier::LayerSpec> spec;
  using Kind = SequentialClassifier::LayerSpec::Kind;
  layers.push_back(std::make_unique<Conv3x3Layer>(1, channels, side, side));
  spec.push_back({Kind::kConv3x3, 1, channels, side, side});
  layers.push_back(std::make_unique<ReluLayer>(channels * side * side));
  spec.push_back({Kind::kRelu, channels * side * side, 0, 0, 0});
  layers.push_back(std::make_unique<MaxPool2Layer>(channels, side, side));
  spec.push_back({Kind::kMaxPool2, channels, side, side, 0});
  size_t flat = channels * (side / 2) * (side / 2);
  layers.push_back(std::make_unique<LinearLayer>(flat, num_classes));
  spec.push_back({Kind::kLinear, flat, num_classes, 0, 0});
  auto model = std::make_unique<SequentialClassifier>(std::move(layers),
                                                      num_classes);
  model->spec_ = std::move(spec);
  return model;
}

// ---- CoxRegression ---------------------------------------------------------

CoxRegression::CoxRegression(size_t dim) : dim_(dim), theta_(dim, 0.0) {
  ULDP_CHECK_GE(dim_, 1u);
}

void CoxRegression::SetParams(const Vec& params) {
  ULDP_CHECK_EQ(params.size(), dim_);
  theta_ = params;
}

void CoxRegression::InitParams(Rng& rng) {
  for (double& t : theta_) t = rng.Gaussian(0.0, 0.01);
}

std::unique_ptr<Model> CoxRegression::Clone() const {
  auto clone = std::make_unique<CoxRegression>(dim_);
  clone->theta_ = theta_;
  return clone;
}

double CoxRegression::LossAndGrad(const std::vector<const Example*>& batch,
                                  Vec* grad) {
  ULDP_CHECK(!batch.empty());
  size_t n = batch.size();
  Vec scores(n), times(n);
  std::vector<bool> events(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = Dot(theta_, batch[i]->x);
    times[i] = batch[i]->time;
    events[i] = batch[i]->event;
  }
  Vec dscores;
  double loss =
      CoxPartialLikelihood(scores, times, events, grad ? &dscores : nullptr);
  if (grad != nullptr) {
    ULDP_CHECK_EQ(grad->size(), dim_);
    for (size_t i = 0; i < n; ++i) {
      Axpy(dscores[i], batch[i]->x, *grad);
    }
  }
  return loss;
}

int CoxRegression::Predict(const Vec&) { return 0; }

double CoxRegression::Score(const Vec& x) { return Dot(theta_, x); }

}  // namespace uldp
