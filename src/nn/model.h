// Model abstraction used by every FL algorithm: parameters are exposed as a
// flat vector so clipping, weighting, noising, and secure aggregation all
// operate on plain Vec deltas regardless of architecture.

#ifndef ULDP_NN_MODEL_H_
#define ULDP_NN_MODEL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace uldp {

/// One training/evaluation example. Classification models read `label`;
/// the Cox model reads (`time`, `event`).
struct Example {
  Vec x;
  int label = -1;
  double time = 0.0;
  bool event = false;
};

class Model {
 public:
  virtual ~Model() = default;

  virtual size_t NumParams() const = 0;
  virtual Vec GetParams() const = 0;
  virtual void SetParams(const Vec& params) = 0;
  virtual void InitParams(Rng& rng) = 0;
  virtual std::unique_ptr<Model> Clone() const = 0;

  /// Mean loss over the batch; adds the mean gradient into *grad (which
  /// must be NumParams long; caller zeroes it if a fresh gradient is
  /// wanted). Pass grad == nullptr for loss only.
  virtual double LossAndGrad(const std::vector<const Example*>& batch,
                             Vec* grad) = 0;

  /// Predicted class (classification) or 0 (models without classes).
  virtual int Predict(const Vec& x) = 0;

  /// Scalar score: max-class probability margin is not needed anywhere;
  /// for Cox this is the risk score used by the C-index.
  virtual double Score(const Vec& x) = 0;
};

/// Feed-forward stack of layers with a softmax cross-entropy head.
/// Covers the paper's Creditcard MLP, HeartDisease logistic model, and
/// MNIST models (MLP or CNN, see factory helpers below).
class SequentialClassifier final : public Model {
 public:
  SequentialClassifier(std::vector<std::unique_ptr<Layer>> layers,
                       size_t num_classes);

  size_t NumParams() const override;
  Vec GetParams() const override;
  void SetParams(const Vec& params) override;
  void InitParams(Rng& rng) override;
  std::unique_ptr<Model> Clone() const override;

  double LossAndGrad(const std::vector<const Example*>& batch,
                     Vec* grad) override;
  int Predict(const Vec& x) override;
  double Score(const Vec& x) override;

  size_t num_classes() const { return num_classes_; }

  /// Builder shared by the factory helpers; returns the flattened logits.
  const Vec& ForwardLogits(const Vec& x);

 private:
  // Cloning rebuilds the architecture via the recorded spec.
  friend std::unique_ptr<SequentialClassifier> MakeMlp(
      const std::vector<size_t>& dims, size_t num_classes);
  friend std::unique_ptr<SequentialClassifier> MakeSmallCnn(
      size_t side, size_t channels, size_t num_classes);

  struct LayerSpec {
    enum class Kind { kLinear, kRelu, kConv3x3, kMaxPool2 } kind;
    size_t a = 0, b = 0, c = 0, d = 0;
  };

  std::vector<std::unique_ptr<Layer>> layers_;
  size_t num_classes_;
  std::vector<LayerSpec> spec_;
  Vec scratch_a_, scratch_b_;
};

/// MLP: dims = {in, hidden..., } with a final linear layer to num_classes
/// and ReLU between linear layers. dims = {in} gives plain multinomial
/// logistic regression.
std::unique_ptr<SequentialClassifier> MakeMlp(const std::vector<size_t>& dims,
                                              size_t num_classes);

/// Small CNN for side x side single-channel images:
/// conv3x3(1 -> channels) + ReLU + maxpool2 + linear -> classes.
std::unique_ptr<SequentialClassifier> MakeSmallCnn(size_t side,
                                                   size_t channels,
                                                   size_t num_classes);

/// Linear Cox proportional-hazards model: risk = theta^T x, trained with
/// the partial likelihood over the batch (the batch is the risk set, per
/// the FLamby TcgaBrca setup).
class CoxRegression final : public Model {
 public:
  explicit CoxRegression(size_t dim);

  size_t NumParams() const override { return dim_; }
  Vec GetParams() const override { return theta_; }
  void SetParams(const Vec& params) override;
  void InitParams(Rng& rng) override;
  std::unique_ptr<Model> Clone() const override;

  double LossAndGrad(const std::vector<const Example*>& batch,
                     Vec* grad) override;
  int Predict(const Vec& x) override;
  double Score(const Vec& x) override;

 private:
  size_t dim_;
  Vec theta_;
};

}  // namespace uldp

#endif  // ULDP_NN_MODEL_H_
