#include "nn/optimizer.h"

#include "common/check.h"

namespace uldp {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  ULDP_CHECK_GT(learning_rate_, 0.0);
  ULDP_CHECK_GE(momentum_, 0.0);
  ULDP_CHECK_LT(momentum_, 1.0);
}

void SgdOptimizer::Step(const Vec& grad, Vec& params) {
  ULDP_CHECK_EQ(grad.size(), params.size());
  if (momentum_ == 0.0) {
    Axpy(-learning_rate_, grad, params);
    return;
  }
  if (velocity_.size() != grad.size()) velocity_.assign(grad.size(), 0.0);
  for (size_t i = 0; i < grad.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] + grad[i];
    params[i] -= learning_rate_ * velocity_[i];
  }
}

void SgdOptimizer::Reset() { velocity_.clear(); }

}  // namespace uldp
