// Evaluation metrics: classification accuracy / mean loss, and the
// concordance index (C-index) for the survival benchmark — the utility
// metric the paper reports for TcgaBrca.

#ifndef ULDP_NN_METRICS_H_
#define ULDP_NN_METRICS_H_

#include <vector>

#include "nn/model.h"

namespace uldp {

/// Fraction of examples whose Predict() equals the label.
double Accuracy(Model& model, const std::vector<Example>& examples);

/// Mean LossAndGrad(nullptr) over the examples (computed in one batch for
/// classifiers; per-example reduction matches the training objective).
double MeanLoss(Model& model, const std::vector<Example>& examples);

/// Harrell's concordance index of model risk scores against (time, event):
/// among comparable pairs (i died before j was censored/died), the fraction
/// where the earlier-event sample has the higher risk score. Ties in score
/// count 0.5. Returns 0.5 for no comparable pairs.
double CIndex(Model& model, const std::vector<Example>& examples);

/// Area under the ROC curve for separating positives from negatives by
/// score (higher = positive). Ties count 0.5; returns 0.5 when either
/// class is empty. Used by the membership-inference evaluation.
double AucFromScores(const std::vector<double>& positive_scores,
                     const std::vector<double>& negative_scores);

}  // namespace uldp

#endif  // ULDP_NN_METRICS_H_
