#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace uldp {

size_t Layer::ReadParams(Vec&, size_t) const { return 0; }
size_t Layer::WriteParams(const Vec&, size_t) { return 0; }
size_t Layer::ReadGrad(Vec&, size_t) const { return 0; }
void Layer::InitParams(Rng&) {}

// ---- LinearLayer -----------------------------------------------------------

LinearLayer::LinearLayer(size_t in_dim, size_t out_dim)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(out_dim, in_dim),
      bias_(out_dim, 0.0),
      weight_grad_(out_dim, in_dim),
      bias_grad_(out_dim, 0.0) {}

size_t LinearLayer::ReadParams(Vec& params, size_t offset) const {
  ULDP_CHECK_LE(offset + num_params(), params.size());
  std::copy(weight_.data().begin(), weight_.data().end(),
            params.begin() + offset);
  std::copy(bias_.begin(), bias_.end(),
            params.begin() + offset + weight_.data().size());
  return num_params();
}

size_t LinearLayer::WriteParams(const Vec& params, size_t offset) {
  ULDP_CHECK_LE(offset + num_params(), params.size());
  std::copy(params.begin() + offset,
            params.begin() + offset + weight_.data().size(),
            weight_.data().begin());
  std::copy(params.begin() + offset + weight_.data().size(),
            params.begin() + offset + num_params(), bias_.begin());
  return num_params();
}

size_t LinearLayer::ReadGrad(Vec& grad, size_t offset) const {
  ULDP_CHECK_LE(offset + num_params(), grad.size());
  for (size_t i = 0; i < weight_grad_.data().size(); ++i) {
    grad[offset + i] += weight_grad_.data()[i];
  }
  for (size_t i = 0; i < bias_grad_.size(); ++i) {
    grad[offset + weight_grad_.data().size() + i] += bias_grad_[i];
  }
  return num_params();
}

void LinearLayer::ZeroGrad() {
  std::fill(weight_grad_.data().begin(), weight_grad_.data().end(), 0.0);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0);
}

void LinearLayer::InitParams(Rng& rng) {
  // He initialization: N(0, 2/in_dim).
  double stddev = std::sqrt(2.0 / static_cast<double>(in_dim_));
  for (double& w : weight_.data()) w = rng.Gaussian(0.0, stddev);
  std::fill(bias_.begin(), bias_.end(), 0.0);
}

void LinearLayer::Forward(const Vec& in, Vec* out) {
  last_in_ = in;
  weight_.MatVec(in, out);
  for (size_t i = 0; i < out_dim_; ++i) (*out)[i] += bias_[i];
}

void LinearLayer::Backward(const Vec& dout, Vec* din) {
  ULDP_CHECK_EQ(dout.size(), out_dim_);
  // dW += dout * in^T ; db += dout ; din = W^T dout.
  for (size_t r = 0; r < out_dim_; ++r) {
    double d = dout[r];
    double* grow = &weight_grad_.data()[r * in_dim_];
    for (size_t c = 0; c < in_dim_; ++c) grow[c] += d * last_in_[c];
    bias_grad_[r] += d;
  }
  weight_.MatTVec(dout, din);
}

// ---- ReluLayer -------------------------------------------------------------

void ReluLayer::Forward(const Vec& in, Vec* out) {
  ULDP_CHECK_EQ(in.size(), dim_);
  last_in_ = in;
  out->resize(dim_);
  for (size_t i = 0; i < dim_; ++i) (*out)[i] = in[i] > 0.0 ? in[i] : 0.0;
}

void ReluLayer::Backward(const Vec& dout, Vec* din) {
  din->resize(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    (*din)[i] = last_in_[i] > 0.0 ? dout[i] : 0.0;
  }
}

// ---- Conv3x3Layer ----------------------------------------------------------

Conv3x3Layer::Conv3x3Layer(size_t in_channels, size_t out_channels,
                           size_t height, size_t width)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      height_(height),
      width_(width),
      kernel_(out_channels * in_channels * 9, 0.0),
      bias_(out_channels, 0.0),
      kernel_grad_(kernel_.size(), 0.0),
      bias_grad_(out_channels, 0.0) {}

double& Conv3x3Layer::KernelAt(Vec& k, size_t oc, size_t ic, size_t kr,
                               size_t kc) const {
  return k[((oc * in_channels_ + ic) * 3 + kr) * 3 + kc];
}

size_t Conv3x3Layer::ReadParams(Vec& params, size_t offset) const {
  ULDP_CHECK_LE(offset + num_params(), params.size());
  std::copy(kernel_.begin(), kernel_.end(), params.begin() + offset);
  std::copy(bias_.begin(), bias_.end(),
            params.begin() + offset + kernel_.size());
  return num_params();
}

size_t Conv3x3Layer::WriteParams(const Vec& params, size_t offset) {
  ULDP_CHECK_LE(offset + num_params(), params.size());
  std::copy(params.begin() + offset, params.begin() + offset + kernel_.size(),
            kernel_.begin());
  std::copy(params.begin() + offset + kernel_.size(),
            params.begin() + offset + num_params(), bias_.begin());
  return num_params();
}

size_t Conv3x3Layer::ReadGrad(Vec& grad, size_t offset) const {
  ULDP_CHECK_LE(offset + num_params(), grad.size());
  for (size_t i = 0; i < kernel_grad_.size(); ++i) {
    grad[offset + i] += kernel_grad_[i];
  }
  for (size_t i = 0; i < bias_grad_.size(); ++i) {
    grad[offset + kernel_grad_.size() + i] += bias_grad_[i];
  }
  return num_params();
}

void Conv3x3Layer::ZeroGrad() {
  std::fill(kernel_grad_.begin(), kernel_grad_.end(), 0.0);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0);
}

void Conv3x3Layer::InitParams(Rng& rng) {
  double stddev = std::sqrt(2.0 / static_cast<double>(in_channels_ * 9));
  for (double& w : kernel_) w = rng.Gaussian(0.0, stddev);
  std::fill(bias_.begin(), bias_.end(), 0.0);
}

void Conv3x3Layer::Forward(const Vec& in, Vec* out) {
  ULDP_CHECK_EQ(in.size(), in_dim());
  last_in_ = in;
  out->assign(out_dim(), 0.0);
  const size_t hw = height_ * width_;
  for (size_t oc = 0; oc < out_channels_; ++oc) {
    for (size_t r = 0; r < height_; ++r) {
      for (size_t c = 0; c < width_; ++c) {
        double acc = bias_[oc];
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          const double* plane = &in[ic * hw];
          for (int kr = -1; kr <= 1; ++kr) {
            int rr = static_cast<int>(r) + kr;
            if (rr < 0 || rr >= static_cast<int>(height_)) continue;
            for (int kc = -1; kc <= 1; ++kc) {
              int cc = static_cast<int>(c) + kc;
              if (cc < 0 || cc >= static_cast<int>(width_)) continue;
              acc += kernel_[((oc * in_channels_ + ic) * 3 + (kr + 1)) * 3 +
                             (kc + 1)] *
                     plane[rr * width_ + cc];
            }
          }
        }
        (*out)[oc * hw + r * width_ + c] = acc;
      }
    }
  }
}

void Conv3x3Layer::Backward(const Vec& dout, Vec* din) {
  ULDP_CHECK_EQ(dout.size(), out_dim());
  const size_t hw = height_ * width_;
  din->assign(in_dim(), 0.0);
  for (size_t oc = 0; oc < out_channels_; ++oc) {
    for (size_t r = 0; r < height_; ++r) {
      for (size_t c = 0; c < width_; ++c) {
        double d = dout[oc * hw + r * width_ + c];
        if (d == 0.0) continue;
        bias_grad_[oc] += d;
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          const double* plane = &last_in_[ic * hw];
          double* dplane = &(*din)[ic * hw];
          for (int kr = -1; kr <= 1; ++kr) {
            int rr = static_cast<int>(r) + kr;
            if (rr < 0 || rr >= static_cast<int>(height_)) continue;
            for (int kc = -1; kc <= 1; ++kc) {
              int cc = static_cast<int>(c) + kc;
              if (cc < 0 || cc >= static_cast<int>(width_)) continue;
              size_t ki = ((oc * in_channels_ + ic) * 3 + (kr + 1)) * 3 +
                          (kc + 1);
              kernel_grad_[ki] += d * plane[rr * width_ + cc];
              dplane[rr * width_ + cc] += d * kernel_[ki];
            }
          }
        }
      }
    }
  }
}

// ---- MaxPool2Layer ---------------------------------------------------------

MaxPool2Layer::MaxPool2Layer(size_t channels, size_t height, size_t width)
    : channels_(channels), height_(height), width_(width) {
  ULDP_CHECK_EQ(height_ % 2, 0u);
  ULDP_CHECK_EQ(width_ % 2, 0u);
}

void MaxPool2Layer::Forward(const Vec& in, Vec* out) {
  ULDP_CHECK_EQ(in.size(), in_dim());
  const size_t oh = height_ / 2, ow = width_ / 2;
  out->resize(out_dim());
  argmax_.resize(out_dim());
  for (size_t ch = 0; ch < channels_; ++ch) {
    const double* plane = &in[ch * height_ * width_];
    for (size_t r = 0; r < oh; ++r) {
      for (size_t c = 0; c < ow; ++c) {
        size_t best_idx = (2 * r) * width_ + 2 * c;
        double best = plane[best_idx];
        for (int dr = 0; dr < 2; ++dr) {
          for (int dc = 0; dc < 2; ++dc) {
            size_t idx = (2 * r + dr) * width_ + 2 * c + dc;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
        }
        size_t o = ch * oh * ow + r * ow + c;
        (*out)[o] = best;
        argmax_[o] = ch * height_ * width_ + best_idx;
      }
    }
  }
}

void MaxPool2Layer::Backward(const Vec& dout, Vec* din) {
  ULDP_CHECK_EQ(dout.size(), out_dim());
  din->assign(in_dim(), 0.0);
  for (size_t o = 0; o < dout.size(); ++o) (*din)[argmax_[o]] += dout[o];
}

}  // namespace uldp
