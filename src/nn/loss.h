// Loss functions: softmax cross-entropy (classification heads) and the Cox
// proportional-hazards partial likelihood (TcgaBrca survival benchmark,
// following the FLamby setup the paper adopts).

#ifndef ULDP_NN_LOSS_H_
#define ULDP_NN_LOSS_H_

#include "nn/tensor.h"

namespace uldp {

/// Numerically stable softmax of logits (in place allowed via out == &in).
void Softmax(const Vec& logits, Vec* probs);

/// Cross-entropy of softmax(logits) against class `label`; fills dlogits
/// (softmax - onehot) if non-null. Returns the loss.
double SoftmaxCrossEntropy(const Vec& logits, int label, Vec* dlogits);

/// Cox partial likelihood over a batch of (risk score, time, event)
/// triples:
///   loss = -1/#events * sum_{i: event} [ score_i - log sum_{j: t_j >= t_i}
///                                        exp(score_j) ]
/// Fills dscores (same length) if non-null. Batches with zero events or
/// fewer than 2 samples return 0 loss and zero gradient (the paper requires
/// >= 2 records per user-silo pair for a valid Cox loss).
double CoxPartialLikelihood(const Vec& scores, const Vec& times,
                            const std::vector<bool>& events, Vec* dscores);

}  // namespace uldp

#endif  // ULDP_NN_LOSS_H_
