// Dense vector/matrix primitives for the training substrate. Model sizes in
// the paper are small (< 100 to ~20K parameters), so a flat double vector
// with explicit loops is both simple and fast enough; no BLAS dependency.

#ifndef ULDP_NN_TENSOR_H_
#define ULDP_NN_TENSOR_H_

#include <cstddef>
#include <vector>

namespace uldp {

/// Flat dense vector of doubles — the universal currency for parameters,
/// gradients, and model deltas throughout the FL stack.
using Vec = std::vector<double>;

/// y += alpha * x (sizes must match).
void Axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void Scale(double alpha, Vec& x);

/// Dot product.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double L2Norm(const Vec& v);

/// Element-wise sum of vectors; all must share the size of the first.
Vec SumVecs(const std::vector<Vec>& vs);

/// In-place clip to L2 ball of radius `bound`: v *= min(1, bound/||v||).
/// Returns the scale factor applied.
double ClipToL2Ball(Vec& v, double bound);

/// Row-major dense matrix view used by Linear layers.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  /// out = M * x  (x has cols() entries, out has rows()).
  void MatVec(const Vec& x, Vec* out) const;
  /// out = M^T * x (x has rows() entries, out has cols()).
  void MatTVec(const Vec& x, Vec* out) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vec data_;
};

}  // namespace uldp

#endif  // ULDP_NN_TENSOR_H_
