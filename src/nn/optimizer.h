// Stochastic gradient descent on flat parameter vectors — the local
// optimizer inside every silo (the paper's eta_l), and the server-side
// update (eta_g) reuses the same primitive.

#ifndef ULDP_NN_OPTIMIZER_H_
#define ULDP_NN_OPTIMIZER_H_

#include "nn/tensor.h"

namespace uldp {

/// Plain SGD with optional momentum (momentum = 0 matches the paper's
/// algorithms exactly; momentum is provided for the DEFAULT baseline
/// ablations).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  /// params -= lr * grad (plus momentum buffer if enabled).
  void Step(const Vec& grad, Vec& params);

  /// Clears the momentum buffer (e.g., between FL rounds).
  void Reset();

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double momentum_;
  Vec velocity_;
};

}  // namespace uldp

#endif  // ULDP_NN_OPTIMIZER_H_
