#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace uldp {

void Softmax(const Vec& logits, Vec* probs) {
  double m = *std::max_element(logits.begin(), logits.end());
  probs->resize(logits.size());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    (*probs)[i] = std::exp(logits[i] - m);
    sum += (*probs)[i];
  }
  for (double& p : *probs) p /= sum;
}

double SoftmaxCrossEntropy(const Vec& logits, int label, Vec* dlogits) {
  ULDP_CHECK_GE(label, 0);
  ULDP_CHECK_LT(static_cast<size_t>(label), logits.size());
  Vec probs;
  Softmax(logits, &probs);
  double loss = -std::log(std::max(probs[label], 1e-300));
  if (dlogits != nullptr) {
    *dlogits = probs;
    (*dlogits)[label] -= 1.0;
  }
  return loss;
}

double CoxPartialLikelihood(const Vec& scores, const Vec& times,
                            const std::vector<bool>& events, Vec* dscores) {
  size_t n = scores.size();
  ULDP_CHECK_EQ(times.size(), n);
  ULDP_CHECK_EQ(events.size(), n);
  if (dscores != nullptr) dscores->assign(n, 0.0);
  if (n < 2) return 0.0;
  int num_events = 0;
  for (bool e : events) num_events += e ? 1 : 0;
  if (num_events == 0) return 0.0;

  // Stabilize exponentials.
  double m = *std::max_element(scores.begin(), scores.end());
  Vec exp_s(n);
  for (size_t i = 0; i < n; ++i) exp_s[i] = std::exp(scores[i] - m);

  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!events[i]) continue;
    // Risk set: j with t_j >= t_i.
    double denom = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (times[j] >= times[i]) denom += exp_s[j];
    }
    loss -= (scores[i] - m) - std::log(denom);
    if (dscores != nullptr) {
      (*dscores)[i] -= 1.0;
      for (size_t j = 0; j < n; ++j) {
        if (times[j] >= times[i]) (*dscores)[j] += exp_s[j] / denom;
      }
    }
  }
  loss /= num_events;
  if (dscores != nullptr) {
    for (double& d : *dscores) d /= num_events;
  }
  return loss;
}

}  // namespace uldp
