#include "nn/tensor.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

void Axpy(double alpha, const Vec& x, Vec& y) {
  ULDP_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, Vec& x) {
  for (double& v : x) v *= alpha;
}

double Dot(const Vec& a, const Vec& b) {
  ULDP_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double L2Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

Vec SumVecs(const std::vector<Vec>& vs) {
  ULDP_CHECK(!vs.empty());
  Vec out(vs[0].size(), 0.0);
  for (const auto& v : vs) Axpy(1.0, v, out);
  return out;
}

double ClipToL2Ball(Vec& v, double bound) {
  ULDP_CHECK_GT(bound, 0.0);
  double norm = L2Norm(v);
  if (norm <= bound || norm == 0.0) return 1.0;
  double scale = bound / norm;
  Scale(scale, v);
  return scale;
}

void Matrix::MatVec(const Vec& x, Vec* out) const {
  ULDP_CHECK_EQ(x.size(), cols_);
  out->assign(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    (*out)[r] = s;
  }
}

void Matrix::MatTVec(const Vec& x, Vec* out) const {
  ULDP_CHECK_EQ(x.size(), rows_);
  out->assign(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) (*out)[c] += row[c] * xr;
  }
}

}  // namespace uldp
