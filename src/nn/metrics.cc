#include "nn/metrics.h"

#include "common/check.h"

namespace uldp {

double Accuracy(Model& model, const std::vector<Example>& examples) {
  ULDP_CHECK(!examples.empty());
  size_t correct = 0;
  for (const Example& ex : examples) {
    if (model.Predict(ex.x) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / examples.size();
}

double MeanLoss(Model& model, const std::vector<Example>& examples) {
  ULDP_CHECK(!examples.empty());
  std::vector<const Example*> batch;
  batch.reserve(examples.size());
  for (const Example& ex : examples) batch.push_back(&ex);
  return model.LossAndGrad(batch, nullptr);
}

double AucFromScores(const std::vector<double>& positive_scores,
                     const std::vector<double>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  double wins = 0.0;
  for (double p : positive_scores) {
    for (double n : negative_scores) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 negative_scores.size());
}

double CIndex(Model& model, const std::vector<Example>& examples) {
  ULDP_CHECK(!examples.empty());
  std::vector<double> scores(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    scores[i] = model.Score(examples[i].x);
  }
  double concordant = 0.0;
  int64_t comparable = 0;
  for (size_t i = 0; i < examples.size(); ++i) {
    if (!examples[i].event) continue;
    for (size_t j = 0; j < examples.size(); ++j) {
      if (i == j) continue;
      // Pair comparable when i's event precedes j's observed time.
      if (examples[i].time < examples[j].time) {
        ++comparable;
        if (scores[i] > scores[j]) {
          concordant += 1.0;
        } else if (scores[i] == scores[j]) {
          concordant += 0.5;
        }
      }
    }
  }
  if (comparable == 0) return 0.5;
  return concordant / comparable;
}

}  // namespace uldp
