// Rényi differential privacy primitives (§2.2 of the paper):
//  - Gaussian mechanism RDP (Lemma 3)
//  - sub-sampled Gaussian mechanism RDP (Lemma 4; computed with the tight
//    integer-order bound of Mironov-Talwar-Zhang 2019, the same formula
//    Opacus uses)
//  - RDP -> (eps, delta)-DP conversion (Lemma 2, Balle et al. 2020)
//  - an accountant that composes heterogeneous steps over RDP orders and
//    reports the best epsilon (Lemma 1 composition).

#ifndef ULDP_DP_RDP_H_
#define ULDP_DP_RDP_H_

#include <vector>

#include "common/status.h"

namespace uldp {

/// RDP of the Gaussian mechanism with noise multiplier sigma at order
/// alpha > 1: rho = alpha / (2 sigma^2).
double GaussianRdp(double alpha, double sigma);

/// RDP of the Poisson-sub-sampled Gaussian mechanism at *integer* order
/// alpha >= 2, sampling probability q in [0, 1], noise multiplier sigma:
///   rho = 1/(alpha-1) * log( sum_{j=0}^{alpha} C(alpha,j) (1-q)^{alpha-j}
///                            q^j exp(j(j-1)/(2 sigma^2)) )
/// evaluated in log space. q = 1 reduces exactly to GaussianRdp.
double SubsampledGaussianRdp(int alpha, double q, double sigma);

/// Lemma 2 conversion: eps = rho + log((alpha-1)/alpha)
///                         - (log delta + log alpha)/(alpha - 1).
double RdpToDp(double alpha, double rho, double delta);

/// The default grid of RDP orders used for epsilon optimization: integers
/// 2..256 plus a coarse tail up to 4096 (large orders matter for group
/// privacy; see Lemma 6).
std::vector<int> DefaultRdpOrders();

/// Composable RDP accountant over a fixed grid of integer orders.
/// Thread-compatible; all methods are cheap.
class RdpAccountant {
 public:
  RdpAccountant();
  explicit RdpAccountant(std::vector<int> orders);

  /// Composes `count` Gaussian-mechanism steps with multiplier sigma.
  void AddGaussianSteps(double sigma, int64_t count);

  /// Composes `count` Poisson-sub-sampled Gaussian steps (rate q).
  void AddSubsampledGaussianSteps(double q, double sigma, int64_t count);

  /// Per-step RDP curves aligned with orders(), for callers that advance an
  /// accountant round-by-round and want to pay the (expensive) sub-sampled
  /// evaluation only once.
  std::vector<double> GaussianCurve(double sigma) const;
  std::vector<double> SubsampledGaussianCurve(double q, double sigma) const;
  /// Composes `count` steps of a precomputed per-step curve.
  void AddCurveSteps(const std::vector<double>& curve, int64_t count);

  /// Best (smallest) epsilon at the given delta over the order grid.
  /// Also reports the optimizing order via `best_alpha` if non-null.
  Result<double> GetEpsilon(double delta, int* best_alpha = nullptr) const;

  /// Accumulated rho at a specific order of the grid; error if the order is
  /// not on the grid. Used by the group-privacy conversion.
  Result<double> RhoAtOrder(int alpha) const;

  const std::vector<int>& orders() const { return orders_; }

 private:
  std::vector<int> orders_;
  std::vector<double> rho_;  // accumulated RDP at each order
};

}  // namespace uldp

#endif  // ULDP_DP_RDP_H_
