// Noise calibration: the inverse of the accountant. Given a target
// (eps, delta) budget, a round count, and optionally a user-level
// sub-sampling rate, finds the smallest noise multiplier sigma that stays
// within budget — the knob a deployment actually turns (the paper fixes
// sigma = 5 and reports eps; practitioners do the reverse).

#ifndef ULDP_DP_CALIBRATION_H_
#define ULDP_DP_CALIBRATION_H_

#include <cstdint>

#include "common/status.h"

namespace uldp {

/// Smallest sigma such that `rounds` compositions of the (optionally
/// q-sub-sampled) Gaussian mechanism satisfy (target_eps, delta)-DP.
/// Binary search to `tolerance` relative precision. Errors if the target
/// is unreachable below `sigma_max`.
Result<double> SigmaForTargetEpsilon(double target_eps, double delta,
                                     int64_t rounds, double q = 1.0,
                                     double sigma_max = 1e4,
                                     double tolerance = 1e-4);

/// Convenience: rounds affordable within (target_eps, delta) at fixed
/// sigma (largest T with eps(T) <= target). Errors if even one round
/// exceeds the budget.
Result<int64_t> RoundsForTargetEpsilon(double target_eps, double delta,
                                       double sigma, double q = 1.0,
                                       int64_t rounds_max = 1000000);

}  // namespace uldp

#endif  // ULDP_DP_CALIBRATION_H_
