#include "dp/accountant.h"

#include <limits>

#include "common/check.h"

namespace uldp {

Result<double> UldpGaussianEpsilon(double sigma, int64_t rounds,
                                   double delta) {
  if (sigma <= 0.0) return Status::InvalidArgument("sigma must be positive");
  RdpAccountant acc;
  acc.AddGaussianSteps(sigma, rounds);
  return acc.GetEpsilon(delta);
}

Result<double> UldpSubsampledEpsilon(double sigma, double q, int64_t rounds,
                                     double delta) {
  if (sigma <= 0.0) return Status::InvalidArgument("sigma must be positive");
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("sampling rate q must be in [0, 1]");
  }
  RdpAccountant acc;
  acc.AddSubsampledGaussianSteps(q, sigma, rounds);
  return acc.GetEpsilon(delta);
}

Result<double> UldpGroupEpsilon(double sigma, double gamma, int64_t steps,
                                int group_k, double delta,
                                GroupConversionRoute route) {
  if (sigma <= 0.0) return Status::InvalidArgument("sigma must be positive");
  if (gamma < 0.0 || gamma > 1.0) {
    return Status::InvalidArgument("record sampling rate must be in [0, 1]");
  }
  if (group_k < 1) return Status::InvalidArgument("group size must be >= 1");
  RdpAccountant acc;
  acc.AddSubsampledGaussianSteps(gamma, sigma, steps);
  int k = IsPowerOfTwo(group_k) ? group_k : PrevPowerOfTwo(group_k);
  switch (route) {
    case GroupConversionRoute::kRdp:
      return GroupPrivacyEpsilonRdp(acc, k, delta);
    case GroupConversionRoute::kNormalDp:
      return GroupPrivacyEpsilonNormalDp(acc, k, delta);
  }
  return Status::Internal("unreachable");
}

PrivacyTracker::PrivacyTracker(Kind kind, double sigma, double q,
                               int64_t steps_per_round, int group_k,
                               GroupConversionRoute route)
    : kind_(kind),
      sigma_(sigma),
      q_(q),
      steps_per_round_(steps_per_round),
      group_k_(group_k),
      route_(route) {
  switch (kind_) {
    case Kind::kGaussian:
      step_curve_ = accountant_.GaussianCurve(sigma_);
      break;
    case Kind::kSubsampled:
    case Kind::kGroup:
      step_curve_ = accountant_.SubsampledGaussianCurve(q_, sigma_);
      break;
    case Kind::kNonPrivate:
      break;
  }
}

PrivacyTracker PrivacyTracker::ForGaussian(double sigma) {
  ULDP_CHECK_GT(sigma, 0.0);
  return PrivacyTracker(Kind::kGaussian, sigma, 1.0, 1, 1,
                        GroupConversionRoute::kRdp);
}

PrivacyTracker PrivacyTracker::ForSubsampledGaussian(double sigma, double q) {
  ULDP_CHECK_GT(sigma, 0.0);
  ULDP_CHECK_GE(q, 0.0);
  ULDP_CHECK_LE(q, 1.0);
  return PrivacyTracker(Kind::kSubsampled, sigma, q, 1, 1,
                        GroupConversionRoute::kRdp);
}

PrivacyTracker PrivacyTracker::ForGroup(double sigma, double gamma,
                                        int64_t steps_per_round, int group_k,
                                        GroupConversionRoute route) {
  ULDP_CHECK_GT(sigma, 0.0);
  ULDP_CHECK_GE(group_k, 1);
  return PrivacyTracker(Kind::kGroup, sigma, gamma, steps_per_round, group_k,
                        route);
}

PrivacyTracker PrivacyTracker::NonPrivate() {
  return PrivacyTracker(Kind::kNonPrivate, 1.0, 1.0, 0, 1,
                        GroupConversionRoute::kRdp);
}

void PrivacyTracker::AdvanceRounds(int64_t rounds) {
  ULDP_CHECK_GE(rounds, 0);
  switch (kind_) {
    case Kind::kGaussian:
    case Kind::kSubsampled:
      accountant_.AddCurveSteps(step_curve_, rounds);
      break;
    case Kind::kGroup:
      accountant_.AddCurveSteps(step_curve_, rounds * steps_per_round_);
      break;
    case Kind::kNonPrivate:
      break;
  }
}

void PrivacyTracker::RecordMembershipEpoch(uint64_t epoch,
                                           uint64_t start_round,
                                           uint32_t active_silos,
                                           uint64_t user_total) {
  TrackedEpoch e;
  e.epoch = epoch;
  e.start_round = start_round;
  e.active_silos = active_silos;
  e.user_total = user_total;
  membership_epochs_.push_back(e);
}

Result<double> PrivacyTracker::EpsilonForRounds(int64_t rounds,
                                                double delta) const {
  ULDP_CHECK_GE(rounds, 0);
  if (kind_ == Kind::kNonPrivate) {
    return std::numeric_limits<double>::infinity();
  }
  RdpAccountant acc;
  int64_t steps =
      kind_ == Kind::kGroup ? rounds * steps_per_round_ : rounds;
  acc.AddCurveSteps(step_curve_, steps);
  if (kind_ == Kind::kGroup) {
    int k = IsPowerOfTwo(group_k_) ? group_k_ : PrevPowerOfTwo(group_k_);
    switch (route_) {
      case GroupConversionRoute::kRdp:
        return GroupPrivacyEpsilonRdp(acc, k, delta);
      case GroupConversionRoute::kNormalDp:
        return GroupPrivacyEpsilonNormalDp(acc, k, delta);
    }
    return Status::Internal("unreachable");
  }
  return acc.GetEpsilon(delta);
}

Result<double> PrivacyTracker::Epsilon(double delta) const {
  switch (kind_) {
    case Kind::kGaussian:
    case Kind::kSubsampled:
      return accountant_.GetEpsilon(delta);
    case Kind::kGroup: {
      int k = IsPowerOfTwo(group_k_) ? group_k_ : PrevPowerOfTwo(group_k_);
      switch (route_) {
        case GroupConversionRoute::kRdp:
          return GroupPrivacyEpsilonRdp(accountant_, k, delta);
        case GroupConversionRoute::kNormalDp:
          return GroupPrivacyEpsilonNormalDp(accountant_, k, delta);
      }
      return Status::Internal("unreachable");
    }
    case Kind::kNonPrivate:
      return std::numeric_limits<double>::infinity();
  }
  return Status::Internal("unreachable");
}

}  // namespace uldp
