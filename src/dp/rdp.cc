#include "dp/rdp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace uldp {

namespace {

// log(C(n, k)) via lgamma.
double LogBinomial(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

// Numerically stable log(sum(exp(x_i))).
double LogSumExp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

double GaussianRdp(double alpha, double sigma) {
  ULDP_CHECK_GT(alpha, 1.0);
  ULDP_CHECK_GT(sigma, 0.0);
  return alpha / (2.0 * sigma * sigma);
}

double SubsampledGaussianRdp(int alpha, double q, double sigma) {
  ULDP_CHECK_GE(alpha, 2);
  ULDP_CHECK_GT(sigma, 0.0);
  ULDP_CHECK_GE(q, 0.0);
  ULDP_CHECK_LE(q, 1.0);
  if (q == 0.0) return 0.0;
  if (q == 1.0) return GaussianRdp(alpha, sigma);

  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  std::vector<double> log_terms;
  log_terms.reserve(alpha + 1);
  for (int j = 0; j <= alpha; ++j) {
    double lt = LogBinomial(alpha, j) + (alpha - j) * log_1mq + j * log_q +
                j * (j - 1.0) / (2.0 * sigma * sigma);
    log_terms.push_back(lt);
  }
  double lse = LogSumExp(log_terms);
  // The sum is >= 1 (the j=0 and j=1 terms alone give (1-q)^a + a q (1-q)^{a-1}
  // ... <= 1, but with the exponential weights the total is >= 1), so lse >= 0
  // up to rounding; clamp tiny negatives from floating point.
  return std::max(0.0, lse) / (alpha - 1.0);
}

double RdpToDp(double alpha, double rho, double delta) {
  ULDP_CHECK_GT(alpha, 1.0);
  ULDP_CHECK_GT(delta, 0.0);
  ULDP_CHECK_LT(delta, 1.0);
  return rho + std::log((alpha - 1.0) / alpha) -
         (std::log(delta) + std::log(alpha)) / (alpha - 1.0);
}

std::vector<int> DefaultRdpOrders() {
  // Dense small orders for the plain conversions, plus enough large orders
  // divisible by powers of two that the Lemma-6 group conversion (which
  // evaluates the curve at alpha * 2^c) has candidates near its optimum.
  std::vector<int> orders;
  for (int a = 2; a <= 128; ++a) orders.push_back(a);
  for (int a = 132; a <= 512; a += 4) orders.push_back(a);
  for (int a = 528; a <= 2048; a += 16) orders.push_back(a);
  for (int a = 2112; a <= 8192; a += 64) orders.push_back(a);
  return orders;
}

RdpAccountant::RdpAccountant() : RdpAccountant(DefaultRdpOrders()) {}

RdpAccountant::RdpAccountant(std::vector<int> orders)
    : orders_(std::move(orders)), rho_(orders_.size(), 0.0) {
  ULDP_CHECK(!orders_.empty());
  for (int a : orders_) ULDP_CHECK_GE(a, 2);
  ULDP_CHECK(std::is_sorted(orders_.begin(), orders_.end()));
}

void RdpAccountant::AddGaussianSteps(double sigma, int64_t count) {
  ULDP_CHECK_GE(count, 0);
  for (size_t i = 0; i < orders_.size(); ++i) {
    rho_[i] += count * GaussianRdp(orders_[i], sigma);
  }
}

void RdpAccountant::AddSubsampledGaussianSteps(double q, double sigma,
                                               int64_t count) {
  ULDP_CHECK_GE(count, 0);
  for (size_t i = 0; i < orders_.size(); ++i) {
    rho_[i] += count * SubsampledGaussianRdp(orders_[i], q, sigma);
  }
}

std::vector<double> RdpAccountant::GaussianCurve(double sigma) const {
  std::vector<double> curve(orders_.size());
  for (size_t i = 0; i < orders_.size(); ++i) {
    curve[i] = GaussianRdp(orders_[i], sigma);
  }
  return curve;
}

std::vector<double> RdpAccountant::SubsampledGaussianCurve(
    double q, double sigma) const {
  std::vector<double> curve(orders_.size());
  for (size_t i = 0; i < orders_.size(); ++i) {
    curve[i] = SubsampledGaussianRdp(orders_[i], q, sigma);
  }
  return curve;
}

void RdpAccountant::AddCurveSteps(const std::vector<double>& curve,
                                  int64_t count) {
  ULDP_CHECK_EQ(curve.size(), orders_.size());
  ULDP_CHECK_GE(count, 0);
  for (size_t i = 0; i < orders_.size(); ++i) rho_[i] += count * curve[i];
}

Result<double> RdpAccountant::GetEpsilon(double delta, int* best_alpha) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double best = std::numeric_limits<double>::infinity();
  int arg = orders_.front();
  for (size_t i = 0; i < orders_.size(); ++i) {
    double eps = RdpToDp(orders_[i], rho_[i], delta);
    if (eps < best) {
      best = eps;
      arg = orders_[i];
    }
  }
  if (best_alpha != nullptr) *best_alpha = arg;
  return best;
}

Result<double> RdpAccountant::RhoAtOrder(int alpha) const {
  auto it = std::lower_bound(orders_.begin(), orders_.end(), alpha);
  if (it == orders_.end() || *it != alpha) {
    return Status::NotFound("order not on accountant grid: " +
                            std::to_string(alpha));
  }
  return rho_[static_cast<size_t>(it - orders_.begin())];
}

}  // namespace uldp
