#include "dp/group_privacy.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace uldp {

bool IsPowerOfTwo(int k) { return k >= 1 && (k & (k - 1)) == 0; }

int NextPowerOfTwo(int k) {
  ULDP_CHECK_GE(k, 1);
  int p = 1;
  while (p < k) p <<= 1;
  return p;
}

int PrevPowerOfTwo(int k) {
  ULDP_CHECK_GE(k, 1);
  int p = 1;
  while (p * 2 <= k) p <<= 1;
  return p;
}

Result<double> GroupPrivacyEpsilonRdp(const RdpAccountant& accountant,
                                      int group_k, double delta) {
  if (!IsPowerOfTwo(group_k)) {
    return Status::InvalidArgument("group size must be a power of two");
  }
  if (group_k == 1) return accountant.GetEpsilon(delta);
  int c = 0;
  for (int k = group_k; k > 1; k >>= 1) ++c;
  const double rho_scale = std::pow(3.0, c);

  // Group-RDP at order a requires the original curve at order a * 2^c, and
  // the original order must be >= 2^{c+1} (i.e. group order >= 2).
  double best = std::numeric_limits<double>::infinity();
  bool found = false;
  for (int orig_alpha : accountant.orders()) {
    if (orig_alpha % group_k != 0) continue;
    int group_alpha = orig_alpha / group_k;
    if (group_alpha < 2) continue;
    auto rho = accountant.RhoAtOrder(orig_alpha);
    if (!rho.ok()) continue;
    double group_rho = rho_scale * rho.value();
    double eps = RdpToDp(group_alpha, group_rho, delta);
    best = std::min(best, eps);
    found = true;
  }
  if (!found) {
    return Status::FailedPrecondition(
        "no admissible RDP order for group size " + std::to_string(group_k) +
        " on the accountant grid");
  }
  return best;
}

Result<double> GroupPrivacyEpsilonNormalDp(const RdpAccountant& accountant,
                                           int group_k, double delta,
                                           double accuracy) {
  if (group_k < 1) return Status::InvalidArgument("group size must be >= 1");
  if (group_k == 1) return accountant.GetEpsilon(delta);

  // final_delta(d2) = k * exp((k-1) * eps(d2)) * d2, where eps(d2) is the
  // record-level epsilon at internal delta d2 (Lemma 2 over the RDP curve).
  auto final_delta = [&](double log_d2, double* eps_out) -> double {
    double d2 = std::exp(log_d2);
    auto eps = accountant.GetEpsilon(d2);
    ULDP_CHECK(eps.ok());
    if (eps_out != nullptr) *eps_out = eps.value();
    // Work in log space: the factor e^{(k-1) eps} overflows doubles fast.
    double log_final =
        std::log(static_cast<double>(group_k)) + (group_k - 1) * eps.value() +
        log_d2;
    return log_final;
  };
  const double log_target = std::log(delta);

  // Binary search on log d2. final log-delta is monotone increasing in d2
  // for the regimes of interest (the d2 term dominates); bracket first.
  double lo = log_target - 200.0;
  double hi = log_target;  // d2 <= delta
  if (final_delta(lo, nullptr) > log_target) {
    return Status::FailedPrecondition(
        "normal-DP group conversion infeasible: even tiny internal delta "
        "overshoots the target (numerical instability regime)");
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (final_delta(mid, nullptr) <= log_target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  double eps_l2 = 0.0;
  double log_final = final_delta(lo, &eps_l2);
  if (std::fabs(std::exp(log_final) - delta) > accuracy &&
      std::fabs(log_final - log_target) > 1e-3) {
    return Status::Internal(
        "normal-DP group conversion did not converge to the target delta");
  }
  return group_k * eps_l2;
}

}  // namespace uldp
