// Per-algorithm ULDP privacy accounting, packaging Theorems 1-3 and
// Remark 1 (user-level sub-sampling) behind one interface that the
// trainers and the benchmark harness consume.

#ifndef ULDP_DP_ACCOUNTANT_H_
#define ULDP_DP_ACCOUNTANT_H_

#include <cstdint>

#include "common/status.h"
#include "dp/group_privacy.h"
#include "dp/rdp.h"

namespace uldp {

/// Epsilon after `rounds` rounds of ULDP-NAIVE or ULDP-AVG (Theorems 1 and
/// 3 share the same bound: each round is one user-level Gaussian mechanism
/// with multiplier sigma).
Result<double> UldpGaussianEpsilon(double sigma, int64_t rounds, double delta);

/// Epsilon for ULDP-AVG with user-level Poisson sub-sampling at rate q
/// (Algorithm 4 + Lemma 4). q = 1 reduces to UldpGaussianEpsilon.
Result<double> UldpSubsampledEpsilon(double sigma, double q, int64_t rounds,
                                     double delta);

/// Which group-privacy conversion the GROUP baseline reports.
enum class GroupConversionRoute {
  kRdp,       // Lemma 6 — used in the paper's experiments
  kNormalDp,  // Lemma 5 — numerically unstable for large k (Figure 2)
};

/// Epsilon of ULDP-GROUP-k after DP-SGD with record-level sampling rate
/// `gamma` and `steps` total noisy steps per silo (Theorem 2: parallel
/// composition across silos keeps the max, which is this value when silos
/// share parameters). If `group_k` is not a power of two, the largest
/// power of two below it is used and the result is a lower bound — exactly
/// the paper's reporting convention (§5.1).
Result<double> UldpGroupEpsilon(double sigma, double gamma, int64_t steps,
                                int group_k, double delta,
                                GroupConversionRoute route);

/// Stateful per-round tracker: trainers advance it each round and read the
/// accumulated epsilon for the metrics log. Configure exactly one of the
/// three shapes via the factory functions.
class PrivacyTracker {
 public:
  /// ULDP-NAIVE / ULDP-AVG: one Gaussian step per round.
  static PrivacyTracker ForGaussian(double sigma);
  /// ULDP-AVG with user-level sub-sampling at rate q per round.
  static PrivacyTracker ForSubsampledGaussian(double sigma, double q);
  /// ULDP-GROUP-k: `steps_per_round` record-sub-sampled steps per round at
  /// rate gamma, group conversion at reporting time.
  static PrivacyTracker ForGroup(double sigma, double gamma,
                                 int64_t steps_per_round, int group_k,
                                 GroupConversionRoute route);
  /// Non-private baseline: epsilon = +infinity.
  static PrivacyTracker NonPrivate();

  /// Accounts for `rounds` further training rounds.
  void AdvanceRounds(int64_t rounds);

  /// Epsilon spent so far at the given delta (+inf for NonPrivate).
  Result<double> Epsilon(double delta) const;

  /// One membership epoch as the accountant sees it: the participating
  /// population between two membership changes (fl/session.h seals these;
  /// the manager in net/membership.h forwards them here so accounted
  /// epsilon can be attributed to the users actually present).
  struct TrackedEpoch {
    uint64_t epoch = 0;
    uint64_t start_round = 0;
    uint32_t active_silos = 0;
    uint64_t user_total = 0;
  };

  /// Records a membership change. The composition bound itself is
  /// population-independent (every round is one user-level mechanism for
  /// whoever participates), so this only logs; EpsilonForRounds answers
  /// per-epoch exposure questions over the log.
  void RecordMembershipEpoch(uint64_t epoch, uint64_t start_round,
                             uint32_t active_silos, uint64_t user_total);
  const std::vector<TrackedEpoch>& membership_epochs() const {
    return membership_epochs_;
  }

  /// Epsilon a user would spend participating in exactly `rounds` rounds
  /// (independent of this tracker's advanced state) — the per-epoch
  /// exposure of a silo that joined late or left early.
  Result<double> EpsilonForRounds(int64_t rounds, double delta) const;

 private:
  enum class Kind { kGaussian, kSubsampled, kGroup, kNonPrivate };

  PrivacyTracker(Kind kind, double sigma, double q, int64_t steps_per_round,
                 int group_k, GroupConversionRoute route);

  Kind kind_;
  double sigma_;
  double q_;
  int64_t steps_per_round_;
  int group_k_;
  GroupConversionRoute route_;
  RdpAccountant accountant_;
  std::vector<double> step_curve_;  // per-step RDP curve, computed once
  std::vector<TrackedEpoch> membership_epochs_;
};

}  // namespace uldp

#endif  // ULDP_DP_ACCOUNTANT_H_
