#include "dp/calibration.h"

#include "dp/accountant.h"

namespace uldp {

namespace {

Result<double> EpsilonAt(double sigma, double delta, int64_t rounds,
                         double q) {
  if (q < 1.0) return UldpSubsampledEpsilon(sigma, q, rounds, delta);
  return UldpGaussianEpsilon(sigma, rounds, delta);
}

}  // namespace

Result<double> SigmaForTargetEpsilon(double target_eps, double delta,
                                     int64_t rounds, double q,
                                     double sigma_max, double tolerance) {
  if (target_eps <= 0.0) {
    return Status::InvalidArgument("target epsilon must be positive");
  }
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (q <= 0.0 || q > 1.0) {
    return Status::InvalidArgument("q must be in (0, 1]");
  }
  double lo = 1e-3, hi = sigma_max;
  auto eps_hi = EpsilonAt(hi, delta, rounds, q);
  ULDP_RETURN_IF_ERROR(eps_hi.status());
  if (eps_hi.value() > target_eps) {
    return Status::OutOfRange(
        "target epsilon unreachable below sigma_max; raise sigma_max or "
        "relax the budget");
  }
  // Epsilon is decreasing in sigma: standard bisection.
  while (hi - lo > tolerance * hi) {
    double mid = 0.5 * (lo + hi);
    auto eps = EpsilonAt(mid, delta, rounds, q);
    ULDP_RETURN_IF_ERROR(eps.status());
    if (eps.value() <= target_eps) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

Result<int64_t> RoundsForTargetEpsilon(double target_eps, double delta,
                                       double sigma, double q,
                                       int64_t rounds_max) {
  if (sigma <= 0.0) return Status::InvalidArgument("sigma must be positive");
  auto one = EpsilonAt(sigma, delta, 1, q);
  ULDP_RETURN_IF_ERROR(one.status());
  if (one.value() > target_eps) {
    return Status::OutOfRange("even one round exceeds the epsilon budget");
  }
  // Epsilon is increasing in rounds: exponential bracket then bisection.
  int64_t lo = 1, hi = 1;
  while (hi < rounds_max) {
    int64_t next = std::min(rounds_max, hi * 2);
    auto eps = EpsilonAt(sigma, delta, next, q);
    ULDP_RETURN_IF_ERROR(eps.status());
    if (eps.value() > target_eps) {
      hi = next;
      break;
    }
    lo = next;
    hi = next;
    if (next == rounds_max) return rounds_max;
  }
  while (hi - lo > 1) {
    int64_t mid = lo + (hi - lo) / 2;
    auto eps = EpsilonAt(sigma, delta, mid, q);
    ULDP_RETURN_IF_ERROR(eps.status());
    if (eps.value() <= target_eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace uldp
