// Group-privacy conversions: record-level DP to (k, eps, delta)-Group DP
// (Definition 3). Two routes, mirroring the paper's Figure 2:
//
//  1. RDP route (Lemma 6, Mironov'17): if f is (alpha, rho)-RDP then for a
//     group of size k = 2^c it is (alpha / 2^c, 3^c * rho)-RDP, requiring
//     the original order to be >= 2^{c+1}. Convert the group-RDP curve to
//     (eps, delta) with Lemma 2.
//
//  2. Normal-DP route (Lemma 5, Kamath'20): if f is (eps, delta')-DP it is
//     (k, k*eps, k*e^{(k-1)eps} delta')-GDP. Finding the eps at a *fixed*
//     final delta requires searching over the delta split; we mirror the
//     binary-search procedure of the reference implementation
//     (get_normal_group_privacy_spent, accuracy 1e-8).

#ifndef ULDP_DP_GROUP_PRIVACY_H_
#define ULDP_DP_GROUP_PRIVACY_H_

#include "common/status.h"
#include "dp/rdp.h"

namespace uldp {

/// Epsilon of (k, eps, delta)-GDP via the RDP group-privacy property
/// (Lemma 6). `accountant` holds the composed record-level RDP curve.
/// `group_k` must be a power of two (callers round up, as the paper does
/// when reporting lower bounds for non-power-of-2 k). Returns the smallest
/// eps over admissible orders.
Result<double> GroupPrivacyEpsilonRdp(const RdpAccountant& accountant,
                                      int group_k, double delta);

/// Epsilon of (k, eps, delta)-GDP via normal-DP conversion (Lemma 5),
/// binary-searching the internal delta split so the final delta matches
/// `delta` to within `accuracy`.
Result<double> GroupPrivacyEpsilonNormalDp(const RdpAccountant& accountant,
                                           int group_k, double delta,
                                           double accuracy = 1e-8);

/// True iff k is a positive power of two.
bool IsPowerOfTwo(int k);

/// Smallest power of two >= k (used when reporting GDP lower bounds for
/// non-power-of-two group sizes, the paper instead uses the largest power
/// of two <= k to showcase a lower bound; both helpers are provided).
int NextPowerOfTwo(int k);
int PrevPowerOfTwo(int k);

}  // namespace uldp

#endif  // ULDP_DP_GROUP_PRIVACY_H_
