// Deterministic demo inputs for the distributed Protocol 1 driver: every
// party (server with --verify, each silo client, the bench, the tests)
// derives the same synthetic histograms/deltas/noise from one seed, so a
// distributed run can be checked bitwise against the in-process simulation
// without shipping data files around.

#ifndef ULDP_NET_DEMO_H_
#define ULDP_NET_DEMO_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "core/protocol_party.h"
#include "net/async_rounds.h"
#include "net/protocol_node.h"
#include "net/transport.h"
#include "nn/tensor.h"

namespace uldp {
namespace net {

/// Synthetic protocol inputs: histograms[s][u] in [0, 4], Gaussian deltas
/// for (silo, user) pairs with records, Gaussian noise per silo.
struct DemoInputs {
  std::vector<std::vector<int>> histograms;  // [silo][user]
  std::vector<std::vector<Vec>> deltas;      // [silo][user]
  std::vector<Vec> noise;                    // [silo]
};

DemoInputs MakeDemoInputs(uint64_t seed, int num_silos, int num_users,
                          int dim);

/// Runs one silo client over `transport` with its slice of
/// MakeDemoInputs(inputs_seed, ...) as the round input (the same deltas
/// every round). Returns when the server shuts the run down.
Status RunDemoSilo(const ProtocolConfig& config, int silo_id, int num_silos,
                   int num_users, int dim, uint64_t inputs_seed,
                   Transport& transport);

/// Deterministic async-round demo work for silo `silo`: the delta is a
/// pure function of (version, silo, pulled params) — a contraction toward
/// the origin plus Fork(version, silo)-keyed Gaussian noise — so any
/// driver (local engine, channel transport, loopback TCP) computing the
/// same (version, silo) task produces bitwise-identical deltas. The
/// params-dependence makes staleness observable: a delta computed against
/// an old snapshot differs from a fresh one. `sleep_seconds` injects a
/// compute-time straggler for the bench.
std::function<Status(uint64_t version, const Vec& params, Vec* delta)>
MakeAsyncDemoWork(uint64_t seed, int silo, int dim,
                  double sleep_seconds = 0.0);

/// Fault-injection and elastic-membership knobs for the async demo silo.
struct AsyncDemoOptions {
  /// Compute-time straggler injection (the bench's knob).
  double sleep_seconds = 0.0;
  /// >= 0: crash (close the transport mid-run without a goodbye) when
  /// released with this version — the eviction drill.
  int64_t fail_at_version = -1;
  /// >= 0: join elastically, asking for a model version >= this.
  int64_t join_at_version = -1;
  /// >= 0: leave voluntarily when released with this version.
  int64_t leave_at_version = -1;
  /// Users announced on an elastic join.
  uint32_t user_count = 1;
};

/// Runs one async-round silo client over `transport` with the demo work.
Status RunAsyncDemoSilo(const AsyncRoundsConfig& config, int silo_id,
                        int num_silos, int dim, Transport& transport,
                        const AsyncDemoOptions& options = {});

/// Back-compat overload taking just the straggler knob.
Status RunAsyncDemoSilo(const AsyncRoundsConfig& config, int silo_id,
                        int num_silos, int dim, Transport& transport,
                        double sleep_seconds);

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_DEMO_H_
