// Transport abstraction for the cross-silo protocol: a bidirectional,
// blocking, frame-oriented channel between one silo and the server.
//
// Two backends:
//   * ChannelTransport — an in-process queue pair for tests and
//     single-machine simulations. Frames are serialized to wire bytes and
//     decoded on receive, so the codec path (and the byte counters) are
//     exercised identically to a real network.
//   * TcpTransport (net/tcp.h) — blocking POSIX sockets, loopback-tested.
//
// Both endpoints count bytes sent/received (wire bytes, frame headers
// included) so the bench can report bytes-on-the-wire per phase.

#ifndef ULDP_NET_TRANSPORT_H_
#define ULDP_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "common/status.h"
#include "net/wire.h"

namespace uldp {
namespace net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame; blocks until the frame is handed to the backend.
  virtual Status Send(const Frame& frame) = 0;
  /// Blocks until a full frame arrives. Errors on close, disconnect, or a
  /// malformed/truncated frame.
  virtual Result<Frame> Recv() = 0;
  /// Closes both directions; pending and future Recv calls fail.
  virtual void Close() = 0;

  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;
};

/// In-process transport: a pair of endpoints connected by two one-way
/// frame queues (mutex + condvar; senders never block on capacity).
class ChannelTransport : public Transport {
 public:
  /// Creates a connected endpoint pair; either side may be handed to
  /// another thread.
  static std::pair<std::unique_ptr<ChannelTransport>,
                   std::unique_ptr<ChannelTransport>>
  CreatePair();

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  void Close() override;
  uint64_t bytes_sent() const override { return sent_.load(); }
  uint64_t bytes_received() const override { return received_.load(); }

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> frames;
    bool closed = false;
  };

  ChannelTransport(std::shared_ptr<Queue> tx, std::shared_ptr<Queue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Queue> tx_, rx_;
  std::atomic<uint64_t> sent_{0}, received_{0};
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_TRANSPORT_H_
