// Transport abstraction for the cross-silo protocol: a bidirectional,
// blocking, frame-oriented channel between one silo and the server.
//
// Two backends:
//   * ChannelTransport — an in-process queue pair for tests and
//     single-machine simulations. Frames are serialized to wire bytes and
//     decoded on receive, so the codec path (and the byte counters) are
//     exercised identically to a real network.
//   * TcpTransport (net/tcp.h) — blocking POSIX sockets, loopback-tested.
//
// Both endpoints count bytes sent/received (wire bytes, frame headers
// included) so the bench can report bytes-on-the-wire per phase. The
// counters live on the metrics registry (src/obs): per-connection
// accessors read this object's own instances (exact, as before) while a
// registry snapshot reports fleet totals across live and closed
// connections under net.transport.*.

#ifndef ULDP_NET_TRANSPORT_H_
#define ULDP_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "common/status.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace uldp {
namespace net {

/// Observer of the exact wire bytes crossing a transport, in both
/// directions — the recording hook behind tamper-evident run transcripts
/// (net/transcript.h). A sink bound to several transports receives each
/// frame tagged with the peer id it was bound under; implementations must
/// be thread-safe (sends and receives tap from different threads).
class TranscriptSink {
 public:
  virtual ~TranscriptSink() = default;
  /// One complete frame exactly as encoded on the wire (header included).
  /// `sent` is from the local party's perspective.
  virtual void RecordFrame(uint32_t peer_id, bool sent, const uint8_t* data,
                           size_t size) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame; blocks until the frame is handed to the backend.
  virtual Status Send(const Frame& frame) = 0;
  /// Blocks until a full frame arrives. Errors on close, disconnect, or a
  /// malformed/truncated frame.
  virtual Result<Frame> Recv() = 0;
  /// Closes both directions; pending and future Recv calls fail.
  virtual void Close() = 0;
  /// Unblocks any thread stuck in Recv without tearing the object down
  /// (the event-loop shutdown path, net/mux.h). Backends where Close is
  /// already safe against a concurrent Recv just close.
  virtual void Interrupt() { Close(); }

  /// Kernel handle for event-loop integration (net/mux.h); -1 when the
  /// backend has none (ChannelTransport).
  virtual int NativeHandle() const { return -1; }

  /// Non-blocking read step for event loops: consume whatever bytes are
  /// available and return true with a complete frame, false when the read
  /// would block mid-frame, or the same terminal errors Recv produces.
  /// Only meaningful on backends with a NativeHandle; the default says so.
  virtual Result<bool> TryReadFrame(Frame* out) {
    (void)out;
    return Status::Unimplemented(
        "this transport has no non-blocking read path");
  }

  uint64_t bytes_sent() const { return sent_bytes_.value(); }
  uint64_t bytes_received() const { return received_bytes_.value(); }

  /// Per-connection receive cap on one frame's payload: an incoming frame
  /// whose header announces more than this is rejected before any payload
  /// allocation. Clamped to [kFrameHeaderSize, kMaxFramePayload]; the
  /// default is kDefaultMaxFramePayload (--max-frame-bytes on the CLI).
  void set_max_frame_payload(uint32_t cap) {
    if (cap < 1024) cap = 1024;
    if (cap > kMaxFramePayload) cap = kMaxFramePayload;
    max_frame_payload_.store(cap, std::memory_order_relaxed);
  }
  uint32_t max_frame_payload() const {
    return max_frame_payload_.load(std::memory_order_relaxed);
  }

  /// Receive deadline in milliseconds (0 = none). Set by the TCP backend's
  /// SetRecvTimeout; the event-loop mux reads it to enforce the same
  /// deadline on its waiters.
  int recv_timeout_ms() const {
    return recv_timeout_ms_.load(std::memory_order_relaxed);
  }

  /// Largest single frame seen in either direction (wire bytes, header
  /// included) — the stream-scaling bench's per-chunk byte ceiling. Backed
  /// by a max-aggregated registry gauge, so a snapshot reports the fleet
  /// high-water mark while this accessor stays per-connection.
  uint64_t largest_frame_bytes() const {
    return static_cast<uint64_t>(largest_frame_.value());
  }
  /// Returns largest_frame_bytes() and resets the window, so a caller can
  /// measure the largest frame of one protocol phase (e.g. the weighting
  /// rounds, excluding the setup handshake) in isolation.
  uint64_t TakeLargestFrame() {
    return static_cast<uint64_t>(largest_frame_.Exchange(0));
  }

  /// Attaches a transcript recorder: every frame subsequently sent or
  /// received on this transport is reported to `sink` as the exact wire
  /// bytes, tagged with `peer_id`. Bind before any traffic flows (the CLI
  /// binds right after accept/connect); a null sink detaches. The tap is
  /// strictly passive — it observes encoded bytes and never alters them,
  /// so recorded and unrecorded runs are bitwise identical.
  void BindTranscript(std::shared_ptr<TranscriptSink> sink,
                      uint32_t peer_id) {
    transcript_peer_ = peer_id;
    std::atomic_store_explicit(&transcript_, std::move(sink),
                               std::memory_order_release);
  }

 protected:
  /// Backends call these with the full encoded frame (header + payload)
  /// at the moment it hits — or arrives from — the wire.
  void TapSent(const uint8_t* data, size_t size) {
    auto sink = std::atomic_load_explicit(&transcript_,
                                          std::memory_order_acquire);
    if (sink != nullptr) sink->RecordFrame(transcript_peer_, true, data, size);
  }
  void TapReceived(const uint8_t* data, size_t size) {
    auto sink = std::atomic_load_explicit(&transcript_,
                                          std::memory_order_acquire);
    if (sink != nullptr) {
      sink->RecordFrame(transcript_peer_, false, data, size);
    }
  }
  bool transcript_bound() const {
    return std::atomic_load_explicit(&transcript_,
                                     std::memory_order_acquire) != nullptr;
  }
  void NoteFrame(uint64_t wire_bytes) {
    largest_frame_.SetMax(static_cast<int64_t>(wire_bytes));
    frame_bytes_.Record(wire_bytes);
  }
  void NoteSent(uint64_t n) { sent_bytes_.Add(n); }
  void NoteReceived(uint64_t n) { received_bytes_.Add(n); }
  void set_recv_timeout_ms(int ms) {
    recv_timeout_ms_.store(ms, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<TranscriptSink> transcript_;  // atomic free-function access
  uint32_t transcript_peer_ = 0;
  std::atomic<uint32_t> max_frame_payload_{kDefaultMaxFramePayload};
  std::atomic<int> recv_timeout_ms_{0};
  obs::Counter sent_bytes_{"net.transport.bytes_sent"};
  obs::Counter received_bytes_{"net.transport.bytes_received"};
  obs::Gauge largest_frame_{"net.transport.largest_frame_bytes",
                            obs::Gauge::Agg::kMax};
  obs::Histogram frame_bytes_{"net.transport.frame_bytes"};
};

/// In-process transport: a pair of endpoints connected by two one-way
/// frame queues (mutex + condvar; senders never block on capacity).
class ChannelTransport : public Transport {
 public:
  /// Creates a connected endpoint pair; either side may be handed to
  /// another thread.
  static std::pair<std::unique_ptr<ChannelTransport>,
                   std::unique_ptr<ChannelTransport>>
  CreatePair();

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  void Close() override;

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> frames;
    bool closed = false;
  };

  ChannelTransport(std::shared_ptr<Queue> tx, std::shared_ptr<Queue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Queue> tx_, rx_;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_TRANSPORT_H_
