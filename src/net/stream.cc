#include "net/stream.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uldp {
namespace net {

namespace {

uint32_t ChunkCountFor(size_t total, uint32_t chunk_elems) {
  if (total == 0) return 0;
  return static_cast<uint32_t>((total + chunk_elems - 1) / chunk_elems);
}

std::string KindName(uint8_t kind) {
  switch (static_cast<StreamKind>(kind)) {
    case StreamKind::kEncWeights:
      return "enc-weights";
    case StreamKind::kSiloCipher:
      return "silo-cipher";
    case StreamKind::kMaskedVector:
      return "masked-vector";
  }
  return "kind-" + std::to_string(static_cast<int>(kind));
}

/// Static span names (the trace buffer stores pointers, not copies).
const char* ChunkSpanName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kEncWeights:
      return "stream.chunk.enc_weights";
    case StreamKind::kSiloCipher:
      return "stream.chunk.silo_cipher";
    case StreamKind::kMaskedVector:
      return "stream.chunk.masked_vector";
  }
  return "stream.chunk";
}

const char* FoldSpanName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kEncWeights:
      return "stream.fold.enc_weights";
    case StreamKind::kSiloCipher:
      return "stream.fold.silo_cipher";
    case StreamKind::kMaskedVector:
      return "stream.fold.masked_vector";
  }
  return "stream.fold";
}

}  // namespace

Status SendChunkedStream(
    size_t total_count, const StreamSendOptions& opts,
    const std::function<Result<std::vector<BigInt>>(size_t c0, size_t c1)>&
        make_chunk,
    const std::function<Status(const Frame&)>& send,
    const std::function<Result<Frame>()>& recv) {
  if (opts.chunk_elems <= 0) {
    return Status::InvalidArgument("stream: chunk_elems must be > 0");
  }
  if (opts.window <= 0) {
    return Status::InvalidArgument("stream: window must be > 0");
  }
  const uint32_t chunk_elems = static_cast<uint32_t>(opts.chunk_elems);
  const uint32_t chunk_count = ChunkCountFor(total_count, chunk_elems);

  // Per-kind stream metrics; instances fold into the registry's retained
  // aggregates when the stream finishes, so totals accumulate per kind.
  const std::string metric_base =
      "net.stream." + KindName(static_cast<uint8_t>(opts.kind));
  obs::Counter chunks_sent(metric_base + ".chunks_sent");
  obs::Counter chunk_bytes(metric_base + ".chunk_bytes");
  obs::Histogram ack_wait_ns(metric_base + ".ack_wait_ns");

  StreamBeginMsg begin;
  begin.phase_tag = opts.phase_tag;
  begin.kind = static_cast<uint8_t>(opts.kind);
  begin.sender_id = opts.sender_id;
  begin.total_count = static_cast<uint32_t>(total_count);
  begin.chunk_elems = chunk_elems;
  begin.dim = opts.dim;
  ULDP_RETURN_IF_ERROR(send(ToFrame(begin)));

  // One ack returns `credits` send permits; drain acks whenever the window
  // is full, and once more per outstanding chunk at the end so the
  // receiver's completion is confirmed before the caller moves on.
  int in_flight = 0;
  auto await_ack = [&]() -> Status {
    obs::ScopedTimerNs timer(&ack_wait_ns);
    auto frame = recv();
    if (!frame.ok()) return frame.status();
    if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "stream peer");
    }
    auto ack = FromFrame<StreamAckMsg>(frame.value());
    if (!ack.ok()) return ack.status();
    if (ack.value().phase_tag != opts.phase_tag ||
        ack.value().kind != static_cast<uint8_t>(opts.kind)) {
      return Status::InvalidArgument(
          "stream: ack for a different stream (kind " +
          KindName(ack.value().kind) + ")");
    }
    const int credits = static_cast<int>(std::max(1u, ack.value().credits));
    in_flight -= std::min(in_flight, credits);
    return Status::Ok();
  };

  for (uint32_t index = 0; index < chunk_count; ++index) {
    while (in_flight >= opts.window) {
      ULDP_RETURN_IF_ERROR(await_ack());
    }
    obs::TraceSpan span(ChunkSpanName(opts.kind), "index",
                        static_cast<int64_t>(index));
    const size_t c0 = static_cast<size_t>(index) * chunk_elems;
    const size_t c1 = std::min(total_count, c0 + chunk_elems);
    auto values = make_chunk(c0, c1);
    if (!values.ok()) return values.status();
    if (values.value().size() != c1 - c0) {
      return Status::Internal(
          "stream: make_chunk produced " +
          std::to_string(values.value().size()) + " elements for [" +
          std::to_string(c0) + ", " + std::to_string(c1) + ")");
    }
    StreamChunkMsg chunk;
    chunk.phase_tag = opts.phase_tag;
    chunk.kind = static_cast<uint8_t>(opts.kind);
    chunk.index = index;
    chunk.values = std::move(values.value());
    Frame frame = ToFrame(chunk);
    chunks_sent.Add(1);
    chunk_bytes.Add(kFrameHeaderSize + frame.payload.size());
    ULDP_RETURN_IF_ERROR(send(frame));
    ++in_flight;
  }
  while (in_flight > 0) {
    ULDP_RETURN_IF_ERROR(await_ack());
  }
  return Status::Ok();
}

Status SendChunkedBigVec(const std::vector<BigInt>& values,
                         const StreamSendOptions& opts,
                         const std::function<Status(const Frame&)>& send,
                         const std::function<Result<Frame>()>& recv) {
  return SendChunkedStream(
      values.size(), opts,
      [&values](size_t c0, size_t c1) -> Result<std::vector<BigInt>> {
        return std::vector<BigInt>(values.begin() + static_cast<long>(c0),
                                   values.begin() + static_cast<long>(c1));
      },
      send, recv);
}

Result<ChunkStreamReceiver> ChunkStreamReceiver::Create(
    const StreamBeginMsg& begin, StreamKind expect_kind,
    uint64_t expect_phase_tag, size_t expect_total,
    uint32_t expect_chunk_elems) {
  if (begin.kind != static_cast<uint8_t>(expect_kind)) {
    return Status::InvalidArgument(
        "stream: begin kind " + KindName(begin.kind) + " (expected " +
        KindName(static_cast<uint8_t>(expect_kind)) + ")");
  }
  if (begin.phase_tag != expect_phase_tag) {
    return Status::InvalidArgument(
        "stream: begin phase tag mismatch (wrong phase or round)");
  }
  if (begin.total_count != expect_total) {
    return Status::InvalidArgument(
        "stream: announced " + std::to_string(begin.total_count) +
        " elements, expected " + std::to_string(expect_total));
  }
  if (begin.chunk_elems == 0) {
    return Status::InvalidArgument("stream: chunk_elems must be > 0");
  }
  if (expect_chunk_elems > 0 && begin.chunk_elems != expect_chunk_elems) {
    return Status::InvalidArgument(
        "stream: chunk size " + std::to_string(begin.chunk_elems) +
        " disagrees with the configured " +
        std::to_string(expect_chunk_elems));
  }
  ChunkStreamReceiver receiver;
  receiver.phase_tag_ = begin.phase_tag;
  receiver.kind_ = static_cast<StreamKind>(begin.kind);
  receiver.total_count_ = begin.total_count;
  receiver.chunk_elems_ = begin.chunk_elems;
  receiver.chunk_count_ = ChunkCountFor(begin.total_count, begin.chunk_elems);
  return receiver;
}

Result<StreamAckMsg> ChunkStreamReceiver::Feed(
    StreamChunkMsg chunk,
    const std::function<Status(std::vector<BigInt>&&, size_t offset)>&
        fold) {
  if (chunk.kind != static_cast<uint8_t>(kind_)) {
    return Status::InvalidArgument(
        "stream: chunk kind " + KindName(chunk.kind) +
        " on a " + KindName(static_cast<uint8_t>(kind_)) + " stream");
  }
  if (chunk.phase_tag != phase_tag_) {
    return Status::InvalidArgument(
        "stream: chunk phase tag mismatch (wrong phase or round)");
  }
  if (next_index_ == chunk_count_) {
    return Status::InvalidArgument(
        "stream: chunk " + std::to_string(chunk.index) +
        " after the stream completed");
  }
  if (chunk.index != next_index_) {
    const bool replay = chunk.index < next_index_;
    return Status::InvalidArgument(
        std::string("stream: ") +
        (replay ? "duplicate or reordered" : "missing or reordered") +
        " chunk (got index " + std::to_string(chunk.index) + ", expected " +
        std::to_string(next_index_) + ")");
  }
  const size_t offset = static_cast<size_t>(chunk.index) * chunk_elems_;
  const size_t expect_size =
      std::min<size_t>(chunk_elems_, total_count_ - offset);
  if (chunk.values.size() != expect_size) {
    return Status::InvalidArgument(
        "stream: chunk " + std::to_string(chunk.index) + " carries " +
        std::to_string(chunk.values.size()) + " elements, expected " +
        std::to_string(expect_size));
  }
  obs::TraceSpan span(FoldSpanName(kind_), "index",
                      static_cast<int64_t>(chunk.index));
  ULDP_RETURN_IF_ERROR(fold(std::move(chunk.values), offset));
  StreamAckMsg ack;
  ack.phase_tag = phase_tag_;
  ack.kind = static_cast<uint8_t>(kind_);
  ack.index = next_index_;
  ack.credits = 1;
  ++next_index_;
  return ack;
}

}  // namespace net
}  // namespace uldp
