// Tamper-evident run transcripts: an append-only, hash-chained log of
// every frame a party sent or received, written in the same
// digest-guarded atomic-rename discipline as the session checkpoints
// (fl/session.h), plus a deterministic replay verifier.
//
// Three layers of evidence, each catching what the previous cannot:
//
//   1. Trailing FNV-64 digest (like the ULSS checkpoint codec): rejects
//      accidental corruption and truncation before any parsing happens.
//   2. SHA-256 hash chain: entry i's hash covers the previous entry's
//      hash, the sequence number, the peer id, the direction, and the
//      exact wire bytes — so any edit, reorder, drop, or splice of
//      recorded frames breaks the chain even if the attacker fixes up
//      the trailing digest. An optional HMAC-SHA256 over the chain head
//      (crypto/hmac.h) defeats the remaining move: re-hashing the whole
//      doctored chain, which requires the recording key.
//   3. Deterministic replay: the recorded inbound frames are fed back
//      through the real ProtocolServer / silo driver and every frame the
//      party produces is compared byte-for-byte against the recorded
//      outbound traffic. This catches the one forgery hashing cannot: a
//      transcript that was honestly re-recorded around a substituted,
//      perfectly well-formed frame. The protocol's determinism contract
//      (core/protocol_party.h: every random value is a Fork substream of
//      the public seed) is what makes byte-exact replay possible at all.
//
// Per-connection frame order in each direction is deterministic (the
// protocol is a lockstep request/response per peer); the interleaving
// across connections and across directions is not, so the replayer
// consumes each (peer, direction) subsequence independently and never
// compares cross-connection order.

#ifndef ULDP_NET_TRANSCRIPT_H_
#define ULDP_NET_TRANSCRIPT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/protocol_party.h"
#include "crypto/sha256.h"
#include "net/transport.h"

namespace uldp {
namespace net {

/// Which side of which protocol recorded the transcript. The protocol
/// roles replay fully; the async roles verify chain + HMAC only (async
/// round arrival order is load-dependent, so no byte-exact replay).
enum class TranscriptRole : uint8_t {
  kProtocolServer = 0,
  kProtocolSilo = 1,
  kAsyncServer = 2,
  kAsyncSilo = 3,
};

const char* TranscriptRoleName(TranscriptRole role);

/// Everything a verifier needs to re-run the recorded party: the cohort
/// shape, the round count, and the wire-relevant protocol knobs (the
/// same fields ProtocolWireDigest covers, so the stored config_digest
/// cross-checks the reconstruction against default drift). Party-local
/// knobs with bitwise-identical outputs (num_threads, fast_paillier,
/// fixed_base, pipeline) are deliberately absent.
struct TranscriptMeta {
  TranscriptRole role = TranscriptRole::kProtocolServer;
  uint32_t silo_id = 0;  // recording party's silo id; 0 for servers
  uint32_t num_silos = 0;
  uint32_t num_users = 0;
  uint32_t dim = 0;
  uint64_t rounds = 0;  // rounds the server drove; 0 for silo roles
  uint64_t seed = 0;    // protocol seed; also the demo-input seed
  /// ProtocolWireDigest(config, num_silos, num_users) at record time.
  uint64_t config_digest = 0;
  uint32_t paillier_bits = 1024;
  uint32_t n_max = 100;
  double precision = 1e-10;
  uint32_t ot_slots = 0;
  double ot_sample_rate = 1.0;
  uint32_t ot_group_bits = 384;
  uint8_t cache_enc_weights = 0;
  uint32_t pack_slots = 1;
  double pack_clip = 64.0;
  uint32_t stream_chunk_users = 0;
  uint32_t stream_chunk_coords = 0;
  uint32_t stream_window = 0;

  /// Rebuilds the config the recorded party ran with (wire-relevant
  /// fields from this meta, party-local fields at their defaults).
  ProtocolConfig ToProtocolConfig() const;
  static TranscriptMeta FromProtocolConfig(const ProtocolConfig& config,
                                           TranscriptRole role,
                                           uint32_t silo_id, int num_silos,
                                           int num_users, int dim,
                                           uint64_t rounds);

  /// Canonical serialization — both the file layout and the hash-chain
  /// genesis input, so the chain is bound to the meta it was recorded
  /// under (editing the meta breaks every entry hash).
  std::vector<uint8_t> Serialized() const;
};

/// One recorded frame: the exact wire bytes (header included) plus the
/// chain value after absorbing it.
struct TranscriptEntry {
  uint64_t seq = 0;
  uint32_t peer = 0;
  uint8_t sent = 0;  // 1 = the recording party sent it
  std::vector<uint8_t> frame;
  Sha256Digest hash{};
};

/// Chain genesis: SHA-256 of the serialized meta.
Sha256Digest TranscriptGenesis(const TranscriptMeta& meta);

/// One chain step: SHA-256 over prev || seq (LE u64) || peer (LE u32) ||
/// sent (u8) || frame bytes.
Sha256Digest TranscriptEntryHash(const Sha256Digest& prev, uint64_t seq,
                                 uint32_t peer, bool sent,
                                 const uint8_t* frame, size_t size);

/// A transcript as stored on disk. Serialize writes the fields verbatim
/// (stored hashes included, not recomputed) so a verifier sees exactly
/// what the file claims; VerifyChain is what recomputes.
struct TranscriptFile {
  TranscriptMeta meta;
  std::vector<TranscriptEntry> entries;
  Sha256Digest head{};
  uint8_t has_hmac = 0;
  Sha256Digest hmac{};

  /// ULTR v1 layout: magic, version, has_hmac, meta, entry count,
  /// entries, chain head, optional HMAC, trailing FNV-64 digest over all
  /// of the above (checked before parsing, like the session codec).
  std::vector<uint8_t> Serialize() const;
  static Result<TranscriptFile> Deserialize(const std::vector<uint8_t>& bytes);

  /// Atomic tmp+rename write / chunked read, NotFound on a missing path
  /// (same discipline as SessionState).
  Status WriteFile(const std::string& path) const;
  static Result<TranscriptFile> ReadFile(const std::string& path);

  /// Recomputes the whole chain from genesis: every stored entry hash,
  /// sequence number, and the head must match.
  Status VerifyChain() const;
  /// Checks the keyed finalizer HMAC(key, head). Fails when the file
  /// carries no HMAC; comparison is constant-time.
  Status VerifyHmac(const std::vector<uint8_t>& key) const;
};

/// The live recorder: a thread-safe TranscriptSink that appends entries
/// and advances the chain as frames cross the transports it is bound to
/// (Transport::BindTranscript). One log per party per run; bind it to
/// every connection with that connection's peer id.
class TranscriptLog : public TranscriptSink {
 public:
  /// A non-empty `hmac_key` makes Snapshot emit the keyed finalizer.
  explicit TranscriptLog(TranscriptMeta meta,
                         std::vector<uint8_t> hmac_key = {});

  void RecordFrame(uint32_t peer_id, bool sent, const uint8_t* data,
                   size_t size) override;

  /// The transcript as of now (entries recorded so far, head, HMAC).
  TranscriptFile Snapshot() const;
  /// Snapshot + atomic write — safe to call on failure paths mid-run;
  /// the partial transcript still chain-verifies.
  Status WriteFile(const std::string& path) const;
  size_t entry_count() const;

 private:
  mutable std::mutex mu_;
  TranscriptMeta meta_;
  std::vector<uint8_t> hmac_key_;
  std::vector<TranscriptEntry> entries_;
  Sha256Digest head_;
};

/// A Transport whose traffic is a recorded transcript: Recv feeds the
/// recorded inbound frames in order, Send byte-compares the party's
/// output against the recorded outbound frames. The first mismatch is
/// latched as `divergence` and fails the send, so the driver aborts with
/// the real reason. State is shared out so the verifier can inspect
/// completeness even after the driver destroys the transport (a rejected
/// replayed join consumes its transport inside AddConnection).
class ReplayTransport final : public Transport {
 public:
  struct State {
    std::mutex mu;
    std::deque<std::vector<uint8_t>> inbound;   // frames the party received
    std::deque<std::vector<uint8_t>> outbound;  // frames the party sent
    Status divergence = Status::Ok();
    uint64_t fed = 0;      // inbound frames consumed
    uint64_t matched = 0;  // outbound frames reproduced byte-for-byte
    bool closed = false;
  };

  explicit ReplayTransport(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  void Close() override;

 private:
  std::shared_ptr<State> state_;
};

struct ReplayReport {
  uint64_t entries = 0;
  uint64_t frames_matched = 0;  // outbound reproduced byte-for-byte
  uint64_t frames_fed = 0;      // recorded inbound consumed
  bool replay_skipped = false;  // async role: chain/HMAC evidence only
  bool hmac_verified = false;
  bool hmac_skipped = false;    // HMAC present but no key supplied
};

/// Replays a chain-valid transcript through the real party driver
/// (ProtocolServer for the server role, the demo silo client for the
/// silo role) and requires every recorded frame to be reproduced and
/// consumed. Async-role transcripts set report->replay_skipped instead.
/// Only a complete, successful recorded run replays clean — a transcript
/// of a run that itself failed midway is reported as such.
Status ReplayTranscript(const TranscriptFile& file, ReplayReport* report);

/// Full verification: trailing digest (done at read time) → hash chain →
/// HMAC policy → deterministic replay. `hmac_key == nullptr` means no
/// key was supplied: an HMAC-bearing file then skips the keyed check
/// (flagged in the report); supplying a key to a file without an HMAC is
/// an error, since the chain head was never bound to any key.
Status VerifyTranscript(const TranscriptFile& file,
                        const std::vector<uint8_t>* hmac_key,
                        ReplayReport* report);

/// Parses an even-length hex string (the CLI's --hmac-key) into bytes.
Result<std::vector<uint8_t>> ParseHexKey(const std::string& hex);

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_TRANSCRIPT_H_
