#include "net/demo.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace uldp {
namespace net {

DemoInputs MakeDemoInputs(uint64_t seed, int num_silos, int num_users,
                          int dim) {
  Rng rng(seed);
  DemoInputs in;
  in.histograms.assign(num_silos, std::vector<int>(num_users, 0));
  in.deltas.assign(num_silos, std::vector<Vec>(num_users));
  in.noise.assign(num_silos, Vec(dim, 0.0));
  for (int s = 0; s < num_silos; ++s) {
    for (int u = 0; u < num_users; ++u) {
      in.histograms[s][u] = static_cast<int>(rng.UniformInt(5));  // 0..4
      if (in.histograms[s][u] > 0) {
        in.deltas[s][u].resize(dim);
        for (double& v : in.deltas[s][u]) v = rng.Gaussian(0.0, 1.0);
      }
    }
    for (double& v : in.noise[s]) v = rng.Gaussian(0.0, 0.3);
  }
  return in;
}

Status RunDemoSilo(const ProtocolConfig& config, int silo_id, int num_silos,
                   int num_users, int dim, uint64_t inputs_seed,
                   Transport& transport) {
  DemoInputs in = MakeDemoInputs(inputs_seed, num_silos, num_users, dim);
  SiloClient client(config, silo_id, num_silos, num_users,
                    in.histograms[silo_id]);
  auto input = [&](uint64_t, std::vector<Vec>* deltas, Vec* noise) {
    *deltas = in.deltas[silo_id];
    *noise = in.noise[silo_id];
    return Status::Ok();
  };
  return client.Run(transport, input);
}

std::function<Status(uint64_t version, const Vec& params, Vec* delta)>
MakeAsyncDemoWork(uint64_t seed, int silo, int dim, double sleep_seconds) {
  Rng root(seed);
  return [root, silo, dim, sleep_seconds](uint64_t version, const Vec& params,
                                          Vec* delta) {
    if (params.size() != static_cast<size_t>(dim)) {
      return Status::InvalidArgument("async demo work dimension mismatch");
    }
    if (sleep_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_seconds));
    }
    Rng local = root.Fork(version, static_cast<uint64_t>(silo));
    delta->assign(params.size(), 0.0);
    for (size_t d = 0; d < params.size(); ++d) {
      (*delta)[d] = -0.1 * params[d] + local.Gaussian(0.0, 0.1);
    }
    return Status::Ok();
  };
}

Status RunAsyncDemoSilo(const AsyncRoundsConfig& config, int silo_id,
                        int num_silos, int dim, Transport& transport,
                        const AsyncDemoOptions& options) {
  AsyncRoundClient client(config, silo_id, num_silos, dim);
  auto work = MakeAsyncDemoWork(config.seed, silo_id, dim,
                                options.sleep_seconds);
  if (options.fail_at_version >= 0) {
    // Crash drill: drop the connection mid-run with no goodbye frame, the
    // way a dying process would — the elastic server must evict us.
    const uint64_t fail_at = static_cast<uint64_t>(options.fail_at_version);
    auto inner = std::move(work);
    work = [&transport, fail_at, inner](uint64_t version, const Vec& params,
                                        Vec* delta) {
      if (version >= fail_at) {
        transport.Close();
        return Status::Internal("injected silo failure at version " +
                                std::to_string(version));
      }
      return inner(version, params, delta);
    };
  }
  AsyncClientOptions client_options;
  client_options.join_min_version = options.join_at_version;
  client_options.leave_after_version = options.leave_at_version;
  client_options.user_count = options.user_count;
  return client.Run(transport, work, client_options);
}

Status RunAsyncDemoSilo(const AsyncRoundsConfig& config, int silo_id,
                        int num_silos, int dim, Transport& transport,
                        double sleep_seconds) {
  AsyncDemoOptions options;
  options.sleep_seconds = sleep_seconds;
  return RunAsyncDemoSilo(config, silo_id, num_silos, dim, transport,
                          options);
}

}  // namespace net
}  // namespace uldp
