#include "net/demo.h"

#include <utility>

#include "common/rng.h"

namespace uldp {
namespace net {

DemoInputs MakeDemoInputs(uint64_t seed, int num_silos, int num_users,
                          int dim) {
  Rng rng(seed);
  DemoInputs in;
  in.histograms.assign(num_silos, std::vector<int>(num_users, 0));
  in.deltas.assign(num_silos, std::vector<Vec>(num_users));
  in.noise.assign(num_silos, Vec(dim, 0.0));
  for (int s = 0; s < num_silos; ++s) {
    for (int u = 0; u < num_users; ++u) {
      in.histograms[s][u] = static_cast<int>(rng.UniformInt(5));  // 0..4
      if (in.histograms[s][u] > 0) {
        in.deltas[s][u].resize(dim);
        for (double& v : in.deltas[s][u]) v = rng.Gaussian(0.0, 1.0);
      }
    }
    for (double& v : in.noise[s]) v = rng.Gaussian(0.0, 0.3);
  }
  return in;
}

Status RunDemoSilo(const ProtocolConfig& config, int silo_id, int num_silos,
                   int num_users, int dim, uint64_t inputs_seed,
                   Transport& transport) {
  DemoInputs in = MakeDemoInputs(inputs_seed, num_silos, num_users, dim);
  SiloClient client(config, silo_id, num_silos, num_users,
                    in.histograms[silo_id]);
  auto input = [&](uint64_t, std::vector<Vec>* deltas, Vec* noise) {
    *deltas = in.deltas[silo_id];
    *noise = in.noise[silo_id];
    return Status::Ok();
  };
  return client.Run(transport, input);
}

}  // namespace net
}  // namespace uldp
