// Canonical wire format for the cross-silo transport subsystem.
//
// Every payload travels as a length-prefixed, versioned frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//   0       4     magic "ULDP"
//   4       2     wire version (little-endian, currently 1)
//   6       2     message type (net/messages.h MessageType)
//   8       4     payload length in bytes (<= kMaxFramePayload)
//   12      len   payload (message-specific, see WireWriter/WireReader)
//
// All integers are little-endian fixed-width; BigInts are serialized as a
// sign byte plus a length-prefixed little-endian magnitude (the exact
// ToBytesLE/FromBytesLE round trip); doubles travel as their IEEE-754 bit
// pattern. Decoders never trust peer-supplied lengths: every read is
// bounds-checked against the actual buffer and element counts are validated
// against the minimum encoded size, so a malformed or truncated frame
// yields a clear Status instead of an allocation bomb or an abort.

#ifndef ULDP_NET_WIRE_H_
#define ULDP_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "math/bigint.h"

namespace uldp {
namespace net {

/// Wire protocol version; bump on any incompatible framing/codec change.
constexpr uint16_t kWireVersion = 1;
/// Frame header size in bytes (magic + version + type + payload length).
constexpr size_t kFrameHeaderSize = 12;
/// Hard upper bound on a single frame's payload. Large enough for a full
/// Paillier-ciphertext vector at production scale, small enough that a
/// corrupted length field cannot trigger a gigantic allocation.
constexpr uint32_t kMaxFramePayload = 1u << 30;
/// Default per-connection receive cap (Transport::set_max_frame_payload,
/// --max-frame-bytes). Chunked streaming keeps legitimate frames far below
/// this, so an oversized length field is rejected before allocation well
/// under the 1 GiB hard cap.
constexpr uint32_t kDefaultMaxFramePayload = 256u << 20;

/// One framed message: the typed header plus its serialized payload.
struct Frame {
  uint16_t type = 0;
  std::vector<uint8_t> payload;
};

/// Appends primitives to a growing byte buffer in canonical encoding.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// IEEE-754 bit pattern as U64.
  void F64(double v);
  /// u32 length + raw bytes.
  void Bytes(const std::vector<uint8_t>& b);
  /// Sign byte + u32 magnitude length + little-endian magnitude.
  void Big(const BigInt& v);
  void BigVec(const std::vector<BigInt>& v);
  void F64Vec(const std::vector<double>& v);
  void BytesVec(const std::vector<std::vector<uint8_t>>& v);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a received payload. Every accessor returns a
/// Status; once a read fails the reader is poisoned (subsequent reads keep
/// failing), so decoders can chain reads and check once.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F64(double* v);
  Status Bytes(std::vector<uint8_t>* b);
  Status Big(BigInt* v);
  Status BigVec(std::vector<BigInt>* v);
  Status F64Vec(std::vector<double>* v);
  Status BytesVec(std::vector<std::vector<uint8_t>>* v);

  /// True when the whole payload has been consumed — message decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Serializes a frame (header + payload) to wire bytes.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Validates a 12-byte frame header; on success returns the message type
/// and payload length via the out-params. Rejects bad magic, unsupported
/// versions, and payload lengths above min(max_payload, kMaxFramePayload)
/// — the check runs before any payload allocation, so a corrupted or
/// hostile length field costs nothing.
Status ParseFrameHeader(const uint8_t* header, uint16_t* type,
                        uint32_t* payload_len,
                        uint32_t max_payload = kMaxFramePayload);

/// Decodes one complete frame from `data`. Fails on truncation, bad
/// header, or trailing bytes after the frame.
Result<Frame> DecodeFrame(const std::vector<uint8_t>& data);

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_WIRE_H_
