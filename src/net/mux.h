// Frame demultiplexer: one receive front end over many transports, so a
// server with hundreds of silo connections does not need one blocked
// reader thread per peer.
//
// Two backends behind MakeFrameMux:
//
//   * EpollFrameMux — chosen when every transport exposes a kernel handle
//     (TCP). A few event-loop threads share fd-partitioned epoll sets and
//     drain readable sockets through Transport::TryReadFrame (MSG_DONTWAIT,
//     so the loops never block on a slow peer). Receive deadlines are
//     enforced at the waiter: a RecvFrom that sees no bytes from its peer
//     for the transport's recv_timeout_ms fails with the same
//     DeadlineExceeded a blocking TCP Recv produces, and interrupts the
//     connection.
//   * ThreadedFrameMux — the fallback for transports without a handle
//     (ChannelTransport): one blocking reader thread per peer. Deadlines,
//     where the backend supports them, fire inside the blocking Recv
//     itself.
//
// Shutdown() interrupts every transport and joins all mux threads, so a
// peer that hangs mid-frame can never leave a reader blocked after the
// server has failed the run — the reader-leak fix for
// ProtocolServer/AsyncRoundServer teardown.
//
// Thread safety: Start once, then RecvFrom/RecvAny from any threads
// (multiple concurrent RecvFrom callers must target distinct peers;
// concurrent RecvAny callers race for arrivals, which is the point).

#ifndef ULDP_NET_MUX_H_
#define ULDP_NET_MUX_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/transport.h"

namespace uldp {
namespace net {

/// One arrival surfaced by RecvAny: the peer index and either its frame or
/// its transport's terminal status (delivered once per peer).
struct MuxEvent {
  int peer = -1;
  Result<Frame> frame = Frame{};
};

class FrameMux {
 public:
  virtual ~FrameMux() = default;

  /// Spawns the receive threads. Call exactly once, after every peer's
  /// handshake traffic (blocking Recv) is finished — the mux owns all
  /// receives from then on.
  virtual Status Start() = 0;

  /// Next frame from `peer`, in arrival order. A transport-level failure
  /// (disconnect, deadline, malformed frame) is sticky: every later call
  /// returns the same status. Error *frames* are returned as frames — the
  /// caller interprets them, exactly as with a direct Recv.
  virtual Result<Frame> RecvFrom(int peer) = 0;

  /// Next arrival from any peer. A peer's terminal status is surfaced as
  /// one event and the peer is then ignored. Fails outright only when the
  /// mux is shut down, every peer is gone, or a waiter deadline expires.
  virtual Result<MuxEvent> RecvAny() = 0;

  /// Interrupts every transport and joins all mux threads. Idempotent;
  /// pending RecvFrom/RecvAny callers fail promptly.
  virtual void Shutdown() = 0;

  /// Registers a transport on a running mux and returns its peer index
  /// (indices only grow; existing peers keep theirs) — the elastic
  /// server's mid-run admission path. The transport is borrowed like the
  /// Start-time peers and must outlive the mux. Fails before Start or
  /// after Shutdown; the epoll backend also rejects transports without a
  /// kernel handle.
  virtual Result<int> AddPeer(Transport* peer) = 0;

  /// Retires one peer: any queued frames are dropped, its terminal status
  /// becomes `status` without ever being surfaced through RecvAny, and
  /// its transport is interrupted so a blocked reader returns now instead
  /// of at the recv deadline — eviction support, and the membership-aware
  /// owed-frame settle at shutdown (an evicted silo is never waited on).
  /// Out-of-range indices are ignored; a peer already terminal keeps its
  /// first status but still stops being surfaced.
  virtual void InterruptPeer(int peer, Status status) = 0;
};

/// Picks EpollFrameMux when every transport has a NativeHandle, else
/// ThreadedFrameMux. Transports are borrowed, not owned, and must outlive
/// the mux; null entries are rejected at Start.
std::unique_ptr<FrameMux> MakeFrameMux(std::vector<Transport*> peers);

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_MUX_H_
