#include "net/transcript.h"

#include <cstdio>
#include <cstring>
#include <map>

#include "crypto/hmac.h"
#include "net/demo.h"
#include "net/messages.h"
#include "net/protocol_node.h"
#include "net/wire.h"

namespace uldp {
namespace net {

namespace {

/// Transcript format version; bump on any layout change.
constexpr uint16_t kTranscriptFormatVersion = 1;
constexpr uint8_t kMagic[4] = {'U', 'L', 'T', 'R'};

void AppendDigest(WireWriter& w, const Sha256Digest& d) {
  for (uint8_t b : d) w.U8(b);
}

Status ParseDigest(WireReader& r, Sha256Digest* d) {
  for (uint8_t& b : *d) ULDP_RETURN_IF_ERROR(r.U8(&b));
  return Status::Ok();
}

void AppendMeta(WireWriter& w, const TranscriptMeta& m) {
  w.U8(static_cast<uint8_t>(m.role));
  w.U32(m.silo_id);
  w.U32(m.num_silos);
  w.U32(m.num_users);
  w.U32(m.dim);
  w.U64(m.rounds);
  w.U64(m.seed);
  w.U64(m.config_digest);
  w.U32(m.paillier_bits);
  w.U32(m.n_max);
  w.F64(m.precision);
  w.U32(m.ot_slots);
  w.F64(m.ot_sample_rate);
  w.U32(m.ot_group_bits);
  w.U8(m.cache_enc_weights);
  w.U32(m.pack_slots);
  w.F64(m.pack_clip);
  w.U32(m.stream_chunk_users);
  w.U32(m.stream_chunk_coords);
  w.U32(m.stream_window);
}

Status ParseMeta(WireReader& r, TranscriptMeta* m) {
  uint8_t role = 0;
  ULDP_RETURN_IF_ERROR(r.U8(&role));
  if (role > static_cast<uint8_t>(TranscriptRole::kAsyncSilo)) {
    return Status::InvalidArgument("transcript has invalid role " +
                                   std::to_string(role));
  }
  m->role = static_cast<TranscriptRole>(role);
  ULDP_RETURN_IF_ERROR(r.U32(&m->silo_id));
  ULDP_RETURN_IF_ERROR(r.U32(&m->num_silos));
  ULDP_RETURN_IF_ERROR(r.U32(&m->num_users));
  ULDP_RETURN_IF_ERROR(r.U32(&m->dim));
  ULDP_RETURN_IF_ERROR(r.U64(&m->rounds));
  ULDP_RETURN_IF_ERROR(r.U64(&m->seed));
  ULDP_RETURN_IF_ERROR(r.U64(&m->config_digest));
  ULDP_RETURN_IF_ERROR(r.U32(&m->paillier_bits));
  ULDP_RETURN_IF_ERROR(r.U32(&m->n_max));
  ULDP_RETURN_IF_ERROR(r.F64(&m->precision));
  ULDP_RETURN_IF_ERROR(r.U32(&m->ot_slots));
  ULDP_RETURN_IF_ERROR(r.F64(&m->ot_sample_rate));
  ULDP_RETURN_IF_ERROR(r.U32(&m->ot_group_bits));
  ULDP_RETURN_IF_ERROR(r.U8(&m->cache_enc_weights));
  ULDP_RETURN_IF_ERROR(r.U32(&m->pack_slots));
  ULDP_RETURN_IF_ERROR(r.F64(&m->pack_clip));
  ULDP_RETURN_IF_ERROR(r.U32(&m->stream_chunk_users));
  ULDP_RETURN_IF_ERROR(r.U32(&m->stream_chunk_coords));
  ULDP_RETURN_IF_ERROR(r.U32(&m->stream_window));
  return Status::Ok();
}

/// The first latched divergence across a replay's peer transports, if
/// any — preferred over the driver's surface error, which is usually a
/// downstream symptom ("recorded inbound exhausted") of the divergence.
Status FirstDivergence(
    const std::map<uint32_t, std::shared_ptr<ReplayTransport::State>>&
        peers) {
  for (const auto& entry : peers) {
    std::lock_guard<std::mutex> lock(entry.second->mu);
    if (!entry.second->divergence.ok()) return entry.second->divergence;
  }
  return Status::Ok();
}

Status ReplayFailure(
    const std::map<uint32_t, std::shared_ptr<ReplayTransport::State>>& peers,
    const std::string& where, const Status& driver) {
  Status diverged = FirstDivergence(peers);
  if (!diverged.ok()) return diverged;
  return Status::InvalidArgument("replay " + where + ": " +
                                 driver.ToString());
}

/// After a clean driver run, every recorded frame must have been
/// consumed: leftover outbound means the recorded party sent frames the
/// replay never reproduced; leftover inbound means the recorded party
/// consumed frames the replay never asked for.
Status CheckDrained(
    const std::map<uint32_t, std::shared_ptr<ReplayTransport::State>>&
        peers) {
  for (const auto& entry : peers) {
    std::lock_guard<std::mutex> lock(entry.second->mu);
    if (!entry.second->divergence.ok()) return entry.second->divergence;
    if (!entry.second->outbound.empty()) {
      return Status::InvalidArgument(
          "replay: " + std::to_string(entry.second->outbound.size()) +
          " recorded outbound frame(s) for peer " +
          std::to_string(entry.first) + " were never reproduced");
    }
    if (!entry.second->inbound.empty()) {
      return Status::InvalidArgument(
          "replay: " + std::to_string(entry.second->inbound.size()) +
          " recorded inbound frame(s) for peer " +
          std::to_string(entry.first) + " were never consumed");
    }
  }
  return Status::Ok();
}

void FillReport(
    const std::map<uint32_t, std::shared_ptr<ReplayTransport::State>>& peers,
    ReplayReport* report) {
  if (report == nullptr) return;
  for (const auto& entry : peers) {
    std::lock_guard<std::mutex> lock(entry.second->mu);
    report->frames_matched += entry.second->matched;
    report->frames_fed += entry.second->fed;
  }
}

/// Splits a transcript's entries into per-peer inbound/outbound queues,
/// preserving the recorded order within each (peer, direction).
std::map<uint32_t, std::shared_ptr<ReplayTransport::State>> GroupByPeer(
    const TranscriptFile& file) {
  std::map<uint32_t, std::shared_ptr<ReplayTransport::State>> peers;
  for (const TranscriptEntry& e : file.entries) {
    auto& state = peers[e.peer];
    if (state == nullptr) state = std::make_shared<ReplayTransport::State>();
    (e.sent != 0 ? state->outbound : state->inbound).push_back(e.frame);
  }
  return peers;
}

Status CheckConfigDigest(const TranscriptFile& file) {
  const TranscriptMeta& m = file.meta;
  uint64_t digest = ProtocolWireDigest(
      m.ToProtocolConfig(), static_cast<int>(m.num_silos),
      static_cast<int>(m.num_users));
  if (digest != m.config_digest) {
    return Status::InvalidArgument(
        "transcript config digest mismatch: the reconstructed protocol "
        "config disagrees with the one recorded (this build's defaults "
        "drifted from the recorder's, or the meta was edited and "
        "re-chained without the HMAC key)");
  }
  return Status::Ok();
}

Status ReplayProtocolServer(const TranscriptFile& file,
                            ReplayReport* report) {
  ULDP_RETURN_IF_ERROR(CheckConfigDigest(file));
  const TranscriptMeta& m = file.meta;
  auto peers = GroupByPeer(file);
  ProtocolServer server(m.ToProtocolConfig(), static_cast<int>(m.num_silos),
                        static_cast<int>(m.num_users));
  // Feed connections in recorded accept order (peer ids are the server's
  // accept counter). A recorded rejected join replays as a rejected join
  // — its Error frame must still match the recorded outbound.
  uint32_t accepted = 0;
  for (const auto& entry : peers) {
    Status added = server.AddConnection(
        std::make_unique<ReplayTransport>(entry.second));
    if (added.ok()) {
      ++accepted;
      continue;
    }
    std::lock_guard<std::mutex> lock(entry.second->mu);
    if (!entry.second->divergence.ok()) return entry.second->divergence;
    if (!entry.second->outbound.empty() || !entry.second->inbound.empty()) {
      return Status::InvalidArgument(
          "replay: peer " + std::to_string(entry.first) +
          " was rejected at join (" + added.ToString() +
          ") but has unconsumed recorded traffic");
    }
  }
  if (accepted != m.num_silos) {
    return Status::InvalidArgument(
        "replay: transcript shows " + std::to_string(accepted) + " of " +
        std::to_string(m.num_silos) +
        " silos joining — an incomplete run cannot be replay-verified");
  }
  Status setup = server.RunSetup();
  if (!setup.ok()) return ReplayFailure(peers, "setup", setup);
  // The CLI server drives every round with the all-users-sampled mask
  // (ignored entirely in OT mode); that schedule is part of what the
  // transcript attests to.
  std::vector<bool> mask(m.num_users, true);
  for (uint64_t r = 0; r < m.rounds; ++r) {
    auto out = server.RunRound(r, mask);
    if (!out.ok()) {
      return ReplayFailure(peers, "round " + std::to_string(r),
                           out.status());
    }
  }
  Status shutdown = server.Shutdown();
  if (!shutdown.ok()) return ReplayFailure(peers, "shutdown", shutdown);
  ULDP_RETURN_IF_ERROR(CheckDrained(peers));
  FillReport(peers, report);
  return Status::Ok();
}

Status ReplayProtocolSilo(const TranscriptFile& file, ReplayReport* report) {
  ULDP_RETURN_IF_ERROR(CheckConfigDigest(file));
  const TranscriptMeta& m = file.meta;
  auto peers = GroupByPeer(file);
  if (peers.size() != 1) {
    return Status::InvalidArgument(
        "replay: a silo transcript must record exactly one connection "
        "(the server), found " + std::to_string(peers.size()));
  }
  auto state = peers.begin()->second;
  ReplayTransport transport(state);
  Status ran = RunDemoSilo(m.ToProtocolConfig(),
                           static_cast<int>(m.silo_id),
                           static_cast<int>(m.num_silos),
                           static_cast<int>(m.num_users),
                           static_cast<int>(m.dim), m.seed, transport);
  if (!ran.ok()) return ReplayFailure(peers, "silo run", ran);
  ULDP_RETURN_IF_ERROR(CheckDrained(peers));
  FillReport(peers, report);
  return Status::Ok();
}

}  // namespace

const char* TranscriptRoleName(TranscriptRole role) {
  switch (role) {
    case TranscriptRole::kProtocolServer:
      return "protocol-server";
    case TranscriptRole::kProtocolSilo:
      return "protocol-silo";
    case TranscriptRole::kAsyncServer:
      return "async-server";
    case TranscriptRole::kAsyncSilo:
      return "async-silo";
  }
  return "unknown";
}

ProtocolConfig TranscriptMeta::ToProtocolConfig() const {
  ProtocolConfig config;
  config.paillier_bits = static_cast<int>(paillier_bits);
  config.n_max = static_cast<int>(n_max);
  config.precision = precision;
  config.seed = seed;
  config.ot_slots = static_cast<int>(ot_slots);
  config.ot_sample_rate = ot_sample_rate;
  config.ot_group_bits = static_cast<int>(ot_group_bits);
  config.cache_enc_weights = cache_enc_weights != 0;
  config.pack_slots = static_cast<int>(pack_slots);
  config.pack_clip = pack_clip;
  config.stream_chunk_users = static_cast<int>(stream_chunk_users);
  config.stream_chunk_coords = static_cast<int>(stream_chunk_coords);
  config.stream_window = static_cast<int>(stream_window);
  return config;
}

TranscriptMeta TranscriptMeta::FromProtocolConfig(
    const ProtocolConfig& config, TranscriptRole role, uint32_t silo_id,
    int num_silos, int num_users, int dim, uint64_t rounds) {
  TranscriptMeta m;
  m.role = role;
  m.silo_id = silo_id;
  m.num_silos = static_cast<uint32_t>(num_silos);
  m.num_users = static_cast<uint32_t>(num_users);
  m.dim = static_cast<uint32_t>(dim);
  m.rounds = rounds;
  m.seed = config.seed;
  m.config_digest = ProtocolWireDigest(config, num_silos, num_users);
  m.paillier_bits = static_cast<uint32_t>(config.paillier_bits);
  m.n_max = static_cast<uint32_t>(config.n_max);
  m.precision = config.precision;
  m.ot_slots = static_cast<uint32_t>(config.ot_slots);
  m.ot_sample_rate = config.ot_sample_rate;
  m.ot_group_bits = static_cast<uint32_t>(config.ot_group_bits);
  m.cache_enc_weights = config.cache_enc_weights ? 1 : 0;
  m.pack_slots = static_cast<uint32_t>(config.pack_slots);
  m.pack_clip = config.pack_clip;
  m.stream_chunk_users = static_cast<uint32_t>(config.stream_chunk_users);
  m.stream_chunk_coords = static_cast<uint32_t>(config.stream_chunk_coords);
  m.stream_window = static_cast<uint32_t>(config.stream_window);
  return m;
}

std::vector<uint8_t> TranscriptMeta::Serialized() const {
  WireWriter w;
  AppendMeta(w, *this);
  return w.Take();
}

Sha256Digest TranscriptGenesis(const TranscriptMeta& meta) {
  std::vector<uint8_t> bytes = meta.Serialized();
  return Sha256(bytes.data(), bytes.size());
}

Sha256Digest TranscriptEntryHash(const Sha256Digest& prev, uint64_t seq,
                                 uint32_t peer, bool sent,
                                 const uint8_t* frame, size_t size) {
  std::vector<uint8_t> buf;
  buf.reserve(prev.size() + 8 + 4 + 1 + size);
  buf.insert(buf.end(), prev.begin(), prev.end());
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<uint8_t>(seq >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(peer >> (8 * i)));
  }
  buf.push_back(sent ? 1 : 0);
  if (size > 0) buf.insert(buf.end(), frame, frame + size);
  return Sha256(buf.data(), buf.size());
}

std::vector<uint8_t> TranscriptFile::Serialize() const {
  WireWriter w;
  for (uint8_t c : kMagic) w.U8(c);
  w.U16(kTranscriptFormatVersion);
  w.U8(has_hmac);
  AppendMeta(w, meta);
  w.U64(static_cast<uint64_t>(entries.size()));
  for (const TranscriptEntry& e : entries) {
    w.U64(e.seq);
    w.U32(e.peer);
    w.U8(e.sent);
    w.Bytes(e.frame);
    AppendDigest(w, e.hash);
  }
  AppendDigest(w, head);
  if (has_hmac != 0) AppendDigest(w, hmac);
  uint64_t digest = WireDigest(w.buffer());
  w.U64(digest);
  return w.Take();
}

Result<TranscriptFile> TranscriptFile::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 8) {
    return Status::InvalidArgument(
        "transcript too short to hold its digest");
  }
  size_t payload_size = bytes.size() - 8;
  uint64_t stored = 0;
  {
    WireReader tail(bytes.data() + payload_size, 8);
    ULDP_RETURN_IF_ERROR(tail.U64(&stored));
  }
  uint64_t computed = WireDigest(bytes.data(), payload_size);
  if (stored != computed) {
    return Status::InvalidArgument(
        "transcript digest mismatch (corrupted or truncated)");
  }

  WireReader r(bytes.data(), payload_size);
  uint8_t magic[4];
  for (uint8_t& c : magic) ULDP_RETURN_IF_ERROR(r.U8(&c));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a transcript (bad magic)");
  }
  uint16_t version = 0;
  ULDP_RETURN_IF_ERROR(r.U16(&version));
  if (version != kTranscriptFormatVersion) {
    return Status::InvalidArgument(
        "unsupported transcript format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kTranscriptFormatVersion) + ")");
  }
  TranscriptFile file;
  ULDP_RETURN_IF_ERROR(r.U8(&file.has_hmac));
  if (file.has_hmac > 1) {
    return Status::InvalidArgument("transcript has invalid has_hmac flag");
  }
  ULDP_RETURN_IF_ERROR(ParseMeta(r, &file.meta));
  uint64_t count = 0;
  ULDP_RETURN_IF_ERROR(r.U64(&count));
  // An entry is at least 17 bytes of fixed fields + a 4-byte frame length
  // + 32 hash bytes; reject counts the remaining payload cannot hold
  // before reserving anything.
  if (count > payload_size / (17 + 4 + 32)) {
    return Status::InvalidArgument(
        "transcript entry count exceeds what the file could hold");
  }
  file.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TranscriptEntry e;
    ULDP_RETURN_IF_ERROR(r.U64(&e.seq));
    ULDP_RETURN_IF_ERROR(r.U32(&e.peer));
    ULDP_RETURN_IF_ERROR(r.U8(&e.sent));
    if (e.sent > 1) {
      return Status::InvalidArgument(
          "transcript entry " + std::to_string(i) +
          " has invalid direction flag");
    }
    ULDP_RETURN_IF_ERROR(r.Bytes(&e.frame));
    ULDP_RETURN_IF_ERROR(ParseDigest(r, &e.hash));
    file.entries.push_back(std::move(e));
  }
  ULDP_RETURN_IF_ERROR(ParseDigest(r, &file.head));
  if (file.has_hmac != 0) {
    ULDP_RETURN_IF_ERROR(ParseDigest(r, &file.hmac));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "transcript has trailing bytes before its digest");
  }
  return file;
}

Status TranscriptFile::WriteFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open transcript file " + tmp);
  }
  size_t wrote =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fflush(f) == 0;
  bool closed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to transcript file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename transcript into place at " + path);
  }
  return Status::Ok();
}

Result<TranscriptFile> TranscriptFile::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no transcript at " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("error reading transcript " + path);
  }
  return Deserialize(bytes);
}

Status TranscriptFile::VerifyChain() const {
  Sha256Digest prev = TranscriptGenesis(meta);
  for (size_t i = 0; i < entries.size(); ++i) {
    const TranscriptEntry& e = entries[i];
    if (e.seq != i) {
      return Status::InvalidArgument(
          "transcript chain broken: entry " + std::to_string(i) +
          " carries sequence number " + std::to_string(e.seq) +
          " (entries reordered or removed)");
    }
    Sha256Digest h = TranscriptEntryHash(prev, e.seq, e.peer, e.sent != 0,
                                         e.frame.data(), e.frame.size());
    if (!DigestEquals(h, e.hash)) {
      return Status::InvalidArgument(
          "transcript chain broken at entry " + std::to_string(i) +
          ": stored hash does not match the recomputed chain (frame "
          "altered, or a foreign entry was spliced in)");
    }
    prev = h;
  }
  if (!DigestEquals(prev, head)) {
    return Status::InvalidArgument(
        "transcript chain head does not match its entries");
  }
  return Status::Ok();
}

Status TranscriptFile::VerifyHmac(const std::vector<uint8_t>& key) const {
  if (has_hmac == 0) {
    return Status::InvalidArgument(
        "a key was supplied but the transcript carries no HMAC — the "
        "chain head was never bound to any key");
  }
  Sha256Digest expect = HmacSha256(key.data(), key.size(), head.data(),
                                   head.size());
  if (!DigestEquals(expect, hmac)) {
    return Status::InvalidArgument(
        "transcript HMAC mismatch: wrong key, or the chain was re-hashed "
        "by someone without the recording key");
  }
  return Status::Ok();
}

TranscriptLog::TranscriptLog(TranscriptMeta meta,
                             std::vector<uint8_t> hmac_key)
    : meta_(meta),
      hmac_key_(std::move(hmac_key)),
      head_(TranscriptGenesis(meta)) {}

void TranscriptLog::RecordFrame(uint32_t peer_id, bool sent,
                                const uint8_t* data, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  TranscriptEntry e;
  e.seq = entries_.size();
  e.peer = peer_id;
  e.sent = sent ? 1 : 0;
  e.frame.assign(data, data + size);
  e.hash = TranscriptEntryHash(head_, e.seq, peer_id, sent, data, size);
  head_ = e.hash;
  entries_.push_back(std::move(e));
}

TranscriptFile TranscriptLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TranscriptFile file;
  file.meta = meta_;
  file.entries = entries_;
  file.head = head_;
  if (!hmac_key_.empty()) {
    file.has_hmac = 1;
    file.hmac = HmacSha256(hmac_key_.data(), hmac_key_.size(), head_.data(),
                           head_.size());
  }
  return file;
}

Status TranscriptLog::WriteFile(const std::string& path) const {
  return Snapshot().WriteFile(path);
}

size_t TranscriptLog::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status ReplayTransport::Send(const Frame& frame) {
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->divergence.ok()) return state_->divergence;
  if (state_->closed) {
    return Status::FailedPrecondition("replay transport closed");
  }
  if (state_->outbound.empty()) {
    state_->divergence = Status::InvalidArgument(
        "replay divergence: the party sent a frame (type " +
        std::to_string(static_cast<int>(frame.type)) + ", " +
        std::to_string(bytes.size()) +
        " B) beyond the end of the recorded outbound traffic");
    return state_->divergence;
  }
  const std::vector<uint8_t>& expect = state_->outbound.front();
  if (bytes != expect) {
    size_t at = 0;
    size_t common = std::min(bytes.size(), expect.size());
    while (at < common && bytes[at] == expect[at]) ++at;
    state_->divergence = Status::InvalidArgument(
        "replay divergence at outbound frame " +
        std::to_string(state_->matched) + ": reproduced " +
        std::to_string(bytes.size()) + " B (type " +
        std::to_string(static_cast<int>(frame.type)) + "), recorded " +
        std::to_string(expect.size()) + " B; first difference at byte " +
        std::to_string(at));
    return state_->divergence;
  }
  state_->outbound.pop_front();
  ++state_->matched;
  NoteSent(bytes.size());
  NoteFrame(bytes.size());
  return Status::Ok();
}

Result<Frame> ReplayTransport::Recv() {
  std::vector<uint8_t> bytes;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->divergence.ok()) return state_->divergence;
    if (state_->inbound.empty()) {
      // The normal end-of-stream for mux reader threads; a driver that
      // genuinely needed another frame surfaces this as its failure.
      return Status::FailedPrecondition(
          state_->closed ? "replay transport closed"
                         : "replay: recorded inbound traffic exhausted");
    }
    bytes = std::move(state_->inbound.front());
    state_->inbound.pop_front();
    ++state_->fed;
  }
  NoteReceived(bytes.size());
  NoteFrame(bytes.size());
  return DecodeFrame(bytes);
}

void ReplayTransport::Close() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->closed = true;
}

Status ReplayTranscript(const TranscriptFile& file, ReplayReport* report) {
  if (report != nullptr) {
    report->entries = static_cast<uint64_t>(file.entries.size());
  }
  switch (file.meta.role) {
    case TranscriptRole::kProtocolServer:
      return ReplayProtocolServer(file, report);
    case TranscriptRole::kProtocolSilo:
      return ReplayProtocolSilo(file, report);
    case TranscriptRole::kAsyncServer:
    case TranscriptRole::kAsyncSilo:
      // Async round arrival order depends on thread scheduling, so these
      // roles carry hash-chain + HMAC evidence only.
      if (report != nullptr) report->replay_skipped = true;
      return Status::Ok();
  }
  return Status::InvalidArgument("transcript has unknown role");
}

Status VerifyTranscript(const TranscriptFile& file,
                        const std::vector<uint8_t>* hmac_key,
                        ReplayReport* report) {
  ULDP_RETURN_IF_ERROR(file.VerifyChain());
  if (hmac_key != nullptr) {
    ULDP_RETURN_IF_ERROR(file.VerifyHmac(*hmac_key));
    if (report != nullptr) report->hmac_verified = true;
  } else if (file.has_hmac != 0) {
    if (report != nullptr) report->hmac_skipped = true;
  }
  return ReplayTranscript(file, report);
}

Result<std::vector<uint8_t>> ParseHexKey(const std::string& hex) {
  if (hex.empty() || hex.size() % 2 != 0) {
    return Status::InvalidArgument(
        "hex key must be a non-empty even-length hex string");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<uint8_t> key;
  key.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("hex key has a non-hex character");
    }
    key.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return key;
}

}  // namespace net
}  // namespace uldp
