// Asynchronous staleness-bounded FL rounds over the transport layer: the
// distributed counterpart of RoundEngine's async mode (fl/round_engine.h).
// An AsyncRoundServer holds one Transport per silo and applies silo deltas
// as they land — bounded by max_staleness, discounted by 1/(1+staleness),
// flushed every buffer_size arrivals — instead of barrier-waiting on the
// slowest silo. An AsyncRoundClient serves one silo: it trains whenever
// the server releases it with a model snapshot and submits its delta.
//
// Message flow (client perspective):
//
//   -> Join                    (silo id, cohort shape, config digest)
//   repeated:
//     <- StalenessInfo         (version, staleness bound, global params)
//     -> RoundAck              (version trained against, silo delta)
//   <- Shutdown
//
// Determinism: the server's reduce is AsyncAggregator's — buffered entries
// sorted by (pull_version, silo) — so it is a pure function of the buffer
// contents, never of network interleaving. With max_staleness = 0 and
// buffer_size = num_silos every step is a barrier over all silos and the
// run is bitwise identical to the synchronous RoundEngine on the same
// work, over any transport (tested over ChannelTransport and loopback
// TCP). With a larger bound the *set* of applied updates depends on real
// arrival timing — that is the point — but every applied update's content
// is still a pure function of (version, silo).
//
// DP accounting: silos clip per user and add their noise share before
// submission, so a user's contribution to any flushed aggregate has
// unchanged sensitivity; see FlConfig::async_rounds for the full note.

#ifndef ULDP_NET_ASYNC_ROUNDS_H_
#define ULDP_NET_ASYNC_ROUNDS_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "fl/round_engine.h"
#include "net/transport.h"
#include "nn/tensor.h"

namespace uldp {
namespace net {

/// Cohort-wide async-round parameters; every party must be started with
/// identical values (enforced by a digest in the Join handshake).
struct AsyncRoundsConfig {
  /// Maximum accepted staleness tau; updates older than this are dropped
  /// and the silo retrains against the current model.
  int max_staleness = 0;
  /// Arrivals per server step; <= 0 resolves to the silo count.
  int buffer_size = 0;
  /// Server update: global += step_scale * flushed_sum (the trainer's
  /// eta_g / |S| scaling).
  double step_scale = 1.0;
  /// Work seed, digested so all parties agree on the task content.
  uint64_t seed = 0;
};

/// Digest of the async-round configuration plus the cohort shape, compared
/// at join time exactly like ProtocolWireDigest.
uint64_t AsyncRoundsWireDigest(const AsyncRoundsConfig& config, int num_silos,
                               int dim);

class AsyncRoundServer {
 public:
  AsyncRoundServer(const AsyncRoundsConfig& config, int num_silos, int dim);

  /// Performs the Join handshake on a freshly connected transport and
  /// registers it under the announced silo id (rejects duplicates,
  /// out-of-range ids, and config-digest mismatches with an Error frame).
  Status AddConnection(std::unique_ptr<Transport> transport);
  int connected_silos() const;

  /// Drives `num_steps` staleness-bounded server steps starting from
  /// `global` and returns the final parameters. Requires every silo
  /// connected. On failure every silo is told (Error frame) so no client
  /// is left blocked in Recv.
  Result<Vec> Run(int num_steps, Vec global);

  /// Applied/rejected/step counters of the last Run.
  const AsyncStats& stats() const { return stats_; }

 private:
  Result<Vec> RunInternal(int num_steps, Vec global);
  Status Release(int silo, uint64_t version, const Vec& global);
  void FailAll(const Status& status);

  AsyncRoundsConfig config_;
  int num_silos_;
  int dim_;
  std::vector<std::unique_ptr<Transport>> conns_;  // [silo id]
  AsyncStats stats_;
};

class AsyncRoundClient {
 public:
  /// Local work for one released version: fills `delta` (resized to the
  /// model dimension) with this silo's clipped, noised contribution
  /// against `params`. All randomness must come from Fork(version, silo)
  /// substreams of the shared seed.
  using WorkFn = std::function<Status(uint64_t version, const Vec& params,
                                      Vec* delta)>;

  AsyncRoundClient(const AsyncRoundsConfig& config, int silo_id,
                   int num_silos, int dim);

  /// Serves async rounds over `transport` until Shutdown (returns Ok) or a
  /// fatal error (returned; also reported to the server best-effort).
  Status Run(Transport& transport, const WorkFn& work);

 private:
  Status RunLoop(Transport& transport, const WorkFn& work);

  AsyncRoundsConfig config_;
  int silo_id_;
  int num_silos_;
  int dim_;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_ASYNC_ROUNDS_H_
