// Asynchronous staleness-bounded FL rounds over the transport layer: the
// distributed counterpart of RoundEngine's async mode (fl/round_engine.h).
// An AsyncRoundServer holds one Transport per silo and applies silo deltas
// as they land — bounded by max_staleness, discounted by 1/(1+staleness),
// flushed every buffer_size arrivals — instead of barrier-waiting on the
// slowest silo. An AsyncRoundClient serves one silo: it trains whenever
// the server releases it with a model snapshot and submits its delta.
//
// Message flow (client perspective):
//
//   -> Join | JoinRequest       (silo id, cohort shape, config digest)
//   repeated:
//     <- StalenessInfo          (version, staleness bound, global params)
//     -> RoundAck | MaskedVector | Leave
//   <- Shutdown | Evict
//
// The server's whole training state lives in a SessionState (fl/session.h):
// the model, the version counter, the membership table, the epoch log, and
// the aggregation counters. Checkpointing serializes that state every
// checkpoint-interval flush; Resume() on a restored state continues the
// run bitwise-identically to the uninterrupted run on the same seed.
//
// Elastic membership (config.elastic): the cohort is no longer fixed at
// Run time. A silo may connect mid-run with a JoinRequest — it is parked
// until the first flush boundary whose version satisfies its min_version,
// then admitted with the current model snapshot (net/membership.h owns
// the transition discipline). A silo whose transport dies, that sends an
// Error frame, or that misses the receive deadline is EVICTED: its
// buffered updates are dropped, its mux peer is retired (the reader is
// interrupted immediately — never waited on at shutdown), it is told why
// with an Evict frame, and the remaining population is reweighted +
// recorded as a new membership epoch in the session (and the attached
// PrivacyTracker). A silo may also Leave voluntarily. The flush threshold
// tracks the active population; the elastic server update rescales by
// num_silos/active so the expected step magnitude is population-invariant.
// With elastic off, all of this is inert and the server is bitwise
// identical to the fixed-membership behaviour.
//
// Masked mode (config.masked): silos submit pairwise-masked fixed-point
// deltas (MaskedVectorMsg over the crypto/secure_agg.h simulation) instead
// of plaintext RoundAcks; the server can only recover the SUM. Requires
// the barrier configuration (max_staleness 0, full buffer, static
// membership) — pairwise masks only cancel over the full cohort — and is
// bitwise identical to the in-process secure reduce on the same work.
//
// Determinism: the server's reduce is AsyncAggregator's — buffered entries
// sorted by (pull_version, silo) — so it is a pure function of the buffer
// contents, never of network interleaving. With max_staleness = 0 and
// buffer_size = num_silos every step is a barrier over all silos and the
// run is bitwise identical to the synchronous RoundEngine on the same
// work, over any transport (tested over ChannelTransport and loopback
// TCP). With a larger bound the *set* of applied updates depends on real
// arrival timing — that is the point — but every applied update's content
// is still a pure function of (version, silo). Elastic runs are
// deterministic given the membership schedule: the active set at each
// version determines the flushed aggregate bitwise.
//
// DP accounting: silos clip per user and add their noise share before
// submission, so a user's contribution to any flushed aggregate has
// unchanged sensitivity; see FlConfig::async_rounds for the full note.
// Membership epochs are mirrored into the attached PrivacyTracker so
// accounted epsilon can be attributed to each epoch's actual population.

#ifndef ULDP_NET_ASYNC_ROUNDS_H_
#define ULDP_NET_ASYNC_ROUNDS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "fl/round_engine.h"
#include "fl/session.h"
#include "net/transport.h"
#include "nn/tensor.h"

namespace uldp {

class PrivacyTracker;

namespace net {

class MembershipManager;

/// Cohort-wide async-round parameters; every party must be started with
/// identical values (enforced by a digest in the Join handshake).
struct AsyncRoundsConfig {
  /// Maximum accepted staleness tau; updates older than this are dropped
  /// and the silo retrains against the current model.
  int max_staleness = 0;
  /// Arrivals per server step; <= 0 resolves to the silo count.
  int buffer_size = 0;
  /// Server update: global += step_scale * flushed_sum (the trainer's
  /// eta_g / |S| scaling). Elastic runs rescale by num_silos/active.
  double step_scale = 1.0;
  /// Work seed, digested so all parties agree on the task content.
  uint64_t seed = 0;
  /// Dynamic membership: JoinRequest admission at flush boundaries,
  /// eviction of dead silos, voluntary Leave. Off = fixed cohort,
  /// bitwise identical to the pre-elastic server.
  bool elastic = false;
  /// Elastic runs fail when the active population drops below this.
  int min_silos = 1;
  /// Secure-aggregation transport: deltas arrive pairwise-masked and the
  /// server recovers only their sum. Requires the barrier configuration
  /// and static membership.
  bool masked = false;
};

/// Digest of the async-round configuration plus the cohort shape, compared
/// at join time exactly like ProtocolWireDigest.
uint64_t AsyncRoundsWireDigest(const AsyncRoundsConfig& config, int num_silos,
                               int dim);

class AsyncRoundServer {
 public:
  /// `num_silos` is the cohort CAPACITY: silo ids live in [0, num_silos).
  /// Elastic runs may have any subset in [min_silos, num_silos] active.
  AsyncRoundServer(const AsyncRoundsConfig& config, int num_silos, int dim);
  ~AsyncRoundServer();

  /// Performs the handshake on a freshly connected transport. A JoinMsg
  /// registers the silo immediately (rejects duplicates, out-of-range ids,
  /// and config-digest mismatches with an Error frame; only before the run
  /// starts). A JoinRequest (elastic only) parks the connection for
  /// admission at the first flush boundary whose version reaches the
  /// request's min_version — callable mid-run from an accept thread.
  Status AddConnection(std::unique_ptr<Transport> transport);
  int connected_silos() const;

  /// Attaches a DP accountant: every sealed membership epoch is mirrored
  /// into it. Not owned; must outlive the run. Call before Run/Resume.
  void set_privacy_tracker(PrivacyTracker* tracker) { tracker_ = tracker; }

  /// Enables checkpointing: the session is written to <dir>/session.ckpt
  /// after every `every`-th flush (and after the final one). `every` <= 0
  /// disables. Call before Run/Resume.
  void SetCheckpoint(std::string dir, int every);

  /// Adopts a deserialized session (fl/session.h) so Resume() continues
  /// it. Rejects a state whose seed or dimension disagrees with this
  /// server's configuration.
  Status RestoreSession(SessionState state);

  /// Drives `num_steps` staleness-bounded server steps starting from
  /// `global` and returns the final parameters. Requires a fresh session;
  /// static runs require every silo connected, elastic runs at least
  /// min_silos. On failure every silo is told (Error frame) so no client
  /// is left blocked in Recv.
  Result<Vec> Run(int num_steps, Vec global);

  /// Continues a restored session until `total_steps` steps have run in
  /// TOTAL (a session restored at round r runs total_steps - r more).
  /// Returns the restored model untouched when the session already
  /// reached total_steps. Bitwise identical to the uninterrupted run.
  Result<Vec> Resume(int total_steps);

  /// Applied/rejected/step counters of the last Run.
  const AsyncStats& stats() const { return stats_; }
  /// The bound session (model, membership table, epoch log, counters).
  const SessionState& session() const { return session_; }
  /// Membership churn counters of the last Run/Resume.
  int64_t evictions() const { return evictions_; }
  int64_t admissions() const { return admissions_; }

 private:
  struct PendingJoin {
    uint32_t silo_id = 0;
    uint32_t user_count = 1;
    uint64_t min_version = 0;
    std::unique_ptr<Transport> transport;
  };
  struct RunCtx;  // per-run collection-loop state (defined in the .cc)

  Result<Vec> RunInternal(int total_steps, Vec global);
  Status AdmitDueJoins(RunCtx& ctx, uint64_t next_version);
  Status Depart(RunCtx& ctx, int silo, uint64_t version, bool evict,
                const Status& cause);
  Status Release(int silo, uint64_t version, const Vec& global);
  Status MaybeCheckpoint(uint64_t completed_steps, int total_steps);
  void FailAll(const Status& status);

  AsyncRoundsConfig config_;
  int num_silos_;
  int dim_;
  PrivacyTracker* tracker_ = nullptr;
  std::string checkpoint_dir_;
  int checkpoint_every_ = 0;
  SessionState session_;
  AsyncStats stats_;
  int64_t evictions_ = 0;
  int64_t admissions_ = 0;

  /// Guards conns_/pending_/running_ against the accept thread calling
  /// AddConnection while the run loop admits or finishes.
  mutable std::mutex conn_mu_;
  bool running_ = false;
  std::vector<std::unique_ptr<Transport>> conns_;  // [silo id]
  std::deque<PendingJoin> pending_;
  /// Replaced connections of re-admitted silo ids: the mux still borrows
  /// the old Transport until its Shutdown, so they are parked here until
  /// the server dies.
  std::vector<std::unique_ptr<Transport>> retired_;
};

/// Per-client elastic knobs (the cohort-wide ones live in
/// AsyncRoundsConfig, pinned by the config digest).
struct AsyncClientOptions {
  /// >= 0: join elastically with a JoinRequest instead of the fixed-cohort
  /// JoinMsg, asking for admission at a model version >= this.
  int64_t join_min_version = -1;
  /// Users this silo contributes to the weighting population (elastic
  /// joins only; the fixed handshake weights uniformly).
  uint32_t user_count = 1;
  /// >= 0: on the first release with version >= this, send Leave instead
  /// of training and return Ok — the voluntary-departure path.
  int64_t leave_after_version = -1;
};

class AsyncRoundClient {
 public:
  /// Local work for one released version: fills `delta` (resized to the
  /// model dimension) with this silo's clipped, noised contribution
  /// against `params`. All randomness must come from Fork(version, silo)
  /// substreams of the shared seed.
  using WorkFn = std::function<Status(uint64_t version, const Vec& params,
                                      Vec* delta)>;

  AsyncRoundClient(const AsyncRoundsConfig& config, int silo_id,
                   int num_silos, int dim);

  /// Serves async rounds over `transport` until Shutdown or a voluntary
  /// Leave (returns Ok), an Evict frame (returns FailedPrecondition), or
  /// a fatal error (returned; also reported to the server best-effort).
  Status Run(Transport& transport, const WorkFn& work,
             const AsyncClientOptions& options = {});

 private:
  Status RunLoop(Transport& transport, const WorkFn& work,
                 const AsyncClientOptions& options);

  AsyncRoundsConfig config_;
  int silo_id_;
  int num_silos_;
  int dim_;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_ASYNC_ROUNDS_H_
