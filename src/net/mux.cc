#include "net/mux.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uldp {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Queueing and waiting logic shared by both backends. Subclasses deliver
/// frames / terminal statuses from their receive threads; waiters block on
/// one condition variable. `waiter_deadline` selects who enforces recv
/// deadlines: the waiter (epoll backend — loop threads never block per
/// peer) or the backend's own blocking Recv (threaded backend).
class MuxBase : public FrameMux {
 public:
  MuxBase(std::vector<Transport*> peers, bool waiter_deadline)
      : peers_(std::move(peers)),
        state_(peers_.size()),
        waiter_deadline_(waiter_deadline) {}

  Result<Frame> RecvFrom(int peer) override {
    if (peer < 0 || peer >= static_cast<int>(peers_.size())) {
      return Status::InvalidArgument("mux: peer index out of range");
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return Status::FailedPrecondition("mux not started");
    uint64_t seen_bytes = peers_[peer]->bytes_received();
    auto wait_start = SteadyClock::now();
    for (;;) {
      PeerState& st = state_[peer];
      if (!st.frames.empty()) {
        Frame frame = std::move(st.frames.front());
        st.frames.pop_front();
        NoteDispatchLocked(st);
        return frame;
      }
      if (st.is_terminal) return st.terminal;
      if (stopped_) return Status::FailedPrecondition("mux shut down");
      const int timeout_ms =
          waiter_deadline_ ? peers_[peer]->recv_timeout_ms() : 0;
      if (timeout_ms <= 0) {
        cv_.wait(lock);
        continue;
      }
      const auto deadline =
          wait_start + std::chrono::milliseconds(timeout_ms);
      if (cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
        continue;
      }
      if (!state_[peer].frames.empty() || state_[peer].is_terminal ||
          stopped_) {
        continue;
      }
      const uint64_t now_bytes = peers_[peer]->bytes_received();
      if (now_bytes != seen_bytes) {
        // Mid-frame progress restarts the window — the same "no bytes for
        // timeout_ms" rule SO_RCVTIMEO applies to a blocking Recv.
        seen_bytes = now_bytes;
        wait_start = SteadyClock::now();
        continue;
      }
      MarkTerminalLocked(
          peer, Status::DeadlineExceeded(
                    "tcp: recv deadline exceeded waiting for a peer frame"));
      peers_[peer]->Interrupt();
    }
  }

  Result<MuxEvent> RecvAny() override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return Status::FailedPrecondition("mux not started");
    uint64_t seen_bytes = TotalBytes();
    auto wait_start = SteadyClock::now();
    for (;;) {
      for (size_t i = 0; i < state_.size(); ++i) {
        if (state_[i].frames.empty()) continue;
        MuxEvent event;
        event.peer = static_cast<int>(i);
        event.frame = std::move(state_[i].frames.front());
        state_[i].frames.pop_front();
        NoteDispatchLocked(state_[i]);
        return event;
      }
      bool all_gone = true;
      for (size_t i = 0; i < state_.size(); ++i) {
        if (!state_[i].is_terminal) {
          all_gone = false;
          continue;
        }
        if (state_[i].terminal_reported) continue;
        state_[i].terminal_reported = true;
        MuxEvent event;
        event.peer = static_cast<int>(i);
        event.frame = state_[i].terminal;
        return event;
      }
      if (stopped_) return Status::FailedPrecondition("mux shut down");
      if (all_gone) {
        return Status::FailedPrecondition("mux: every peer disconnected");
      }
      int timeout_ms = 0;
      if (waiter_deadline_) {
        for (size_t i = 0; i < state_.size(); ++i) {
          if (state_[i].is_terminal) continue;
          const int t = peers_[i]->recv_timeout_ms();
          if (t > 0 && (timeout_ms == 0 || t < timeout_ms)) timeout_ms = t;
        }
      }
      if (timeout_ms <= 0) {
        cv_.wait(lock);
        continue;
      }
      const auto deadline =
          wait_start + std::chrono::milliseconds(timeout_ms);
      if (cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
        continue;
      }
      const uint64_t now_bytes = TotalBytes();
      if (now_bytes != seen_bytes) {
        seen_bytes = now_bytes;
        wait_start = SteadyClock::now();
        continue;
      }
      bool anything_queued = false;
      for (const PeerState& st : state_) {
        if (!st.frames.empty() ||
            (st.is_terminal && !st.terminal_reported)) {
          anything_queued = true;
        }
      }
      if (anything_queued || stopped_) continue;
      return Status::DeadlineExceeded(
          "tcp: recv deadline exceeded waiting for a peer frame");
    }
  }

  void InterruptPeer(int peer, Status status) override {
    Transport* t = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (peer < 0 || peer >= static_cast<int>(peers_.size())) return;
      PeerState& st = state_[peer];
      st.frames.clear();
      st.enqueue_ns.clear();
      MarkTerminalLocked(peer, std::move(status));
      // Retired, not failed: RecvAny must never surface this peer again.
      st.terminal_reported = true;
      t = peers_[peer];
    }
    cv_.notify_all();
    t->Interrupt();
  }

 protected:
  struct PeerState {
    std::deque<Frame> frames;
    /// Deliver timestamps parallel to `frames` (NoteDispatchLocked pops
    /// one per frame) — the queue-residency half of dispatch latency.
    std::deque<uint64_t> enqueue_ns;
    Status terminal = Status::Ok();
    bool is_terminal = false;
    bool terminal_reported = false;
  };

  /// Called with mu_ held right after a frame is popped: records how long
  /// the frame sat queued between the receive thread's Deliver and the
  /// waiter's pop.
  void NoteDispatchLocked(PeerState& st) {
    if (st.enqueue_ns.empty()) return;
    dispatch_ns_.Record(obs::NowNs() - st.enqueue_ns.front());
    st.enqueue_ns.pop_front();
  }

  /// Appends a peer on a running mux; the backend wires up its receive
  /// path (reader thread / epoll registration) afterwards.
  Result<int> RegisterPeerLocked(Transport* t) {
    if (t == nullptr) return Status::InvalidArgument("mux: null transport");
    if (!started_ || stopped_) {
      return Status::FailedPrecondition(
          "mux: AddPeer needs a started, un-shutdown mux");
    }
    peers_.push_back(t);
    state_.emplace_back();
    return static_cast<int>(peers_.size()) - 1;
  }

  void Deliver(int peer, Frame frame) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A frame racing an InterruptPeer retire is dropped, not queued —
      // the caller already declared this peer gone.
      if (state_[peer].is_terminal) return;
      state_[peer].frames.push_back(std::move(frame));
      state_[peer].enqueue_ns.push_back(obs::NowNs());
      frames_.Add(1);
      queue_depth_.Record(state_[peer].frames.size());
    }
    cv_.notify_all();
  }

  void MarkTerminal(int peer, Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      MarkTerminalLocked(peer, std::move(status));
    }
    cv_.notify_all();
  }

  void MarkTerminalLocked(int peer, Status status) {
    PeerState& st = state_[peer];
    if (st.is_terminal) return;  // first failure wins
    st.is_terminal = true;
    st.terminal = std::move(status);
  }

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const Transport* t : peers_) total += t->bytes_received();
    return total;
  }

  Status CheckPeers() const {
    for (const Transport* t : peers_) {
      if (t == nullptr) {
        return Status::InvalidArgument("mux: null transport");
      }
    }
    return Status::Ok();
  }

  std::vector<Transport*> peers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PeerState> state_;
  bool started_ = false;
  bool stopped_ = false;
  const bool waiter_deadline_;
  obs::Counter frames_{"net.mux.frames"};
  obs::Histogram dispatch_ns_{"net.mux.dispatch_ns"};
  obs::Histogram queue_depth_{"net.mux.queue_depth"};
};

/// One blocking reader thread per transport; the backend's Recv enforces
/// its own deadline (SO_RCVTIMEO on TCP, none on channels).
class ThreadedFrameMux final : public MuxBase {
 public:
  explicit ThreadedFrameMux(std::vector<Transport*> peers)
      : MuxBase(std::move(peers), /*waiter_deadline=*/false) {}

  ~ThreadedFrameMux() override { Shutdown(); }

  Status Start() override {
    ULDP_RETURN_IF_ERROR(CheckPeers());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (started_) return Status::FailedPrecondition("mux already started");
      started_ = true;
    }
    readers_.reserve(peers_.size());
    for (size_t i = 0; i < peers_.size(); ++i) {
      // Capture the Transport* itself: AddPeer may reallocate peers_
      // while this thread runs, so indexing from here would race.
      Transport* t = peers_[i];
      readers_.emplace_back(
          [this, i, t] { ReadLoop(static_cast<int>(i), t); });
    }
    return Status::Ok();
  }

  Result<int> AddPeer(Transport* t) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto peer = RegisterPeerLocked(t);
    if (!peer.ok()) return peer;
    readers_.emplace_back(
        [this, peer = peer.value(), t] { ReadLoop(peer, t); });
    return peer;
  }

  void Shutdown() override {
    std::vector<Transport*> peers;
    std::vector<std::thread> readers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || !started_) {
        stopped_ = true;
        started_ = true;  // future Recv calls fail with "mux shut down"
        cv_.notify_all();
        return;
      }
      stopped_ = true;
      peers = peers_;
      readers.swap(readers_);
    }
    cv_.notify_all();
    for (Transport* t : peers) t->Interrupt();
    for (std::thread& t : readers) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void ReadLoop(int peer, Transport* t) {
    for (;;) {
      auto frame = t->Recv();
      if (!frame.ok()) {
        MarkTerminal(peer, frame.status());
        return;
      }
      Deliver(peer, std::move(frame.value()));
    }
  }

  std::vector<std::thread> readers_;
};

/// A few event-loop threads over fd-partitioned epoll sets; sockets are
/// drained with non-blocking TryReadFrame so no loop ever blocks on one
/// peer, and waiters enforce recv deadlines themselves.
class EpollFrameMux final : public MuxBase {
 public:
  explicit EpollFrameMux(std::vector<Transport*> peers)
      : MuxBase(std::move(peers), /*waiter_deadline=*/true) {}

  ~EpollFrameMux() override { Shutdown(); }

  Status Start() override {
    ULDP_RETURN_IF_ERROR(CheckPeers());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (started_) return Status::FailedPrecondition("mux already started");
      started_ = true;
    }
    // Enough loops that a huge cohort shares the drain work, few enough
    // that a small one costs a single thread.
    const int num_loops = static_cast<int>(
        std::min<size_t>(4, 1 + peers_.size() / 64));
    epoll_fds_.assign(num_loops, -1);
    for (int k = 0; k < num_loops; ++k) {
      epoll_fds_[k] = ::epoll_create1(0);
      if (epoll_fds_[k] < 0) {
        Status status = Status::Internal(
            std::string("epoll_create1: ") + std::strerror(errno));
        CloseEpollFds();
        return status;
      }
    }
    for (size_t i = 0; i < peers_.size(); ++i) {
      const int fd = peers_[i]->NativeHandle();
      if (fd < 0) {
        CloseEpollFds();
        return Status::InvalidArgument(
            "epoll mux requires kernel-backed transports");
      }
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.u64 = static_cast<uint64_t>(i);
      if (::epoll_ctl(epoll_fds_[i % num_loops], EPOLL_CTL_ADD, fd, &ev) !=
          0) {
        Status status = Status::Internal(std::string("epoll_ctl: ") +
                                         std::strerror(errno));
        CloseEpollFds();
        return status;
      }
    }
    loop_stop_.store(false);
    loops_.reserve(num_loops);
    for (int k = 0; k < num_loops; ++k) {
      loops_.emplace_back([this, k] { Loop(k); });
    }
    return Status::Ok();
  }

  Result<int> AddPeer(Transport* t) override {
    if (t != nullptr && t->NativeHandle() < 0) {
      return Status::InvalidArgument(
          "epoll mux requires kernel-backed transports");
    }
    int peer = -1;
    int epfd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto registered = RegisterPeerLocked(t);
      if (!registered.ok()) return registered;
      peer = registered.value();
      epfd = epoll_fds_[peer % epoll_fds_.size()];
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = static_cast<uint64_t>(peer);
    // Level-triggered: bytes already queued on the socket wake the loop
    // immediately, so nothing sent before registration is lost.
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, t->NativeHandle(), &ev) != 0) {
      MarkTerminal(peer, Status::Internal(std::string("epoll_ctl: ") +
                                          std::strerror(errno)));
    }
    return peer;
  }

  void Shutdown() override {
    std::vector<Transport*> peers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || !started_) {
        stopped_ = true;
        started_ = true;
        cv_.notify_all();
        return;
      }
      stopped_ = true;
      peers = peers_;
    }
    cv_.notify_all();
    loop_stop_.store(true);
    for (Transport* t : peers) t->Interrupt();
    for (std::thread& t : loops_) {
      if (t.joinable()) t.join();
    }
    CloseEpollFds();
  }

 private:
  void CloseEpollFds() {
    for (int& fd : epoll_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }

  void Loop(int k) {
    epoll_event events[64];
    while (!loop_stop_.load()) {
      // The tick bounds how long a Shutdown waits for this thread when no
      // socket ever becomes readable again.
      const uint64_t wait_start = obs::NowNs();
      const int n = ::epoll_wait(epoll_fds_[k], events, 64, 100);
      epoll_wait_ns_.Record(obs::NowNs() - wait_start);
      if (n > 0) wakeups_.Add(1);
      if (n < 0) {
        if (errno == EINTR) continue;
        // An unusable epoll set fails every peer of this loop rather than
        // spinning.
        size_t peer_count;
        {
          std::lock_guard<std::mutex> lock(mu_);
          peer_count = peers_.size();
        }
        for (size_t i = static_cast<size_t>(k); i < peer_count;
             i += epoll_fds_.size()) {
          MarkTerminal(static_cast<int>(i),
                       Status::Internal(std::string("epoll_wait: ") +
                                        std::strerror(errno)));
        }
        return;
      }
      if (n > 0) {
        obs::TraceSpan span("mux.drain", "ready_fds", n);
        uint64_t delivered = 0;
        for (int e = 0; e < n; ++e) {
          delivered += DrainPeer(k, static_cast<int>(events[e].data.u64));
        }
        frames_per_wakeup_.Record(delivered);
      }
    }
  }

  /// Returns the number of frames delivered from this peer's socket.
  uint64_t DrainPeer(int k, int peer) {
    Transport* t;
    {
      // peers_ grows under mu_ (AddPeer); snapshot the pointer instead of
      // holding a reference into a vector that may reallocate.
      std::lock_guard<std::mutex> lock(mu_);
      if (peer < 0 || peer >= static_cast<int>(peers_.size())) return 0;
      t = peers_[peer];
    }
    uint64_t delivered = 0;
    for (;;) {
      Frame frame;
      auto complete = t->TryReadFrame(&frame);
      if (!complete.ok()) {
        // Stop watching a dead socket, or level-triggered epoll would spin
        // on its EOF.
        ::epoll_ctl(epoll_fds_[k], EPOLL_CTL_DEL, t->NativeHandle(),
                    nullptr);
        MarkTerminal(peer, complete.status());
        return delivered;
      }
      if (!complete.value()) return delivered;  // drained; next wakeup
      Deliver(peer, std::move(frame));
      ++delivered;
    }
  }

  std::vector<int> epoll_fds_;
  std::vector<std::thread> loops_;
  std::atomic<bool> loop_stop_{false};
  obs::Counter wakeups_{"net.mux.epoll_wakeups"};
  obs::Histogram epoll_wait_ns_{"net.mux.epoll_wait_ns"};
  obs::Histogram frames_per_wakeup_{"net.mux.frames_per_wakeup"};
};

}  // namespace

std::unique_ptr<FrameMux> MakeFrameMux(std::vector<Transport*> peers) {
  bool all_native = !peers.empty();
  for (const Transport* t : peers) {
    if (t == nullptr || t->NativeHandle() < 0) {
      all_native = false;
      break;
    }
  }
  if (all_native) {
    return std::unique_ptr<FrameMux>(new EpollFrameMux(std::move(peers)));
  }
  return std::unique_ptr<FrameMux>(new ThreadedFrameMux(std::move(peers)));
}

}  // namespace net
}  // namespace uldp
