// Message-driven Protocol 1 endpoints: a ProtocolServer that drives setup
// and weighting rounds over one Transport per silo, and a SiloClient that
// serves a silo's side of the protocol until shutdown. Both are thin
// drivers over the same ServerCore/SiloCore phase logic the in-process
// simulation uses (core/protocol_party.h), so a distributed run on any
// transport produces bitwise-identical aggregates to
// PrivateWeightingProtocol on the same seed and inputs.
//
// Message flow (client perspective):
//
//   -> Join                      (silo id, cohort shape, config digest)
//   <- SetupParams               (Paillier n; OT group)
//   -> DhPublicKey               <- DhDirectory
//   silo 0: -> SeedShare x(N-1)  others: <- SeedShare   (server relays)
//   -> BlindedHistogram          <- SetupAck
//   per round:
//     OT off:  <- RoundBegin
//     OT on:   silo 0: <- OtSender -> OtReceiver <- OtSlots
//                      -> WeightRelay x(N-1)
//              others: <- WeightRelay               (server relays)
//     -> SiloCipher              <- RoundResult
//   <- Shutdown
//
// Streaming mode (config.stream_chunk_users > 0): the monolithic
// RoundBegin and SiloCipher frames are replaced by chunked streams with
// windowed-credit flow control (net/stream.h). The server encrypts
// weights one user-chunk at a time and discards each chunk once acked;
// silos fold each chunk into their cipher accumulator on arrival
// (SiloCore::AccumulateUsersChunk) and upload the masked cipher in
// coordinate chunks the server folds straight into the aggregate product
// — so a round's peak resident ciphertexts are O(chunk), independent of
// the user count, and bitwise identical to the materializing path.
//
// All server-side receives run through a FrameMux (net/mux.h): over TCP
// a few epoll event-loop threads serve every connection, and mux
// shutdown interrupts all transports and joins its threads, so a silo
// hanging mid-stream can never leave a reader blocked after FailAll.
//
// Fatal errors travel as Error frames in either direction, so the peer
// reports the real Status instead of hanging up.

#ifndef ULDP_NET_PROTOCOL_NODE_H_
#define ULDP_NET_PROTOCOL_NODE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/protocol_party.h"
#include "fl/session.h"
#include "net/messages.h"
#include "net/mux.h"
#include "net/transport.h"
#include "nn/tensor.h"

namespace uldp {
namespace net {

/// Wire traffic and wall time of one server-side protocol phase,
/// accumulated across rounds (the bench's bytes-on-the-wire source).
struct NetPhaseStats {
  std::string phase;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  double seconds = 0.0;
};

class ProtocolServer {
 public:
  ProtocolServer(const ProtocolConfig& config, int num_silos, int num_users);
  ~ProtocolServer();

  /// Performs the Join handshake on a freshly connected transport and
  /// registers it under the silo id the client announced. Rejects
  /// duplicate ids, out-of-range ids, and config-digest mismatches (the
  /// client receives an Error frame explaining why). Blocks until the
  /// join frame arrives; to keep a connected-but-silent peer from
  /// stalling the accept loop, set a recv deadline on the transport first
  /// (TcpTransport::SetRecvTimeout — the CLI's --net-timeout does this)
  /// so the handshake fails with DeadlineExceeded instead of hanging.
  Status AddConnection(std::unique_ptr<Transport> transport);
  int connected_silos() const;

  /// Drives setup (a)-(f) over the registered transports. Requires every
  /// silo connected. On failure every silo is told (Error frame) so no
  /// client is left blocked in Recv.
  Status RunSetup();

  /// Drives one weighting round; returns the decrypted aggregate (which
  /// is also broadcast to the silos). `user_sampled` is ignored in OT
  /// mode, exactly like the in-process WeightingRound. On failure every
  /// silo is told (Error frame) so no client is left blocked in Recv.
  ///
  /// With config.pipeline set (and OT off), round r+1's encrypted weights
  /// are precomputed on a background thread while round r's silo ciphers
  /// are gathered and aggregated — the randomizers come from the same
  /// Fork(round, user) substreams either way, so pipelined and lockstep
  /// runs are bitwise identical. The prefetch assumes the sampling mask is
  /// unchanged; RunRound discards a mismatched prefetch, encrypts inline,
  /// and stops speculating after repeated misses (a driver that
  /// re-samples every round would otherwise waste a full encryption sweep
  /// per round). Arriving silo ciphers are folded into the aggregate as
  /// they land (ServerCore::AccumulateSiloCipher) instead of
  /// barrier-gathered.
  Result<Vec> RunRound(uint64_t round, const std::vector<bool>& user_sampled);

  /// Encrypted-weight rounds served from the pipeline prefetch.
  uint64_t prefetch_hits() const { return prefetch_hits_.value(); }

  /// Tells every silo the run is over; their Run() loops return Ok.
  Status Shutdown();

  const std::vector<NetPhaseStats>& phase_stats() const { return stats_; }
  uint64_t total_bytes_sent() const;
  uint64_t total_bytes_received() const;

  /// The server's session view (fl/session.h): the fixed cohort's
  /// membership rows and the weighting-round counter. Protocol 1 keeps a
  /// static membership, so rows activate at registration and never churn.
  const SessionState& session() const { return session_; }

 private:
  Status RunSetupInternal();
  Result<Vec> RunRoundInternal(uint64_t round,
                               const std::vector<bool>& user_sampled);
  /// Streaming enc-weight distribution: encrypts one user chunk at a
  /// time, broadcasts it, and keeps at most StreamWindow(config) chunks
  /// unacknowledged per silo before the chunk buffer is dropped.
  Status StreamEncWeights(uint64_t round,
                          const std::vector<bool>& user_sampled);
  /// Streaming cipher gather for one silo: folds arriving coordinate
  /// chunks straight into the shared aggregate `product` (lazily sized
  /// under `fold_mu`) and acks each chunk.
  Status GatherSiloCipherStream(int silo, uint64_t round,
                                std::mutex* fold_mu,
                                std::vector<BigInt>* product,
                                uint32_t* dim_out);
  /// Joins a pending enc-weight prefetch; returns its ciphertexts when it
  /// matches (round, mask) and was clean, null otherwise.
  std::unique_ptr<std::vector<BigInt>> TakePrefetch(
      uint64_t round, const std::vector<bool>& user_sampled);
  /// Starts the round-`round` enc-weight prefetch on a background thread
  /// (runs serially there — the main pool keeps driving the live round).
  void StartPrefetch(uint64_t round, const std::vector<bool>& user_sampled);
  Status SendTo(int silo, const Frame& frame);
  /// Receives the next frame from `silo`, turning Error frames into the
  /// Status they carry.
  Result<Frame> RecvFrom(int silo);
  Status Broadcast(const Frame& frame);
  /// Best-effort: tell every silo the run failed so their loops exit.
  void FailAll(const Status& status);
  void BeginPhase();
  void EndPhase(const std::string& name);

  ProtocolConfig config_;
  int num_silos_;
  int num_users_;
  ServerCore core_;
  SessionState session_;
  PoolHandle pool_;
  std::vector<std::unique_ptr<Transport>> conns_;  // [silo id]
  /// Receive front end over all connections, created when RunSetup first
  /// sees the full cohort (join handshakes use blocking Recv before
  /// that). FailAll and Shutdown tear it down — interrupt + join — so no
  /// receive thread outlives a failed run.
  std::unique_ptr<FrameMux> mux_;
  bool setup_done_ = false;
  std::vector<NetPhaseStats> stats_;
  uint64_t phase_sent_start_ = 0;
  uint64_t phase_received_start_ = 0;
  double phase_time_start_ = 0.0;

  // Pipeline prefetch state (config_.pipeline). The prefetch thread runs
  // EncryptWeights inline on itself (a 1-thread pool spawns no workers),
  // touching only plaintext-independent randomizer state, while the main
  // thread's concurrent work on the round is read-only w.r.t. that state;
  // the join in TakePrefetch is the happens-before edge before anyone
  // reads the result.
  ThreadPool prefetch_pool_{1};
  std::thread prefetch_thread_;
  uint64_t prefetch_round_ = 0;
  std::vector<bool> prefetch_mask_;
  Status prefetch_status_ = Status::Ok();
  std::vector<BigInt> prefetch_enc_;
  /// Registry-backed (net.server.prefetch_hits) so metrics snapshots
  /// report it; prefetch_hits() reads this instance exactly as before.
  obs::Counter prefetch_hits_{"net.server.prefetch_hits"};
  /// Consecutive discarded prefetches; at the cap the speculation is
  /// disabled (a per-round-resampling driver can never hit it).
  static constexpr int kMaxPrefetchMisses = 2;
  int prefetch_misses_ = 0;
};

class SiloClient {
 public:
  /// `histogram[u]` = n_{silo_id, u}: this silo's private input.
  SiloClient(const ProtocolConfig& config, int silo_id, int num_silos,
             int num_users, std::vector<int> histogram);

  /// Provides the round inputs: `deltas` (one Vec per user, empty when the
  /// user has no records here) and this silo's noise vector.
  using RoundInput = std::function<Status(
      uint64_t round, std::vector<Vec>* deltas, Vec* noise)>;
  /// Observes each round's broadcast aggregate (the global model update).
  using RoundResultFn =
      std::function<void(uint64_t round, const Vec& aggregate)>;

  /// Serves the protocol over `transport` until Shutdown (returns Ok) or a
  /// fatal error (returned; also reported to the server as an Error frame
  /// on a best-effort basis).
  Status Run(Transport& transport, const RoundInput& input,
             const RoundResultFn& on_result = nullptr);

 private:
  Status RunLoop(Transport& transport, const RoundInput& input,
                 const RoundResultFn& on_result);
  Result<std::vector<BigInt>> HandleOtRound(Transport& transport,
                                            uint64_t round,
                                            const OtSenderMsg& sender_msg);
  /// One full streamed round (config.stream_chunk_users > 0, OT off):
  /// folds enc-weight chunks as they arrive, finishes the masked cipher,
  /// uploads it as a coordinate-chunk stream, and receives the round
  /// result. Starts the next round's premask prefetch on `*premask` when
  /// pipelining (the caller joins it before the next round).
  Status HandleStreamedRound(Transport& transport, const Frame& first,
                             const RoundInput& input,
                             const RoundResultFn& on_result,
                             std::thread* premask);
  /// Uploads this silo's masked cipher as a chunked kSiloCipher stream.
  Status UploadCipherStream(Transport& transport, uint64_t round,
                            size_t model_dim, std::vector<BigInt> cipher);

  ProtocolConfig config_;
  int silo_id_;
  int num_silos_;
  int num_users_;
  std::vector<int> histogram_;
  PoolHandle pool_;
  std::unique_ptr<SiloCore> core_;  // built after SetupParams arrives
  /// Pipeline mask prefetch runs inline on its own thread (see
  /// ProtocolServer::prefetch_pool_ for the same pattern).
  ThreadPool premask_pool_{1};
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_PROTOCOL_NODE_H_
