// Dynamic membership for the elastic round server: the wire messages a
// silo uses to join mid-run, leave cleanly, or learn it was evicted, plus
// the MembershipManager that applies those transitions to a SessionState
// and keeps reweighting + DP accounting in lockstep with the population.
//
// Transition discipline (enforced here, not scattered across the server):
//
//   JoinRequest  -> Join()     row status kJoined (admission pending)
//   flush bound. -> Activate() kJoined -> kActive
//   Leave frame  -> Leave()    kActive -> kLeft
//   dead/faulty  -> Evict()    kActive -> kEvicted
//
// None of the transitions recompute weights by themselves — the server
// batches all changes that take effect at one flush boundary and calls
// SealEpoch() once, which recomputes the per-silo weights for the new
// population, appends a MembershipEpochRecord to the session, and mirrors
// it into the PrivacyTracker (when one is attached) so accounted epsilon
// can be attributed to each epoch's actual participants.

#ifndef ULDP_NET_MEMBERSHIP_H_
#define ULDP_NET_MEMBERSHIP_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dp/accountant.h"
#include "fl/session.h"
#include "net/messages.h"

namespace uldp {
namespace net {

/// Silo -> server, first frame on a connection when the silo wants
/// elastic admission (the fixed-cohort JoinMsg handshake stays for static
/// runs). `min_version` lets a late joiner insist on a model at least
/// that fresh; 0 means "whenever the next flush lands".
struct JoinRequestMsg {
  static constexpr MessageType kType = MessageType::kJoinRequest;
  uint32_t silo_id = 0;
  uint32_t num_silos = 0;
  uint32_t dim = 0;
  uint32_t user_count = 1;
  uint64_t min_version = 0;
  uint64_t config_digest = 0;
  void AppendTo(WireWriter& w) const;
  static Result<JoinRequestMsg> Parse(WireReader& r);
};

/// Silo -> server: voluntary departure after completing the task pulled
/// at `version`. The server drops any still-buffered updates from this
/// silo and reweights at the next flush boundary.
struct LeaveMsg {
  static constexpr MessageType kType = MessageType::kLeave;
  uint32_t silo_id = 0;
  uint64_t version = 0;
  void AppendTo(WireWriter& w) const;
  static Result<LeaveMsg> Parse(WireReader& r);
};

/// Server -> silo: declared dead or faulty at `version`; the connection
/// is closed after this frame. `code` is the StatusCode of the cause.
struct EvictMsg {
  static constexpr MessageType kType = MessageType::kEvict;
  uint32_t silo_id = 0;
  uint64_t version = 0;
  uint16_t code = 0;  // StatusCode
  std::string reason;
  void AppendTo(WireWriter& w) const;
  static Result<EvictMsg> Parse(WireReader& r);
};

/// Applies membership transitions to a bound SessionState. Plain state
/// machine over the session's membership table — no locking, no I/O; the
/// owning server serializes calls.
class MembershipManager {
 public:
  /// Neither pointer is owned; `tracker` may be null (no DP mirroring).
  explicit MembershipManager(SessionState* session,
                             PrivacyTracker* tracker = nullptr);

  /// Registers `silo_id` as kJoined at version `version` (admission
  /// happens at the next flush via Activate). Fails when the silo is
  /// currently joined or active; a departed silo may rejoin, which
  /// resets its row.
  Status Join(uint32_t silo_id, uint32_t user_count, uint64_t version);

  /// kJoined -> kActive (the admission boundary).
  Status Activate(uint32_t silo_id, uint64_t version);

  /// kActive -> kLeft at `version`.
  Status Leave(uint32_t silo_id, uint64_t version);

  /// kActive/kJoined -> kEvicted at `version`.
  Status Evict(uint32_t silo_id, uint64_t version);

  /// Seals the epoch after a batch of transitions: recomputes weights for
  /// the new population, appends the epoch record starting at
  /// `start_round`, and mirrors it into the tracker.
  const MembershipEpochRecord& SealEpoch(uint64_t start_round);

 private:
  SessionState* session_;
  PrivacyTracker* tracker_;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_MEMBERSHIP_H_
