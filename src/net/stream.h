// Chunked BigInt-vector streams with windowed-credit flow control — the
// wire discipline behind memory-bounded streaming rounds
// (ProtocolConfig::stream_chunk_users).
//
// A stream replaces one monolithic frame (RoundBegin's enc-weight vector,
// SiloCipher's masked cipher, a MaskedVector payload) with:
//
//   sender                                receiver
//   ------                                --------
//   StreamBegin{kind, total, chunk, dim}
//   StreamChunk{index=0, values}    -->   validate, fold, discard
//                                   <--   StreamAck{index=0, credits=1}
//   StreamChunk{index=1, values}    -->   ...
//
// The sender keeps at most `window` chunks unacknowledged, so neither
// side ever buffers more than O(window * chunk) elements and no frame
// approaches the transport's size cap. Chunks travel over a reliable
// ordered transport and carry explicit indices; the receiver enforces
// strictly sequential arrival, so any gap, duplicate, or reordering —
// however it was introduced — fails loudly instead of corrupting a fold.
//
// Both halves are transport-agnostic: the sender takes send/recv
// callbacks (drivers route recv through their demultiplexer so acks
// coexist with other traffic), and the receiver is a pure state machine
// fed parsed frames.

#ifndef ULDP_NET_STREAM_H_
#define ULDP_NET_STREAM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "math/bigint.h"
#include "net/messages.h"

namespace uldp {
namespace net {

struct StreamSendOptions {
  uint64_t phase_tag = 0;
  StreamKind kind = StreamKind::kEncWeights;
  uint32_t sender_id = 0;
  /// Context dimension announced in StreamBegin (model dim for cipher
  /// streams; 0 when the receiver derives it locally).
  uint32_t dim = 0;
  /// Elements per chunk (> 0); the last chunk may be short.
  int chunk_elems = 0;
  /// Maximum unacknowledged chunks in flight (> 0).
  int window = 0;
};

/// Streams `total_count` elements produced on demand by `make_chunk(c0,
/// c1)` (returning elements [c0, c1) — called in order, each chunk
/// discarded after its frame is handed to `send`). `recv` must block until
/// the receiver's next frame arrives; a StreamAck for this stream returns
/// credits, an Error frame aborts with its carried Status, anything else
/// is a protocol error. This is how a sender ships O(total) elements while
/// holding O(window * chunk) of them.
Status SendChunkedStream(
    size_t total_count, const StreamSendOptions& opts,
    const std::function<Result<std::vector<BigInt>>(size_t c0, size_t c1)>&
        make_chunk,
    const std::function<Status(const Frame&)>& send,
    const std::function<Result<Frame>()>& recv);

/// Convenience wrapper streaming an already-materialized vector.
Status SendChunkedBigVec(const std::vector<BigInt>& values,
                         const StreamSendOptions& opts,
                         const std::function<Status(const Frame&)>& send,
                         const std::function<Result<Frame>()>& recv);

/// Receiver state machine for one stream. Construct from the validated
/// StreamBegin, Feed each StreamChunk (in arrival order) to fold-and-ack,
/// and check Done() when the peer says the stream is over. Rejects any
/// index gap, duplicate, reordering, size mismatch, or phase/kind
/// mismatch.
class ChunkStreamReceiver {
 public:
  /// Validates `begin` against what this receiver expects. `expect_total`
  /// is the element count the receiver's own state implies; pass
  /// `expect_chunk_elems` > 0 to also pin the chunk size (the wire-digest
  /// agreed value).
  static Result<ChunkStreamReceiver> Create(const StreamBeginMsg& begin,
                                            StreamKind expect_kind,
                                            uint64_t expect_phase_tag,
                                            size_t expect_total,
                                            uint32_t expect_chunk_elems);

  /// Validates one chunk and hands its values (with their absolute element
  /// offset) to `fold`; the values are moved in, so the receiver retains
  /// nothing. On success returns the ack to send back (credits = 1).
  Result<StreamAckMsg> Feed(
      StreamChunkMsg chunk,
      const std::function<Status(std::vector<BigInt>&&, size_t offset)>&
          fold);

  /// True once every chunk has been folded.
  bool Done() const { return next_index_ == chunk_count_; }
  uint32_t chunk_count() const { return chunk_count_; }
  uint32_t next_index() const { return next_index_; }

 private:
  uint64_t phase_tag_ = 0;
  StreamKind kind_ = StreamKind::kEncWeights;
  uint32_t total_count_ = 0;
  uint32_t chunk_elems_ = 0;
  uint32_t chunk_count_ = 0;
  uint32_t next_index_ = 0;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_STREAM_H_
