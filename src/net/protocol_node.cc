#include "net/protocol_node.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "net/stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uldp {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double NowSeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Static trace-span names for the server's wire phases (the trace buffer
/// stores pointers, not copies).
const char* PhaseSpanName(const std::string& name) {
  if (name == "setup") return "proto.phase.setup";
  if (name == "enc_weights") return "proto.phase.enc_weights";
  if (name == "silo_ciphers") return "proto.phase.silo_ciphers";
  if (name == "aggregate") return "proto.phase.aggregate";
  return "proto.phase";
}

/// Joins an owned prefetch thread on every exit path.
struct ThreadJoiner {
  std::thread t;
  ~ThreadJoiner() { Join(); }
  void Join() {
    if (t.joinable()) t.join();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ProtocolServer

ProtocolServer::ProtocolServer(const ProtocolConfig& config, int num_silos,
                               int num_users)
    : config_(config),
      num_silos_(num_silos),
      num_users_(num_users),
      core_(config, num_silos, num_users),
      pool_(config.num_threads),
      conns_(num_silos) {}

ProtocolServer::~ProtocolServer() {
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
  if (mux_ != nullptr) mux_->Shutdown();
}

std::unique_ptr<std::vector<BigInt>> ProtocolServer::TakePrefetch(
    uint64_t round, const std::vector<bool>& user_sampled) {
  if (!prefetch_thread_.joinable()) return nullptr;
  prefetch_thread_.join();
  if (!prefetch_status_.ok() || prefetch_round_ != round ||
      prefetch_mask_ != user_sampled) {
    // A failed or mismatched prefetch is discarded, never an error: the
    // caller recomputes inline with the identical substreams. Repeated
    // mask mismatches mean the driver re-samples every round (Algorithm 4
    // Poisson sampling) — the same-mask speculation can never hit, so
    // StartPrefetch stops speculating instead of burning an encryption
    // sweep per round.
    ++prefetch_misses_;
    return nullptr;
  }
  prefetch_misses_ = 0;
  prefetch_hits_.Add(1);
  return std::make_unique<std::vector<BigInt>>(std::move(prefetch_enc_));
}

void ProtocolServer::StartPrefetch(uint64_t round,
                                   const std::vector<bool>& user_sampled) {
  ULDP_CHECK(!prefetch_thread_.joinable());
  if (prefetch_misses_ >= kMaxPrefetchMisses) return;
  prefetch_round_ = round;
  prefetch_mask_ = user_sampled;
  prefetch_thread_ = std::thread([this] {
    obs::TraceSpan span("proto.prefetch_enc", "round",
                        static_cast<int64_t>(prefetch_round_));
    auto enc = core_.EncryptWeights(prefetch_round_, prefetch_mask_,
                                    prefetch_pool_);
    if (enc.ok()) {
      prefetch_enc_ = std::move(enc.value());
      prefetch_status_ = Status::Ok();
    } else {
      prefetch_status_ = enc.status();
    }
  });
}

int ProtocolServer::connected_silos() const {
  int n = 0;
  for (const auto& c : conns_) n += c != nullptr ? 1 : 0;
  return n;
}

Status ProtocolServer::SendTo(int silo, const Frame& frame) {
  return conns_[silo]->Send(frame);
}

Result<Frame> ProtocolServer::RecvFrom(int silo) {
  if (mux_ == nullptr) {
    return Status::FailedPrecondition("receive mux not started");
  }
  auto frame = mux_->RecvFrom(silo);
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(),
                                "silo " + std::to_string(silo));
  }
  return frame;
}

Status ProtocolServer::Broadcast(const Frame& frame) {
  std::vector<Status> status(num_silos_, Status::Ok());
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    status[s] = conns_[s]->Send(frame);
  });
  return FirstError(status);
}

void ProtocolServer::FailAll(const Status& status) {
  obs::MetricsRegistry::Global().AddCounter("net.server.fail_all", 1);
  Frame frame = MakeErrorFrame(status);
  for (const auto& conn : conns_) {
    if (conn != nullptr) conn->Send(frame);  // best effort
  }
  // Interrupt every connection and join the receive threads: a silo that
  // hangs mid-stream must not leave a reader blocked past the failure.
  if (mux_ != nullptr) mux_->Shutdown();
}

uint64_t ProtocolServer::total_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& c : conns_) {
    if (c != nullptr) total += c->bytes_sent();
  }
  return total;
}

uint64_t ProtocolServer::total_bytes_received() const {
  uint64_t total = 0;
  for (const auto& c : conns_) {
    if (c != nullptr) total += c->bytes_received();
  }
  return total;
}

void ProtocolServer::BeginPhase() {
  phase_sent_start_ = total_bytes_sent();
  phase_received_start_ = total_bytes_received();
  phase_time_start_ = NowSeconds();
}

void ProtocolServer::EndPhase(const std::string& name) {
  NetPhaseStats* entry = nullptr;
  for (auto& s : stats_) {
    if (s.phase == name) {
      entry = &s;
      break;
    }
  }
  if (entry == nullptr) {
    stats_.push_back(NetPhaseStats{name, 0, 0, 0.0});
    entry = &stats_.back();
  }
  entry->bytes_sent += total_bytes_sent() - phase_sent_start_;
  entry->bytes_received += total_bytes_received() - phase_received_start_;
  const double seconds = NowSeconds() - phase_time_start_;
  entry->seconds += seconds;
  // Mirror each phase into the telemetry layer: a latency histogram in the
  // registry and one complete trace event spanning the phase (BeginPhase /
  // EndPhase are not lexically scoped, so no TraceSpan here).
  const uint64_t dur_ns = static_cast<uint64_t>(seconds * 1e9);
  obs::MetricsRegistry::Global().RecordHistogram(
      "net.server.phase_ns." + name, dur_ns);
  obs::TraceBuffer& trace = obs::TraceBuffer::Global();
  if (trace.enabled()) {
    trace.Record(PhaseSpanName(name), obs::NowNs() - dur_ns, dur_ns);
  }
}

Status ProtocolServer::AddConnection(std::unique_ptr<Transport> transport) {
  auto frame = transport->Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "joining silo");
  }
  auto join_or = FromFrame<JoinMsg>(frame.value());
  if (!join_or.ok()) return join_or.status();
  const JoinMsg& join = join_or.value();

  // All id comparisons stay unsigned: a hostile 2^31-range value must not
  // wrap negative past a ranged check and reach a vector index.
  Status verdict = Status::Ok();
  if (join.num_silos != static_cast<uint32_t>(num_silos_) ||
      join.num_users != static_cast<uint32_t>(num_users_)) {
    verdict = Status::InvalidArgument(
        "silo announced cohort " + std::to_string(join.num_silos) + "x" +
        std::to_string(join.num_users) + ", server expects " +
        std::to_string(num_silos_) + "x" + std::to_string(num_users_));
  } else if (join.config_digest !=
             ProtocolWireDigest(config_, num_silos_, num_users_)) {
    verdict = Status::InvalidArgument(
        "protocol config digest mismatch: silo and server were started "
        "with different parameters");
  } else if (join.silo_id >= static_cast<uint32_t>(num_silos_)) {
    verdict = Status::InvalidArgument("silo id " +
                                      std::to_string(join.silo_id) +
                                      " out of range");
  } else if (conns_[join.silo_id] != nullptr) {
    verdict = Status::InvalidArgument("silo id " +
                                      std::to_string(join.silo_id) +
                                      " already connected");
  }
  if (!verdict.ok()) {
    transport->Send(MakeErrorFrame(verdict));  // tell the client why
    return verdict;
  }
  conns_[join.silo_id] = std::move(transport);
  // Mirror the registration into the session's membership table (Protocol 1
  // keeps a fixed cohort, so members activate immediately).
  SiloMember& row = session_.Upsert(join.silo_id);
  row.status = SiloStatus::kActive;
  row.join_round = 0;
  row.user_count = join.num_users;
  return Status::Ok();
}

Status ProtocolServer::RunSetup() {
  Status status = RunSetupInternal();
  // Any server-side failure ends the run for everyone: without this, a
  // client blocked in Recv on an in-process channel would hang forever.
  if (!status.ok()) FailAll(status);
  return status;
}

Status ProtocolServer::RunSetupInternal() {
  if (connected_silos() != num_silos_) {
    return Status::FailedPrecondition(
        std::to_string(connected_silos()) + " of " +
        std::to_string(num_silos_) + " silos connected");
  }
  if (mux_ == nullptr) {
    // All join handshakes (blocking Recv) are done; from here every
    // server-side receive runs through the shared front end.
    std::vector<Transport*> peers;
    peers.reserve(conns_.size());
    for (const auto& c : conns_) peers.push_back(c.get());
    mux_ = MakeFrameMux(std::move(peers));
    ULDP_RETURN_IF_ERROR(mux_->Start());
  }
  BeginPhase();
  ULDP_RETURN_IF_ERROR(core_.GenerateKeys(*pool_));

  SetupParamsMsg params;
  params.paillier_n = core_.params().public_key.n;
  if (config_.ot_slots > 0) {
    params.ot_p = core_.params().ot_group.p;
    params.ot_g = core_.params().ot_group.g;
  }
  ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(params)));

  // Gather DH public keys (one blocking recv per silo, in parallel), then
  // relay the full directory.
  DhDirectoryMsg directory;
  directory.public_keys.assign(num_silos_, BigInt(0));
  std::vector<Status> status(num_silos_, Status::Ok());
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    auto frame = RecvFrom(static_cast<int>(s));
    if (!frame.ok()) {
      status[s] = frame.status();
      return;
    }
    auto msg = FromFrame<DhPublicKeyMsg>(frame.value());
    if (!msg.ok()) {
      status[s] = msg.status();
      return;
    }
    if (msg.value().silo_id != s) {
      status[s] = Status::InvalidArgument("DH key from wrong silo id");
      return;
    }
    directory.public_keys[s] = std::move(msg.value().public_key);
  });
  ULDP_RETURN_IF_ERROR(FirstError(status));
  ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(directory)));

  // Relay silo 0's encrypted seed shares; the server sees only ciphertext.
  std::vector<bool> share_seen(num_silos_, false);
  for (int i = 0; i < num_silos_ - 1; ++i) {
    auto frame = RecvFrom(0);
    if (!frame.ok()) return frame.status();
    auto msg = FromFrame<SeedShareMsg>(frame.value());
    if (!msg.ok()) return msg.status();
    const SeedShareMsg& share = msg.value();
    if (share.from_silo != 0 || share.to_silo == 0 ||
        share.to_silo >= static_cast<uint32_t>(num_silos_) ||
        share_seen[share.to_silo]) {
      return Status::InvalidArgument("invalid seed share routing");
    }
    share_seen[share.to_silo] = true;
    ULDP_RETURN_IF_ERROR(SendTo(static_cast<int>(share.to_silo),
                                frame.value()));
  }

  // Gather doubly blinded histograms and finish setup.
  std::vector<std::vector<BigInt>> blinded(num_silos_);
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    auto frame = RecvFrom(static_cast<int>(s));
    if (!frame.ok()) {
      status[s] = frame.status();
      return;
    }
    auto msg = FromFrame<BlindedHistogramMsg>(frame.value());
    if (!msg.ok()) {
      status[s] = msg.status();
      return;
    }
    if (msg.value().silo_id != s) {
      status[s] = Status::InvalidArgument("histogram from wrong silo id");
      return;
    }
    blinded[s] = std::move(msg.value().values);
  });
  ULDP_RETURN_IF_ERROR(FirstError(status));
  for (int s = 0; s < num_silos_; ++s) {
    ULDP_RETURN_IF_ERROR(core_.AbsorbBlindedHistogram(s, std::move(blinded[s])));
  }
  ULDP_RETURN_IF_ERROR(core_.FinalizeSetup());
  ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(SetupAckMsg{})));
  EndPhase("setup");
  setup_done_ = true;
  return Status::Ok();
}

Result<Vec> ProtocolServer::RunRound(uint64_t round,
                                     const std::vector<bool>& user_sampled) {
  auto out = RunRoundInternal(round, user_sampled);
  if (!out.ok()) FailAll(out.status());
  if (out.ok()) {
    session_.round = round + 1;
    session_.stats.steps += 1;
  }
  return out;
}

Result<Vec> ProtocolServer::RunRoundInternal(
    uint64_t round, const std::vector<bool>& user_sampled) {
  if (!setup_done_) {
    return Status::FailedPrecondition("RunSetup() has not completed");
  }
  if (round >= kMaskTagRoundLimit) {
    return Status::OutOfRange("round exceeds the 56-bit tag limit");
  }
  obs::TraceSpan round_span("proto.round", "round",
                            static_cast<int64_t>(round));
  BeginPhase();
  if (config_.ot_slots > 0) {
    obs::TraceSpan ot_span("proto.ot_round", "round",
                           static_cast<int64_t>(round));
    // OT-based private sub-sampling: silo 0 acts as the joint receiver
    // (all silos share the seed that picks the slots) and re-distributes
    // the fetched ciphertexts to its peers, encrypted under pairwise keys
    // so this server only relays opaque bytes.
    auto senders = core_.OtSenderInit(round, *pool_);
    if (!senders.ok()) return senders.status();
    const uint64_t ot_tag = MakeMaskTag(MaskPhase::kOtSlotChoice, round);
    OtSenderMsg sender_msg;
    sender_msg.phase_tag = ot_tag;
    sender_msg.senders = std::move(senders.value());
    ULDP_RETURN_IF_ERROR(SendTo(0, ToFrame(sender_msg)));

    auto reply = RecvFrom(0);
    if (!reply.ok()) return reply.status();
    auto receiver = FromFrame<OtReceiverMsg>(reply.value());
    if (!receiver.ok()) return receiver.status();
    ULDP_RETURN_IF_ERROR(CheckPhaseTag(receiver.value().phase_tag,
                                       MaskPhase::kOtSlotChoice, round));
    auto slots = core_.OtEncryptSlots(round, receiver.value().bs, *pool_);
    if (!slots.ok()) return slots.status();
    OtSlotsMsg slots_msg;
    slots_msg.phase_tag = ot_tag;
    slots_msg.slots = std::move(slots.value());
    ULDP_RETURN_IF_ERROR(SendTo(0, ToFrame(slots_msg)));

    // Relay the encrypted weight shares to silos 1..N-1.
    std::vector<bool> relay_seen(num_silos_, false);
    for (int i = 0; i < num_silos_ - 1; ++i) {
      auto frame = RecvFrom(0);
      if (!frame.ok()) return frame.status();
      auto msg = FromFrame<WeightRelayMsg>(frame.value());
      if (!msg.ok()) return msg.status();
      const WeightRelayMsg& relay = msg.value();
      Status tag_ok = CheckPhaseTag(relay.phase_tag,
                                    MaskPhase::kOtWeightRelay, round);
      if (!tag_ok.ok()) return tag_ok;
      if (relay.from_silo != 0 || relay.to_silo == 0 ||
          relay.to_silo >= static_cast<uint32_t>(num_silos_) ||
          relay_seen[relay.to_silo]) {
        return Status::InvalidArgument("invalid weight relay routing");
      }
      relay_seen[relay.to_silo] = true;
      ULDP_RETURN_IF_ERROR(SendTo(static_cast<int>(relay.to_silo),
                                  frame.value()));
    }
  } else if (StreamChunkUsers(config_) > 0) {
    // Streaming: per-user-chunk encrypt -> broadcast -> discard, so the
    // server never materializes the full enc-weight vector (and the
    // whole-vector prefetch stays off — it would defeat the RSS bound).
    ULDP_RETURN_IF_ERROR(StreamEncWeights(round, user_sampled));
  } else {
    // Pipelined servers serve this round from the round-ahead prefetch
    // when it matches and immediately start precomputing the next round's
    // ciphertexts in the background — that work overlaps the silos'
    // weighting compute and this round's aggregation below.
    std::unique_ptr<std::vector<BigInt>> prefetched =
        config_.pipeline ? TakePrefetch(round, user_sampled) : nullptr;
    std::vector<BigInt> enc_weights;
    if (prefetched != nullptr) {
      enc_weights = std::move(*prefetched);
    } else {
      auto enc = core_.EncryptWeights(round, user_sampled, *pool_);
      if (!enc.ok()) return enc.status();
      enc_weights = std::move(enc.value());
    }
    RoundBeginMsg begin;
    begin.phase_tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
    begin.enc_weights = std::move(enc_weights);
    ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(begin)));
    if (config_.pipeline && round + 1 < kMaskTagRoundLimit) {
      StartPrefetch(round + 1, user_sampled);
    }
  }
  EndPhase("enc_weights");

  // Gather the masked silo ciphertexts. The pipelined path folds each
  // cipher into the running product as it lands (the staleness-aware
  // accumulate path — exact modular products make arrival order
  // irrelevant bitwise); the lockstep path barrier-gathers then reduces.
  BeginPhase();
  const bool streaming = StreamChunkUsers(config_) > 0;
  std::vector<std::vector<BigInt>> ciphers(
      config_.pipeline || streaming ? 0 : num_silos_);
  std::vector<BigInt> incremental;
  std::mutex fold_mu;
  std::vector<Status> status(num_silos_, Status::Ok());
  std::vector<uint32_t> dims(num_silos_, 0);
  if (streaming) {
    // Each silo uploads its cipher as a coordinate-chunk stream; every
    // chunk is folded into the shared product on arrival, so the server
    // holds one aggregate instead of num_silos cipher vectors.
    pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
      status[s] = GatherSiloCipherStream(static_cast<int>(s), round,
                                         &fold_mu, &incremental, &dims[s]);
    });
    ULDP_RETURN_IF_ERROR(FirstError(status));
  } else {
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    auto frame = RecvFrom(static_cast<int>(s));
    if (!frame.ok()) {
      status[s] = frame.status();
      return;
    }
    auto msg = FromFrame<SiloCipherMsg>(frame.value());
    if (!msg.ok()) {
      status[s] = msg.status();
      return;
    }
    Status tag_ok = CheckPhaseTag(msg.value().phase_tag,
                                  MaskPhase::kRoundWeighting, round);
    if (!tag_ok.ok()) {
      status[s] = tag_ok;
      return;
    }
    if (msg.value().silo_id != s) {
      status[s] = Status::InvalidArgument("cipher from wrong silo id");
      return;
    }
    // The advertised model dimension must match the packed cipher count;
    // a mismatch means the peer runs a different slot layout.
    if (core_.params().packed.PackedDim(msg.value().dim) !=
        msg.value().cipher.size()) {
      status[s] = Status::InvalidArgument(
          "silo cipher count inconsistent with model dimension");
      return;
    }
    dims[s] = msg.value().dim;
    if (!config_.pipeline) {
      ciphers[s] = std::move(msg.value().cipher);
      return;
    }
    std::lock_guard<std::mutex> lock(fold_mu);
    if (incremental.empty()) {
      incremental.assign(msg.value().cipher.size(), BigInt(1));
    }
    status[s] = core_.AccumulateSiloCipher(msg.value().cipher, &incremental);
  });
  ULDP_RETURN_IF_ERROR(FirstError(status));
  }
  for (int s = 1; s < num_silos_; ++s) {
    if (dims[s] != dims[0]) {
      return Status::InvalidArgument("silos disagree on the model dimension");
    }
  }
  EndPhase("silo_ciphers");

  BeginPhase();
  Result<std::vector<BigInt>> product =
      config_.pipeline || streaming
          ? Result<std::vector<BigInt>>(std::move(incremental))
          : core_.AggregateCiphertexts(ciphers, *pool_);
  if (!product.ok()) return product.status();
  auto out = core_.DecryptAggregate(product.value(), *pool_, dims[0]);
  if (!out.ok()) return out.status();
  RoundResultMsg result;
  result.phase_tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
  result.aggregate = out.value();
  ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(result)));
  EndPhase("aggregate");
  return out;
}

Status ProtocolServer::StreamEncWeights(
    uint64_t round, const std::vector<bool>& user_sampled) {
  obs::TraceSpan span("proto.stream_enc_weights", "round",
                      static_cast<int64_t>(round));
  const uint64_t tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
  const int chunk_users = StreamChunkUsers(config_);
  const int window = StreamWindow(config_);

  StreamBeginMsg begin;
  begin.phase_tag = tag;
  begin.kind = static_cast<uint8_t>(StreamKind::kEncWeights);
  begin.sender_id = 0;
  begin.total_count = static_cast<uint32_t>(num_users_);
  begin.chunk_elems = static_cast<uint32_t>(chunk_users);
  begin.dim = 0;  // silos size the fold from their own round inputs
  ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(begin)));

  std::vector<int> in_flight(num_silos_, 0);
  auto drain_ack = [&](int s) -> Status {
    auto frame = RecvFrom(s);
    if (!frame.ok()) return frame.status();
    auto ack = FromFrame<StreamAckMsg>(frame.value());
    if (!ack.ok()) return ack.status();
    if (ack.value().phase_tag != tag ||
        ack.value().kind != static_cast<uint8_t>(StreamKind::kEncWeights)) {
      return Status::InvalidArgument(
          "stream: enc-weight ack for a different stream");
    }
    const int credits =
        static_cast<int>(std::max(1u, ack.value().credits));
    in_flight[s] -= std::min(in_flight[s], credits);
    return Status::Ok();
  };

  uint32_t index = 0;
  for (int u0 = 0; u0 < num_users_; u0 += chunk_users, ++index) {
    const int u1 = std::min(num_users_, u0 + chunk_users);
    for (int s = 0; s < num_silos_; ++s) {
      while (in_flight[s] >= window) {
        ULDP_RETURN_IF_ERROR(drain_ack(s));
      }
    }
    auto enc = core_.EncryptWeightsRange(round, user_sampled, u0, u1,
                                         *pool_);
    if (!enc.ok()) return enc.status();
    StreamChunkMsg chunk;
    chunk.phase_tag = tag;
    chunk.kind = static_cast<uint8_t>(StreamKind::kEncWeights);
    chunk.index = index;
    chunk.values = std::move(enc.value());
    ULDP_RETURN_IF_ERROR(Broadcast(ToFrame(chunk)));
    // `chunk` (the only copy of these ciphertexts) dies here: peak
    // resident enc weights are one chunk regardless of num_users.
    for (int s = 0; s < num_silos_; ++s) ++in_flight[s];
  }
  for (int s = 0; s < num_silos_; ++s) {
    while (in_flight[s] > 0) {
      ULDP_RETURN_IF_ERROR(drain_ack(s));
    }
  }
  return Status::Ok();
}

Status ProtocolServer::GatherSiloCipherStream(int silo, uint64_t round,
                                              std::mutex* fold_mu,
                                              std::vector<BigInt>* product,
                                              uint32_t* dim_out) {
  obs::TraceSpan span("proto.gather_cipher_stream", "silo", silo);
  const uint64_t tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
  auto frame = RecvFrom(silo);
  if (!frame.ok()) return frame.status();
  auto begin_or = FromFrame<StreamBeginMsg>(frame.value());
  if (!begin_or.ok()) return begin_or.status();
  const StreamBeginMsg& begin = begin_or.value();
  if (begin.sender_id != static_cast<uint32_t>(silo)) {
    return Status::InvalidArgument("cipher stream from wrong silo id");
  }
  ULDP_RETURN_IF_ERROR(
      CheckPhaseTag(begin.phase_tag, MaskPhase::kRoundWeighting, round));
  // Same layout check as the monolithic SiloCipherMsg path: the announced
  // model dimension must match the packed cipher count.
  const size_t cdim = core_.params().packed.PackedDim(begin.dim);
  if (begin.total_count != cdim) {
    return Status::InvalidArgument(
        "silo cipher count inconsistent with model dimension");
  }
  *dim_out = begin.dim;
  auto receiver_or = ChunkStreamReceiver::Create(
      begin, StreamKind::kSiloCipher, tag, cdim,
      static_cast<uint32_t>(StreamChunkCoords(config_)));
  if (!receiver_or.ok()) return receiver_or.status();
  ChunkStreamReceiver receiver = std::move(receiver_or.value());
  while (!receiver.Done()) {
    frame = RecvFrom(silo);
    if (!frame.ok()) return frame.status();
    auto chunk = FromFrame<StreamChunkMsg>(frame.value());
    if (!chunk.ok()) return chunk.status();
    auto ack = receiver.Feed(
        std::move(chunk.value()),
        [&](std::vector<BigInt>&& values, size_t offset) -> Status {
          std::lock_guard<std::mutex> lock(*fold_mu);
          if (product->empty()) product->assign(cdim, BigInt(1));
          return core_.AccumulateSiloCipherRange(values, offset, product);
        });
    if (!ack.ok()) return ack.status();
    ULDP_RETURN_IF_ERROR(SendTo(silo, ToFrame(ack.value())));
  }
  return Status::Ok();
}

Status ProtocolServer::Shutdown() {
  Status status = Broadcast(ToFrame(ShutdownMsg{}));
  // The broadcast is already queued/flushed per connection; interrupting
  // afterwards only stops the receive side, so clients still read the
  // Shutdown frame before seeing EOF.
  if (mux_ != nullptr) mux_->Shutdown();
  return status;
}

// ---------------------------------------------------------------------------
// SiloClient

SiloClient::SiloClient(const ProtocolConfig& config, int silo_id,
                       int num_silos, int num_users,
                       std::vector<int> histogram)
    : config_(config),
      silo_id_(silo_id),
      num_silos_(num_silos),
      num_users_(num_users),
      histogram_(std::move(histogram)),
      pool_(config.num_threads) {
  ULDP_CHECK_GE(silo_id_, 0);
  ULDP_CHECK_LT(silo_id_, num_silos_);
  ULDP_CHECK_EQ(histogram_.size(), static_cast<size_t>(num_users_));
}

Status SiloClient::Run(Transport& transport, const RoundInput& input,
                       const RoundResultFn& on_result) {
  Status status = RunLoop(transport, input, on_result);
  if (!status.ok()) {
    transport.Send(MakeErrorFrame(status));  // best effort
  }
  return status;
}

Result<std::vector<BigInt>> SiloClient::HandleOtRound(
    Transport& transport, uint64_t round, const OtSenderMsg& sender_msg) {
  obs::TraceSpan span("silo.ot_round", "round", static_cast<int64_t>(round));
  // Receiver commitments, then the encrypted slots.
  auto bs = core_->OtReceiverChoose(round, sender_msg.senders, *pool_);
  if (!bs.ok()) return bs.status();
  OtReceiverMsg receiver;
  receiver.phase_tag = MakeMaskTag(MaskPhase::kOtSlotChoice, round);
  receiver.bs = std::move(bs.value());
  ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(receiver)));

  auto frame = transport.Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "server");
  }
  auto slots = FromFrame<OtSlotsMsg>(frame.value());
  if (!slots.ok()) return slots.status();
  ULDP_RETURN_IF_ERROR(CheckPhaseTag(slots.value().phase_tag,
                                     MaskPhase::kOtSlotChoice, round));
  auto enc = core_->OtReceiverDecrypt(round, sender_msg.senders,
                                      slots.value().slots, *pool_);
  if (!enc.ok()) return enc.status();

  // Re-distribute the fetched ciphertexts to the peers, encrypted under
  // the pairwise keys so the relaying server cannot match them to slots.
  WireWriter w;
  w.BigVec(enc.value());
  const std::vector<uint8_t> plain = w.Take();
  const uint64_t relay_tag = MakeMaskTag(MaskPhase::kOtWeightRelay, round);
  for (int to = 1; to < num_silos_; ++to) {
    auto ct = core_->PairStreamXor(to, relay_tag,
                                   static_cast<uint32_t>(to), plain);
    if (!ct.ok()) return ct.status();
    WeightRelayMsg relay;
    relay.phase_tag = relay_tag;
    relay.from_silo = 0;
    relay.to_silo = static_cast<uint32_t>(to);
    relay.ciphertext = std::move(ct.value());
    ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(relay)));
  }
  return enc;
}

Status SiloClient::UploadCipherStream(Transport& transport, uint64_t round,
                                      size_t model_dim,
                                      std::vector<BigInt> cipher) {
  obs::TraceSpan span("silo.upload_cipher", "round",
                      static_cast<int64_t>(round));
  StreamSendOptions opts;
  opts.phase_tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
  opts.kind = StreamKind::kSiloCipher;
  opts.sender_id = static_cast<uint32_t>(silo_id_);
  opts.dim = static_cast<uint32_t>(model_dim);
  opts.chunk_elems = StreamChunkCoords(config_);
  opts.window = StreamWindow(config_);
  return SendChunkedBigVec(
      cipher, opts, [&](const Frame& f) { return transport.Send(f); },
      [&]() { return transport.Recv(); });
}

Status SiloClient::HandleStreamedRound(Transport& transport,
                                       const Frame& first,
                                       const RoundInput& input,
                                       const RoundResultFn& on_result,
                                       std::thread* premask) {
  if (StreamChunkUsers(config_) <= 0 || config_.ot_slots > 0) {
    return Status::InvalidArgument(
        "unexpected enc-weight stream for this configuration");
  }
  auto begin_or = FromFrame<StreamBeginMsg>(first);
  if (!begin_or.ok()) return begin_or.status();
  const StreamBeginMsg& begin = begin_or.value();
  if (MaskTagPhase(begin.phase_tag) != MaskPhase::kRoundWeighting) {
    return Status::InvalidArgument("stream begin with wrong phase tag");
  }
  const uint64_t round = MaskTagRound(begin.phase_tag);
  obs::TraceSpan span("silo.stream_round", "round",
                      static_cast<int64_t>(round));

  // Round inputs first: the fold needs this silo's deltas and the model
  // dimension before the first chunk lands.
  std::vector<Vec> deltas;
  Vec noise;
  ULDP_RETURN_IF_ERROR(input(round, &deltas, &noise));
  const size_t dim = noise.size();
  const size_t cdim = core_->params().packed.PackedDim(dim);

  auto receiver_or = ChunkStreamReceiver::Create(
      begin, StreamKind::kEncWeights, begin.phase_tag,
      static_cast<size_t>(num_users_),
      static_cast<uint32_t>(StreamChunkUsers(config_)));
  if (!receiver_or.ok()) return receiver_or.status();
  ChunkStreamReceiver receiver = std::move(receiver_or.value());

  std::vector<BigInt> cipher = SiloCore::NewCipherAccumulator(cdim);
  while (!receiver.Done()) {
    auto frame = transport.Recv();
    if (!frame.ok()) return frame.status();
    if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "server");
    }
    auto chunk = FromFrame<StreamChunkMsg>(frame.value());
    if (!chunk.ok()) return chunk.status();
    auto ack = receiver.Feed(
        std::move(chunk.value()),
        [&](std::vector<BigInt>&& values, size_t offset) -> Status {
          return core_->AccumulateUsersChunk(
              values, static_cast<int>(offset),
              static_cast<int>(offset + values.size()), deltas, dim,
              &cipher, *pool_);
        });
    if (!ack.ok()) return ack.status();
    ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(ack.value())));
  }
  ULDP_RETURN_IF_ERROR(core_->FinishRound(round, noise, &cipher, *pool_));
  ULDP_RETURN_IF_ERROR(
      UploadCipherStream(transport, round, dim, std::move(cipher)));

  if (config_.pipeline && round + 1 < kMaskTagRoundLimit) {
    *premask = std::thread([this, round, dim] {
      core_->PrecomputeRoundMasks(round + 1, dim, premask_pool_).ok();
    });
  }

  auto frame = transport.Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "server");
  }
  auto result = FromFrame<RoundResultMsg>(frame.value());
  if (!result.ok()) return result.status();
  ULDP_RETURN_IF_ERROR(CheckPhaseTag(result.value().phase_tag,
                                     MaskPhase::kRoundWeighting, round));
  if (on_result) on_result(round, result.value().aggregate);
  return Status::Ok();
}

Status SiloClient::RunLoop(Transport& transport, const RoundInput& input,
                           const RoundResultFn& on_result) {
  const uint64_t setup_start_ns = obs::NowNs();
  // -- Join handshake ------------------------------------------------------
  JoinMsg join;
  join.silo_id = static_cast<uint32_t>(silo_id_);
  join.num_silos = static_cast<uint32_t>(num_silos_);
  join.num_users = static_cast<uint32_t>(num_users_);
  join.config_digest = ProtocolWireDigest(config_, num_silos_, num_users_);
  ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(join)));

  auto frame = transport.Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "server");
  }
  auto setup = FromFrame<SetupParamsMsg>(frame.value());
  if (!setup.ok()) return setup.status();

  ProtocolParams params;
  params.config = config_;
  params.num_silos = num_silos_;
  params.num_users = num_users_;
  params.public_key.n = setup.value().paillier_n;
  if (config_.ot_slots > 0) {
    params.ot_group.p = setup.value().ot_p;
    params.ot_group.g = setup.value().ot_g;
  }
  ULDP_RETURN_IF_ERROR(params.Derive());
  core_ = std::make_unique<SiloCore>(std::move(params), silo_id_, histogram_);

  // -- DH key exchange -----------------------------------------------------
  DhPublicKeyMsg dh;
  dh.silo_id = static_cast<uint32_t>(silo_id_);
  dh.public_key = core_->dh_key().public_key;
  ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(dh)));
  frame = transport.Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "server");
  }
  auto directory = FromFrame<DhDirectoryMsg>(frame.value());
  if (!directory.ok()) return directory.status();
  ULDP_RETURN_IF_ERROR(
      core_->ComputePairKeys(directory.value().public_keys));

  // -- Shared seed R (silo 0 distributes; server relays ciphertext) --------
  const uint64_t seed_tag = MakeMaskTag(MaskPhase::kSeedRelay, 0);
  if (silo_id_ == 0) {
    BigInt r_seed = core_->MakeSharedSeed();
    core_->SetSharedSeed(r_seed);
    WireWriter w;
    w.Big(r_seed);
    const std::vector<uint8_t> plain = w.Take();
    for (int to = 1; to < num_silos_; ++to) {
      auto ct = core_->PairStreamXor(to, seed_tag,
                                     static_cast<uint32_t>(to), plain);
      if (!ct.ok()) return ct.status();
      SeedShareMsg share;
      share.from_silo = 0;
      share.to_silo = static_cast<uint32_t>(to);
      share.ciphertext = std::move(ct.value());
      ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(share)));
    }
  } else {
    frame = transport.Recv();
    if (!frame.ok()) return frame.status();
    if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "server");
    }
    auto share = FromFrame<SeedShareMsg>(frame.value());
    if (!share.ok()) return share.status();
    if (share.value().from_silo != 0 ||
        static_cast<int>(share.value().to_silo) != silo_id_) {
      return Status::InvalidArgument("misrouted seed share");
    }
    auto plain = core_->PairStreamXor(0, seed_tag,
                                      static_cast<uint32_t>(silo_id_),
                                      share.value().ciphertext);
    if (!plain.ok()) return plain.status();
    WireReader r(plain.value());
    BigInt r_seed;
    ULDP_RETURN_IF_ERROR(r.Big(&r_seed));
    if (!r.AtEnd()) {
      return Status::InvalidArgument("trailing bytes in seed share");
    }
    core_->SetSharedSeed(r_seed);
  }

  // -- Blinded histogram ---------------------------------------------------
  auto blinded = core_->BlindHistogram(*pool_);
  if (!blinded.ok()) return blinded.status();
  BlindedHistogramMsg histogram;
  histogram.silo_id = static_cast<uint32_t>(silo_id_);
  histogram.values = std::move(blinded.value());
  ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(histogram)));
  frame = transport.Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "server");
  }
  auto ack = FromFrame<SetupAckMsg>(frame.value());
  if (!ack.ok()) return ack.status();
  // The setup leg spans the whole straight-line section above, so it is
  // recorded directly rather than via a scoped span.
  obs::TraceBuffer& trace = obs::TraceBuffer::Global();
  if (trace.enabled()) {
    trace.Record("silo.setup", setup_start_ns,
                 obs::NowNs() - setup_start_ns, "silo",
                 static_cast<int64_t>(silo_id_));
  }

  // -- Round loop ----------------------------------------------------------
  // Pipelining: while the server aggregates and decrypts round r, this
  // silo precomputes its round-r+1 pairwise masks on a side thread (same
  // PRF evaluations FinishRound would run inline — bitwise identical).
  // The joiner below is the happens-before edge before the masks are read.
  ThreadJoiner premask;
  for (;;) {
    frame = transport.Recv();
    if (!frame.ok()) return frame.status();
    premask.Join();
    const uint16_t type = frame.value().type;
    if (type == static_cast<uint16_t>(MessageType::kShutdown)) {
      return Status::Ok();
    }
    if (type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "server");
    }

    if (type == static_cast<uint16_t>(MessageType::kStreamBegin)) {
      ULDP_RETURN_IF_ERROR(HandleStreamedRound(transport, frame.value(),
                                               input, on_result,
                                               &premask.t));
      continue;
    }

    uint64_t round = 0;
    std::vector<BigInt> enc_weights;
    if (type == static_cast<uint16_t>(MessageType::kRoundBegin)) {
      if (config_.ot_slots > 0) {
        return Status::InvalidArgument(
            "plain RoundBegin received in OT mode");
      }
      if (StreamChunkUsers(config_) > 0) {
        return Status::InvalidArgument(
            "plain RoundBegin received in streaming mode");
      }
      auto begin = FromFrame<RoundBeginMsg>(frame.value());
      if (!begin.ok()) return begin.status();
      if (MaskTagPhase(begin.value().phase_tag) !=
          MaskPhase::kRoundWeighting) {
        return Status::InvalidArgument("RoundBegin with wrong phase tag");
      }
      round = MaskTagRound(begin.value().phase_tag);
      enc_weights = std::move(begin.value().enc_weights);
    } else if (type == static_cast<uint16_t>(MessageType::kOtSender)) {
      if (config_.ot_slots <= 0 || silo_id_ != 0) {
        return Status::InvalidArgument(
            "unexpected OT sender message for this silo");
      }
      auto sender = FromFrame<OtSenderMsg>(frame.value());
      if (!sender.ok()) return sender.status();
      if (MaskTagPhase(sender.value().phase_tag) !=
          MaskPhase::kOtSlotChoice) {
        return Status::InvalidArgument("OT sender with wrong phase tag");
      }
      round = MaskTagRound(sender.value().phase_tag);
      auto enc = HandleOtRound(transport, round, sender.value());
      if (!enc.ok()) return enc.status();
      enc_weights = std::move(enc.value());
    } else if (type == static_cast<uint16_t>(MessageType::kWeightRelay)) {
      if (config_.ot_slots <= 0 || silo_id_ == 0) {
        return Status::InvalidArgument(
            "unexpected weight relay for this silo");
      }
      auto relay = FromFrame<WeightRelayMsg>(frame.value());
      if (!relay.ok()) return relay.status();
      if (MaskTagPhase(relay.value().phase_tag) !=
          MaskPhase::kOtWeightRelay) {
        return Status::InvalidArgument("weight relay with wrong phase tag");
      }
      round = MaskTagRound(relay.value().phase_tag);
      if (relay.value().from_silo != 0 ||
          static_cast<int>(relay.value().to_silo) != silo_id_) {
        return Status::InvalidArgument("misrouted weight relay");
      }
      auto plain = core_->PairStreamXor(0, relay.value().phase_tag,
                                        static_cast<uint32_t>(silo_id_),
                                        relay.value().ciphertext);
      if (!plain.ok()) return plain.status();
      WireReader r(plain.value());
      ULDP_RETURN_IF_ERROR(r.BigVec(&enc_weights));
      if (!r.AtEnd()) {
        return Status::InvalidArgument("trailing bytes in weight relay");
      }
    } else {
      return Status::InvalidArgument("unexpected message type " +
                                     std::to_string(type) +
                                     " in round loop");
    }

    // Round computation: the silo's own deltas and noise, then the
    // encrypted weighted sum with masks.
    obs::TraceSpan round_span("silo.round", "round",
                              static_cast<int64_t>(round));
    std::vector<Vec> deltas;
    Vec noise;
    ULDP_RETURN_IF_ERROR(input(round, &deltas, &noise));
    auto cipher = core_->WeightMaskRound(round, enc_weights, deltas, noise,
                                         *pool_);
    if (!cipher.ok()) return cipher.status();
    if (StreamChunkUsers(config_) > 0) {
      // Streaming with OT: the weight distribution is the OT dance
      // (materialized by construction), but the cipher upload is still
      // chunked so no frame approaches the transport cap.
      ULDP_RETURN_IF_ERROR(UploadCipherStream(
          transport, round, noise.size(), std::move(cipher.value())));
    } else {
      SiloCipherMsg cipher_msg;
      cipher_msg.phase_tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
      cipher_msg.silo_id = static_cast<uint32_t>(silo_id_);
      cipher_msg.dim = static_cast<uint32_t>(noise.size());
      cipher_msg.cipher = std::move(cipher.value());
      ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(cipher_msg)));
    }
    if (config_.pipeline && config_.ot_slots <= 0 &&
        round + 1 < kMaskTagRoundLimit) {
      const size_t dim = noise.size();
      premask.t = std::thread([this, round, dim] {
        // Best-effort: the only failure mode (missing pair keys) is
        // impossible here, and FinishRound recomputes inline on a miss.
        core_->PrecomputeRoundMasks(round + 1, dim, premask_pool_).ok();
      });
    }

    frame = transport.Recv();
    if (!frame.ok()) return frame.status();
    if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "server");
    }
    auto result = FromFrame<RoundResultMsg>(frame.value());
    if (!result.ok()) return result.status();
    ULDP_RETURN_IF_ERROR(CheckPhaseTag(result.value().phase_tag,
                                       MaskPhase::kRoundWeighting, round));
    if (on_result) on_result(round, result.value().aggregate);
  }
}

}  // namespace net
}  // namespace uldp
