#include "net/wire.h"

#include <cstring>

namespace uldp {
namespace net {

namespace {

constexpr uint8_t kMagic[4] = {'U', 'L', 'D', 'P'};

// Minimum encoded size of one element, used to validate peer-supplied
// element counts before reserving memory: a BigInt is at least sign byte +
// length (5), bytes at least a length prefix (4), a double exactly 8.
constexpr size_t kMinBigSize = 5;
constexpr size_t kMinBytesSize = 4;

}  // namespace

void WireWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Bytes(const std::vector<uint8_t>& b) {
  U32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void WireWriter::Big(const BigInt& v) {
  U8(v.IsNegative() ? 1 : 0);
  const size_t len = static_cast<size_t>((v.BitLength() + 7) / 8);
  U32(static_cast<uint32_t>(len));
  BigInt magnitude = v.IsNegative() ? v.Abs() : v;
  std::vector<uint8_t> bytes = magnitude.ToBytesLE(len);
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireWriter::BigVec(const std::vector<BigInt>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (const BigInt& x : v) Big(x);
}

void WireWriter::F64Vec(const std::vector<double>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (double x : v) F64(x);
}

void WireWriter::BytesVec(const std::vector<std::vector<uint8_t>>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (const auto& b : v) Bytes(b);
}

Status WireReader::Need(size_t n) {
  if (failed_) return Status::InvalidArgument("wire: reader already failed");
  if (size_ - pos_ < n) {
    failed_ = true;
    return Status::InvalidArgument(
        "wire: truncated payload (need " + std::to_string(n) + " bytes, " +
        std::to_string(size_ - pos_) + " left)");
  }
  return Status::Ok();
}

Status WireReader::U8(uint8_t* v) {
  ULDP_RETURN_IF_ERROR(Need(1));
  *v = data_[pos_++];
  return Status::Ok();
}

Status WireReader::U16(uint16_t* v) {
  ULDP_RETURN_IF_ERROR(Need(2));
  *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return Status::Ok();
}

Status WireReader::U32(uint32_t* v) {
  ULDP_RETURN_IF_ERROR(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *v = out;
  return Status::Ok();
}

Status WireReader::U64(uint64_t* v) {
  ULDP_RETURN_IF_ERROR(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *v = out;
  return Status::Ok();
}

Status WireReader::F64(double* v) {
  uint64_t bits;
  ULDP_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::Ok();
}

Status WireReader::Bytes(std::vector<uint8_t>* b) {
  uint32_t len;
  ULDP_RETURN_IF_ERROR(U32(&len));
  ULDP_RETURN_IF_ERROR(Need(len));
  b->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::Ok();
}

Status WireReader::Big(BigInt* v) {
  uint8_t negative;
  uint32_t len;
  ULDP_RETURN_IF_ERROR(U8(&negative));
  if (negative > 1) {
    failed_ = true;
    return Status::InvalidArgument("wire: BigInt sign byte must be 0 or 1");
  }
  ULDP_RETURN_IF_ERROR(U32(&len));
  ULDP_RETURN_IF_ERROR(Need(len));
  std::vector<uint8_t> bytes(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  BigInt magnitude = BigInt::FromBytesLE(bytes);
  if (negative == 1 && magnitude.IsZero()) {
    failed_ = true;
    return Status::InvalidArgument("wire: negative zero BigInt");
  }
  *v = negative == 1 ? -magnitude : magnitude;
  return Status::Ok();
}

Status WireReader::BigVec(std::vector<BigInt>* v) {
  uint32_t count;
  ULDP_RETURN_IF_ERROR(U32(&count));
  if (static_cast<size_t>(count) > remaining() / kMinBigSize) {
    failed_ = true;
    return Status::InvalidArgument("wire: BigInt vector count exceeds payload");
  }
  v->assign(count, BigInt());
  for (uint32_t i = 0; i < count; ++i) ULDP_RETURN_IF_ERROR(Big(&(*v)[i]));
  return Status::Ok();
}

Status WireReader::F64Vec(std::vector<double>* v) {
  uint32_t count;
  ULDP_RETURN_IF_ERROR(U32(&count));
  if (static_cast<size_t>(count) > remaining() / 8) {
    failed_ = true;
    return Status::InvalidArgument("wire: double vector count exceeds payload");
  }
  v->assign(count, 0.0);
  for (uint32_t i = 0; i < count; ++i) ULDP_RETURN_IF_ERROR(F64(&(*v)[i]));
  return Status::Ok();
}

Status WireReader::BytesVec(std::vector<std::vector<uint8_t>>* v) {
  uint32_t count;
  ULDP_RETURN_IF_ERROR(U32(&count));
  if (static_cast<size_t>(count) > remaining() / kMinBytesSize) {
    failed_ = true;
    return Status::InvalidArgument("wire: byte-string count exceeds payload");
  }
  v->assign(count, {});
  for (uint32_t i = 0; i < count; ++i) ULDP_RETURN_IF_ERROR(Bytes(&(*v)[i]));
  return Status::Ok();
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<uint8_t>(kWireVersion));
  out.push_back(static_cast<uint8_t>(kWireVersion >> 8));
  out.push_back(static_cast<uint8_t>(frame.type));
  out.push_back(static_cast<uint8_t>(frame.type >> 8));
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(len >> (8 * i)));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

Status ParseFrameHeader(const uint8_t* header, uint16_t* type,
                        uint32_t* payload_len, uint32_t max_payload) {
  if (std::memcmp(header, kMagic, 4) != 0) {
    return Status::InvalidArgument("wire: bad frame magic");
  }
  uint16_t version = static_cast<uint16_t>(header[4] | (header[5] << 8));
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kWireVersion) + ")");
  }
  *type = static_cast<uint16_t>(header[6] | (header[7] << 8));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[8 + i]) << (8 * i);
  const uint32_t cap =
      max_payload < kMaxFramePayload ? max_payload : kMaxFramePayload;
  if (len > cap) {
    return Status::InvalidArgument("wire: frame payload length " +
                                   std::to_string(len) + " exceeds cap " +
                                   std::to_string(cap));
  }
  *payload_len = len;
  return Status::Ok();
}

Result<Frame> DecodeFrame(const std::vector<uint8_t>& data) {
  if (data.size() < kFrameHeaderSize) {
    return Status::InvalidArgument("wire: truncated frame header");
  }
  Frame frame;
  uint32_t len;
  ULDP_RETURN_IF_ERROR(ParseFrameHeader(data.data(), &frame.type, &len));
  if (data.size() < kFrameHeaderSize + len) {
    return Status::InvalidArgument("wire: truncated frame payload");
  }
  if (data.size() > kFrameHeaderSize + len) {
    return Status::InvalidArgument("wire: trailing bytes after frame");
  }
  frame.payload.assign(data.begin() + kFrameHeaderSize, data.end());
  return frame;
}

}  // namespace net
}  // namespace uldp
