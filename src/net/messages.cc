#include "net/messages.h"

namespace uldp {
namespace net {

// FNV-1a over the canonical wire serialization of a public config.
uint64_t WireDigest(const uint8_t* data, size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t WireDigest(const std::vector<uint8_t>& bytes) {
  return WireDigest(bytes.data(), bytes.size());
}

uint64_t ProtocolWireDigest(const ProtocolConfig& config, int num_silos,
                            int num_users) {
  WireWriter w;
  w.U16(kWireVersion);
  w.U32(static_cast<uint32_t>(config.paillier_bits));
  w.U32(static_cast<uint32_t>(config.n_max));
  w.F64(config.precision);
  w.U64(config.seed);
  w.U32(static_cast<uint32_t>(config.ot_slots));
  w.F64(config.ot_sample_rate);
  w.U32(static_cast<uint32_t>(config.ot_group_bits));
  w.U8(config.cache_enc_weights ? 1 : 0);
  // Packing is part of the wire contract: every silo and the server must
  // agree on the slot layout or packed aggregates decode as garbage.
  // fast_paillier / fixed_base / multi_exp stay out — they are party-local
  // evaluation strategies with bitwise-identical outputs.
  w.U32(static_cast<uint32_t>(config.pack_slots));
  w.F64(config.pack_clip);
  w.U32(static_cast<uint32_t>(num_silos));
  w.U32(static_cast<uint32_t>(num_users));
  // Streaming changes the round's message flow (chunked frames instead of
  // monolithic RoundBegin/SiloCipher), so both chunk knobs are part of the
  // contract. stream_window stays out: receivers ack every chunk, so the
  // sender's in-flight window is party-local pacing.
  w.U32(static_cast<uint32_t>(StreamChunkUsers(config)));
  w.U32(static_cast<uint32_t>(StreamChunkCoords(config)));
  return WireDigest(w.buffer());
}

Status CheckPhaseTag(uint64_t tag, MaskPhase phase, uint64_t round) {
  if (MaskTagPhase(tag) != phase || MaskTagRound(tag) != round) {
    return Status::InvalidArgument(
        "phase tag mismatch: got phase " +
        std::to_string(static_cast<uint64_t>(MaskTagPhase(tag))) + " round " +
        std::to_string(MaskTagRound(tag)) + ", expected phase " +
        std::to_string(static_cast<uint64_t>(phase)) + " round " +
        std::to_string(round));
  }
  return Status::Ok();
}

Frame MakeErrorFrame(const Status& status) {
  ErrorMsg msg;
  msg.code = static_cast<uint16_t>(status.code());
  msg.message = status.message();
  return ToFrame(msg);
}

Status StatusFromErrorFrame(const Frame& frame, const std::string& peer) {
  auto msg = FromFrame<ErrorMsg>(frame);
  if (!msg.ok()) return msg.status();
  StatusCode code = static_cast<StatusCode>(msg.value().code);
  if (msg.value().code > static_cast<uint16_t>(StatusCode::kDeadlineExceeded) ||
      code == StatusCode::kOk) {
    code = StatusCode::kInternal;
  }
  return Status(code, peer + " reported: " + msg.value().message);
}

void JoinMsg::AppendTo(WireWriter& w) const {
  w.U32(silo_id);
  w.U32(num_silos);
  w.U32(num_users);
  w.U64(config_digest);
}

Result<JoinMsg> JoinMsg::Parse(WireReader& r) {
  JoinMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.U32(&m.num_silos));
  ULDP_RETURN_IF_ERROR(r.U32(&m.num_users));
  ULDP_RETURN_IF_ERROR(r.U64(&m.config_digest));
  return m;
}

void SetupParamsMsg::AppendTo(WireWriter& w) const {
  w.Big(paillier_n);
  w.Big(ot_p);
  w.Big(ot_g);
}

Result<SetupParamsMsg> SetupParamsMsg::Parse(WireReader& r) {
  SetupParamsMsg m;
  ULDP_RETURN_IF_ERROR(r.Big(&m.paillier_n));
  ULDP_RETURN_IF_ERROR(r.Big(&m.ot_p));
  ULDP_RETURN_IF_ERROR(r.Big(&m.ot_g));
  return m;
}

void DhPublicKeyMsg::AppendTo(WireWriter& w) const {
  w.U32(silo_id);
  w.Big(public_key);
}

Result<DhPublicKeyMsg> DhPublicKeyMsg::Parse(WireReader& r) {
  DhPublicKeyMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.Big(&m.public_key));
  return m;
}

void DhDirectoryMsg::AppendTo(WireWriter& w) const { w.BigVec(public_keys); }

Result<DhDirectoryMsg> DhDirectoryMsg::Parse(WireReader& r) {
  DhDirectoryMsg m;
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.public_keys));
  return m;
}

void SeedShareMsg::AppendTo(WireWriter& w) const {
  w.U32(from_silo);
  w.U32(to_silo);
  w.Bytes(ciphertext);
}

Result<SeedShareMsg> SeedShareMsg::Parse(WireReader& r) {
  SeedShareMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.from_silo));
  ULDP_RETURN_IF_ERROR(r.U32(&m.to_silo));
  ULDP_RETURN_IF_ERROR(r.Bytes(&m.ciphertext));
  return m;
}

void BlindedHistogramMsg::AppendTo(WireWriter& w) const {
  w.U32(silo_id);
  w.BigVec(values);
}

Result<BlindedHistogramMsg> BlindedHistogramMsg::Parse(WireReader& r) {
  BlindedHistogramMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.values));
  return m;
}

void SetupAckMsg::AppendTo(WireWriter&) const {}

Result<SetupAckMsg> SetupAckMsg::Parse(WireReader&) { return SetupAckMsg{}; }

void RoundBeginMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.BigVec(enc_weights);
}

Result<RoundBeginMsg> RoundBeginMsg::Parse(WireReader& r) {
  RoundBeginMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.enc_weights));
  return m;
}

void OtSenderMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U32(static_cast<uint32_t>(senders.size()));
  for (const OtSenderPublic& s : senders) {
    w.BigVec(s.c);
    w.Big(s.a);
  }
}

Result<OtSenderMsg> OtSenderMsg::Parse(WireReader& r) {
  OtSenderMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  uint32_t count;
  ULDP_RETURN_IF_ERROR(r.U32(&count));
  if (static_cast<size_t>(count) > r.remaining() / 9) {
    return Status::InvalidArgument("OT sender count exceeds payload");
  }
  m.senders.assign(count, {});
  for (uint32_t i = 0; i < count; ++i) {
    ULDP_RETURN_IF_ERROR(r.BigVec(&m.senders[i].c));
    ULDP_RETURN_IF_ERROR(r.Big(&m.senders[i].a));
  }
  return m;
}

void OtReceiverMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.BigVec(bs);
}

Result<OtReceiverMsg> OtReceiverMsg::Parse(WireReader& r) {
  OtReceiverMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.bs));
  return m;
}

void OtSlotsMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U32(static_cast<uint32_t>(slots.size()));
  for (const auto& user_slots : slots) w.BytesVec(user_slots);
}

Result<OtSlotsMsg> OtSlotsMsg::Parse(WireReader& r) {
  OtSlotsMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  uint32_t count;
  ULDP_RETURN_IF_ERROR(r.U32(&count));
  if (static_cast<size_t>(count) > r.remaining() / 4) {
    return Status::InvalidArgument("OT slot user count exceeds payload");
  }
  m.slots.assign(count, {});
  for (uint32_t i = 0; i < count; ++i) {
    ULDP_RETURN_IF_ERROR(r.BytesVec(&m.slots[i]));
  }
  return m;
}

void WeightRelayMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U32(from_silo);
  w.U32(to_silo);
  w.Bytes(ciphertext);
}

Result<WeightRelayMsg> WeightRelayMsg::Parse(WireReader& r) {
  WeightRelayMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.U32(&m.from_silo));
  ULDP_RETURN_IF_ERROR(r.U32(&m.to_silo));
  ULDP_RETURN_IF_ERROR(r.Bytes(&m.ciphertext));
  return m;
}

void SiloCipherMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U32(silo_id);
  w.U32(dim);
  w.BigVec(cipher);
}

Result<SiloCipherMsg> SiloCipherMsg::Parse(WireReader& r) {
  SiloCipherMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.U32(&m.dim));
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.cipher));
  return m;
}

void RoundResultMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.F64Vec(aggregate);
}

Result<RoundResultMsg> RoundResultMsg::Parse(WireReader& r) {
  RoundResultMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.F64Vec(&m.aggregate));
  return m;
}

void ShutdownMsg::AppendTo(WireWriter&) const {}

Result<ShutdownMsg> ShutdownMsg::Parse(WireReader&) { return ShutdownMsg{}; }

void MaskedVectorMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U32(party_id);
  w.BigVec(values);
}

Result<MaskedVectorMsg> MaskedVectorMsg::Parse(WireReader& r) {
  MaskedVectorMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.U32(&m.party_id));
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.values));
  return m;
}

void StalenessInfoMsg::AppendTo(WireWriter& w) const {
  w.U64(version);
  w.U32(max_staleness);
  w.U32(buffer_size);
  w.F64Vec(params);
}

Result<StalenessInfoMsg> StalenessInfoMsg::Parse(WireReader& r) {
  StalenessInfoMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.version));
  ULDP_RETURN_IF_ERROR(r.U32(&m.max_staleness));
  ULDP_RETURN_IF_ERROR(r.U32(&m.buffer_size));
  ULDP_RETURN_IF_ERROR(r.F64Vec(&m.params));
  return m;
}

void RoundAckMsg::AppendTo(WireWriter& w) const {
  w.U64(version);
  w.U32(silo_id);
  w.F64Vec(delta);
}

Result<RoundAckMsg> RoundAckMsg::Parse(WireReader& r) {
  RoundAckMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.version));
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.F64Vec(&m.delta));
  return m;
}

void StreamBeginMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U8(kind);
  w.U32(sender_id);
  w.U32(total_count);
  w.U32(chunk_elems);
  w.U32(dim);
}

Result<StreamBeginMsg> StreamBeginMsg::Parse(WireReader& r) {
  StreamBeginMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.U8(&m.kind));
  ULDP_RETURN_IF_ERROR(r.U32(&m.sender_id));
  ULDP_RETURN_IF_ERROR(r.U32(&m.total_count));
  ULDP_RETURN_IF_ERROR(r.U32(&m.chunk_elems));
  ULDP_RETURN_IF_ERROR(r.U32(&m.dim));
  return m;
}

void StreamChunkMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U8(kind);
  w.U32(index);
  w.BigVec(values);
}

Result<StreamChunkMsg> StreamChunkMsg::Parse(WireReader& r) {
  StreamChunkMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.U8(&m.kind));
  ULDP_RETURN_IF_ERROR(r.U32(&m.index));
  ULDP_RETURN_IF_ERROR(r.BigVec(&m.values));
  return m;
}

void StreamAckMsg::AppendTo(WireWriter& w) const {
  w.U64(phase_tag);
  w.U8(kind);
  w.U32(index);
  w.U32(credits);
}

Result<StreamAckMsg> StreamAckMsg::Parse(WireReader& r) {
  StreamAckMsg m;
  ULDP_RETURN_IF_ERROR(r.U64(&m.phase_tag));
  ULDP_RETURN_IF_ERROR(r.U8(&m.kind));
  ULDP_RETURN_IF_ERROR(r.U32(&m.index));
  ULDP_RETURN_IF_ERROR(r.U32(&m.credits));
  return m;
}

void ErrorMsg::AppendTo(WireWriter& w) const {
  w.U16(code);
  std::vector<uint8_t> bytes(message.begin(), message.end());
  w.Bytes(bytes);
}

Result<ErrorMsg> ErrorMsg::Parse(WireReader& r) {
  ErrorMsg m;
  ULDP_RETURN_IF_ERROR(r.U16(&m.code));
  std::vector<uint8_t> bytes;
  ULDP_RETURN_IF_ERROR(r.Bytes(&bytes));
  m.message.assign(bytes.begin(), bytes.end());
  return m;
}

}  // namespace net
}  // namespace uldp
