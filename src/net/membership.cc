#include "net/membership.h"

namespace uldp {
namespace net {

void JoinRequestMsg::AppendTo(WireWriter& w) const {
  w.U32(silo_id);
  w.U32(num_silos);
  w.U32(dim);
  w.U32(user_count);
  w.U64(min_version);
  w.U64(config_digest);
}

Result<JoinRequestMsg> JoinRequestMsg::Parse(WireReader& r) {
  JoinRequestMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.U32(&m.num_silos));
  ULDP_RETURN_IF_ERROR(r.U32(&m.dim));
  ULDP_RETURN_IF_ERROR(r.U32(&m.user_count));
  ULDP_RETURN_IF_ERROR(r.U64(&m.min_version));
  ULDP_RETURN_IF_ERROR(r.U64(&m.config_digest));
  return m;
}

void LeaveMsg::AppendTo(WireWriter& w) const {
  w.U32(silo_id);
  w.U64(version);
}

Result<LeaveMsg> LeaveMsg::Parse(WireReader& r) {
  LeaveMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.U64(&m.version));
  return m;
}

void EvictMsg::AppendTo(WireWriter& w) const {
  w.U32(silo_id);
  w.U64(version);
  w.U16(code);
  std::vector<uint8_t> bytes(reason.begin(), reason.end());
  w.Bytes(bytes);
}

Result<EvictMsg> EvictMsg::Parse(WireReader& r) {
  EvictMsg m;
  ULDP_RETURN_IF_ERROR(r.U32(&m.silo_id));
  ULDP_RETURN_IF_ERROR(r.U64(&m.version));
  ULDP_RETURN_IF_ERROR(r.U16(&m.code));
  std::vector<uint8_t> bytes;
  ULDP_RETURN_IF_ERROR(r.Bytes(&bytes));
  m.reason.assign(bytes.begin(), bytes.end());
  return m;
}

MembershipManager::MembershipManager(SessionState* session,
                                     PrivacyTracker* tracker)
    : session_(session), tracker_(tracker) {}

Status MembershipManager::Join(uint32_t silo_id, uint32_t user_count,
                               uint64_t version) {
  if (user_count < 1) {
    return Status::InvalidArgument("silo " + std::to_string(silo_id) +
                                   " joined with zero users");
  }
  SiloMember* existing = session_->Find(silo_id);
  if (existing != nullptr && (existing->status == SiloStatus::kJoined ||
                              existing->status == SiloStatus::kActive)) {
    return Status::FailedPrecondition(
        "silo " + std::to_string(silo_id) + " is already " +
        SiloStatusName(existing->status));
  }
  SiloMember& m = session_->Upsert(silo_id);
  m.status = SiloStatus::kJoined;
  m.join_round = version;
  m.depart_round = 0;
  m.last_version = version;
  m.user_count = user_count;
  m.weight = 0.0;
  return Status::Ok();
}

Status MembershipManager::Activate(uint32_t silo_id, uint64_t version) {
  SiloMember* m = session_->Find(silo_id);
  if (m == nullptr || m->status != SiloStatus::kJoined) {
    return Status::FailedPrecondition(
        "silo " + std::to_string(silo_id) + " is not awaiting admission (" +
        (m == nullptr ? "unknown" : SiloStatusName(m->status)) + ")");
  }
  m->status = SiloStatus::kActive;
  m->join_round = version;
  return Status::Ok();
}

Status MembershipManager::Leave(uint32_t silo_id, uint64_t version) {
  SiloMember* m = session_->Find(silo_id);
  if (m == nullptr || m->status != SiloStatus::kActive) {
    return Status::FailedPrecondition(
        "silo " + std::to_string(silo_id) + " cannot leave (" +
        (m == nullptr ? "unknown" : SiloStatusName(m->status)) + ")");
  }
  m->status = SiloStatus::kLeft;
  m->depart_round = version;
  m->weight = 0.0;
  return Status::Ok();
}

Status MembershipManager::Evict(uint32_t silo_id, uint64_t version) {
  SiloMember* m = session_->Find(silo_id);
  if (m == nullptr || (m->status != SiloStatus::kActive &&
                       m->status != SiloStatus::kJoined)) {
    return Status::FailedPrecondition(
        "silo " + std::to_string(silo_id) + " cannot be evicted (" +
        (m == nullptr ? "unknown" : SiloStatusName(m->status)) + ")");
  }
  m->status = SiloStatus::kEvicted;
  m->depart_round = version;
  m->weight = 0.0;
  return Status::Ok();
}

const MembershipEpochRecord& MembershipManager::SealEpoch(
    uint64_t start_round) {
  const MembershipEpochRecord& record = session_->SealEpoch(start_round);
  if (tracker_ != nullptr) {
    tracker_->RecordMembershipEpoch(record.epoch, record.start_round,
                                    record.active_silos, record.user_total);
  }
  return record;
}

}  // namespace net
}  // namespace uldp
