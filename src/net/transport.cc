#include "net/transport.h"

namespace uldp {
namespace net {

std::pair<std::unique_ptr<ChannelTransport>, std::unique_ptr<ChannelTransport>>
ChannelTransport::CreatePair() {
  auto a_to_b = std::make_shared<Queue>();
  auto b_to_a = std::make_shared<Queue>();
  std::unique_ptr<ChannelTransport> a(new ChannelTransport(a_to_b, b_to_a));
  std::unique_ptr<ChannelTransport> b(new ChannelTransport(b_to_a, a_to_b));
  return {std::move(a), std::move(b)};
}

Status ChannelTransport::Send(const Frame& frame) {
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  const size_t size = bytes.size();
  {
    std::lock_guard<std::mutex> lock(tx_->mu);
    if (tx_->closed) {
      return Status::FailedPrecondition("channel transport closed");
    }
    TapSent(bytes.data(), size);
    tx_->frames.push_back(std::move(bytes));
  }
  tx_->cv.notify_one();
  NoteSent(size);
  NoteFrame(size);
  return Status::Ok();
}

Result<Frame> ChannelTransport::Recv() {
  std::vector<uint8_t> bytes;
  {
    std::unique_lock<std::mutex> lock(rx_->mu);
    rx_->cv.wait(lock, [&] { return !rx_->frames.empty() || rx_->closed; });
    if (rx_->frames.empty()) {
      return Status::FailedPrecondition("channel transport closed");
    }
    bytes = std::move(rx_->frames.front());
    rx_->frames.pop_front();
  }
  NoteReceived(bytes.size());
  NoteFrame(bytes.size());
  // The bytes were produced in-process, but the configured receive cap is
  // enforced all the same so channel-backed tests exercise the exact
  // oversized-frame rejection a TCP endpoint applies.
  if (bytes.size() > kFrameHeaderSize &&
      bytes.size() - kFrameHeaderSize > max_frame_payload()) {
    return Status::InvalidArgument(
        "wire: frame payload length " +
        std::to_string(bytes.size() - kFrameHeaderSize) + " exceeds cap " +
        std::to_string(max_frame_payload()));
  }
  Result<Frame> frame = DecodeFrame(bytes);
  // Only frames the wire layer accepted enter the transcript: a decode
  // failure terminates the connection, and a replay has nothing to say
  // about bytes no driver ever saw.
  if (frame.ok()) TapReceived(bytes.data(), bytes.size());
  return frame;
}

void ChannelTransport::Close() {
  for (const auto& q : {tx_, rx_}) {
    {
      std::lock_guard<std::mutex> lock(q->mu);
      q->closed = true;
    }
    q->cv.notify_all();
  }
}

}  // namespace net
}  // namespace uldp
