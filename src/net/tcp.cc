#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace uldp {
namespace net {

namespace {

std::string Errno(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, int port) {
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("tcp: port " + std::to_string(port) +
                                   " out of range [1, 65535]");
  }
  std::string addr = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("tcp: cannot parse IPv4 address \"" +
                                   host + "\"");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("tcp: socket"));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status status = Status::Internal(
        Errno("tcp: connect to " + addr + ":" + std::to_string(port)));
    ::close(fd);
    return status;
  }
  SetNoDelay(fd);
  return std::make_unique<TcpTransport>(fd);
}

TcpTransport::~TcpTransport() { Close(); }

Status TcpTransport::WriteAll(const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("tcp: send"));
    }
    done += static_cast<size_t>(n);
  }
  NoteSent(size);
  return Status::Ok();
}

Status TcpTransport::ReadAll(uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::recv(fd_, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO fired. The deadline can land mid-frame, leaving the
        // stream unframeable, so the connection is closed rather than
        // resumed.
        Close();
        return Status::DeadlineExceeded(
            "tcp: recv deadline exceeded waiting for a peer frame");
      }
      return Status::Internal(Errno("tcp: recv"));
    }
    if (n == 0) {
      return Status::FailedPrecondition(
          "tcp: peer closed the connection mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  NoteReceived(size);
  return Status::Ok();
}

Status TcpTransport::SetRecvTimeout(int milliseconds) {
  if (fd_ < 0) return Status::FailedPrecondition("tcp transport closed");
  if (milliseconds < 0) {
    return Status::InvalidArgument("recv timeout must be >= 0 ms");
  }
  timeval tv{};
  tv.tv_sec = milliseconds / 1000;
  tv.tv_usec = (milliseconds % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(Errno("tcp: setsockopt(SO_RCVTIMEO)"));
  }
  set_recv_timeout_ms(milliseconds);
  return Status::Ok();
}

Status TcpTransport::Send(const Frame& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("tcp transport closed");
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  NoteFrame(bytes.size());
  Status wrote = WriteAll(bytes.data(), bytes.size());
  if (wrote.ok()) TapSent(bytes.data(), bytes.size());
  return wrote;
}

Result<Frame> TcpTransport::Recv() {
  if (fd_ < 0) return Status::FailedPrecondition("tcp transport closed");
  uint8_t header[kFrameHeaderSize];
  ULDP_RETURN_IF_ERROR(ReadAll(header, sizeof(header)));
  Frame frame;
  uint32_t payload_len;
  // The configured receive cap is checked here, before the payload buffer
  // exists: an oversized length field costs a header read and nothing
  // else.
  ULDP_RETURN_IF_ERROR(ParseFrameHeader(header, &frame.type, &payload_len,
                                        max_frame_payload()));
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    ULDP_RETURN_IF_ERROR(ReadAll(frame.payload.data(), payload_len));
  }
  NoteFrame(kFrameHeaderSize + static_cast<uint64_t>(payload_len));
  if (transcript_bound()) {
    // The header and payload were read into separate buffers; a bound
    // transcript wants the contiguous wire image, so reassemble it (the
    // copy is paid only when recording).
    std::vector<uint8_t> wire(kFrameHeaderSize + payload_len);
    std::memcpy(wire.data(), header, kFrameHeaderSize);
    if (payload_len > 0) {
      std::memcpy(wire.data() + kFrameHeaderSize, frame.payload.data(),
                  payload_len);
    }
    TapReceived(wire.data(), wire.size());
  }
  return frame;
}

Result<bool> TcpTransport::TryReadFrame(Frame* out) {
  if (fd_ < 0) return Status::FailedPrecondition("tcp transport closed");
  for (;;) {
    const size_t target = read_header_done_
                              ? kFrameHeaderSize + read_payload_len_
                              : kFrameHeaderSize;
    if (read_buf_.size() < target) read_buf_.resize(target);
    while (read_have_ < target) {
      ssize_t n = ::recv(fd_, read_buf_.data() + read_have_,
                         target - read_have_, MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
        return Status::Internal(Errno("tcp: recv"));
      }
      if (n == 0) {
        return Status::FailedPrecondition(
            read_have_ == 0 && !read_header_done_
                ? "tcp: peer closed the connection"
                : "tcp: peer closed the connection mid-frame");
      }
      read_have_ += static_cast<size_t>(n);
      NoteReceived(static_cast<uint64_t>(n));
    }
    if (!read_header_done_) {
      // Cap check before the payload buffer grows, exactly like Recv.
      ULDP_RETURN_IF_ERROR(ParseFrameHeader(read_buf_.data(), &read_type_,
                                            &read_payload_len_,
                                            max_frame_payload()));
      read_header_done_ = true;
      continue;  // now accumulate the payload (possibly 0 bytes)
    }
    out->type = read_type_;
    out->payload.assign(read_buf_.begin() + kFrameHeaderSize,
                        read_buf_.begin() + static_cast<long>(target));
    NoteFrame(target);
    // read_buf_[0, target) is the contiguous wire image of this frame —
    // the epoll-mux read path records the same bytes blocking Recv would.
    TapReceived(read_buf_.data(), target);
    read_have_ = 0;
    read_header_done_ = false;
    read_payload_len_ = 0;
    return true;
  }
}

void TcpTransport::Interrupt() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

Result<TcpListener> TcpListener::Listen(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("tcp: listen port " +
                                   std::to_string(port) +
                                   " out of range [0, 65535]");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("tcp: socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status status = Status::Internal(
        Errno("tcp: bind 127.0.0.1:" + std::to_string(port)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status status = Status::Internal(Errno("tcp: listen"));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    Status status = Status::Internal(Errno("tcp: getsockname"));
    ::close(fd);
    return status;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(sa.sin_port);
  return listener;
}

Result<std::unique_ptr<TcpTransport>> TcpListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("tcp listener closed");
  for (;;) {
    int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("tcp: accept"));
    }
    SetNoDelay(client);
    return std::make_unique<TcpTransport>(client);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    // close() alone does not wake a thread blocked in accept() on this
    // fd; shutdown() does (the pending accept fails with EINVAL), which
    // is what lets an elastic server's acceptor thread be joined.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace uldp
