// Typed message codecs for every Protocol 1 payload. Each message struct
// serializes to a frame payload via WireWriter and parses back via
// WireReader; FromFrame additionally enforces the frame type and rejects
// trailing bytes, so a Serialize → Deserialize round trip is exact and a
// corrupted frame fails loudly.
//
// Round/phase headers: every per-round message carries a `phase_tag`
// packed with MakeMaskTag (core/mask_tags.h) — the same typed domain the
// PRF streams use — so a receiver can check both the phase byte and the
// round number of an incoming message against what it expects.

#ifndef ULDP_NET_MESSAGES_H_
#define ULDP_NET_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/mask_tags.h"
#include "core/protocol_party.h"
#include "net/wire.h"

namespace uldp {
namespace net {

enum class MessageType : uint16_t {
  kJoin = 1,
  kSetupParams = 2,
  kDhPublicKey = 3,
  kDhDirectory = 4,
  kSeedShare = 5,
  kBlindedHistogram = 6,
  kSetupAck = 7,
  kRoundBegin = 8,
  kOtSender = 9,
  kOtReceiver = 10,
  kOtSlots = 11,
  kWeightRelay = 12,
  kSiloCipher = 13,
  kRoundResult = 14,
  kShutdown = 15,
  kMaskedVector = 16,
  kError = 17,
  kStalenessInfo = 18,
  kRoundAck = 19,
  kStreamBegin = 20,
  kStreamChunk = 21,
  kStreamAck = 22,
  kJoinRequest = 23,
  kLeave = 24,
  kEvict = 25,
};

/// What a chunked stream carries — determines which monolithic message the
/// stream replaces and how the receiver folds chunks.
enum class StreamKind : uint8_t {
  /// Server -> silo: the round's Enc(B_inv) vector in user chunks
  /// (replaces RoundBeginMsg when streaming is on).
  kEncWeights = 0,
  /// Silo -> server: the masked cipher in coordinate chunks (replaces
  /// SiloCipherMsg).
  kSiloCipher = 1,
  /// A pairwise-masked vector in coordinate chunks (replaces
  /// MaskedVectorMsg; for the FL-layer secure-aggregation path).
  kMaskedVector = 2,
};

/// FNV-1a over a canonical wire serialization — the digest primitive
/// behind every Join-handshake config check.
uint64_t WireDigest(const std::vector<uint8_t>& bytes);
uint64_t WireDigest(const uint8_t* data, size_t size);

/// Digest of the public protocol configuration plus the cohort shape.
/// Join handshakes compare digests so a silo started with mismatched
/// parameters (different modulus bits, N_max, seed, OT settings, counts)
/// is rejected with a clear error instead of silently diverging.
uint64_t ProtocolWireDigest(const ProtocolConfig& config, int num_silos,
                            int num_users);

/// Validates a received phase tag against the expected phase and round.
Status CheckPhaseTag(uint64_t tag, MaskPhase phase, uint64_t round);

/// Wraps a fatal Status as an Error frame for the peer.
Frame MakeErrorFrame(const Status& status);

/// Turns a received Error frame into the Status it carries, preserving the
/// transported code (out-of-range or kOk values degrade to kInternal — an
/// Error frame is never a success). One definition for every driver, so a
/// StatusCode addition cannot leave a stale range cap behind.
Status StatusFromErrorFrame(const Frame& frame, const std::string& peer);

// ---------------------------------------------------------------------------
// Message structs. Convention: kType, AppendTo(WireWriter&), and
// static Parse(WireReader&) returning Result<T>.

/// Silo -> server, first frame on a connection.
struct JoinMsg {
  static constexpr MessageType kType = MessageType::kJoin;
  uint32_t silo_id = 0;
  uint32_t num_silos = 0;
  uint32_t num_users = 0;
  uint64_t config_digest = 0;
  void AppendTo(WireWriter& w) const;
  static Result<JoinMsg> Parse(WireReader& r);
};

/// Server -> silo: the non-derivable public parameters (Paillier n; the
/// OT group when enabled — zero otherwise).
struct SetupParamsMsg {
  static constexpr MessageType kType = MessageType::kSetupParams;
  BigInt paillier_n;
  BigInt ot_p;
  BigInt ot_g;
  void AppendTo(WireWriter& w) const;
  static Result<SetupParamsMsg> Parse(WireReader& r);
};

/// Silo -> server: this silo's DH public key.
struct DhPublicKeyMsg {
  static constexpr MessageType kType = MessageType::kDhPublicKey;
  uint32_t silo_id = 0;
  BigInt public_key;
  void AppendTo(WireWriter& w) const;
  static Result<DhPublicKeyMsg> Parse(WireReader& r);
};

/// Server -> silo: all silos' DH public keys, indexed by silo id.
struct DhDirectoryMsg {
  static constexpr MessageType kType = MessageType::kDhDirectory;
  std::vector<BigInt> public_keys;
  void AppendTo(WireWriter& w) const;
  static Result<DhDirectoryMsg> Parse(WireReader& r);
};

/// Silo 0 -> server -> silo `to_silo`: the shared seed R, encrypted under
/// the (from, to) pairwise key; the server only relays opaque bytes.
struct SeedShareMsg {
  static constexpr MessageType kType = MessageType::kSeedShare;
  uint32_t from_silo = 0;
  uint32_t to_silo = 0;
  std::vector<uint8_t> ciphertext;
  void AppendTo(WireWriter& w) const;
  static Result<SeedShareMsg> Parse(WireReader& r);
};

/// Silo -> server: the doubly blinded histogram (setup (e)).
struct BlindedHistogramMsg {
  static constexpr MessageType kType = MessageType::kBlindedHistogram;
  uint32_t silo_id = 0;
  std::vector<BigInt> values;
  void AppendTo(WireWriter& w) const;
  static Result<BlindedHistogramMsg> Parse(WireReader& r);
};

/// Server -> silo: setup finished, rounds may begin.
struct SetupAckMsg {
  static constexpr MessageType kType = MessageType::kSetupAck;
  void AppendTo(WireWriter& w) const;
  static Result<SetupAckMsg> Parse(WireReader& r);
};

/// Server -> silo (OT off): the round's encrypted weight vector.
/// phase_tag = MakeMaskTag(kRoundWeighting, round).
struct RoundBeginMsg {
  static constexpr MessageType kType = MessageType::kRoundBegin;
  uint64_t phase_tag = 0;
  std::vector<BigInt> enc_weights;
  void AppendTo(WireWriter& w) const;
  static Result<RoundBeginMsg> Parse(WireReader& r);
};

/// Server -> receiver silo (OT mode): per-user sender messages
/// {C_0..C_{P-1}, A}. phase_tag = MakeMaskTag(kOtSlotChoice, round).
struct OtSenderMsg {
  static constexpr MessageType kType = MessageType::kOtSender;
  uint64_t phase_tag = 0;
  std::vector<OtSenderPublic> senders;
  void AppendTo(WireWriter& w) const;
  static Result<OtSenderMsg> Parse(WireReader& r);
};

/// Receiver silo -> server (OT mode): per-user commitments B.
struct OtReceiverMsg {
  static constexpr MessageType kType = MessageType::kOtReceiver;
  uint64_t phase_tag = 0;
  std::vector<BigInt> bs;
  void AppendTo(WireWriter& w) const;
  static Result<OtReceiverMsg> Parse(WireReader& r);
};

/// Server -> receiver silo (OT mode): per-(user, slot) encrypted payloads.
struct OtSlotsMsg {
  static constexpr MessageType kType = MessageType::kOtSlots;
  uint64_t phase_tag = 0;
  std::vector<std::vector<std::vector<uint8_t>>> slots;  // [user][slot]
  void AppendTo(WireWriter& w) const;
  static Result<OtSlotsMsg> Parse(WireReader& r);
};

/// Receiver silo -> server -> silo `to_silo` (OT mode): the fetched
/// encrypted-weight vector, XOR-encrypted under the (from, to) pairwise
/// key so the server cannot match the fetched ciphertexts to its slots.
/// phase_tag = MakeMaskTag(kOtWeightRelay, round).
struct WeightRelayMsg {
  static constexpr MessageType kType = MessageType::kWeightRelay;
  uint64_t phase_tag = 0;
  uint32_t from_silo = 0;
  uint32_t to_silo = 0;
  std::vector<uint8_t> ciphertext;
  void AppendTo(WireWriter& w) const;
  static Result<WeightRelayMsg> Parse(WireReader& r);
};

/// Silo -> server: the masked encrypted weighted sum (weighting (b)+(c)).
/// `dim` is the model dimension; with ciphertext packing enabled the
/// cipher vector holds ceil(dim / pack_slots) entries, and the server uses
/// `dim` to size the packed decode (and cross-checks it across silos).
struct SiloCipherMsg {
  static constexpr MessageType kType = MessageType::kSiloCipher;
  uint64_t phase_tag = 0;
  uint32_t silo_id = 0;
  uint32_t dim = 0;
  std::vector<BigInt> cipher;
  void AppendTo(WireWriter& w) const;
  static Result<SiloCipherMsg> Parse(WireReader& r);
};

/// Server -> silo: the decrypted, decoded round aggregate.
struct RoundResultMsg {
  static constexpr MessageType kType = MessageType::kRoundResult;
  uint64_t phase_tag = 0;
  std::vector<double> aggregate;
  void AppendTo(WireWriter& w) const;
  static Result<RoundResultMsg> Parse(WireReader& r);
};

/// Server -> silo: no more rounds; the client run loop returns.
struct ShutdownMsg {
  static constexpr MessageType kType = MessageType::kShutdown;
  void AppendTo(WireWriter& w) const;
  static Result<ShutdownMsg> Parse(WireReader& r);
};

/// A pairwise-masked fixed-point vector (crypto/secure_agg.h) — the
/// secure-aggregation payload of the FL layer, so asynchronous round
/// transports can reuse this wire format.
struct MaskedVectorMsg {
  static constexpr MessageType kType = MessageType::kMaskedVector;
  uint64_t phase_tag = 0;
  uint32_t party_id = 0;
  std::vector<BigInt> values;
  void AppendTo(WireWriter& w) const;
  static Result<MaskedVectorMsg> Parse(WireReader& r);
};

/// Server -> silo (asynchronous FL rounds, net/async_rounds.h): releases
/// the silo to train against the version-`version` global parameters.
/// `max_staleness` / `buffer_size` announce the staleness-bounded update
/// rule so a silo can sanity-check the server against its own config.
struct StalenessInfoMsg {
  static constexpr MessageType kType = MessageType::kStalenessInfo;
  uint64_t version = 0;
  uint32_t max_staleness = 0;
  uint32_t buffer_size = 0;
  std::vector<double> params;
  void AppendTo(WireWriter& w) const;
  static Result<StalenessInfoMsg> Parse(WireReader& r);
};

/// Silo -> server (asynchronous FL rounds): completes the task pulled at
/// `version` with this silo's clipped, weighted, noised delta. The server
/// charges it staleness (current version - `version`) on arrival.
struct RoundAckMsg {
  static constexpr MessageType kType = MessageType::kRoundAck;
  uint64_t version = 0;
  uint32_t silo_id = 0;
  std::vector<double> delta;
  void AppendTo(WireWriter& w) const;
  static Result<RoundAckMsg> Parse(WireReader& r);
};

/// Either direction: opens a chunked stream (streaming rounds,
/// src/net/stream.h). `total_count` is the full element count the stream
/// will carry, `chunk_elems` the per-chunk element ceiling (the last chunk
/// may be short), `dim` the model dimension (the receiver's decode/fold
/// context — user count for kEncWeights, unpacked model dim for
/// kSiloCipher/kMaskedVector). phase_tag matches the message the stream
/// replaces.
struct StreamBeginMsg {
  static constexpr MessageType kType = MessageType::kStreamBegin;
  uint64_t phase_tag = 0;
  uint8_t kind = 0;  // StreamKind
  uint32_t sender_id = 0;
  uint32_t total_count = 0;
  uint32_t chunk_elems = 0;
  uint32_t dim = 0;
  void AppendTo(WireWriter& w) const;
  static Result<StreamBeginMsg> Parse(WireReader& r);
};

/// One chunk of an open stream: elements [index * chunk_elems,
/// index * chunk_elems + values.size()) of the streamed vector. Chunks are
/// sent (and must arrive) in index order; the receiver rejects any gap,
/// duplicate, or reordering.
struct StreamChunkMsg {
  static constexpr MessageType kType = MessageType::kStreamChunk;
  uint64_t phase_tag = 0;
  uint8_t kind = 0;  // StreamKind
  uint32_t index = 0;
  std::vector<BigInt> values;
  void AppendTo(WireWriter& w) const;
  static Result<StreamChunkMsg> Parse(WireReader& r);
};

/// Receiver -> sender: chunk `index` has been folded; `credits` more
/// chunks may be sent beyond it (windowed flow control — the sender keeps
/// at most `credits` unacknowledged chunks in flight).
struct StreamAckMsg {
  static constexpr MessageType kType = MessageType::kStreamAck;
  uint64_t phase_tag = 0;
  uint8_t kind = 0;  // StreamKind
  uint32_t index = 0;
  uint32_t credits = 0;
  void AppendTo(WireWriter& w) const;
  static Result<StreamAckMsg> Parse(WireReader& r);
};

/// Either side: a fatal Status, so the peer fails with the real message
/// instead of a hangup.
struct ErrorMsg {
  static constexpr MessageType kType = MessageType::kError;
  uint16_t code = 0;  // StatusCode
  std::string message;
  void AppendTo(WireWriter& w) const;
  static Result<ErrorMsg> Parse(WireReader& r);
};

// ---------------------------------------------------------------------------
// Frame helpers.

template <typename M>
Frame ToFrame(const M& message) {
  WireWriter w;
  message.AppendTo(w);
  return Frame{static_cast<uint16_t>(M::kType), w.Take()};
}

template <typename M>
Result<M> FromFrame(const Frame& frame) {
  if (frame.type != static_cast<uint16_t>(M::kType)) {
    return Status::InvalidArgument(
        "unexpected message type " + std::to_string(frame.type) +
        " (expected " +
        std::to_string(static_cast<uint16_t>(M::kType)) + ")");
  }
  WireReader r(frame.payload);
  auto message = M::Parse(r);
  if (!message.ok()) return message.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message payload");
  }
  return message;
}

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_MESSAGES_H_
