#include "net/async_rounds.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/mask_tags.h"
#include "dp/accountant.h"
#include "fl/local_trainer.h"
#include "net/membership.h"
#include "net/messages.h"
#include "net/mux.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uldp {
namespace net {

uint64_t AsyncRoundsWireDigest(const AsyncRoundsConfig& config, int num_silos,
                               int dim) {
  WireWriter w;
  w.U16(kWireVersion);
  w.U32(static_cast<uint32_t>(config.max_staleness));
  w.U32(static_cast<uint32_t>(config.buffer_size <= 0 ? num_silos
                                                      : config.buffer_size));
  w.F64(config.step_scale);
  w.U64(config.seed);
  w.U32(static_cast<uint32_t>(num_silos));
  w.U32(static_cast<uint32_t>(dim));
  w.U8(config.elastic ? 1 : 0);
  w.U32(static_cast<uint32_t>(config.min_silos));
  w.U8(config.masked ? 1 : 0);
  return WireDigest(w.buffer());
}

// ---------------------------------------------------------------------------
// AsyncRoundServer

/// Everything the collection loop threads through its helpers: the mux and
/// aggregator, the membership manager bound to the server's session, the
/// evolving global model, and the per-silo bookkeeping (frames owed, whose
/// update the next flush consumes, who departed). Lives on RunInternal's
/// stack — one per run.
struct AsyncRoundServer::RunCtx {
  explicit RunCtx(AsyncRoundServer* server)
      : aggregator(server->num_silos_, server->config_.max_staleness,
                   server->config_.buffer_size),
        manager(&server->session_, server->tracker_),
        owed(server->num_silos_, 0),
        waiting(server->num_silos_, false),
        departed(server->num_silos_, false),
        silo_peer(server->num_silos_, -1) {}

  std::unique_ptr<FrameMux> mux;
  AsyncAggregator aggregator;
  MembershipManager manager;
  Vec global;
  std::vector<int> owed;        // [silo] released frames not yet answered
  std::vector<bool> waiting;    // [silo] update consumed by the next flush
  std::vector<bool> departed;   // [silo] left/evicted during this run
  std::vector<int> peer_silo;   // [mux peer] -> silo id
  std::vector<int> silo_peer;   // [silo id] -> mux peer, -1 unregistered
  int resolved_buffer = 0;
};

AsyncRoundServer::AsyncRoundServer(const AsyncRoundsConfig& config,
                                   int num_silos, int dim)
    : config_(config), num_silos_(num_silos), dim_(dim), conns_(num_silos) {
  ULDP_CHECK_GE(num_silos_, 1);
  ULDP_CHECK_GE(dim_, 1);
}

AsyncRoundServer::~AsyncRoundServer() = default;

int AsyncRoundServer::connected_silos() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  int n = 0;
  for (const auto& c : conns_) n += c != nullptr ? 1 : 0;
  return n;
}

void AsyncRoundServer::SetCheckpoint(std::string dir, int every) {
  checkpoint_dir_ = std::move(dir);
  checkpoint_every_ = every;
}

Status AsyncRoundServer::RestoreSession(SessionState state) {
  if (state.seed != config_.seed) {
    return Status::InvalidArgument(
        "checkpoint seed " + std::to_string(state.seed) +
        " does not match the server's configured seed " +
        std::to_string(config_.seed));
  }
  if (state.dim != static_cast<uint32_t>(dim_)) {
    return Status::InvalidArgument(
        "checkpoint dimension " + std::to_string(state.dim) +
        " does not match the server's dimension " + std::to_string(dim_));
  }
  if (state.model.size() != static_cast<size_t>(state.dim)) {
    return Status::InvalidArgument(
        "checkpoint model size disagrees with its dimension");
  }
  session_ = std::move(state);
  return Status::Ok();
}

Status AsyncRoundServer::AddConnection(std::unique_ptr<Transport> transport) {
  auto frame = transport->Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "joining silo");
  }
  const uint64_t expected = AsyncRoundsWireDigest(config_, num_silos_, dim_);

  if (frame.value().type == static_cast<uint16_t>(MessageType::kJoinRequest)) {
    auto req_or = FromFrame<JoinRequestMsg>(frame.value());
    if (!req_or.ok()) return req_or.status();
    const JoinRequestMsg& req = req_or.value();
    Status verdict = Status::Ok();
    if (!config_.elastic) {
      verdict = Status::FailedPrecondition(
          "this server runs a fixed cohort: join requests are not accepted");
    } else if (req.num_silos != static_cast<uint32_t>(num_silos_) ||
               req.dim != static_cast<uint32_t>(dim_)) {
      verdict = Status::InvalidArgument(
          "silo announced cohort " + std::to_string(req.num_silos) +
          " x dim " + std::to_string(req.dim) + ", server expects " +
          std::to_string(num_silos_) + " x dim " + std::to_string(dim_));
    } else if (req.config_digest != expected) {
      verdict = Status::InvalidArgument(
          "async-round config digest mismatch: silo and server were started "
          "with different parameters");
    } else if (req.silo_id >= static_cast<uint32_t>(num_silos_)) {
      verdict = Status::InvalidArgument(
          "silo id " + std::to_string(req.silo_id) + " out of range");
    } else if (req.user_count < 1) {
      verdict = Status::InvalidArgument("silo joined with zero users");
    }
    if (!verdict.ok()) {
      transport->Send(MakeErrorFrame(verdict));  // tell the client why
      return verdict;
    }
    // Parked until the first flush boundary whose version satisfies
    // min_version; duplicate-id checks happen there against the live
    // membership (the same id may legitimately be rejoining after an
    // eviction).
    std::lock_guard<std::mutex> lock(conn_mu_);
    pending_.push_back(PendingJoin{req.silo_id, req.user_count,
                                   req.min_version, std::move(transport)});
    return Status::Ok();
  }

  auto join_or = FromFrame<JoinMsg>(frame.value());
  if (!join_or.ok()) return join_or.status();
  const JoinMsg& join = join_or.value();

  // Unsigned comparisons throughout (same hostile-id discipline as
  // ProtocolServer::AddConnection).
  Status verdict = Status::Ok();
  if (join.num_silos != static_cast<uint32_t>(num_silos_) ||
      join.num_users != static_cast<uint32_t>(dim_)) {
    verdict = Status::InvalidArgument(
        "silo announced cohort " + std::to_string(join.num_silos) + " x dim " +
        std::to_string(join.num_users) + ", server expects " +
        std::to_string(num_silos_) + " x dim " + std::to_string(dim_));
  } else if (join.config_digest != expected) {
    verdict = Status::InvalidArgument(
        "async-round config digest mismatch: silo and server were started "
        "with different parameters");
  } else if (join.silo_id >= static_cast<uint32_t>(num_silos_)) {
    verdict = Status::InvalidArgument(
        "silo id " + std::to_string(join.silo_id) + " out of range");
  }
  if (verdict.ok()) {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (running_) {
      verdict = Status::FailedPrecondition(
          config_.elastic
              ? "run in progress: mid-run admission needs a join request"
              : "run in progress: the cohort is fixed at start");
    } else if (conns_[join.silo_id] != nullptr) {
      verdict = Status::InvalidArgument(
          "silo id " + std::to_string(join.silo_id) + " already connected");
    } else {
      conns_[join.silo_id] = std::move(transport);
      return Status::Ok();
    }
  }
  transport->Send(MakeErrorFrame(verdict));  // tell the client why
  return verdict;
}

Status AsyncRoundServer::Release(int silo, uint64_t version,
                                 const Vec& global) {
  StalenessInfoMsg info;
  info.version = version;
  info.max_staleness = static_cast<uint32_t>(config_.max_staleness);
  info.buffer_size = static_cast<uint32_t>(
      config_.buffer_size <= 0 ? num_silos_ : config_.buffer_size);
  info.params = global;
  Status sent = conns_[silo]->Send(ToFrame(info));
  if (sent.ok()) {
    if (SiloMember* row = session_.Find(static_cast<uint32_t>(silo))) {
      row->last_version = version;
    }
  }
  return sent;
}

void AsyncRoundServer::FailAll(const Status& status) {
  obs::MetricsRegistry::Global().AddCounter("net.async.fail_all", 1);
  Frame frame = MakeErrorFrame(status);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const auto& conn : conns_) {
    if (conn != nullptr) conn->Send(frame);  // best effort
  }
  for (const auto& join : pending_) join.transport->Send(frame);
}

Status AsyncRoundServer::Depart(RunCtx& ctx, int silo, uint64_t version,
                                bool evict, const Status& cause) {
  if (ctx.departed[silo]) return Status::Ok();
  ctx.departed[silo] = true;
  ctx.owed[silo] = 0;  // its frames will never arrive — never wait on them
  ctx.waiting[silo] = false;
  ctx.aggregator.DropSilo(silo);
  if (evict) {
    EvictMsg msg;
    msg.silo_id = static_cast<uint32_t>(silo);
    msg.version = version;
    msg.code = static_cast<uint16_t>(cause.code());
    msg.reason = cause.message();
    conns_[silo]->Send(ToFrame(msg));  // best effort; it may be dead already
    Status st = ctx.manager.Evict(static_cast<uint32_t>(silo), version);
    ULDP_CHECK_MSG(st.ok(), st.ToString());
    ++evictions_;
    obs::MetricsRegistry::Global().AddCounter("net.async.evictions", 1);
  } else {
    Status st = ctx.manager.Leave(static_cast<uint32_t>(silo), version);
    ULDP_CHECK_MSG(st.ok(), st.ToString());
  }
  // Retire the mux peer now: queued frames dropped, the reader interrupted
  // immediately — this silo is never surfaced nor waited on again.
  if (ctx.silo_peer[silo] >= 0) {
    ctx.mux->InterruptPeer(ctx.silo_peer[silo], cause);
  }
  ctx.manager.SealEpoch(version);
  const int active = session_.ActiveCount();
  const int needed = std::max(1, config_.min_silos);
  if (active < needed) {
    return Status::FailedPrecondition(
        "active population fell to " + std::to_string(active) +
        " silo(s), below min_silos = " + std::to_string(needed) +
        " (last departure: " + cause.ToString() + ")");
  }
  ctx.aggregator.SetBufferSize(std::min(ctx.resolved_buffer, active));
  return Status::Ok();
}

Status AsyncRoundServer::AdmitDueJoins(RunCtx& ctx, uint64_t next_version) {
  std::vector<PendingJoin> due;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->min_version <= next_version) {
        due.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (due.empty()) return Status::Ok();
  obs::TraceSpan span("async.admit", "due",
                      static_cast<int64_t>(due.size()));
  bool changed = false;
  for (auto& join : due) {
    const int silo = static_cast<int>(join.silo_id);
    const SiloMember* row = session_.Find(join.silo_id);
    if (row != nullptr && (row->status == SiloStatus::kJoined ||
                           row->status == SiloStatus::kActive)) {
      join.transport->Send(MakeErrorFrame(Status::InvalidArgument(
          "silo id " + std::to_string(join.silo_id) +
          " is already a member")));
      continue;  // its transport dies with `due`
    }
    ULDP_RETURN_IF_ERROR(
        ctx.manager.Join(join.silo_id, join.user_count, next_version));
    ULDP_RETURN_IF_ERROR(ctx.manager.Activate(join.silo_id, next_version));
    {
      // The mux still borrows a replaced connection's Transport until its
      // Shutdown, so the old object is parked, not destroyed.
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conns_[silo] != nullptr) retired_.push_back(std::move(conns_[silo]));
      conns_[silo] = std::move(join.transport);
    }
    auto peer = ctx.mux->AddPeer(conns_[silo].get());
    ULDP_RETURN_IF_ERROR(peer.status());
    ULDP_CHECK_EQ(peer.value(), static_cast<int>(ctx.peer_silo.size()));
    ctx.peer_silo.push_back(silo);
    ctx.silo_peer[silo] = peer.value();
    ctx.departed[silo] = false;
    ctx.owed[silo] = 0;
    ctx.waiting[silo] = false;
    ++admissions_;
    obs::MetricsRegistry::Global().AddCounter("net.async.admissions", 1);
    changed = true;
    // The joiner starts from the current model snapshot.
    Status sent = Release(silo, next_version, ctx.global);
    if (sent.ok()) {
      ++ctx.owed[silo];
    } else {
      ULDP_RETURN_IF_ERROR(Depart(ctx, silo, next_version, /*evict=*/true,
                                  sent));
    }
  }
  if (changed) {
    ctx.manager.SealEpoch(next_version);
    ctx.aggregator.SetBufferSize(
        std::min(ctx.resolved_buffer, session_.ActiveCount()));
  }
  return Status::Ok();
}

Status AsyncRoundServer::MaybeCheckpoint(uint64_t completed_steps,
                                         int total_steps) {
  if (checkpoint_dir_.empty() || checkpoint_every_ <= 0) return Status::Ok();
  if (completed_steps % static_cast<uint64_t>(checkpoint_every_) != 0 &&
      completed_steps != static_cast<uint64_t>(total_steps)) {
    return Status::Ok();
  }
  obs::TraceSpan span("async.checkpoint", "step",
                      static_cast<int64_t>(completed_steps));
  return session_.WriteFile(checkpoint_dir_ + "/session.ckpt");
}

Result<Vec> AsyncRoundServer::Run(int num_steps, Vec global) {
  if (session_.round != 0 || !session_.members.empty()) {
    return Status::FailedPrecondition(
        "session already has progress; use Resume()");
  }
  session_ = SessionState{};
  session_.seed = config_.seed;
  session_.dim = static_cast<uint32_t>(dim_);
  auto out = RunInternal(num_steps, std::move(global));
  if (!out.ok()) FailAll(out.status());
  return out;
}

Result<Vec> AsyncRoundServer::Resume(int total_steps) {
  if (session_.dim != static_cast<uint32_t>(dim_)) {
    return Status::FailedPrecondition("no restored session to resume");
  }
  if (session_.round >= static_cast<uint64_t>(total_steps)) {
    return session_.model;  // the checkpoint already covers the whole run
  }
  auto out = RunInternal(total_steps, session_.model);
  if (!out.ok()) FailAll(out.status());
  return out;
}

Result<Vec> AsyncRoundServer::RunInternal(int total_steps, Vec global) {
  if (total_steps < 1) {
    return Status::InvalidArgument("num_steps must be >= 1");
  }
  if (global.size() != static_cast<size_t>(dim_)) {
    return Status::InvalidArgument("initial parameter dimension mismatch");
  }
  const int needed =
      config_.elastic ? std::max(1, config_.min_silos) : num_silos_;
  if (connected_silos() < needed) {
    return Status::FailedPrecondition(
        std::to_string(connected_silos()) + " of the required " +
        std::to_string(needed) + " silos connected");
  }
  if (config_.masked &&
      (config_.elastic || config_.max_staleness != 0 ||
       (config_.buffer_size > 0 && config_.buffer_size != num_silos_))) {
    return Status::InvalidArgument(
        "masked aggregation requires the barrier configuration "
        "(max_staleness 0, full buffer) and a static cohort: pairwise "
        "masks only cancel over the full population");
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    running_ = true;
  }
  stats_ = AsyncStats{};
  evictions_ = 0;
  admissions_ = 0;

  RunCtx ctx(this);
  ctx.resolved_buffer =
      config_.buffer_size <= 0 ? num_silos_ : config_.buffer_size;
  ctx.global = std::move(global);
  const uint64_t start_step = session_.round;

  // Membership bootstrap. Connected silos already active in a restored
  // session stay put — no spurious epoch on a clean resume; new ones
  // join + activate now. Restored-active silos that did not reconnect
  // are evicted (elastic) or fatal (static: the cohort must be whole).
  bool changed = false;
  for (int s = 0; s < num_silos_; ++s) {
    if (conns_[s] == nullptr) continue;
    const SiloMember* row = session_.Find(static_cast<uint32_t>(s));
    if (row != nullptr && row->status == SiloStatus::kActive) continue;
    if (row == nullptr || row->status != SiloStatus::kJoined) {
      ULDP_RETURN_IF_ERROR(ctx.manager.Join(static_cast<uint32_t>(s),
                                            row != nullptr ? row->user_count
                                                           : 1,
                                            start_step));
    }
    ULDP_RETURN_IF_ERROR(
        ctx.manager.Activate(static_cast<uint32_t>(s), start_step));
    changed = true;
  }
  std::vector<uint32_t> missing;
  for (const SiloMember& m : session_.members) {
    if (m.status == SiloStatus::kActive && conns_[m.silo_id] == nullptr) {
      missing.push_back(m.silo_id);
    }
  }
  for (uint32_t id : missing) {
    if (!config_.elastic) {
      return Status::FailedPrecondition(
          "restored session lists silo " + std::to_string(id) +
          " as active but it is not connected");
    }
    ULDP_RETURN_IF_ERROR(ctx.manager.Evict(id, start_step));
    ++evictions_;
    changed = true;
  }
  if (changed) ctx.manager.SealEpoch(start_step);
  if (session_.ActiveCount() < needed) {
    return Status::FailedPrecondition(
        "only " + std::to_string(session_.ActiveCount()) +
        " active silo(s) after the membership bootstrap, need " +
        std::to_string(needed));
  }

  // The aggregator adopts the session's round/stats (resume) and mirrors
  // them back after every flush; elastic runs size the flush threshold to
  // the active population.
  ctx.aggregator.BindSession(&session_);
  if (config_.elastic) {
    ctx.aggregator.SetBufferSize(
        std::min(ctx.resolved_buffer, session_.ActiveCount()));
  }

  // All arrivals come through one receive front end (net/mux.h): over TCP
  // a few epoll event-loop threads serve every connection; over channels
  // one blocking reader per peer. That is what "deltas applied as they
  // land" means. Frame accounting (`owed`) only matters at the clean
  // finish, where the server drains every released silo's final ack so a
  // straggler still sees Shutdown instead of an interrupted connection —
  // departed silos owe nothing by construction (Depart zeroes their debt
  // and retires their peer), so an evicted silo is never waited on. On
  // the failure path the mux is torn down immediately.
  {
    std::vector<Transport*> peers;
    for (int s = 0; s < num_silos_; ++s) {
      if (conns_[s] == nullptr) continue;
      ctx.silo_peer[s] = static_cast<int>(ctx.peer_silo.size());
      ctx.peer_silo.push_back(s);
      peers.push_back(conns_[s].get());
    }
    ctx.mux = MakeFrameMux(std::move(peers));
    ULDP_RETURN_IF_ERROR(ctx.mux->Start());
  }

  auto finish = [&](bool send_shutdown) {
    if (send_shutdown) {
      Frame shutdown = ToFrame(ShutdownMsg{});
      for (int s = 0; s < num_silos_; ++s) {
        if (conns_[s] != nullptr && !ctx.departed[s]) {
          conns_[s]->Send(shutdown);
        }
      }
      {
        // Parked joiners whose admission version never arrived still get
        // a clean end-of-run instead of a hung Recv.
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const auto& join : pending_) join.transport->Send(shutdown);
      }
      int outstanding = 0;
      for (int s = 0; s < num_silos_; ++s) outstanding += ctx.owed[s];
      while (outstanding > 0) {
        auto event = ctx.mux->RecvAny();
        if (!event.ok()) break;  // mux-level failure: nothing left to drain
        const int silo = ctx.peer_silo[event.value().peer];
        if (event.value().frame.ok()) {
          if (ctx.owed[silo] > 0) {
            --ctx.owed[silo];
            --outstanding;
          }
        } else {
          // Dead peer: whatever it owed will never arrive.
          outstanding -= ctx.owed[silo];
          ctx.owed[silo] = 0;
        }
      }
    }
    ctx.mux->Shutdown();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      running_ = false;
    }
    stats_.applied = session_.stats.applied;
    stats_.rejected = session_.stats.rejected;
    stats_.dropped = session_.stats.dropped;
    stats_.steps = session_.stats.steps;
    stats_.max_staleness_seen = session_.stats.max_staleness_seen;
  };

  // Every active silo starts on the session's current version.
  for (int s = 0; s < num_silos_; ++s) {
    if (conns_[s] == nullptr || ctx.departed[s]) continue;
    Status sent = Release(s, start_step, ctx.global);
    if (sent.ok()) {
      ++ctx.owed[s];
      continue;
    }
    if (!config_.elastic) {
      finish(/*send_shutdown=*/true);
      return sent;
    }
    Status dep = Depart(ctx, s, start_step, /*evict=*/true, sent);
    if (!dep.ok()) {
      finish(/*send_shutdown=*/false);
      return dep;
    }
  }

  for (int step_i = static_cast<int>(start_step); step_i < total_steps;
       ++step_i) {
    const uint64_t step = static_cast<uint64_t>(step_i);
    obs::TraceSpan step_span("async.server_step", "step",
                             static_cast<int64_t>(step));
    // Masked mode collects one pairwise-masked vector per silo instead of
    // buffering plaintext deltas in the aggregator.
    std::vector<std::vector<BigInt>> masked(
        config_.masked ? static_cast<size_t>(num_silos_) : 0);
    std::vector<bool> masked_in(num_silos_, false);
    int masked_count = 0;
    auto ready = [&]() {
      return config_.masked ? masked_count >= num_silos_
                            : ctx.aggregator.ReadyToFlush();
    };
    while (!ready()) {
      auto event_or = ctx.mux->RecvAny();
      if (!event_or.ok()) {
        if (config_.elastic &&
            event_or.status().code() == StatusCode::kDeadlineExceeded) {
          // The waiter deadline expired: every silo still owing a frame is
          // declared dead. If nothing was owed there is no progress to be
          // made — fall through to the fatal path.
          bool evicted_any = false;
          for (int s = 0; s < num_silos_; ++s) {
            if (ctx.owed[s] <= 0 || ctx.departed[s]) continue;
            evicted_any = true;
            Status dep = Depart(
                ctx, s, step, /*evict=*/true,
                Status::DeadlineExceeded("silo " + std::to_string(s) +
                                         " missed the receive deadline"));
            if (!dep.ok()) {
              finish(/*send_shutdown=*/false);
              return dep;
            }
          }
          if (evicted_any) continue;
        }
        FailAll(event_or.status());
        finish(/*send_shutdown=*/false);
        return event_or.status();
      }
      MuxEvent event = std::move(event_or.value());
      const int silo = ctx.peer_silo[event.peer];
      if (ctx.departed[silo]) continue;  // raced its retirement
      if (event.frame.ok() && ctx.owed[silo] > 0) --ctx.owed[silo];
      Status verdict = Status::Ok();
      bool leaving = false;
      if (!event.frame.ok()) {
        ctx.owed[silo] = 0;
        verdict = event.frame.status();
      } else if (event.frame.value().type ==
                 static_cast<uint16_t>(MessageType::kError)) {
        verdict = StatusFromErrorFrame(event.frame.value(),
                                       "silo " + std::to_string(silo));
      } else if (event.frame.value().type ==
                 static_cast<uint16_t>(MessageType::kLeave)) {
        auto msg = FromFrame<LeaveMsg>(event.frame.value());
        if (!msg.ok()) {
          verdict = msg.status();
        } else if (msg.value().silo_id != static_cast<uint32_t>(silo)) {
          verdict = Status::InvalidArgument("leave from wrong silo id");
        } else if (!config_.elastic) {
          verdict =
              Status::FailedPrecondition("voluntary leave on a fixed cohort");
        } else {
          leaving = true;
        }
      } else if (config_.masked) {
        auto msg = FromFrame<MaskedVectorMsg>(event.frame.value());
        if (!msg.ok()) {
          verdict = msg.status();
        } else if (MaskTagPhase(msg.value().phase_tag) !=
                       MaskPhase::kFlAggregation ||
                   MaskTagRound(msg.value().phase_tag) != step) {
          verdict =
              Status::InvalidArgument("masked vector with a wrong phase tag");
        } else if (msg.value().party_id != static_cast<uint32_t>(silo)) {
          verdict = Status::InvalidArgument("masked vector from wrong silo");
        } else if (msg.value().values.size() != static_cast<size_t>(dim_)) {
          verdict =
              Status::InvalidArgument("masked vector dimension mismatch");
        } else if (masked_in[silo]) {
          verdict = Status::InvalidArgument(
              "duplicate masked vector for this step");
        } else {
          masked[silo] = std::move(msg.value().values);
          masked_in[silo] = true;
          ++masked_count;
          ctx.waiting[silo] = true;
        }
      } else {
        auto msg = FromFrame<RoundAckMsg>(event.frame.value());
        if (!msg.ok()) {
          verdict = msg.status();
        } else if (msg.value().silo_id != static_cast<uint32_t>(silo)) {
          verdict = Status::InvalidArgument("round ack from wrong silo id");
        } else if (msg.value().delta.size() != static_cast<size_t>(dim_)) {
          verdict = Status::InvalidArgument("round ack dimension mismatch");
        } else if (msg.value().version > step) {
          verdict = Status::InvalidArgument("round ack from the future");
        } else {
          const int staleness =
              ctx.aggregator.Offer(silo, static_cast<int>(msg.value().version),
                                   std::move(msg.value().delta));
          if (staleness < 0) {
            // Over the bound: drop and retrain against the current model.
            Status sent = Release(silo, step, ctx.global);
            if (sent.ok()) {
              ++ctx.owed[silo];
            } else if (!config_.elastic) {
              finish(/*send_shutdown=*/true);
              return sent;
            } else {
              Status dep = Depart(ctx, silo, step, /*evict=*/true, sent);
              if (!dep.ok()) {
                finish(/*send_shutdown=*/false);
                return dep;
              }
            }
          } else {
            ctx.waiting[silo] = true;
          }
        }
      }
      if (leaving) {
        Status dep =
            Depart(ctx, silo, step, /*evict=*/false,
                   Status::FailedPrecondition("silo " + std::to_string(silo) +
                                              " left at version " +
                                              std::to_string(step)));
        if (!dep.ok()) {
          finish(/*send_shutdown=*/false);
          return dep;
        }
        continue;
      }
      if (!verdict.ok()) {
        if (!config_.elastic) {
          FailAll(verdict);
          finish(/*send_shutdown=*/false);
          return verdict;
        }
        Status dep = Depart(ctx, silo, step, /*evict=*/true, verdict);
        if (!dep.ok()) {
          finish(/*send_shutdown=*/false);
          return dep;
        }
      }
    }

    Vec sum;
    if (config_.masked) {
      // All masks cancel over the full cohort; the silo-ordered unmask is
      // bitwise identical to the aggregator's secure Flush on the same
      // deltas (tests/membership_test.cc pins this).
      sum = UnmaskMaskedSum(masked);
      session_.stats.applied += num_silos_;
      session_.stats.steps += 1;
      session_.round = step + 1;
    } else {
      sum = ctx.aggregator.Flush(/*secure=*/false, step, nullptr);
    }
    double scale = config_.step_scale;
    const int active = session_.ActiveCount();
    if (config_.elastic && active > 0 && active != num_silos_) {
      // Population-invariant step magnitude: step_scale was chosen for the
      // full cohort (eta_g / |S|), so a shrunken population rescales.
      scale = config_.step_scale * static_cast<double>(num_silos_) / active;
    }
    Axpy(scale, sum, ctx.global);
    session_.model = ctx.global;
    Status ck = MaybeCheckpoint(step + 1, total_steps);
    if (!ck.ok()) {
      FailAll(ck);
      finish(/*send_shutdown=*/false);
      return ck;
    }
    // Release every silo whose update was consumed, in silo order.
    for (int s = 0; s < num_silos_; ++s) {
      if (!ctx.waiting[s]) continue;
      ctx.waiting[s] = false;
      if (ctx.departed[s]) continue;
      if (step_i + 1 == total_steps) continue;  // shutdown follows
      Status sent = Release(s, step + 1, ctx.global);
      if (sent.ok()) {
        ++ctx.owed[s];
        continue;
      }
      if (!config_.elastic) {
        finish(/*send_shutdown=*/true);
        return sent;
      }
      Status dep = Depart(ctx, s, step + 1, /*evict=*/true, sent);
      if (!dep.ok()) {
        finish(/*send_shutdown=*/false);
        return dep;
      }
    }
    if (config_.elastic && step_i + 1 < total_steps) {
      Status adm = AdmitDueJoins(ctx, step + 1);
      if (!adm.ok()) {
        finish(/*send_shutdown=*/false);
        return adm;
      }
    }
  }
  finish(/*send_shutdown=*/true);
  return ctx.global;
}

// ---------------------------------------------------------------------------
// AsyncRoundClient

AsyncRoundClient::AsyncRoundClient(const AsyncRoundsConfig& config,
                                   int silo_id, int num_silos, int dim)
    : config_(config), silo_id_(silo_id), num_silos_(num_silos), dim_(dim) {
  ULDP_CHECK_GE(silo_id_, 0);
  ULDP_CHECK_LT(silo_id_, num_silos_);
  ULDP_CHECK_GE(dim_, 1);
}

Status AsyncRoundClient::Run(Transport& transport, const WorkFn& work,
                             const AsyncClientOptions& options) {
  Status status = RunLoop(transport, work, options);
  if (!status.ok()) {
    transport.Send(MakeErrorFrame(status));  // best effort
  }
  return status;
}

Status AsyncRoundClient::RunLoop(Transport& transport, const WorkFn& work,
                                 const AsyncClientOptions& options) {
  const uint64_t digest = AsyncRoundsWireDigest(config_, num_silos_, dim_);
  if (options.join_min_version >= 0) {
    JoinRequestMsg req;
    req.silo_id = static_cast<uint32_t>(silo_id_);
    req.num_silos = static_cast<uint32_t>(num_silos_);
    req.dim = static_cast<uint32_t>(dim_);
    req.user_count = options.user_count;
    req.min_version = static_cast<uint64_t>(options.join_min_version);
    req.config_digest = digest;
    ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(req)));
  } else {
    JoinMsg join;
    join.silo_id = static_cast<uint32_t>(silo_id_);
    join.num_silos = static_cast<uint32_t>(num_silos_);
    join.num_users = static_cast<uint32_t>(dim_);
    join.config_digest = digest;
    ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(join)));
  }

  for (;;) {
    auto frame = transport.Recv();
    if (!frame.ok()) return frame.status();
    const uint16_t type = frame.value().type;
    if (type == static_cast<uint16_t>(MessageType::kShutdown)) {
      return Status::Ok();
    }
    if (type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "server");
    }
    if (type == static_cast<uint16_t>(MessageType::kEvict)) {
      auto msg = FromFrame<EvictMsg>(frame.value());
      if (!msg.ok()) return msg.status();
      return Status::FailedPrecondition(
          "server evicted this silo at version " +
          std::to_string(msg.value().version) + ": " + msg.value().reason);
    }
    auto info = FromFrame<StalenessInfoMsg>(frame.value());
    if (!info.ok()) return info.status();
    if (info.value().params.size() != static_cast<size_t>(dim_)) {
      return Status::InvalidArgument("released parameters have dim " +
                                     std::to_string(info.value().params.size()) +
                                     ", expected " + std::to_string(dim_));
    }
    const uint64_t version = info.value().version;
    if (options.leave_after_version >= 0 &&
        version >= static_cast<uint64_t>(options.leave_after_version)) {
      // Voluntary departure: decline the task instead of training it.
      LeaveMsg leave;
      leave.silo_id = static_cast<uint32_t>(silo_id_);
      leave.version = version;
      ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(leave)));
      return Status::Ok();
    }
    Vec delta;
    {
      obs::TraceSpan span("async.client_work", "version",
                          static_cast<int64_t>(version));
      ULDP_RETURN_IF_ERROR(work(version, info.value().params, &delta));
    }
    if (delta.size() != static_cast<size_t>(dim_)) {
      return Status::Internal("local work produced a wrong-sized delta");
    }
    if (config_.masked) {
      // Raw version as the mask round-tag — the same tag the in-process
      // secure reduce uses, so the server-side unmask is bitwise identical
      // to it. The wire-level phase tag carries the domain separation.
      MaskedVectorMsg msg;
      msg.phase_tag = MakeMaskTag(MaskPhase::kFlAggregation, version);
      msg.party_id = static_cast<uint32_t>(silo_id_);
      msg.values =
          MaskSiloDelta(delta, silo_id_, num_silos_, version, nullptr);
      ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(msg)));
    } else {
      RoundAckMsg ack;
      ack.version = version;
      ack.silo_id = static_cast<uint32_t>(silo_id_);
      ack.delta = std::move(delta);
      ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(ack)));
    }
  }
}

}  // namespace net
}  // namespace uldp
