#include "net/async_rounds.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "net/messages.h"
#include "net/mux.h"
#include "nn/model.h"

namespace uldp {
namespace net {

uint64_t AsyncRoundsWireDigest(const AsyncRoundsConfig& config, int num_silos,
                               int dim) {
  WireWriter w;
  w.U16(kWireVersion);
  w.U32(static_cast<uint32_t>(config.max_staleness));
  w.U32(static_cast<uint32_t>(config.buffer_size <= 0 ? num_silos
                                                      : config.buffer_size));
  w.F64(config.step_scale);
  w.U64(config.seed);
  w.U32(static_cast<uint32_t>(num_silos));
  w.U32(static_cast<uint32_t>(dim));
  return WireDigest(w.buffer());
}

// ---------------------------------------------------------------------------
// AsyncRoundServer

AsyncRoundServer::AsyncRoundServer(const AsyncRoundsConfig& config,
                                   int num_silos, int dim)
    : config_(config), num_silos_(num_silos), dim_(dim), conns_(num_silos) {
  ULDP_CHECK_GE(num_silos_, 1);
  ULDP_CHECK_GE(dim_, 1);
}

int AsyncRoundServer::connected_silos() const {
  int n = 0;
  for (const auto& c : conns_) n += c != nullptr ? 1 : 0;
  return n;
}

Status AsyncRoundServer::AddConnection(std::unique_ptr<Transport> transport) {
  auto frame = transport->Recv();
  if (!frame.ok()) return frame.status();
  if (frame.value().type == static_cast<uint16_t>(MessageType::kError)) {
    return StatusFromErrorFrame(frame.value(), "joining silo");
  }
  auto join_or = FromFrame<JoinMsg>(frame.value());
  if (!join_or.ok()) return join_or.status();
  const JoinMsg& join = join_or.value();

  // Unsigned comparisons throughout (same hostile-id discipline as
  // ProtocolServer::AddConnection).
  Status verdict = Status::Ok();
  if (join.num_silos != static_cast<uint32_t>(num_silos_) ||
      join.num_users != static_cast<uint32_t>(dim_)) {
    verdict = Status::InvalidArgument(
        "silo announced cohort " + std::to_string(join.num_silos) + " x dim " +
        std::to_string(join.num_users) + ", server expects " +
        std::to_string(num_silos_) + " x dim " + std::to_string(dim_));
  } else if (join.config_digest !=
             AsyncRoundsWireDigest(config_, num_silos_, dim_)) {
    verdict = Status::InvalidArgument(
        "async-round config digest mismatch: silo and server were started "
        "with different parameters");
  } else if (join.silo_id >= static_cast<uint32_t>(num_silos_)) {
    verdict = Status::InvalidArgument(
        "silo id " + std::to_string(join.silo_id) + " out of range");
  } else if (conns_[join.silo_id] != nullptr) {
    verdict = Status::InvalidArgument(
        "silo id " + std::to_string(join.silo_id) + " already connected");
  }
  if (!verdict.ok()) {
    transport->Send(MakeErrorFrame(verdict));  // tell the client why
    return verdict;
  }
  conns_[join.silo_id] = std::move(transport);
  return Status::Ok();
}

Status AsyncRoundServer::Release(int silo, uint64_t version,
                                 const Vec& global) {
  StalenessInfoMsg info;
  info.version = version;
  info.max_staleness = static_cast<uint32_t>(config_.max_staleness);
  info.buffer_size = static_cast<uint32_t>(
      config_.buffer_size <= 0 ? num_silos_ : config_.buffer_size);
  info.params = global;
  return conns_[silo]->Send(ToFrame(info));
}

void AsyncRoundServer::FailAll(const Status& status) {
  Frame frame = MakeErrorFrame(status);
  for (const auto& conn : conns_) {
    if (conn != nullptr) conn->Send(frame);  // best effort
  }
}

Result<Vec> AsyncRoundServer::Run(int num_steps, Vec global) {
  auto out = RunInternal(num_steps, std::move(global));
  if (!out.ok()) FailAll(out.status());
  return out;
}

Result<Vec> AsyncRoundServer::RunInternal(int num_steps, Vec global) {
  if (connected_silos() != num_silos_) {
    return Status::FailedPrecondition(
        std::to_string(connected_silos()) + " of " +
        std::to_string(num_silos_) + " silos connected");
  }
  if (num_steps < 1) {
    return Status::InvalidArgument("num_steps must be >= 1");
  }
  if (global.size() != static_cast<size_t>(dim_)) {
    return Status::InvalidArgument("initial parameter dimension mismatch");
  }
  stats_ = AsyncStats{};
  AsyncAggregator aggregator(num_silos_, config_.max_staleness,
                             config_.buffer_size);

  // All arrivals come through one receive front end (net/mux.h): over TCP
  // a few epoll event-loop threads serve every connection; over channels
  // one blocking reader per peer. That is what "deltas applied as they
  // land" means. Frame accounting (`owed`) only matters at the clean
  // finish, where the server drains every released silo's final ack so a
  // straggler still sees Shutdown instead of an interrupted connection;
  // on the failure path the mux is torn down immediately — interrupt
  // every transport, join every thread — so a silo that hangs mid-frame
  // can never leave a reader blocked past FailAll.
  std::vector<Transport*> peers;
  peers.reserve(conns_.size());
  for (const auto& c : conns_) peers.push_back(c.get());
  auto mux = MakeFrameMux(std::move(peers));
  ULDP_RETURN_IF_ERROR(mux->Start());

  std::vector<int> owed(num_silos_, 0);
  auto release = [&](int silo, const Vec& params) {
    Status sent =
        Release(silo, static_cast<uint64_t>(aggregator.version()), params);
    if (sent.ok()) ++owed[silo];
    return sent;
  };
  // Always runs before returning: tells the silos the run is over (Ok
  // path) or already failed (FailAll ran), drains what is still owed on
  // a clean exit, then tears the mux down.
  auto finish = [&](bool send_shutdown) {
    if (send_shutdown) {
      Frame shutdown = ToFrame(ShutdownMsg{});
      for (const auto& conn : conns_) conn->Send(shutdown);
      int outstanding = 0;
      for (int s = 0; s < num_silos_; ++s) outstanding += owed[s];
      while (outstanding > 0) {
        auto event = mux->RecvAny();
        if (!event.ok()) break;  // mux-level failure: nothing left to drain
        const int peer = event.value().peer;
        if (event.value().frame.ok()) {
          if (owed[peer] > 0) {
            --owed[peer];
            --outstanding;
          }
        } else {
          // Dead peer: whatever it owed will never arrive.
          outstanding -= owed[peer];
          owed[peer] = 0;
        }
      }
    }
    mux->Shutdown();
  };

  // All silos start on version 0.
  for (int s = 0; s < num_silos_; ++s) {
    Status sent = release(s, global);
    if (!sent.ok()) {
      finish(/*send_shutdown=*/true);
      return sent;
    }
  }

  std::vector<bool> waiting(num_silos_, false);
  for (int step = 0; step < num_steps; ++step) {
    while (!aggregator.ReadyToFlush()) {
      auto event_or = mux->RecvAny();
      if (!event_or.ok()) {
        FailAll(event_or.status());
        finish(/*send_shutdown=*/false);
        return event_or.status();
      }
      MuxEvent event = std::move(event_or.value());
      if (event.frame.ok() && owed[event.peer] > 0) --owed[event.peer];
      Status verdict = Status::Ok();
      if (!event.frame.ok()) {
        owed[event.peer] = 0;
        verdict = event.frame.status();
      } else if (event.frame.value().type ==
                 static_cast<uint16_t>(MessageType::kError)) {
        verdict = StatusFromErrorFrame(event.frame.value(),
                                       "silo " + std::to_string(event.peer));
      }
      RoundAckMsg ack;
      if (verdict.ok()) {
        auto msg = FromFrame<RoundAckMsg>(event.frame.value());
        if (!msg.ok()) {
          verdict = msg.status();
        } else if (msg.value().silo_id != static_cast<uint32_t>(event.peer)) {
          verdict = Status::InvalidArgument("round ack from wrong silo id");
        } else if (msg.value().delta.size() != static_cast<size_t>(dim_)) {
          verdict = Status::InvalidArgument("round ack dimension mismatch");
        } else if (msg.value().version >
                   static_cast<uint64_t>(aggregator.version())) {
          verdict = Status::InvalidArgument("round ack from the future");
        } else {
          ack = std::move(msg.value());
        }
      }
      if (!verdict.ok()) {
        FailAll(verdict);
        finish(/*send_shutdown=*/false);
        return verdict;
      }
      const int staleness = aggregator.Offer(
          event.peer, static_cast<int>(ack.version), std::move(ack.delta));
      if (staleness < 0) {
        // Over the bound: drop and retrain against the current model.
        Status sent = release(event.peer, global);
        if (!sent.ok()) {
          finish(/*send_shutdown=*/true);
          return sent;
        }
      } else {
        waiting[event.peer] = true;
      }
    }
    Vec sum = aggregator.Flush(/*secure=*/false,
                               static_cast<uint64_t>(step), nullptr);
    Axpy(config_.step_scale, sum, global);
    // Release every silo whose update was consumed, in silo order.
    for (int s = 0; s < num_silos_; ++s) {
      if (!waiting[s]) continue;
      waiting[s] = false;
      if (step + 1 == num_steps) continue;  // shutdown follows
      Status sent = release(s, global);
      if (!sent.ok()) {
        finish(/*send_shutdown=*/true);
        return sent;
      }
    }
  }
  stats_ = aggregator.stats();
  finish(/*send_shutdown=*/true);
  return global;
}

// ---------------------------------------------------------------------------
// AsyncRoundClient

AsyncRoundClient::AsyncRoundClient(const AsyncRoundsConfig& config,
                                   int silo_id, int num_silos, int dim)
    : config_(config), silo_id_(silo_id), num_silos_(num_silos), dim_(dim) {
  ULDP_CHECK_GE(silo_id_, 0);
  ULDP_CHECK_LT(silo_id_, num_silos_);
  ULDP_CHECK_GE(dim_, 1);
}

Status AsyncRoundClient::Run(Transport& transport, const WorkFn& work) {
  Status status = RunLoop(transport, work);
  if (!status.ok()) {
    transport.Send(MakeErrorFrame(status));  // best effort
  }
  return status;
}

Status AsyncRoundClient::RunLoop(Transport& transport, const WorkFn& work) {
  JoinMsg join;
  join.silo_id = static_cast<uint32_t>(silo_id_);
  join.num_silos = static_cast<uint32_t>(num_silos_);
  join.num_users = static_cast<uint32_t>(dim_);
  join.config_digest = AsyncRoundsWireDigest(config_, num_silos_, dim_);
  ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(join)));

  for (;;) {
    auto frame = transport.Recv();
    if (!frame.ok()) return frame.status();
    const uint16_t type = frame.value().type;
    if (type == static_cast<uint16_t>(MessageType::kShutdown)) {
      return Status::Ok();
    }
    if (type == static_cast<uint16_t>(MessageType::kError)) {
      return StatusFromErrorFrame(frame.value(), "server");
    }
    auto info = FromFrame<StalenessInfoMsg>(frame.value());
    if (!info.ok()) return info.status();
    if (info.value().params.size() != static_cast<size_t>(dim_)) {
      return Status::InvalidArgument("released parameters have dim " +
                                     std::to_string(info.value().params.size()) +
                                     ", expected " + std::to_string(dim_));
    }
    Vec delta;
    ULDP_RETURN_IF_ERROR(
        work(info.value().version, info.value().params, &delta));
    if (delta.size() != static_cast<size_t>(dim_)) {
      return Status::Internal("local work produced a wrong-sized delta");
    }
    RoundAckMsg ack;
    ack.version = info.value().version;
    ack.silo_id = static_cast<uint32_t>(silo_id_);
    ack.delta = std::move(delta);
    ULDP_RETURN_IF_ERROR(transport.Send(ToFrame(ack)));
  }
}

}  // namespace net
}  // namespace uldp
