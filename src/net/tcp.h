// TCP backend for the cross-silo transport: blocking POSIX sockets
// exchanging the length-prefixed frames of net/wire.h. Loopback-tested;
// a deployment would wrap this in TLS (the protocol's payloads are
// ciphertexts and masked values, but transport auth still matters).

#ifndef ULDP_NET_TCP_H_
#define ULDP_NET_TCP_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "net/transport.h"

namespace uldp {
namespace net {

class TcpTransport : public Transport {
 public:
  /// Connects to host:port. `host` is a dotted IPv4 address or
  /// "localhost".
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, int port);

  /// Takes ownership of a connected socket (used by TcpListener::Accept).
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  void Close() override;
  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }

  /// Recv deadline via SO_RCVTIMEO: a Recv that sees no bytes for
  /// `milliseconds` fails with DeadlineExceeded instead of blocking
  /// forever on a silent peer (the ROADMAP's AddConnection/Recv hang).
  /// 0 restores fully blocking reads. A timeout can fire mid-frame, after
  /// which the byte stream is unframeable, so a timed-out transport is
  /// closed — callers treat DeadlineExceeded as fatal for the connection.
  Status SetRecvTimeout(int milliseconds);

 private:
  Status WriteAll(const uint8_t* data, size_t size);
  Status ReadAll(uint8_t* data, size_t size);

  int fd_ = -1;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

/// Listening socket bound to loopback.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port` (`port` 0 picks an ephemeral port, readable
  /// via port() afterwards).
  static Result<TcpListener> Listen(int port);

  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Blocks until one client connects.
  Result<std::unique_ptr<TcpTransport>> Accept();
  int port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_TCP_H_
