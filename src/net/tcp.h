// TCP backend for the cross-silo transport: blocking POSIX sockets
// exchanging the length-prefixed frames of net/wire.h. Loopback-tested;
// a deployment would wrap this in TLS (the protocol's payloads are
// ciphertexts and masked values, but transport auth still matters).

#ifndef ULDP_NET_TCP_H_
#define ULDP_NET_TCP_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/transport.h"

namespace uldp {
namespace net {

class TcpTransport : public Transport {
 public:
  /// Connects to host:port. `host` is a dotted IPv4 address or
  /// "localhost".
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, int port);

  /// Takes ownership of a connected socket (used by TcpListener::Accept).
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  void Close() override;
  /// Shuts down both stream directions without releasing the fd: any
  /// thread blocked in recv() wakes with EOF, but the descriptor stays
  /// valid until Close()/destruction — safe against a concurrent reader.
  void Interrupt() override;
  int NativeHandle() const override { return fd_; }

  /// Recv deadline via SO_RCVTIMEO: a Recv that sees no bytes for
  /// `milliseconds` fails with DeadlineExceeded instead of blocking
  /// forever on a silent peer (the ROADMAP's AddConnection/Recv hang).
  /// 0 restores fully blocking reads. A timeout can fire mid-frame, after
  /// which the byte stream is unframeable, so a timed-out transport is
  /// closed — callers treat DeadlineExceeded as fatal for the connection.
  /// The event-loop mux reads the value back via recv_timeout_ms() and
  /// enforces the same bound on its waiters.
  Status SetRecvTimeout(int milliseconds);

  /// Non-blocking read step for event loops (net/mux.h): consumes
  /// whatever bytes the socket has buffered (MSG_DONTWAIT) through an
  /// internal header/payload state machine. Returns true with a complete
  /// frame in `out`, false when the socket would block mid-frame (call
  /// again when epoll reports readability), or an error on peer close /
  /// malformed header — the same Statuses blocking Recv produces. Do not
  /// interleave with blocking Recv on the same connection.
  Result<bool> TryReadFrame(Frame* out) override;

 private:
  Status WriteAll(const uint8_t* data, size_t size);
  Status ReadAll(uint8_t* data, size_t size);

  int fd_ = -1;

  // TryReadFrame state machine: bytes accumulated toward the current
  // header-or-payload target.
  std::vector<uint8_t> read_buf_;
  size_t read_have_ = 0;
  bool read_header_done_ = false;
  uint16_t read_type_ = 0;
  uint32_t read_payload_len_ = 0;
};

/// Listening socket bound to loopback.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port` (`port` 0 picks an ephemeral port, readable
  /// via port() afterwards).
  static Result<TcpListener> Listen(int port);

  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Blocks until one client connects.
  Result<std::unique_ptr<TcpTransport>> Accept();
  int port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace net
}  // namespace uldp

#endif  // ULDP_NET_TCP_H_
