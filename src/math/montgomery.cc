#include "math/montgomery.h"

#include "common/check.h"
#include "math/bigint.h"

namespace uldp {

namespace {

using uint128 = unsigned __int128;

// x^{-1} mod 2^64 for odd x, by Newton iteration (doubles correct bits).
uint64_t InverseMod2_64(uint64_t x) {
  uint64_t inv = x;  // correct to 3 bits for odd x
  for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
  return inv;
}

// a >= b on k-limb little-endian magnitudes.
bool GreaterEqual(const std::vector<uint64_t>& a,
                  const std::vector<uint64_t>& b) {
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;  // equal
}

// a -= b (in place), assumes a >= b.
void SubInPlace(std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint128 diff = static_cast<uint128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
}

}  // namespace

Montgomery::Montgomery(const BigInt& modulus) {
  ULDP_CHECK_MSG(modulus.IsOdd() && modulus > BigInt(1),
                 "Montgomery modulus must be odd and > 1");
  n_limbs_ = modulus.limbs();
  modulus_copy_ = n_limbs_;
  k_ = n_limbs_.size();
  n_prime_ = ~InverseMod2_64(n_limbs_[0]) + 1;  // -n^{-1} mod 2^64

  // R^2 mod n with R = 2^(64 k), computed once with plain division.
  BigInt r2 = (BigInt(1) << static_cast<int>(128 * k_)).Mod(modulus);
  r2_ = r2.limbs();
  r2_.resize(k_, 0);
  // one_mont_ = R mod n = REDC(R^2).
  std::vector<uint64_t> t(r2_);
  t.resize(2 * k_, 0);
  one_mont_ = Redc(std::move(t));
}

const BigInt& Montgomery::modulus() const {
  // Rebuild lazily in a thread-local to keep the hot path allocation-free.
  thread_local BigInt cached;
  cached = BigInt::FromLimbs(modulus_copy_);
  return cached;
}

Montgomery::Limbs Montgomery::Redc(std::vector<uint64_t> t) const {
  ULDP_CHECK_EQ(t.size(), 2 * k_);
  t.push_back(0);  // overflow word
  for (size_t i = 0; i < k_; ++i) {
    uint64_t m = t[i] * n_prime_;
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      uint128 cur = static_cast<uint128>(m) * n_limbs_[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    // Propagate the carry through the upper words.
    size_t idx = i + k_;
    while (carry != 0) {
      uint128 cur = static_cast<uint128>(t[idx]) + carry;
      t[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  Limbs out(t.begin() + k_, t.begin() + 2 * k_);
  // The REDC result may exceed n by at most n (t[2k] overflow bit means
  // result + 2^(64k) — handled by one conditional subtraction since
  // result < 2n is guaranteed for inputs < n*R).
  if (t[2 * k_] != 0 || GreaterEqual(out, n_limbs_)) {
    SubInPlace(out, n_limbs_);
  }
  return out;
}

Montgomery::Limbs Montgomery::MontMul(const Limbs& a, const Limbs& b) const {
  // Full product then REDC. Schoolbook is optimal at Paillier limb counts.
  std::vector<uint64_t> t(2 * k_, 0);
  for (size_t i = 0; i < k_; ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    if (ai == 0) continue;
    for (size_t j = 0; j < k_; ++j) {
      uint128 cur = static_cast<uint128>(ai) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    t[i + k_] += carry;
  }
  return Redc(std::move(t));
}

Montgomery::Limbs Montgomery::ToMont(const BigInt& x) const {
  ULDP_CHECK(!x.IsNegative());
  Limbs xl = x.limbs();
  ULDP_CHECK_LE(xl.size(), k_);
  xl.resize(k_, 0);
  return MontMul(xl, r2_);
}

BigInt Montgomery::FromMont(const Limbs& x) const {
  std::vector<uint64_t> t(x);
  t.resize(2 * k_, 0);
  Limbs reduced = Redc(std::move(t));
  return BigInt::FromLimbs(std::move(reduced));
}

BigInt Montgomery::ModMul(const BigInt& a, const BigInt& b) const {
  Limbs am = ToMont(a);
  Limbs bm = ToMont(b);
  return FromMont(MontMul(am, bm));
}

BigInt Montgomery::ModExp(const BigInt& base, const BigInt& exp) const {
  ULDP_CHECK(!exp.IsNegative());
  if (exp.IsZero()) return FromMont(one_mont_);

  Limbs base_m = ToMont(base);
  // 4-bit fixed window: table[w] = base^w in Montgomery domain.
  constexpr int kWindow = 4;
  Limbs table[1 << kWindow];
  table[0] = one_mont_;
  table[1] = base_m;
  for (int w = 2; w < (1 << kWindow); ++w) {
    table[w] = MontMul(table[w - 1], base_m);
  }

  int bits = exp.BitLength();
  int top_chunk = (bits + kWindow - 1) / kWindow - 1;
  Limbs acc = one_mont_;
  bool started = false;
  for (int c = top_chunk; c >= 0; --c) {
    if (started) {
      for (int s = 0; s < kWindow; ++s) acc = MontMul(acc, acc);
    }
    int w = 0;
    for (int b = kWindow - 1; b >= 0; --b) {
      int bit_index = c * kWindow + b;
      w = (w << 1) | (bit_index < bits && exp.Bit(bit_index) ? 1 : 0);
    }
    if (!started) {
      acc = table[w];
      started = true;
    } else if (w != 0) {
      acc = MontMul(acc, table[w]);
    }
  }
  return FromMont(acc);
}

}  // namespace uldp
