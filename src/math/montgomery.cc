#include "math/montgomery.h"

#include "common/check.h"
#include "math/bigint.h"

namespace uldp {

namespace {

using uint128 = unsigned __int128;

// x^{-1} mod 2^64 for odd x, by Newton iteration (doubles correct bits).
uint64_t InverseMod2_64(uint64_t x) {
  uint64_t inv = x;  // correct to 3 bits for odd x
  for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
  return inv;
}

// a >= b on k-limb little-endian magnitudes.
bool GreaterEqual(const std::vector<uint64_t>& a,
                  const std::vector<uint64_t>& b) {
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;  // equal
}

// a -= b (in place), assumes a >= b.
void SubInPlace(std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint128 diff = static_cast<uint128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
}

// Sliding-window width for an exponent of the given bit length. Balances
// the 2^(w-1)-entry odd-power table against the expected multiplications
// per window (standard cutoffs).
int WindowBits(int exp_bits) {
  if (exp_bits >= 1024) return 6;
  if (exp_bits >= 384) return 5;
  if (exp_bits >= 96) return 4;
  if (exp_bits >= 24) return 3;
  return 2;
}

}  // namespace

Montgomery::Montgomery(const BigInt& modulus) {
  ULDP_CHECK_MSG(modulus.IsOdd() && modulus > BigInt(1),
                 "Montgomery modulus must be odd and > 1");
  n_limbs_ = modulus.limbs();
  modulus_copy_ = n_limbs_;
  k_ = n_limbs_.size();
  n_prime_ = ~InverseMod2_64(n_limbs_[0]) + 1;  // -n^{-1} mod 2^64

  // R^2 mod n with R = 2^(64 k), computed once with plain division.
  BigInt r2 = (BigInt(1) << static_cast<int>(128 * k_)).Mod(modulus);
  r2_ = r2.limbs();
  r2_.resize(k_, 0);
  // one_mont_ = R mod n = REDC(R^2).
  std::vector<uint64_t> t(r2_);
  t.resize(2 * k_, 0);
  one_mont_ = Redc(std::move(t));
}

const BigInt& Montgomery::modulus() const {
  // Rebuild lazily in a thread-local to keep the hot path allocation-free.
  thread_local BigInt cached;
  cached = BigInt::FromLimbs(modulus_copy_);
  return cached;
}

Montgomery::Limbs Montgomery::Redc(std::vector<uint64_t> t) const {
  ULDP_CHECK_EQ(t.size(), 2 * k_);
  t.push_back(0);  // overflow word
  for (size_t i = 0; i < k_; ++i) {
    uint64_t m = t[i] * n_prime_;
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      uint128 cur = static_cast<uint128>(m) * n_limbs_[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    // Propagate the carry through the upper words.
    size_t idx = i + k_;
    while (carry != 0) {
      uint128 cur = static_cast<uint128>(t[idx]) + carry;
      t[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  Limbs out(t.begin() + k_, t.begin() + 2 * k_);
  // The REDC result may exceed n by at most n (t[2k] overflow bit means
  // result + 2^(64k) — handled by one conditional subtraction since
  // result < 2n is guaranteed for inputs < n*R).
  if (t[2 * k_] != 0 || GreaterEqual(out, n_limbs_)) {
    SubInPlace(out, n_limbs_);
  }
  return out;
}

Montgomery::Limbs Montgomery::MontMul(const Limbs& a, const Limbs& b) const {
  // Full product then REDC. Schoolbook is optimal at Paillier limb counts.
  std::vector<uint64_t> t(2 * k_, 0);
  for (size_t i = 0; i < k_; ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    if (ai == 0) continue;
    for (size_t j = 0; j < k_; ++j) {
      uint128 cur = static_cast<uint128>(ai) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    t[i + k_] += carry;
  }
  return Redc(std::move(t));
}

Montgomery::Limbs Montgomery::MontSqrLimbs(const Limbs& a) const {
  // a^2 = 2 * sum_{i<j} a_i a_j B^{i+j} + sum_i a_i^2 B^{2i}: the cross
  // products are computed once and doubled, roughly halving the inner-loop
  // work of a generic MontMul.
  std::vector<uint64_t> t(2 * k_, 0);
  for (size_t i = 0; i + 1 < k_; ++i) {
    uint64_t ai = a[i];
    if (ai == 0) continue;
    uint64_t carry = 0;
    for (size_t j = i + 1; j < k_; ++j) {
      uint128 cur = static_cast<uint128>(ai) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t idx = i + k_;
    while (carry != 0) {
      uint128 cur = static_cast<uint128>(t[idx]) + carry;
      t[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  // Double the cross-product sum (cannot overflow 2k limbs: 2*cross <= a^2
  // < R^2).
  uint64_t carry_bit = 0;
  for (size_t i = 0; i < 2 * k_; ++i) {
    uint64_t hi = t[i] >> 63;
    t[i] = (t[i] << 1) | carry_bit;
    carry_bit = hi;
  }
  // Add the diagonal squares.
  uint64_t carry = 0;
  for (size_t i = 0; i < k_; ++i) {
    uint128 sq = static_cast<uint128>(a[i]) * a[i];
    uint128 lo = static_cast<uint128>(t[2 * i]) +
                 static_cast<uint64_t>(sq) + carry;
    t[2 * i] = static_cast<uint64_t>(lo);
    uint128 hi = static_cast<uint128>(t[2 * i + 1]) +
                 static_cast<uint64_t>(sq >> 64) +
                 static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = static_cast<uint64_t>(hi >> 64);
  }
  return Redc(std::move(t));
}

Montgomery::Limbs Montgomery::ToMont(const BigInt& x) const {
  ULDP_CHECK(!x.IsNegative());
  Limbs xl = x.limbs();
  ULDP_CHECK_LE(xl.size(), k_);
  xl.resize(k_, 0);
  return MontMul(xl, r2_);
}

BigInt Montgomery::FromMont(const Limbs& x) const {
  std::vector<uint64_t> t(x);
  t.resize(2 * k_, 0);
  Limbs reduced = Redc(std::move(t));
  return BigInt::FromLimbs(std::move(reduced));
}

BigInt Montgomery::ModMul(const BigInt& a, const BigInt& b) const {
  Limbs am = ToMont(a);
  Limbs bm = ToMont(b);
  return FromMont(MontMul(am, bm));
}

BigInt Montgomery::MontSqr(const BigInt& a) const {
  return FromMont(MontSqrLimbs(ToMont(a)));
}

BigInt Montgomery::ModExp(const BigInt& base, const BigInt& exp) const {
  return MontExp(base, exp);
}

BigInt Montgomery::MontExp(const BigInt& base, const BigInt& exp) const {
  ULDP_CHECK(!exp.IsNegative());
  if (exp.IsZero()) return FromMont(one_mont_);

  const int bits = exp.BitLength();
  const int w = WindowBits(bits);
  Limbs base_m = ToMont(base);
  // Odd-power table: odd[i] = base^(2i+1) in the Montgomery domain. A
  // sliding window only ever multiplies by odd powers, so the table is
  // half the size of a fixed-window table of the same width.
  std::vector<Limbs> odd(static_cast<size_t>(1) << (w - 1));
  odd[0] = base_m;
  if (odd.size() > 1) {
    Limbs sq = MontSqrLimbs(base_m);
    for (size_t i = 1; i < odd.size(); ++i) odd[i] = MontMul(odd[i - 1], sq);
  }

  Limbs acc;
  bool started = false;
  int i = bits - 1;
  while (i >= 0) {
    if (!exp.Bit(i)) {
      if (started) acc = MontSqrLimbs(acc);
      --i;
      continue;
    }
    // Greedy window [i, j]: at most w bits, both ends set, so the window
    // value is odd and indexes the half-size table.
    int j = i - w + 1 < 0 ? 0 : i - w + 1;
    while (!exp.Bit(j)) ++j;
    int window = 0;
    for (int b = i; b >= j; --b) window = (window << 1) | (exp.Bit(b) ? 1 : 0);
    if (started) {
      for (int s = 0; s <= i - j; ++s) acc = MontSqrLimbs(acc);
      acc = MontMul(acc, odd[window >> 1]);
    } else {
      acc = odd[window >> 1];
      started = true;
    }
    i = j - 1;
  }
  return FromMont(acc);
}

}  // namespace uldp
