// Fixed-base modular exponentiation: per-base precomputed tables over a
// cached Montgomery context, with two layouts behind one API.
//
//  - Radix (Brickell-Gordon-McCurley-Wilson): tables of
//      powers[i][j-1] = base^(j * 2^(w*i))   (j in [1, 2^w))
//    turn each exponentiation into at most ceil(bits/w) Montgomery
//    multiplies with no squarings, at the price of levels * (2^w - 1)
//    stored entries.
//  - Lim-Lee comb: the exponent's bit matrix (h teeth × a columns, the
//    columns split into v sub-blocks of b columns) is precomputed as
//      comb[k][u-1] = Π_{j : bit j of u} base^(2^(j*a + k*b)),
//    v * (2^h - 1) entries — typically several times smaller than the
//    radix table at the same per-use cost of b-1 squarings plus at most
//    v*b multiplies.
//
// A deterministic cost model picks the cheaper layout for the promised
// reuse count (kAuto); callers can force either. Outputs are bitwise
// identical to Montgomery::MontExp for every (base, exponent) under every
// strategy.

#ifndef ULDP_MATH_FIXED_BASE_H_
#define ULDP_MATH_FIXED_BASE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/bigint.h"
#include "math/montgomery.h"

namespace uldp {

/// Precomputed power table for one base under one Montgomery context. The
/// context must outlive the table. Immutable after construction, so one
/// table is safe to share across pool threads.
class FixedBaseTable {
 public:
  enum class Strategy {
    kAuto,   // cost model picks radix vs comb per (bits, expected_uses)
    kRadix,  // force the BGMW radix-2^w layout
    kComb,   // force the Lim-Lee comb layout
  };

  /// Builds the table for exponents of at most `max_exp_bits` bits.
  /// `base` must be non-negative with bit length at most the modulus's limb
  /// capacity (any value MontExp accepts). `expected_uses` sizes the
  /// window/teeth: small reuse counts get cheap builds, large ones fast
  /// per-use costs (capped so a table never exceeds a few MB).
  FixedBaseTable(const Montgomery& mont, const BigInt& base, int max_exp_bits,
                 size_t expected_uses = 256,
                 Strategy strategy = Strategy::kAuto);

  FixedBaseTable(FixedBaseTable&&) = default;
  FixedBaseTable& operator=(FixedBaseTable&&) = default;

  /// base^exp mod n, bitwise identical to mont.MontExp(base, exp).
  /// exp must be non-negative with at most max_exp_bits() bits.
  BigInt Exp(const BigInt& exp) const;

  int max_exp_bits() const { return max_bits_; }
  /// Radix window width w, or comb teeth count h — the knob the reuse
  /// hint steers in either layout.
  int window_bits() const { return w_; }
  /// The layout the cost model resolved to (never kAuto).
  Strategy kind() const { return kind_; }
  /// Stored table entries (modulus-sized each) — the memory footprint.
  size_t entries() const;
  const Montgomery& mont() const { return *mont_; }

 private:
  void BuildRadix(const BigInt& base);
  void BuildComb(const BigInt& base);
  BigInt ExpRadix(const BigInt& exp, int bits) const;
  BigInt ExpComb(const BigInt& exp, int bits) const;

  const Montgomery* mont_;
  int max_bits_;
  Strategy kind_;
  int w_;  // radix window width, or comb teeth h
  // Radix: powers_[i][j-1] = base^(j * 2^(w*i)) in the Montgomery domain;
  // the top level is trimmed to the digits its remaining bits can produce.
  std::vector<std::vector<std::vector<uint64_t>>> powers_;
  // Comb geometry: a_ columns of h teeth, v_used_ sub-blocks of b_ columns.
  int comb_a_ = 0;
  int comb_b_ = 0;
  int comb_v_ = 0;
  // comb_[k][u-1] = Π_{j: bit j of u} base^(2^(j*a + k*b)), Montgomery
  // domain.
  std::vector<std::vector<std::vector<uint64_t>>> comb_;
};

/// Free-function spelling of table.Exp(exponent).
BigInt FixedBaseExp(const FixedBaseTable& table, const BigInt& exponent);

}  // namespace uldp

#endif  // ULDP_MATH_FIXED_BASE_H_
