// Fixed-base modular exponentiation: per-base precomputed window tables
// over a cached Montgomery context (Brickell-Gordon-McCurley-Wilson radix
// 2^w pre-computation). When many exponentiations share one base — all
// `dim` MulPlaintext calls of the silo-weighting loop share Enc(B_inv(N_u)),
// every OT slot raises the group generator — a table of
//   powers[i][j-1] = base^(j * 2^(w*i))   (j in [1, 2^w))
// turns each exponentiation into at most ceil(bits/w) Montgomery multiplies
// with no squarings at all, versus ~bits squarings + bits/w multiplies for
// the sliding-window path. Outputs are bitwise identical to
// Montgomery::MontExp for every (base, exponent).

#ifndef ULDP_MATH_FIXED_BASE_H_
#define ULDP_MATH_FIXED_BASE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/bigint.h"
#include "math/montgomery.h"

namespace uldp {

/// Precomputed power table for one base under one Montgomery context. The
/// context must outlive the table. Immutable after construction, so one
/// table is safe to share across pool threads.
class FixedBaseTable {
 public:
  /// Builds the table for exponents of at most `max_exp_bits` bits.
  /// `base` must be non-negative with bit length at most the modulus's limb
  /// capacity (any value MontExp accepts). `expected_uses` sizes the window:
  /// the build costs ceil(bits/w) * (2^w - 1) multiplies, so small reuse
  /// counts get narrow windows and large ones wide windows (capped so a
  /// table never exceeds a few MB).
  FixedBaseTable(const Montgomery& mont, const BigInt& base, int max_exp_bits,
                 size_t expected_uses = 256);

  FixedBaseTable(FixedBaseTable&&) = default;
  FixedBaseTable& operator=(FixedBaseTable&&) = default;

  /// base^exp mod n, bitwise identical to mont.MontExp(base, exp).
  /// exp must be non-negative with at most max_exp_bits() bits.
  BigInt Exp(const BigInt& exp) const;

  int max_exp_bits() const { return max_bits_; }
  int window_bits() const { return w_; }
  const Montgomery& mont() const { return *mont_; }

 private:
  const Montgomery* mont_;
  int max_bits_;
  int w_;
  // powers_[i][j-1] = base^(j * 2^(w*i)) in the Montgomery domain; the top
  // level is trimmed to the digits its remaining bits can produce.
  std::vector<std::vector<std::vector<uint64_t>>> powers_;
};

/// Free-function spelling of table.Exp(exponent).
BigInt FixedBaseExp(const FixedBaseTable& table, const BigInt& exponent);

}  // namespace uldp

#endif  // ULDP_MATH_FIXED_BASE_H_
