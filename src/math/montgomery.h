// Montgomery modular arithmetic context for odd moduli. Precomputes the
// REDC constants once so repeated ModMul / ModExp (the hot path of Paillier
// and Diffie-Hellman) avoid per-operation division.

#ifndef ULDP_MATH_MONTGOMERY_H_
#define ULDP_MATH_MONTGOMERY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uldp {

class BigInt;

/// Fixed-modulus Montgomery multiplier. The modulus must be odd and > 1.
/// Values are handled in the ordinary (non-Montgomery) domain at the API
/// boundary; conversion happens internally.
class Montgomery {
 public:
  explicit Montgomery(const BigInt& modulus);

  /// (a * b) mod n, a and b already reduced into [0, n).
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  /// (a * a) mod n through the dedicated squaring path (cross products
  /// computed once and doubled), ~1.5x faster than a generic ModMul.
  BigInt MontSqr(const BigInt& a) const;

  /// base^exp mod n, base in [0, n), exp >= 0. Sliding window over
  /// precomputed odd powers, squarings through the dedicated path. This is
  /// the context-reuse entry point the Paillier/DH fast paths call with a
  /// long-lived context; ModExp forwards here.
  BigInt MontExp(const BigInt& base, const BigInt& exp) const;

  /// Alias for MontExp (kept for existing call sites).
  BigInt ModExp(const BigInt& base, const BigInt& exp) const;

  const BigInt& modulus() const;

 private:
  // FixedBaseTable builds per-base power tables directly in the Montgomery
  // domain (math/fixed_base.h), and MultiExp runs its bucket accumulation
  // there (math/multi_exp.h), so both share the private limb-level ops.
  friend class FixedBaseTable;
  friend class MultiExp;

  // All internal vectors have exactly k_ limbs (little endian).
  using Limbs = std::vector<uint64_t>;

  Limbs ToMont(const BigInt& x) const;
  BigInt FromMont(const Limbs& x) const;
  /// Montgomery product of two k-limb values (in Montgomery domain).
  Limbs MontMul(const Limbs& a, const Limbs& b) const;
  /// Montgomery square of a k-limb value (in Montgomery domain).
  Limbs MontSqrLimbs(const Limbs& a) const;
  /// REDC of a 2k-limb value t: returns t * R^{-1} mod n as k limbs.
  Limbs Redc(std::vector<uint64_t> t) const;

  std::vector<uint64_t> n_limbs_;
  size_t k_ = 0;
  uint64_t n_prime_ = 0;  // -n^{-1} mod 2^64
  Limbs r2_;              // R^2 mod n
  Limbs one_mont_;        // R mod n (Montgomery representation of 1)
  // Keep a BigInt copy for modulus() and FromMont reduction checks.
  std::vector<uint64_t> modulus_copy_;
};

}  // namespace uldp

#endif  // ULDP_MATH_MONTGOMERY_H_
