#include "math/fixed_base.h"

#include "common/check.h"

namespace uldp {

namespace {

// Memory guard: at most this many table entries regardless of how much
// reuse is promised (8192 entries of a 2048-bit modulus ≈ 2 MB).
constexpr size_t kMaxTableEntries = 8192;

// Window width minimizing build + expected per-use multiplies:
//   build      = ceil(bits/w) * (2^w - 1)            multiplies
//   per use    = ceil(bits/w) * (1 - 2^-w)           expected multiplies
// subject to the entry cap. Deterministic (pure integer/dyadic math).
int PickWindow(int exp_bits, size_t expected_uses) {
  int best_w = 1;
  double best_cost = -1.0;
  for (int w = 1; w <= 8; ++w) {
    size_t levels = (static_cast<size_t>(exp_bits) + w - 1) / w;
    size_t entries = levels * ((static_cast<size_t>(1) << w) - 1);
    if (w > 1 && entries > kMaxTableEntries) break;
    double per_use = static_cast<double>(levels) *
                     (1.0 - 1.0 / static_cast<double>(1ull << w));
    double cost = static_cast<double>(entries) +
                  static_cast<double>(expected_uses) * per_use;
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return best_w;
}

}  // namespace

FixedBaseTable::FixedBaseTable(const Montgomery& mont, const BigInt& base,
                               int max_exp_bits, size_t expected_uses)
    : mont_(&mont),
      max_bits_(max_exp_bits),
      w_(PickWindow(max_exp_bits, expected_uses)) {
  ULDP_CHECK_GE(max_bits_, 1);
  const size_t levels = (static_cast<size_t>(max_bits_) + w_ - 1) / w_;
  powers_.resize(levels);
  // level_base = base^(2^(w*i)) in the Montgomery domain. Each level stores
  // its first 2^w - 1 multiples; the next level's base is one further
  // multiply (powers[i].back() * level_base = level_base^(2^w)), so the
  // whole build is pure MontMuls — no squarings.
  std::vector<uint64_t> level_base = mont_->ToMont(base);
  for (size_t i = 0; i < levels; ++i) {
    const int level_bits =
        static_cast<int>(i) == static_cast<int>(levels) - 1
            ? max_bits_ - static_cast<int>(i) * w_
            : w_;
    const size_t count = ((static_cast<size_t>(1) << level_bits)) - 1;
    powers_[i].reserve(count);
    powers_[i].push_back(level_base);
    for (size_t j = 1; j < count; ++j) {
      powers_[i].push_back(mont_->MontMul(powers_[i][j - 1], level_base));
    }
    if (i + 1 < levels) {
      // Full-width levels always store 2^w - 1 entries, so the step to the
      // next level base is a single multiply.
      level_base = mont_->MontMul(powers_[i].back(), level_base);
    }
  }
}

BigInt FixedBaseTable::Exp(const BigInt& exp) const {
  ULDP_CHECK_MSG(!exp.IsNegative(), "fixed-base exponent must be >= 0");
  const int bits = exp.BitLength();
  ULDP_CHECK_LE(bits, max_bits_);
  std::vector<uint64_t> acc;
  bool started = false;
  const int levels = (bits + w_ - 1) / w_;
  for (int i = 0; i < levels; ++i) {
    uint32_t digit = 0;
    for (int b = w_ - 1; b >= 0; --b) {
      const int idx = i * w_ + b;
      digit = (digit << 1) | (idx < bits && exp.Bit(idx) ? 1u : 0u);
    }
    if (digit == 0) continue;
    const auto& entry = powers_[i][digit - 1];
    if (started) {
      acc = mont_->MontMul(acc, entry);
    } else {
      acc = entry;
      started = true;
    }
  }
  if (!started) return mont_->FromMont(mont_->one_mont_);  // exp == 0
  return mont_->FromMont(acc);
}

BigInt FixedBaseExp(const FixedBaseTable& table, const BigInt& exponent) {
  return table.Exp(exponent);
}

}  // namespace uldp
