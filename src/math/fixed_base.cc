#include "math/fixed_base.h"

#include <algorithm>

#include "common/check.h"

namespace uldp {

namespace {

// Memory guard: at most this many table entries regardless of how much
// reuse is promised (8192 entries of a 2048-bit modulus ≈ 2 MB).
constexpr size_t kMaxTableEntries = 8192;

// A Montgomery squaring through the dedicated path costs roughly this
// fraction of a generic multiply; the cost models below use it to compare
// the squaring-free radix layout against the comb.
constexpr double kSqrWeight = 0.67;

struct Plan {
  FixedBaseTable::Strategy kind = FixedBaseTable::Strategy::kRadix;
  int w = 1;       // radix window width, or comb teeth h
  int comb_b = 0;  // comb columns per sub-block
  double cost = -1.0;
};

// Radix cost:
//   build    = levels * (2^w - 1)            multiplies (no squarings)
//   per use  = levels * (1 - 2^-w)           expected multiplies
void ConsiderRadix(int exp_bits, size_t expected_uses, Plan* best) {
  for (int w = 1; w <= 8; ++w) {
    const size_t levels = (static_cast<size_t>(exp_bits) + w - 1) / w;
    const size_t entries = levels * ((static_cast<size_t>(1) << w) - 1);
    if (w > 1 && entries > kMaxTableEntries) break;
    const double per_use = static_cast<double>(levels) *
                           (1.0 - 1.0 / static_cast<double>(1ull << w));
    const double cost = static_cast<double>(entries) +
                        static_cast<double>(expected_uses) * per_use;
    if (best->cost < 0.0 || cost < best->cost) {
      best->kind = FixedBaseTable::Strategy::kRadix;
      best->w = w;
      best->comb_b = 0;
      best->cost = cost;
    }
  }
}

// Comb cost with teeth h and sub-block width b (a = ceil(bits/h) columns,
// v = ceil(a/b) sub-blocks):
//   build    = chain squarings + v * (2^h - 1 - h) multiplies
//   per use  = (b - 1) squarings + a * (1 - 2^-h) expected multiplies
// v is capped at 4: beyond that each doubling trades a large table-size
// increase for a shrinking per-use saving, and small tables at radix-level
// speed are the point of the comb layout.
void ConsiderComb(int exp_bits, size_t expected_uses, Plan* best) {
  const int max_h = std::min(8, std::max(1, exp_bits));
  for (int h = 1; h <= max_h; ++h) {
    const int a = (exp_bits + h - 1) / h;
    for (int v = 1; v <= 4; v *= 2) {
      const int b = (a + v - 1) / v;
      const int v_used = (a + b - 1) / b;
      const size_t entries = static_cast<size_t>(v_used) *
                             ((static_cast<size_t>(1) << h) - 1);
      if (entries > kMaxTableEntries && !(h == 1 && v == 1)) continue;
      const double chain =
          static_cast<double>((h - 1) * a + (v_used - 1) * b);
      const double build =
          kSqrWeight * chain +
          static_cast<double>(v_used) *
              (static_cast<double>(1ull << h) - 1.0 - h);
      const double per_use =
          kSqrWeight * (b - 1) +
          static_cast<double>(a) *
              (1.0 - 1.0 / static_cast<double>(1ull << h));
      const double cost = build + static_cast<double>(expected_uses) * per_use;
      if (best->cost < 0.0 || cost < best->cost) {
        best->kind = FixedBaseTable::Strategy::kComb;
        best->w = h;
        best->comb_b = b;
        best->cost = cost;
      }
      if (b == 1) break;  // narrower sub-blocks are impossible
    }
  }
}

Plan PickPlan(int exp_bits, size_t expected_uses,
              FixedBaseTable::Strategy strategy) {
  Plan best;
  if (strategy != FixedBaseTable::Strategy::kComb) {
    ConsiderRadix(exp_bits, expected_uses, &best);
  }
  if (strategy != FixedBaseTable::Strategy::kRadix) {
    ConsiderComb(exp_bits, expected_uses, &best);
  }
  return best;
}

}  // namespace

FixedBaseTable::FixedBaseTable(const Montgomery& mont, const BigInt& base,
                               int max_exp_bits, size_t expected_uses,
                               Strategy strategy)
    : mont_(&mont), max_bits_(max_exp_bits) {
  ULDP_CHECK_GE(max_bits_, 1);
  const Plan plan = PickPlan(max_bits_, expected_uses, strategy);
  kind_ = plan.kind;
  w_ = plan.w;
  comb_b_ = plan.comb_b;
  if (kind_ == Strategy::kComb) {
    BuildComb(base);
  } else {
    BuildRadix(base);
  }
}

void FixedBaseTable::BuildRadix(const BigInt& base) {
  const size_t levels = (static_cast<size_t>(max_bits_) + w_ - 1) / w_;
  powers_.resize(levels);
  // level_base = base^(2^(w*i)) in the Montgomery domain. Each level stores
  // its first 2^w - 1 multiples; the next level's base is one further
  // multiply (powers[i].back() * level_base = level_base^(2^w)), so the
  // whole build is pure MontMuls — no squarings.
  std::vector<uint64_t> level_base = mont_->ToMont(base);
  for (size_t i = 0; i < levels; ++i) {
    const int level_bits =
        static_cast<int>(i) == static_cast<int>(levels) - 1
            ? max_bits_ - static_cast<int>(i) * w_
            : w_;
    const size_t count = ((static_cast<size_t>(1) << level_bits)) - 1;
    powers_[i].reserve(count);
    powers_[i].push_back(level_base);
    for (size_t j = 1; j < count; ++j) {
      powers_[i].push_back(mont_->MontMul(powers_[i][j - 1], level_base));
    }
    if (i + 1 < levels) {
      // Full-width levels always store 2^w - 1 entries, so the step to the
      // next level base is a single multiply.
      level_base = mont_->MontMul(powers_[i].back(), level_base);
    }
  }
}

void FixedBaseTable::BuildComb(const BigInt& base) {
  const int h = w_;
  comb_a_ = (max_bits_ + h - 1) / h;
  comb_v_ = (comb_a_ + comb_b_ - 1) / comb_b_;
  // Tooth/sub-block anchors base^(2^(j*a + k*b)) fall on one increasing
  // squaring chain from the base (for fixed j the k-targets stay below
  // (j+1)*a because (v-1)*b < a), so one pass captures them all.
  std::vector<std::vector<std::vector<uint64_t>>> anchor(
      h, std::vector<std::vector<uint64_t>>(comb_v_));
  std::vector<uint64_t> cur = mont_->ToMont(base);
  int pos = 0;
  for (int j = 0; j < h; ++j) {
    for (int k = 0; k < comb_v_; ++k) {
      const int target = j * comb_a_ + k * comb_b_;
      while (pos < target) {
        cur = mont_->MontSqrLimbs(cur);
        ++pos;
      }
      anchor[j][k] = cur;
    }
  }
  // comb_[k][u-1] for u in [1, 2^h): powers of two copy their anchor, every
  // other u is one multiply of its lowest set bit against the rest.
  const size_t table = (static_cast<size_t>(1) << h) - 1;
  comb_.assign(comb_v_, std::vector<std::vector<uint64_t>>(table));
  for (int k = 0; k < comb_v_; ++k) {
    for (size_t u = 1; u <= table; ++u) {
      const size_t low = u & (~u + 1);  // lowest set bit
      if (u == low) {
        int j = 0;
        while ((static_cast<size_t>(1) << j) != u) ++j;
        comb_[k][u - 1] = anchor[j][k];
      } else {
        comb_[k][u - 1] =
            mont_->MontMul(comb_[k][u - low - 1], comb_[k][low - 1]);
      }
    }
  }
}

BigInt FixedBaseTable::Exp(const BigInt& exp) const {
  ULDP_CHECK_MSG(!exp.IsNegative(), "fixed-base exponent must be >= 0");
  const int bits = exp.BitLength();
  ULDP_CHECK_LE(bits, max_bits_);
  if (kind_ == Strategy::kComb) return ExpComb(exp, bits);
  return ExpRadix(exp, bits);
}

BigInt FixedBaseTable::ExpRadix(const BigInt& exp, int bits) const {
  std::vector<uint64_t> acc;
  bool started = false;
  const int levels = (bits + w_ - 1) / w_;
  for (int i = 0; i < levels; ++i) {
    uint32_t digit = 0;
    for (int b = w_ - 1; b >= 0; --b) {
      const int idx = i * w_ + b;
      digit = (digit << 1) | (idx < bits && exp.Bit(idx) ? 1u : 0u);
    }
    if (digit == 0) continue;
    const auto& entry = powers_[i][digit - 1];
    if (started) {
      acc = mont_->MontMul(acc, entry);
    } else {
      acc = entry;
      started = true;
    }
  }
  if (!started) return mont_->FromMont(mont_->one_mont_);  // exp == 0
  return mont_->FromMont(acc);
}

BigInt FixedBaseTable::ExpComb(const BigInt& exp, int bits) const {
  const int h = w_;
  std::vector<uint64_t> acc;
  bool started = false;
  // Columns share significance 2^t within their sub-block: square once per
  // column step (MSB-first), then multiply in every sub-block's comb word.
  for (int t = comb_b_ - 1; t >= 0; --t) {
    if (started) acc = mont_->MontSqrLimbs(acc);
    for (int k = 0; k < comb_v_; ++k) {
      const int col = k * comb_b_ + t;
      if (col >= comb_a_) continue;
      uint32_t word = 0;
      for (int j = h - 1; j >= 0; --j) {
        const int idx = j * comb_a_ + col;
        word = (word << 1) | (idx < bits && exp.Bit(idx) ? 1u : 0u);
      }
      if (word == 0) continue;
      const auto& entry = comb_[k][word - 1];
      if (started) {
        acc = mont_->MontMul(acc, entry);
      } else {
        acc = entry;
        started = true;
      }
    }
  }
  if (!started) return mont_->FromMont(mont_->one_mont_);  // exp == 0
  return mont_->FromMont(acc);
}

size_t FixedBaseTable::entries() const {
  size_t total = 0;
  for (const auto& level : powers_) total += level.size();
  for (const auto& block : comb_) total += block.size();
  return total;
}

BigInt FixedBaseExp(const FixedBaseTable& table, const BigInt& exponent) {
  return table.Exp(exponent);
}

}  // namespace uldp
