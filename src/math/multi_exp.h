// Simultaneous multi-exponentiation: Π_i bases[i]^exps[i] mod n over a
// cached Montgomery context, via windowed Pippenger bucket accumulation.
//
// The per-ciphertext loop the silo weighting phase runs —
//   for each user u: acc = acc * MontExp(enc_weight_u, scalar_u) mod n²
// — pays ~|n²| squarings per user. Pippenger shares one squaring chain
// across the whole batch: exponents are cut into w-bit windows processed
// MSB-first; within a window each base is multiplied into the bucket of
// its digit, and the buckets fold with 2·(2^w − 1) multiplies. Total cost
// is ~bits squarings + windows·(batch + 2^(w+1)) multiplies instead of
// ~batch·bits squarings, a large win once the batch outgrows the window.
//
// Because modular arithmetic is exact and results are canonical in [0, n),
// Product() is bitwise identical to the sequential MontExp fold for every
// input — the protocol's determinism contract holds under the fast path.

#ifndef ULDP_MATH_MULTI_EXP_H_
#define ULDP_MATH_MULTI_EXP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/bigint.h"
#include "math/montgomery.h"

namespace uldp {

/// Multi-exponentiation over a fixed batch of bases. Conversion of the
/// bases into the Montgomery domain happens once at construction, so one
/// instance amortizes across many Product() calls (one per packed
/// coordinate group in the weighting fold). The context must outlive the
/// instance. Immutable after construction — safe to share across threads.
class MultiExp {
 public:
  /// `bases` must be non-negative and reduced into [0, n).
  MultiExp(const Montgomery& mont, const std::vector<BigInt>& bases);

  MultiExp(MultiExp&&) = default;
  MultiExp& operator=(MultiExp&&) = default;

  /// Π_i bases[i]^exps[i] mod n, bitwise identical to folding
  /// mont.MontExp(bases[i], exps[i]) with ModMul. Requires
  /// exps.size() == size() and every exponent >= 0. An empty batch (or
  /// all-zero exponents) yields 1 mod n.
  BigInt Product(const std::vector<BigInt>& exps) const;

  size_t size() const { return bases_mont_.size(); }
  const Montgomery& mont() const { return *mont_; }

 private:
  const Montgomery* mont_;
  // Montgomery-domain copies of the bases, k-limb little endian.
  std::vector<std::vector<uint64_t>> bases_mont_;
};

}  // namespace uldp

#endif  // ULDP_MATH_MULTI_EXP_H_
