#include "math/bigint.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/montgomery.h"

namespace uldp {

namespace {

using uint128 = unsigned __int128;

// Karatsuba pays off only for operands well beyond Paillier's 2n-limb sizes;
// the threshold is in limbs of the smaller operand.
constexpr size_t kKaratsubaThreshold = 24;

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned domain.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  limbs_.push_back(mag);
}

BigInt::BigInt(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromLimbs(std::vector<uint64_t> limbs, bool negative) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.negative_ = negative;
  out.Normalize();
  return out;
}

std::vector<uint8_t> BigInt::ToBytesLE(size_t len) const {
  ULDP_CHECK_MSG(!negative_, "ToBytesLE requires a non-negative value");
  // Bound on the *significant* bytes, not the limb count: a value whose
  // top limb has high zero bytes (or, for callers constructing unnormalized
  // limb vectors, trailing zero limbs) still fits.
  ULDP_CHECK_LE(static_cast<size_t>((BitLength() + 7) / 8), len);
  std::vector<uint8_t> out(len, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      size_t pos = i * 8 + b;
      if (pos >= len) break;  // only zero padding bytes remain
      out[pos] = static_cast<uint8_t>(limbs_[i] >> (8 * b));
    }
  }
  return out;
}

BigInt BigInt::FromBytesLE(const std::vector<uint8_t>& bytes) {
  std::vector<uint64_t> limbs((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    limbs[i / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  return FromLimbs(std::move(limbs));
}

Result<BigInt> BigInt::FromDecimal(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return Status::InvalidArgument("sign without digits");
  BigInt out;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::InvalidArgument("invalid decimal digit in: " + s);
    }
    out = out * BigInt(static_cast<uint64_t>(10));
    out = out + BigInt(static_cast<uint64_t>(s[i] - '0'));
  }
  out.negative_ = neg && !out.IsZero();
  return out;
}

Result<BigInt> BigInt::FromHex(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return Status::InvalidArgument("sign without digits");
  BigInt out;
  for (; i < s.size(); ++i) {
    char c = s[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("invalid hex digit in: " + s);
    }
    out = (out << 4) + BigInt(static_cast<uint64_t>(digit));
  }
  out.negative_ = neg && !out.IsZero();
  return out;
}

BigInt BigInt::RandomBits(int bits, Rng& rng) {
  ULDP_CHECK_GE(bits, 1);
  size_t nlimbs = (bits + 63) / 64;
  std::vector<uint64_t> limbs(nlimbs);
  for (auto& l : limbs) l = rng.NextUint64();
  int top_bits = bits - static_cast<int>(nlimbs - 1) * 64;  // in [1, 64]
  if (top_bits < 64) limbs.back() &= (uint64_t{1} << top_bits) - 1;
  limbs.back() |= uint64_t{1} << (top_bits - 1);  // force exact bit length
  return FromLimbs(std::move(limbs));
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng& rng) {
  ULDP_CHECK(!bound.IsZero() && !bound.IsNegative());
  int bits = bound.BitLength();
  size_t nlimbs = (bits + 63) / 64;
  int top_bits = bits - static_cast<int>(nlimbs - 1) * 64;
  uint64_t top_mask =
      top_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << top_bits) - 1;
  // Rejection sampling: mask to the bound's bit length, retry if >= bound.
  // Expected < 2 iterations.
  for (;;) {
    std::vector<uint64_t> limbs(nlimbs);
    for (auto& l : limbs) l = rng.NextUint64();
    limbs.back() &= top_mask;
    BigInt candidate = FromLimbs(std::move(limbs));
    if (candidate < bound) return candidate;
  }
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * 64;
  uint64_t top = limbs_.back();
  bits += 64 - __builtin_clzll(top);
  return bits;
}

bool BigInt::Bit(int i) const {
  ULDP_CHECK_GE(i, 0);
  size_t limb = static_cast<size_t>(i) / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

Result<int64_t> BigInt::ToInt64() const {
  if (limbs_.size() > 1) return Status::OutOfRange("does not fit in int64");
  uint64_t mag = LowUint64();
  if (negative_) {
    if (mag > uint64_t{1} << 63) return Status::OutOfRange("below INT64_MIN");
    return static_cast<int64_t>(~mag + 1);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX)) {
    return Status::OutOfRange("above INT64_MAX");
  }
  return static_cast<int64_t>(mag);
}

double BigInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  // Repeated division by 10^19 (largest power of ten in a limb).
  constexpr uint64_t kChunk = 10000000000000000000ull;
  BigInt cur = Abs();
  std::string out;
  while (!cur.IsZero()) {
    BigInt q, r;
    DivModMagnitude(cur, BigInt(kChunk), &q, &r);
    uint64_t digits = r.LowUint64();
    cur = q;
    for (int i = 0; i < 19; ++i) {
      out.push_back(static_cast<char>('0' + digits % 10));
      digits /= 10;
      if (cur.IsZero() && digits == 0) break;
    }
  }
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t limb = limbs_[i];
    for (int nib = 0; nib < 16; ++nib) {
      out.push_back(kDigits[limb & 0xf]);
      limb >>= 4;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(*this, other);
  return negative_ ? -mag : mag;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b) {
  const auto& x = a.limbs_.size() >= b.limbs_.size() ? a.limbs_ : b.limbs_;
  const auto& y = a.limbs_.size() >= b.limbs_.size() ? b.limbs_ : a.limbs_;
  std::vector<uint64_t> out(x.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    uint128 sum = static_cast<uint128>(x[i]) + (i < y.size() ? y[i] : 0) + carry;
    out[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out[x.size()] = carry;
  return FromLimbs(std::move(out));
}

BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b) {
  ULDP_CHECK_GE(CompareMagnitude(a, b), 0);
  std::vector<uint64_t> out(a.limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    uint128 diff = static_cast<uint128>(a.limbs_[i]) - bi - borrow;
    out[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;  // underflow wraps the high part
  }
  return FromLimbs(std::move(out));
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (negative_ == o.negative_) {
    BigInt out = AddMagnitude(*this, o);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  int cmp = CompareMagnitude(*this, o);
  if (cmp == 0) return BigInt();
  if (cmp > 0) {
    BigInt out = SubMagnitude(*this, o);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  BigInt out = SubMagnitude(o, *this);
  out.negative_ = o.negative_ && !out.IsZero();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::MulSchoolbook(const BigInt& a, const BigInt& b) {
  std::vector<uint64_t> out(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint128 cur = static_cast<uint128>(ai) * b.limbs_[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + b.limbs_.size()] += carry;
  }
  return FromLimbs(std::move(out));
}

BigInt BigInt::MulKaratsuba(const BigInt& a, const BigInt& b) {
  size_t half = std::max(a.limbs_.size(), b.limbs_.size()) / 2;
  auto split = [half](const BigInt& v) {
    BigInt lo, hi;
    if (v.limbs_.size() <= half) {
      lo = v;
    } else {
      lo.limbs_.assign(v.limbs_.begin(), v.limbs_.begin() + half);
      hi.limbs_.assign(v.limbs_.begin() + half, v.limbs_.end());
      lo.Normalize();
      hi.Normalize();
    }
    return std::pair<BigInt, BigInt>(std::move(lo), std::move(hi));
  };
  auto [a_lo, a_hi] = split(a);
  auto [b_lo, b_hi] = split(b);
  BigInt z0 = MulMagnitude(a_lo, b_lo);
  BigInt z2 = MulMagnitude(a_hi, b_hi);
  BigInt z1 = MulMagnitude(AddMagnitude(a_lo, a_hi), AddMagnitude(b_lo, b_hi));
  z1 = SubMagnitude(z1, AddMagnitude(z0, z2));
  int shift = static_cast<int>(half) * 64;
  return AddMagnitude(AddMagnitude(z0, z1 << shift), z2 << (2 * shift));
}

BigInt BigInt::MulMagnitude(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  if (std::min(a.limbs_.size(), b.limbs_.size()) < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  return MulKaratsuba(a, b);
}

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out = MulMagnitude(*this, o);
  out.negative_ = (negative_ != o.negative_) && !out.IsZero();
  return out;
}

BigInt BigInt::operator<<(int bits) const {
  ULDP_CHECK_GE(bits, 0);
  if (IsZero() || bits == 0) return *this;
  size_t limb_shift = static_cast<size_t>(bits) / 64;
  int bit_shift = bits % 64;
  std::vector<uint64_t> out(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  return FromLimbs(std::move(out), negative_);
}

BigInt BigInt::operator>>(int bits) const {
  ULDP_CHECK_GE(bits, 0);
  if (IsZero() || bits == 0) return *this;
  size_t limb_shift = static_cast<size_t>(bits) / 64;
  int bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  std::vector<uint64_t> out(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  return FromLimbs(std::move(out), negative_);
}

// Knuth TAOCP vol. 2, algorithm 4.3.1 D, on 64-bit limbs.
void BigInt::DivModMagnitude(const BigInt& u_in, const BigInt& v_in, BigInt* q,
                             BigInt* r) {
  ULDP_CHECK(!v_in.IsZero());
  if (CompareMagnitude(u_in, v_in) < 0) {
    *q = BigInt();
    *r = u_in.Abs();
    return;
  }
  if (v_in.limbs_.size() == 1) {
    // Short division.
    uint64_t divisor = v_in.limbs_[0];
    std::vector<uint64_t> quot(u_in.limbs_.size(), 0);
    uint128 rem = 0;
    for (size_t i = u_in.limbs_.size(); i-- > 0;) {
      uint128 cur = (rem << 64) | u_in.limbs_[i];
      quot[i] = static_cast<uint64_t>(cur / divisor);
      rem = cur % divisor;
    }
    *q = FromLimbs(std::move(quot));
    *r = BigInt(static_cast<uint64_t>(rem));
    return;
  }

  // Normalize: shift so the divisor's top limb has its high bit set.
  int shift = __builtin_clzll(v_in.limbs_.back());
  BigInt u = u_in.Abs() << shift;
  BigInt v = v_in.Abs() << shift;
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  std::vector<uint64_t> un(u.limbs_);
  un.push_back(0);  // u_{m+n} slot
  const std::vector<uint64_t>& vn = v.limbs_;
  std::vector<uint64_t> quot(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate quotient digit from the top two limbs of the current window.
    uint128 numerator = (static_cast<uint128>(un[j + n]) << 64) | un[j + n - 1];
    uint128 qhat = numerator / vn[n - 1];
    uint128 rhat = numerator % vn[n - 1];
    while (qhat >> 64 ||
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >> 64) break;
    }
    // Multiply-subtract qhat * v from the window u[j .. j+n].
    uint128 borrow = 0;
    uint128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 p = qhat * vn[i] + carry;
      carry = p >> 64;
      uint128 sub = static_cast<uint128>(un[i + j]) -
                    static_cast<uint64_t>(p) - borrow;
      un[i + j] = static_cast<uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    uint128 sub = static_cast<uint128>(un[j + n]) -
                  static_cast<uint64_t>(carry) - borrow;
    un[j + n] = static_cast<uint64_t>(sub);
    bool went_negative = (sub >> 64) != 0;

    if (went_negative) {
      // qhat was one too large: add v back once.
      --qhat;
      uint128 c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint128 s = static_cast<uint128>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<uint64_t>(s);
        c = s >> 64;
      }
      un[j + n] = static_cast<uint64_t>(un[j + n] + c);
    }
    quot[j] = static_cast<uint64_t>(qhat);
  }

  *q = FromLimbs(std::move(quot));
  un.resize(n);
  *r = FromLimbs(std::move(un)) >> shift;
}

Status BigInt::DivRem(const BigInt& divisor, BigInt* quotient,
                      BigInt* remainder) const {
  if (divisor.IsZero()) return Status::InvalidArgument("division by zero");
  BigInt q, r;
  DivModMagnitude(*this, divisor, &q, &r);
  // Truncated-division sign rules.
  q.negative_ = (negative_ != divisor.negative_) && !q.IsZero();
  r.negative_ = negative_ && !r.IsZero();
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
  return Status::Ok();
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q;
  Status st = DivRem(o, &q, nullptr);
  ULDP_CHECK_MSG(st.ok(), st.ToString());
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt r;
  Status st = DivRem(o, nullptr, &r);
  ULDP_CHECK_MSG(st.ok(), st.ToString());
  return r;
}

BigInt BigInt::Mod(const BigInt& m) const {
  ULDP_CHECK(!m.IsZero() && !m.IsNegative());
  BigInt r = *this % m;
  if (r.IsNegative()) r = r + m;
  return r;
}

BigInt BigInt::ModAdd(const BigInt& o, const BigInt& m) const {
  BigInt s = *this + o;
  if (s >= m) s = s - m;
  return s;
}

BigInt BigInt::ModSub(const BigInt& o, const BigInt& m) const {
  BigInt s = *this - o;
  if (s.IsNegative()) s = s + m;
  return s;
}

BigInt BigInt::ModMul(const BigInt& o, const BigInt& m) const {
  return (*this * o).Mod(m);
}

BigInt BigInt::ModExp(const BigInt& exponent, const BigInt& m) const {
  ULDP_CHECK(!m.IsZero() && !m.IsNegative());
  ULDP_CHECK(!exponent.IsNegative());
  if (m == BigInt(1)) return BigInt();
  if (m.IsOdd()) {
    Montgomery ctx(m);
    return ctx.ModExp(this->Mod(m), exponent);
  }
  // Generic square-and-multiply for even moduli (rare in this codebase).
  BigInt base = Mod(m);
  BigInt result(1);
  int bits = exponent.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = result.ModMul(result, m);
    if (exponent.Bit(i)) result = result.ModMul(base, m);
  }
  return result;
}

void BigInt::EGcd(const BigInt& a, const BigInt& b, BigInt* g, BigInt* x,
                  BigInt* y) {
  // Iterative extended Euclid on signed values.
  BigInt old_r = a, r = b;
  BigInt old_s(1), s(0);
  BigInt old_t(0), t(1);
  while (!r.IsZero()) {
    BigInt q = old_r / r;
    BigInt tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  if (old_r.IsNegative()) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  if (g != nullptr) *g = std::move(old_r);
  if (x != nullptr) *x = std::move(old_s);
  if (y != nullptr) *y = std::move(old_t);
}

Result<BigInt> BigInt::ModInverse(const BigInt& m) const {
  if (m.IsZero() || m.IsNegative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  BigInt g, x;
  EGcd(this->Mod(m), m, &g, &x, nullptr);
  if (g != BigInt(1)) {
    return Status::InvalidArgument("not invertible: gcd != 1");
  }
  return x.Mod(m);
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs(), y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

BigInt LcmUpTo(uint64_t n) {
  // lcm(1..n) = prod over primes p <= n of p^floor(log_p n).
  // Sieve of Eratosthenes over [2, n].
  BigInt out(1);
  if (n < 2) return out;
  std::vector<bool> composite(n + 1, false);
  for (uint64_t p = 2; p <= n; ++p) {
    if (composite[p]) continue;
    for (uint64_t q = p * p; q <= n; q += p) composite[q] = true;
    uint64_t pk = p;
    while (pk <= n / p) pk *= p;  // largest power of p that is <= n
    out = out * BigInt(pk);
  }
  return out;
}

}  // namespace uldp
