// Probabilistic primality testing and random prime generation, used by
// Paillier key generation and the Diffie-Hellman substrate.

#ifndef ULDP_MATH_PRIMES_H_
#define ULDP_MATH_PRIMES_H_

#include <cstdint>

#include "common/rng.h"
#include "math/bigint.h"

namespace uldp {

/// Miller-Rabin primality test with `rounds` random bases (error probability
/// <= 4^-rounds). Values < 2^64 use a deterministic base set and are exact.
bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds = 32);

/// Generates a random prime with exactly `bits` bits. bits >= 8.
/// Trial-division by small primes precedes Miller-Rabin.
BigInt GeneratePrime(int bits, Rng& rng, int mr_rounds = 32);

/// Generates a safe prime p = 2q + 1 with q prime, `bits` bits. Used for the
/// Diffie-Hellman group when a custom (non-RFC) group is requested. Safe
/// prime search is slow for large sizes; intended for test-scale parameters.
BigInt GenerateSafePrime(int bits, Rng& rng, int mr_rounds = 16);

}  // namespace uldp

#endif  // ULDP_MATH_PRIMES_H_
