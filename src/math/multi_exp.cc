#include "math/multi_exp.h"

#include <algorithm>

#include "common/check.h"

namespace uldp {

namespace {

// Bucket arrays above this width stop paying for themselves and start
// costing memory (2^w k-limb slots); the cost model below never wants
// more anyway for realistic batch sizes.
constexpr int kMaxWindow = 10;

// Window width minimizing the modeled cost of one Product() call:
//   windows · (0.67·w squarings + batch bucket inserts + 2·(2^w − 1) fold)
// with squarings weighted at ~0.67 of a generic multiply (the dedicated
// squaring path). Deterministic — same inputs, same width, everywhere.
int PickWindow(int exp_bits, size_t batch) {
  int best_w = 1;
  double best_cost = -1.0;
  for (int w = 1; w <= kMaxWindow; ++w) {
    const double windows =
        static_cast<double>((exp_bits + w - 1) / w);
    const double fold = 2.0 * (static_cast<double>(1ull << w) - 1.0);
    const double cost =
        windows * (0.67 * w + static_cast<double>(batch) + fold);
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return best_w;
}

// w-bit window t of exp, windows counted from the LSB.
uint32_t WindowDigit(const BigInt& exp, int bits, int t, int w) {
  uint32_t digit = 0;
  for (int b = w - 1; b >= 0; --b) {
    const int idx = t * w + b;
    digit = (digit << 1) | (idx < bits && exp.Bit(idx) ? 1u : 0u);
  }
  return digit;
}

}  // namespace

MultiExp::MultiExp(const Montgomery& mont, const std::vector<BigInt>& bases)
    : mont_(&mont) {
  bases_mont_.reserve(bases.size());
  for (const BigInt& base : bases) {
    ULDP_CHECK_MSG(!base.IsNegative(), "multi-exp base must be >= 0");
    bases_mont_.push_back(mont_->ToMont(base));
  }
}

BigInt MultiExp::Product(const std::vector<BigInt>& exps) const {
  ULDP_CHECK_EQ(exps.size(), bases_mont_.size());
  int max_bits = 0;
  size_t batch = 0;  // bases with a nonzero exponent
  for (const BigInt& exp : exps) {
    ULDP_CHECK_MSG(!exp.IsNegative(), "multi-exp exponent must be >= 0");
    if (exp.IsZero()) continue;
    ++batch;
    max_bits = std::max(max_bits, exp.BitLength());
  }
  if (batch == 0) return mont_->FromMont(mont_->one_mont_);

  const int w = PickWindow(max_bits, batch);
  const int windows = (max_bits + w - 1) / w;
  const size_t bucket_count = static_cast<size_t>(1) << w;
  std::vector<std::vector<uint64_t>> bucket(bucket_count);
  std::vector<char> filled(bucket_count, 0);

  std::vector<uint64_t> acc;
  bool acc_started = false;
  for (int t = windows - 1; t >= 0; --t) {
    if (acc_started) {
      for (int s = 0; s < w; ++s) acc = mont_->MontSqrLimbs(acc);
    }
    std::fill(filled.begin(), filled.end(), 0);
    for (size_t i = 0; i < exps.size(); ++i) {
      if (exps[i].IsZero()) continue;
      const uint32_t digit = WindowDigit(exps[i], exps[i].BitLength(), t, w);
      if (digit == 0) continue;
      if (filled[digit]) {
        bucket[digit] = mont_->MontMul(bucket[digit], bases_mont_[i]);
      } else {
        bucket[digit] = bases_mont_[i];
        filled[digit] = 1;
      }
    }
    // Fold: running = Π_{u >= v} bucket[u], total accumulates one running
    // factor per step, so bucket[v] enters total exactly v times.
    std::vector<uint64_t> running, total;
    bool running_started = false, total_started = false;
    for (size_t v = bucket_count - 1; v >= 1; --v) {
      if (filled[v]) {
        running =
            running_started ? mont_->MontMul(running, bucket[v]) : bucket[v];
        running_started = true;
      }
      if (running_started) {
        total = total_started ? mont_->MontMul(total, running) : running;
        total_started = true;
      }
    }
    if (total_started) {
      acc = acc_started ? mont_->MontMul(acc, total) : total;
      acc_started = true;
    }
  }
  if (!acc_started) return mont_->FromMont(mont_->one_mont_);
  return mont_->FromMont(acc);
}

}  // namespace uldp
