// Arbitrary-precision signed integers, implemented from scratch for the
// cryptographic substrate of Uldp-FL (Paillier, Diffie-Hellman, finite-field
// secure aggregation).
//
// Representation: sign-magnitude with little-endian 64-bit limbs, always
// normalized (no trailing zero limbs; zero is non-negative with empty limbs).
//
// The class supports the full integer tool-chest the private weighting
// protocol needs: ring arithmetic, Knuth-D division, Montgomery modular
// exponentiation (odd moduli), extended GCD / modular inverse, LCM, random
// sampling, and decimal/hex I/O.

#ifndef ULDP_MATH_BIGINT_H_
#define ULDP_MATH_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace uldp {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From native signed / unsigned integers.
  BigInt(int64_t value);   // NOLINT: implicit by design, mirrors int literals
  BigInt(uint64_t value);  // NOLINT
  BigInt(int value) : BigInt(static_cast<int64_t>(value)) {}  // NOLINT

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses a base-10 string, optional leading '-'.
  static Result<BigInt> FromDecimal(const std::string& s);
  /// Parses a base-16 string (no 0x prefix), optional leading '-'.
  static Result<BigInt> FromHex(const std::string& s);

  /// Uniform random integer in [0, bound). Requires bound > 0.
  static BigInt RandomBelow(const BigInt& bound, Rng& rng);
  /// Random integer with exactly `bits` bits (top bit set). bits >= 1.
  static BigInt RandomBits(int bits, Rng& rng);

  // -- Queries ---------------------------------------------------------------

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsEven() const { return !IsOdd(); }

  /// Number of significant bits (0 for zero).
  int BitLength() const;
  /// Value of bit i (LSB = 0).
  bool Bit(int i) const;

  /// Low 64 bits of the magnitude (value mod 2^64, ignoring sign).
  uint64_t LowUint64() const { return limbs_.empty() ? 0 : limbs_[0]; }
  /// Converts to int64 if representable; error otherwise.
  Result<int64_t> ToInt64() const;
  /// Converts to double (may lose precision; ±inf on overflow).
  double ToDouble() const;

  std::string ToDecimal() const;
  std::string ToHex() const;

  /// Fixed-length little-endian serialization of the magnitude (used for
  /// OT ciphertext payloads). Requires a non-negative value whose
  /// significant bytes fit in `len` (checked); the rest is zero padding.
  std::vector<uint8_t> ToBytesLE(size_t len) const;
  /// Inverse of ToBytesLE (ignores high zero padding).
  static BigInt FromBytesLE(const std::vector<uint8_t>& bytes);

  // -- Comparison ------------------------------------------------------------

  /// Three-way comparison: -1, 0 or +1.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  // -- Ring arithmetic ---------------------------------------------------

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  BigInt operator<<(int bits) const;
  BigInt operator>>(int bits) const;

  /// Truncated division (C semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Divisor must be nonzero.
  /// Either output pointer may be null if the value is not needed.
  Status DivRem(const BigInt& divisor, BigInt* quotient,
                BigInt* remainder) const;
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  // -- Modular arithmetic ------------------------------------------------

  /// Euclidean remainder in [0, m): unlike operator%, never negative.
  /// Requires m > 0.
  BigInt Mod(const BigInt& m) const;

  /// (this + o) mod m, inputs assumed already reduced into [0, m).
  BigInt ModAdd(const BigInt& o, const BigInt& m) const;
  /// (this - o) mod m, inputs assumed already reduced into [0, m).
  BigInt ModSub(const BigInt& o, const BigInt& m) const;
  /// (this * o) mod m.
  BigInt ModMul(const BigInt& o, const BigInt& m) const;

  /// this^exponent mod m. Requires m > 0, exponent >= 0. Uses Montgomery
  /// multiplication when m is odd, square-and-multiply otherwise.
  BigInt ModExp(const BigInt& exponent, const BigInt& m) const;

  /// Multiplicative inverse mod m (extended Euclid). Error if
  /// gcd(this, m) != 1 or m <= 0.
  Result<BigInt> ModInverse(const BigInt& m) const;

  // -- Number theory -----------------------------------------------------

  static BigInt Gcd(const BigInt& a, const BigInt& b);
  /// lcm(a, b); lcm(0, x) = 0.
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  /// Extended GCD: computes g = gcd(a, b) >= 0 and x, y with a*x + b*y = g.
  /// Any output pointer may be null.
  static void EGcd(const BigInt& a, const BigInt& b, BigInt* g, BigInt* x,
                   BigInt* y);

  /// Absolute value.
  BigInt Abs() const;

  /// Direct limb access for lower-level code (little-endian magnitude).
  const std::vector<uint64_t>& limbs() const { return limbs_; }

  /// Constructs from raw little-endian limbs (normalizes).
  static BigInt FromLimbs(std::vector<uint64_t> limbs, bool negative = false);

 private:
  friend class Montgomery;

  void Normalize();

  // Magnitude helpers (ignore sign).
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b);
  static BigInt MulMagnitude(const BigInt& a, const BigInt& b);
  static BigInt MulSchoolbook(const BigInt& a, const BigInt& b);
  static BigInt MulKaratsuba(const BigInt& a, const BigInt& b);
  /// Knuth algorithm D on magnitudes; both outputs non-negative.
  static void DivModMagnitude(const BigInt& u, const BigInt& v, BigInt* q,
                              BigInt* r);

  std::vector<uint64_t> limbs_;
  bool negative_ = false;
};

/// Product of prime powers p^⌊log_p n⌋ for all primes p <= n — i.e.
/// lcm(1, 2, ..., n). This is the C_LCM quantity of Protocol 1.
BigInt LcmUpTo(uint64_t n);

}  // namespace uldp

#endif  // ULDP_MATH_BIGINT_H_
