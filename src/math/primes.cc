#include "math/primes.h"

#include <array>

#include "common/check.h"

namespace uldp {

namespace {

// Small primes for trial division before Miller-Rabin.
constexpr std::array<uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller-Rabin round with the given base. n must be odd, > 3;
// n - 1 = d * 2^s with d odd.
bool MillerRabinRound(const BigInt& n, const BigInt& n_minus_1,
                      const BigInt& d, int s, const BigInt& base) {
  BigInt x = base.ModExp(d, n);
  if (x == BigInt(1) || x == n_minus_1) return true;
  for (int i = 1; i < s; ++i) {
    x = x.ModMul(x, n);
    if (x == n_minus_1) return true;
    if (x == BigInt(1)) return false;  // nontrivial sqrt of 1 => composite
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (uint64_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  // n is odd and > 251 here.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  int s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  if (n.BitLength() <= 64) {
    // Deterministic for 64-bit range (Sinclair base set).
    for (uint64_t b : {2ull, 325ull, 9375ull, 28178ull, 450775ull,
                       9780504ull, 1795265022ull}) {
      BigInt base = BigInt(b).Mod(n);
      if (base.IsZero()) continue;
      if (!MillerRabinRound(n, n_minus_1, d, s, base)) return false;
    }
    return true;
  }
  for (int i = 0; i < rounds; ++i) {
    BigInt base = BigInt::RandomBelow(n - BigInt(3), rng) + BigInt(2);
    if (!MillerRabinRound(n, n_minus_1, d, s, base)) return false;
  }
  return true;
}

BigInt GeneratePrime(int bits, Rng& rng, int mr_rounds) {
  ULDP_CHECK_GE(bits, 8);
  for (;;) {
    BigInt candidate = BigInt::RandomBits(bits, rng);
    // Force odd.
    if (candidate.IsEven()) candidate = candidate + BigInt(1);
    // Walk forward in steps of 2 for a while before redrawing, amortizing
    // the random generation.
    for (int step = 0; step < 64; ++step) {
      if (candidate.BitLength() != bits) break;
      if (IsProbablePrime(candidate, rng, mr_rounds)) return candidate;
      candidate = candidate + BigInt(2);
    }
  }
}

BigInt GenerateSafePrime(int bits, Rng& rng, int mr_rounds) {
  ULDP_CHECK_GE(bits, 16);
  for (;;) {
    BigInt q = GeneratePrime(bits - 1, rng, mr_rounds);
    BigInt p = (q << 1) + BigInt(1);
    if (p.BitLength() == bits && IsProbablePrime(p, rng, mr_rounds)) return p;
  }
}

}  // namespace uldp
