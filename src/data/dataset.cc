#include "data/dataset.h"

#include <algorithm>

namespace uldp {

Example ToExample(const Record& r) {
  Example ex;
  ex.x = r.features;
  ex.label = r.label;
  ex.time = r.time;
  ex.event = r.event;
  return ex;
}

FederatedDataset::FederatedDataset(std::vector<Record> train,
                                   std::vector<Record> test, int num_users,
                                   int num_silos)
    : train_(std::move(train)), num_users_(num_users), num_silos_(num_silos) {
  ULDP_CHECK_GE(num_users_, 1);
  ULDP_CHECK_GE(num_silos_, 1);
  by_silo_user_.assign(num_silos_,
                       std::vector<std::vector<int>>(num_users_));
  by_silo_.assign(num_silos_, {});
  for (size_t i = 0; i < train_.size(); ++i) {
    const Record& r = train_[i];
    ULDP_CHECK_GE(r.user_id, 0);
    ULDP_CHECK_LT(r.user_id, num_users_);
    ULDP_CHECK_GE(r.silo_id, 0);
    ULDP_CHECK_LT(r.silo_id, num_silos_);
    by_silo_user_[r.silo_id][r.user_id].push_back(static_cast<int>(i));
    by_silo_[r.silo_id].push_back(static_cast<int>(i));
  }
  test_examples_.reserve(test.size());
  for (const Record& r : test) test_examples_.push_back(ToExample(r));
}

const std::vector<int>& FederatedDataset::RecordsOf(int silo, int user) const {
  ULDP_CHECK_GE(silo, 0);
  ULDP_CHECK_LT(silo, num_silos_);
  ULDP_CHECK_GE(user, 0);
  ULDP_CHECK_LT(user, num_users_);
  return by_silo_user_[silo][user];
}

const std::vector<int>& FederatedDataset::RecordsOfSilo(int silo) const {
  ULDP_CHECK_GE(silo, 0);
  ULDP_CHECK_LT(silo, num_silos_);
  return by_silo_[silo];
}

int FederatedDataset::TotalCountOf(int user) const {
  int total = 0;
  for (int s = 0; s < num_silos_; ++s) total += CountOf(s, user);
  return total;
}

double FederatedDataset::MeanRecordsPerUser() const {
  return static_cast<double>(train_.size()) / num_users_;
}

int FederatedDataset::MaxRecordsPerUser() const {
  int best = 0;
  for (int u = 0; u < num_users_; ++u) best = std::max(best, TotalCountOf(u));
  return best;
}

int FederatedDataset::MedianRecordsPerUser() const {
  std::vector<int> counts;
  counts.reserve(num_users_);
  for (int u = 0; u < num_users_; ++u) {
    int c = TotalCountOf(u);
    if (c > 0) counts.push_back(c);
  }
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end());
  return counts[counts.size() / 2];
}

std::vector<Example> FederatedDataset::MakeExamples(
    const std::vector<int>& indices) const {
  std::vector<Example> out;
  out.reserve(indices.size());
  for (int i : indices) {
    ULDP_CHECK_GE(i, 0);
    ULDP_CHECK_LT(static_cast<size_t>(i), train_.size());
    out.push_back(ToExample(train_[i]));
  }
  return out;
}

}  // namespace uldp
