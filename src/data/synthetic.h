// Synthetic stand-ins for the paper's evaluation datasets. The real data
// (Kaggle Creditcard, MNIST, FLamby HeartDisease / TcgaBrca) is not
// redistributable and unavailable offline; these generators reproduce the
// statistical structure the experiments depend on — dimensionality, class
// structure, silo count, per-silo covariate shift, and (for TcgaBrca)
// censored survival targets — so the privacy-utility *shapes* of the
// figures are preserved. See DESIGN.md §4 for the substitution argument.

#ifndef ULDP_DATA_SYNTHETIC_H_
#define ULDP_DATA_SYNTHETIC_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace uldp {

/// Generator output: records with silo_id set only for the fixed-silo
/// benchmarks; user/silo assignment is done by the allocators.
struct SyntheticData {
  std::vector<Record> train;
  std::vector<Record> test;
  int num_classes = 2;
  int feature_dim = 0;
  /// True when silo_id is pre-assigned (HeartDisease / TcgaBrca).
  bool fixed_silos = false;
  int num_silos = 0;
};

/// Creditcard-like: 30-dimensional tabular binary classification
/// (fraud/benign as two anisotropic Gaussian clusters with partial
/// overlap). The paper undersamples to ~25K records; fraud_rate controls
/// the post-undersampling balance.
SyntheticData MakeCreditcardLike(int n_train, int n_test, Rng& rng,
                                 int dim = 30, double fraud_rate = 0.3);

/// MNIST-like: `side` x `side` single-channel images, 10 classes. Each
/// class has a fixed random prototype; samples add per-sample Gaussian
/// pixel noise and a random 1-pixel translation so the task is non-trivial.
SyntheticData MakeMnistLike(int n_train, int n_test, Rng& rng, int side = 14,
                            double noise = 0.35);

/// HeartDisease-like (FLamby): 13 features, binary label, 4 silos with
/// fixed per-silo record counts and per-silo covariate shift. silo_id is
/// pre-assigned; pass through AllocateUsersWithinSilos.
SyntheticData MakeHeartDiseaseLike(Rng& rng, int scale = 1);

/// TcgaBrca-like (FLamby): 39 features, survival targets (time, event)
/// from an exponential proportional-hazards model with independent
/// censoring, 6 silos with fixed counts. silo_id pre-assigned.
SyntheticData MakeTcgaBrcaLike(Rng& rng, int scale = 1);

}  // namespace uldp

#endif  // ULDP_DATA_SYNTHETIC_H_
