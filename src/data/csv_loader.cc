#include "data/csv_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace uldp {

namespace {

Status ParseDouble(const std::string& field, int line, double* out) {
  char* end = nullptr;
  const char* begin = field.c_str();
  *out = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": non-numeric field '" + field + "'");
  }
  return Status::Ok();
}

Status ParseInt(const std::string& field, int line, int* out) {
  double v = 0.0;
  ULDP_RETURN_IF_ERROR(ParseDouble(field, line, &v));
  *out = static_cast<int>(v);
  if (static_cast<double>(*out) != v) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": expected integer, got '" + field + "'");
  }
  return Status::Ok();
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  // A '\r' inside a field is field data (only the line-end CR of a CRLF
  // file is stripped, before this function runs); silently eating it here
  // would corrupt values instead of reporting them as malformed.
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

Result<std::vector<Record>> ParseCsvRecords(const std::string& content,
                                            const CsvOptions& options) {
  std::vector<Record> records;
  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  size_t expected_columns = 0;
  // The header is the first non-empty line, wherever it appears — keying
  // on line_number == 1 made a leading blank line demote the real header
  // into a (non-numeric) data row.
  bool header_pending = options.has_header;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF file
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (header_pending) {
      // The header participates in column-count validation: a header/data
      // width mismatch means the column options index the wrong fields.
      header_pending = false;
      expected_columns = fields.size();
      continue;
    }
    if (expected_columns == 0) {
      expected_columns = fields.size();
    } else if (fields.size() != expected_columns) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(expected_columns) + " columns, got " +
          std::to_string(fields.size()));
    }
    Record record;
    for (int col = 0; col < static_cast<int>(fields.size()); ++col) {
      const std::string& field = fields[col];
      if (col == options.label_column) {
        ULDP_RETURN_IF_ERROR(ParseInt(field, line_number, &record.label));
      } else if (col == options.user_column) {
        ULDP_RETURN_IF_ERROR(ParseInt(field, line_number, &record.user_id));
      } else if (col == options.silo_column) {
        ULDP_RETURN_IF_ERROR(ParseInt(field, line_number, &record.silo_id));
      } else if (col == options.time_column) {
        ULDP_RETURN_IF_ERROR(ParseDouble(field, line_number, &record.time));
      } else if (col == options.event_column) {
        int event = 0;
        ULDP_RETURN_IF_ERROR(ParseInt(field, line_number, &event));
        record.event = event != 0;
      } else {
        double value = 0.0;
        ULDP_RETURN_IF_ERROR(ParseDouble(field, line_number, &value));
        record.features.push_back(value);
      }
    }
    records.push_back(std::move(record));
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV contains no data rows");
  }
  return records;
}

Result<std::vector<Record>> LoadCsvRecords(const std::string& path,
                                           const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvRecords(buffer.str(), options);
}

}  // namespace uldp
