// Record allocation: links every training record to a (user, silo) pair,
// reproducing §5.1.1 of the paper.
//
// Free allocation (Creditcard / MNIST): both user and silo are assigned by
// the allocator — `uniform` assigns both uniformly; `zipf` draws per-user
// record shares from Zipf(alpha_user) and then scatters each user's records
// over silos with Zipf(alpha_silo) over a user-specific silo preference
// order.
//
// Fixed-silo allocation (HeartDisease / TcgaBrca): records arrive with
// silo_id already set (the FLamby center split); only users are assigned —
// `uniform` assigns users uniformly, `zipf` gives each user a Zipf-sized
// record budget, 80% taken from one preferred silo and the rest spread
// evenly over the others.

#ifndef ULDP_DATA_ALLOCATION_H_
#define ULDP_DATA_ALLOCATION_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace uldp {

/// Allocation scheme selector (figure captions call these "uniform"/"zipf").
enum class AllocationKind { kUniform, kZipf };

struct AllocationOptions {
  AllocationKind kind = AllocationKind::kUniform;
  double zipf_alpha_user = 0.5;  // paper: records-per-user concentration
  double zipf_alpha_silo = 2.0;  // paper: silo-preference concentration
  /// Non-iid label restriction (MNIST experiments): if > 0, each user is
  /// limited to at most this many distinct labels.
  int max_labels_per_user = 0;
  /// Minimum records per non-empty (user, silo) pair; the TcgaBrca Cox loss
  /// requires >= 2. Fixed by post-pass reassignment.
  int min_records_per_pair = 0;
};

/// Free allocation: overwrites user_id and silo_id of every record.
Status AllocateUsersAndSilos(std::vector<Record>& records, int num_users,
                             int num_silos, const AllocationOptions& options,
                             Rng& rng);

/// Fixed-silo allocation: records must carry valid silo_id; only user_id is
/// assigned.
Status AllocateUsersWithinSilos(std::vector<Record>& records, int num_users,
                                int num_silos,
                                const AllocationOptions& options, Rng& rng);

/// Per-user total record counts (diagnostic used by Figure 12 and tests).
std::vector<int> UserHistogram(const std::vector<Record>& records,
                               int num_users);

}  // namespace uldp

#endif  // ULDP_DATA_ALLOCATION_H_
