// Federated dataset model: every record belongs to one user and one silo
// (Figure 1 of the paper). The container indexes records by (silo, user) —
// the unit ULDP-AVG trains on — and exposes the per-pair histogram n_{s,u}
// that the weighting strategies and private weighting protocol consume.

#ifndef ULDP_DATA_DATASET_H_
#define ULDP_DATA_DATASET_H_

#include <vector>

#include "common/check.h"
#include "nn/model.h"
#include "nn/tensor.h"

namespace uldp {

/// One training record with its user/silo assignment.
struct Record {
  Vec features;
  int label = -1;       // classification target
  double time = 0.0;    // survival time (Cox)
  bool event = false;   // event indicator (Cox)
  int user_id = -1;
  int silo_id = -1;
};

/// Converts a record to a model Example (drops the assignment metadata).
Example ToExample(const Record& r);

/// Immutable federated training set plus a centralized test set.
class FederatedDataset {
 public:
  FederatedDataset(std::vector<Record> train, std::vector<Record> test,
                   int num_users, int num_silos);

  int num_users() const { return num_users_; }
  int num_silos() const { return num_silos_; }
  size_t num_train_records() const { return train_.size(); }

  const std::vector<Record>& train_records() const { return train_; }
  const std::vector<Example>& test_examples() const { return test_examples_; }

  /// Record indices (into train_records) for the (silo, user) pair.
  const std::vector<int>& RecordsOf(int silo, int user) const;
  /// Record indices of all records in a silo.
  const std::vector<int>& RecordsOfSilo(int silo) const;

  /// n_{s,u}: number of records of user u in silo s.
  int CountOf(int silo, int user) const {
    return static_cast<int>(RecordsOf(silo, user).size());
  }
  /// N_u = sum_s n_{s,u}.
  int TotalCountOf(int user) const;

  /// Average number of records per user across all silos (the paper's
  /// n-bar reported in every figure caption).
  double MeanRecordsPerUser() const;

  /// Largest N_u (the GROUP-max group size) and median N_u over users with
  /// at least one record (GROUP-median).
  int MaxRecordsPerUser() const;
  int MedianRecordsPerUser() const;

  /// Materializes Examples for a batch of record indices.
  std::vector<Example> MakeExamples(const std::vector<int>& indices) const;

 private:
  std::vector<Record> train_;
  std::vector<Example> test_examples_;
  int num_users_;
  int num_silos_;
  std::vector<std::vector<std::vector<int>>> by_silo_user_;  // [silo][user]
  std::vector<std::vector<int>> by_silo_;
};

}  // namespace uldp

#endif  // ULDP_DATA_DATASET_H_
