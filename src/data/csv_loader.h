// CSV ingestion so real datasets (the Kaggle Creditcard file, FLamby
// extracts, ...) can be dropped in place of the synthetic generators.
// Minimal dialect: comma-separated, optional header row, numeric fields,
// no quoting.

#ifndef ULDP_DATA_CSV_LOADER_H_
#define ULDP_DATA_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace uldp {

struct CsvOptions {
  bool has_header = true;
  /// Column index (0-based) of the classification label; -1 if none.
  int label_column = -1;
  /// Column of the pre-assigned user id; -1 to leave unassigned (use an
  /// allocator afterwards).
  int user_column = -1;
  /// Column of the pre-assigned silo id; -1 to leave unassigned.
  int silo_column = -1;
  /// Survival columns (TcgaBrca-style); -1 if not survival data.
  int time_column = -1;
  int event_column = -1;
  /// All remaining columns become features.
};

/// Parses CSV content into records. Every non-special column becomes a
/// feature, in column order. Errors carry the offending 1-based line.
Result<std::vector<Record>> ParseCsvRecords(const std::string& content,
                                            const CsvOptions& options);

/// Reads and parses a CSV file.
Result<std::vector<Record>> LoadCsvRecords(const std::string& path,
                                           const CsvOptions& options);

}  // namespace uldp

#endif  // ULDP_DATA_CSV_LOADER_H_
