#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace uldp {

SyntheticData MakeCreditcardLike(int n_train, int n_test, Rng& rng, int dim,
                                 double fraud_rate) {
  ULDP_CHECK_GE(dim, 2);
  SyntheticData out;
  out.num_classes = 2;
  out.feature_dim = dim;

  // Class structure: benign at the origin, fraud shifted along a random
  // direction with heavier tails in a random subset of coordinates
  // (mimicking the PCA-transformed Kaggle features).
  Vec shift(dim);
  for (double& s : shift) s = rng.Gaussian(0.0, 1.0);
  double norm = L2Norm(shift);
  for (double& s : shift) s = s / norm * 2.2;  // cluster separation
  std::vector<double> scale(dim);
  for (double& s : scale) s = 0.6 + rng.Uniform() * 0.9;

  auto gen = [&](bool fraud) {
    Record r;
    r.features.resize(dim);
    for (int d = 0; d < dim; ++d) {
      r.features[d] = rng.Gaussian(0.0, scale[d]) + (fraud ? shift[d] : 0.0);
    }
    // A little label noise keeps accuracy below 100%.
    bool flip = rng.Bernoulli(0.02);
    r.label = (fraud != flip) ? 1 : 0;
    return r;
  };
  out.train.reserve(n_train);
  out.test.reserve(n_test);
  for (int i = 0; i < n_train; ++i) out.train.push_back(gen(rng.Bernoulli(fraud_rate)));
  for (int i = 0; i < n_test; ++i) out.test.push_back(gen(rng.Bernoulli(fraud_rate)));
  return out;
}

SyntheticData MakeMnistLike(int n_train, int n_test, Rng& rng, int side,
                            double noise) {
  ULDP_CHECK_GE(side, 6);
  SyntheticData out;
  out.num_classes = 10;
  out.feature_dim = side * side;

  // Fixed random prototypes with spatial smoothing so translations matter.
  std::vector<Vec> prototypes(10, Vec(out.feature_dim, 0.0));
  for (auto& proto : prototypes) {
    Vec raw(out.feature_dim);
    for (double& v : raw) v = rng.Bernoulli(0.35) ? 1.0 : 0.0;
    // 3x3 box blur for coherent "strokes".
    for (int r = 0; r < side; ++r) {
      for (int c = 0; c < side; ++c) {
        double acc = 0.0;
        int cnt = 0;
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            int rr = r + dr, cc = c + dc;
            if (rr < 0 || rr >= side || cc < 0 || cc >= side) continue;
            acc += raw[rr * side + cc];
            ++cnt;
          }
        }
        proto[r * side + c] = acc / cnt;
      }
    }
  }

  auto gen = [&](int label) {
    Record r;
    r.label = label;
    r.features.assign(out.feature_dim, 0.0);
    int shift_r = static_cast<int>(rng.UniformInt(3)) - 1;
    int shift_c = static_cast<int>(rng.UniformInt(3)) - 1;
    const Vec& proto = prototypes[label];
    for (int row = 0; row < side; ++row) {
      for (int col = 0; col < side; ++col) {
        int pr = row + shift_r, pc = col + shift_c;
        double base = 0.0;
        if (pr >= 0 && pr < side && pc >= 0 && pc < side) {
          base = proto[pr * side + pc];
        }
        r.features[row * side + col] = base + rng.Gaussian(0.0, noise);
      }
    }
    return r;
  };
  out.train.reserve(n_train);
  out.test.reserve(n_test);
  for (int i = 0; i < n_train; ++i) {
    out.train.push_back(gen(static_cast<int>(rng.UniformInt(10))));
  }
  for (int i = 0; i < n_test; ++i) {
    out.test.push_back(gen(static_cast<int>(rng.UniformInt(10))));
  }
  return out;
}

SyntheticData MakeHeartDiseaseLike(Rng& rng, int scale) {
  ULDP_CHECK_GE(scale, 1);
  constexpr int kDim = 13;
  // FLamby heart-disease centers: Cleveland, Hungary, Switzerland, VA.
  const int kCounts[4] = {303, 261, 46, 130};
  SyntheticData out;
  out.num_classes = 2;
  out.feature_dim = kDim;
  out.fixed_silos = true;
  out.num_silos = 4;

  // Ground-truth linear separator shared by all silos; each silo has its
  // own covariate mean (the cross-center distribution shift FLamby
  // documents).
  Vec theta(kDim);
  for (double& t : theta) t = rng.Gaussian(0.0, 1.0);
  std::vector<Vec> silo_shift(4, Vec(kDim, 0.0));
  for (auto& sh : silo_shift) {
    for (double& v : sh) v = rng.Gaussian(0.0, 0.4);
  }

  auto gen = [&](int silo) {
    Record r;
    r.silo_id = silo;
    r.features.resize(kDim);
    for (int d = 0; d < kDim; ++d) {
      r.features[d] = rng.Gaussian(0.0, 1.0) + silo_shift[silo][d];
    }
    double logit = Dot(theta, r.features) / std::sqrt(1.0 * kDim) * 2.5;
    double p = 1.0 / (1.0 + std::exp(-logit));
    r.label = rng.Bernoulli(p) ? 1 : 0;
    return r;
  };
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < kCounts[s] * scale; ++i) out.train.push_back(gen(s));
  }
  // Held-out test drawn from the silo mixture.
  int n_test = 200 * scale;
  for (int i = 0; i < n_test; ++i) {
    out.test.push_back(gen(static_cast<int>(rng.UniformInt(4))));
  }
  return out;
}

SyntheticData MakeTcgaBrcaLike(Rng& rng, int scale) {
  ULDP_CHECK_GE(scale, 1);
  constexpr int kDim = 39;
  // FLamby TCGA-BRCA: 1088 patients over 6 centers.
  const int kCounts[6] = {311, 196, 206, 79, 125, 171};
  SyntheticData out;
  out.num_classes = 0;
  out.feature_dim = kDim;
  out.fixed_silos = true;
  out.num_silos = 6;

  Vec theta(kDim);
  for (double& t : theta) t = rng.Gaussian(0.0, 0.5);
  std::vector<Vec> silo_shift(6, Vec(kDim, 0.0));
  for (auto& sh : silo_shift) {
    for (double& v : sh) v = rng.Gaussian(0.0, 0.3);
  }

  auto gen = [&](int silo) {
    Record r;
    r.silo_id = silo;
    r.features.resize(kDim);
    for (int d = 0; d < kDim; ++d) {
      r.features[d] = rng.Gaussian(0.0, 1.0) + silo_shift[silo][d];
    }
    // Proportional hazards: T ~ Exp(rate = base * exp(theta^T x / sqrt(d))),
    // independent exponential censoring (~40% censored).
    double risk = Dot(theta, r.features) / std::sqrt(1.0 * kDim) * 2.0;
    double rate = 0.1 * std::exp(risk);
    double t_event = -std::log(std::max(rng.Uniform(), 1e-12)) / rate;
    double t_censor = -std::log(std::max(rng.Uniform(), 1e-12)) / 0.06;
    r.event = t_event <= t_censor;
    r.time = std::min(t_event, t_censor);
    return r;
  };
  for (int s = 0; s < 6; ++s) {
    for (int i = 0; i < kCounts[s] * scale; ++i) out.train.push_back(gen(s));
  }
  int n_test = 250 * scale;
  for (int i = 0; i < n_test; ++i) {
    out.test.push_back(gen(static_cast<int>(rng.UniformInt(6))));
  }
  return out;
}

}  // namespace uldp
