#include "data/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace uldp {

namespace {

// Zipf rank weights: weight[r] proportional to (r+1)^-alpha for r = 0..n-1.
std::vector<double> ZipfWeights(int n, double alpha) {
  std::vector<double> w(n);
  for (int r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -alpha);
  }
  return w;
}

// Assigns each user a set of permitted labels (non-iid MNIST setting).
std::vector<std::vector<int>> PermittedLabels(int num_users, int num_labels,
                                              int labels_per_user, Rng& rng) {
  std::vector<std::vector<int>> permitted(num_users);
  for (int u = 0; u < num_users; ++u) {
    std::vector<int> labels(num_labels);
    std::iota(labels.begin(), labels.end(), 0);
    rng.Shuffle(labels);
    labels.resize(std::min(num_labels, labels_per_user));
    std::sort(labels.begin(), labels.end());
    permitted[u] = std::move(labels);
  }
  return permitted;
}

}  // namespace

Status AllocateUsersAndSilos(std::vector<Record>& records, int num_users,
                             int num_silos, const AllocationOptions& options,
                             Rng& rng) {
  if (num_users < 1 || num_silos < 1) {
    return Status::InvalidArgument("need >= 1 user and silo");
  }
  const bool non_iid = options.max_labels_per_user > 0;
  int num_labels = 0;
  for (const Record& r : records) num_labels = std::max(num_labels, r.label + 1);
  std::vector<std::vector<int>> permitted;
  std::vector<std::vector<int>> users_for_label;
  if (non_iid) {
    if (num_labels < 1) {
      return Status::InvalidArgument(
          "non-iid allocation requires labeled records");
    }
    permitted = PermittedLabels(num_users, num_labels,
                                options.max_labels_per_user, rng);
    users_for_label.assign(num_labels, {});
    for (int u = 0; u < num_users; ++u) {
      for (int l : permitted[u]) users_for_label[l].push_back(u);
    }
    for (int l = 0; l < num_labels; ++l) {
      if (users_for_label[l].empty()) {
        // Guarantee coverage: give the label to a random user.
        users_for_label[l].push_back(
            static_cast<int>(rng.UniformInt(num_users)));
      }
    }
  }

  if (options.kind == AllocationKind::kUniform) {
    for (Record& r : records) {
      if (non_iid) {
        const auto& candidates = users_for_label[r.label];
        r.user_id = candidates[rng.UniformInt(candidates.size())];
      } else {
        r.user_id = static_cast<int>(rng.UniformInt(num_users));
      }
      r.silo_id = static_cast<int>(rng.UniformInt(num_silos));
    }
    return Status::Ok();
  }

  // zipf: user share ~ Zipf(alpha_user); each user scatters its records
  // over silos with Zipf(alpha_silo) over a private silo preference order.
  std::vector<double> user_weights = ZipfWeights(num_users, options.zipf_alpha_user);
  std::vector<std::vector<int>> silo_preference(num_users);
  for (int u = 0; u < num_users; ++u) {
    silo_preference[u].resize(num_silos);
    std::iota(silo_preference[u].begin(), silo_preference[u].end(), 0);
    rng.Shuffle(silo_preference[u]);
  }
  for (Record& r : records) {
    int user;
    if (non_iid) {
      const auto& candidates = users_for_label[r.label];
      std::vector<double> w(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        w[i] = user_weights[candidates[i]];
      }
      user = candidates[rng.Categorical(w)];
    } else {
      user = static_cast<int>(rng.Categorical(user_weights));
    }
    r.user_id = user;
    uint64_t rank = rng.Zipf(num_silos, options.zipf_alpha_silo);  // 1-based
    r.silo_id = silo_preference[user][rank - 1];
  }
  return Status::Ok();
}

Status AllocateUsersWithinSilos(std::vector<Record>& records, int num_users,
                                int num_silos,
                                const AllocationOptions& options, Rng& rng) {
  if (num_users < 1 || num_silos < 1) {
    return Status::InvalidArgument("need >= 1 user and silo");
  }
  for (const Record& r : records) {
    if (r.silo_id < 0 || r.silo_id >= num_silos) {
      return Status::InvalidArgument(
          "fixed-silo allocation requires valid silo_id on every record");
    }
  }

  if (options.kind == AllocationKind::kUniform) {
    for (Record& r : records) {
      r.user_id = static_cast<int>(rng.UniformInt(num_users));
    }
  } else {
    // zipf: user record budgets ~ Zipf(alpha_user); 80% of a user's budget
    // drawn from one preferred silo, the rest evenly from the others.
    std::vector<double> w = ZipfWeights(num_users, options.zipf_alpha_user);
    double wsum = std::accumulate(w.begin(), w.end(), 0.0);
    std::vector<int> budget(num_users);
    int total = static_cast<int>(records.size());
    int assigned_budget = 0;
    for (int u = 0; u < num_users; ++u) {
      budget[u] = static_cast<int>(std::floor(w[u] / wsum * total));
      assigned_budget += budget[u];
    }
    for (int u = 0; assigned_budget < total; u = (u + 1) % num_users) {
      ++budget[u];
      ++assigned_budget;
    }

    // Per-silo shuffled pools of unassigned record indices.
    std::vector<std::vector<int>> pool(num_silos);
    for (size_t i = 0; i < records.size(); ++i) {
      pool[records[i].silo_id].push_back(static_cast<int>(i));
    }
    for (auto& p : pool) rng.Shuffle(p);

    auto take = [&](int silo, int count, int user) {
      int taken = 0;
      auto& p = pool[silo];
      while (taken < count && !p.empty()) {
        records[p.back()].user_id = user;
        p.pop_back();
        ++taken;
      }
      return taken;
    };

    for (int u = 0; u < num_users; ++u) {
      int preferred = static_cast<int>(rng.UniformInt(num_silos));
      int want_preferred = static_cast<int>(std::round(0.8 * budget[u]));
      int got = take(preferred, want_preferred, u);
      int remaining = budget[u] - got;
      // Spread the rest over the other silos round-robin.
      for (int step = 0; remaining > 0 && step < 4 * num_silos; ++step) {
        int s = (preferred + 1 + step) % num_silos;
        remaining -= take(s, std::max(1, remaining / num_silos), u);
      }
    }
    // Any leftovers (pool exhaustion asymmetries): uniform users.
    for (int s = 0; s < num_silos; ++s) {
      for (int idx : pool[s]) {
        records[idx].user_id = static_cast<int>(rng.UniformInt(num_users));
      }
    }
  }

  if (options.min_records_per_pair > 1) {
    // Repair pass: merge undersized (silo, user) groups into the largest
    // group of the same silo so every non-empty pair meets the minimum.
    for (int s = 0; s < num_silos; ++s) {
      std::vector<std::vector<int>> by_user(num_users);
      for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].silo_id == s) {
          by_user[records[i].user_id].push_back(static_cast<int>(i));
        }
      }
      int biggest_user = -1;
      size_t biggest = 0;
      for (int u = 0; u < num_users; ++u) {
        if (by_user[u].size() > biggest) {
          biggest = by_user[u].size();
          biggest_user = u;
        }
      }
      if (biggest_user < 0) continue;
      for (int u = 0; u < num_users; ++u) {
        if (u == biggest_user) continue;
        if (!by_user[u].empty() &&
            by_user[u].size() <
                static_cast<size_t>(options.min_records_per_pair)) {
          for (int idx : by_user[u]) records[idx].user_id = biggest_user;
        }
      }
    }
  }
  return Status::Ok();
}

std::vector<int> UserHistogram(const std::vector<Record>& records,
                               int num_users) {
  std::vector<int> hist(num_users, 0);
  for (const Record& r : records) {
    ULDP_CHECK_GE(r.user_id, 0);
    ULDP_CHECK_LT(r.user_id, num_users);
    ++hist[r.user_id];
  }
  return hist;
}

}  // namespace uldp
