#include "core/uldp_sgd.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

UldpSgdTrainer::UldpSgdTrainer(const FederatedDataset& data,
                               const Model& model, FlConfig config,
                               WeightingStrategy weighting,
                               double user_sample_rate)
    : data_(data),
      config_(config),
      user_sample_rate_(user_sample_rate),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)),
      tracker_(user_sample_rate < 1.0
                   ? PrivacyTracker::ForSubsampledGaussian(config.sigma,
                                                           user_sample_rate)
                   : PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  weights_ = ComputeWeights(data_, weighting);
  ULDP_CHECK(WeightsSatisfyUldpConstraint(weights_));
  name_ = weighting == WeightingStrategy::kEnhanced ? "ULDP-SGD-w"
                                                    : "ULDP-SGD";
  silo_shards_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    for (int u = 0; u < data_.num_users(); ++u) {
      const auto& idx = data_.RecordsOf(s, u);
      if (idx.empty()) continue;
      silo_shards_[s].push_back(UserShard{u, data_.MakeExamples(idx)});
    }
  }
  if (config_.async_rounds) {
    Status started = engine_.StartAsync(
        [this](int version, int silo, const Vec& snapshot, Model& model,
               Vec& delta) {
          return LocalSiloWork(static_cast<uint64_t>(version), snapshot, silo,
                               model, delta);
        },
        AsyncOptionsFrom(config_));
    ULDP_CHECK_MSG(started.ok(), started.ToString());
  }
}

UldpSgdTrainer::~UldpSgdTrainer() { engine_.StopAsync(); }

std::vector<bool> UldpSgdTrainer::SampledMask(uint64_t version) {
  std::lock_guard<std::mutex> lock(mask_mu_);
  if (mask_version_ != version) {
    // Server-side Poisson sampling of the user set (one substream per
    // round, drawn in user order — independent of silo scheduling).
    const int u_count = data_.num_users();
    mask_.assign(u_count, true);
    if (user_sample_rate_ < 1.0) {
      Rng sampler = rng_.Fork(version, 0, kRngStreamSampling);
      for (int u = 0; u < u_count; ++u) {
        mask_[u] = sampler.Bernoulli(user_sample_rate_);
      }
    }
    mask_version_ = version;
  }
  return mask_;
}

Status UldpSgdTrainer::LocalSiloWork(uint64_t version, const Vec& snapshot,
                                     int silo, Model& model, Vec& silo_grad) {
  const int s_count = data_.num_silos();
  const std::vector<bool> sampled = SampledMask(version);

  // Async partial-buffer / staleness runs inflate each distributed noise
  // share so the worst flush still carries the charged noise (see the
  // FlConfig DP note); exactly 1.0 in sync and barrier-async runs.
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip *
                    AsyncNoiseMargin(config_, s_count) /
                    std::sqrt(static_cast<double>(s_count));
  Vec grad(silo_grad.size(), 0.0);
  std::vector<const Example*> batch;
  for (const UserShard& shard : silo_shards_[silo]) {
    if (!sampled[shard.user]) continue;
    double w = weights_[silo][shard.user];
    if (w == 0.0) continue;
    // Full-batch per-user gradient at the pulled global model
    // (Algorithm 3, lines 21-23).
    model.SetParams(snapshot);
    std::fill(grad.begin(), grad.end(), 0.0);
    batch.clear();
    batch.reserve(shard.examples.size());
    for (const Example& ex : shard.examples) batch.push_back(&ex);
    model.LossAndGrad(batch, &grad);
    ClipToL2Ball(grad, config_.clip);
    Axpy(w, grad, silo_grad);
  }
  Rng noise = rng_.Fork(version, static_cast<uint64_t>(silo),
                        kRngStreamNoise);
  AddGaussianNoise(silo_grad, noise_std, noise);
  return Status::Ok();
}

Status UldpSgdTrainer::RunRound(int round, Vec& global_params) {
  const int s_count = data_.num_silos();
  const int u_count = data_.num_users();
  const double q = user_sample_rate_;
  const uint64_t r = static_cast<uint64_t>(round);
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  auto total =
      config_.async_rounds
          ? engine_.StepAsync(round, global_params)
          : engine_.RunRound(round, global_params,
                             [&](int s, Model& model, Vec& grad) {
                               return LocalSiloWork(r, global_params, s,
                                                    model, grad);
                             });
  if (!total.ok()) return total.status();
  if (central) {
    Rng server = rng_.Fork(r, 0, kRngStreamServer);
    AddGaussianNoise(total.value(), config_.sigma * config_.clip, server);
  }
  // Descent step with the paper's 1/(q |U| |S|) scaling. (Algorithm 3
  // writes the update additively on the delta; for the SGD variant the
  // aggregated quantity is a gradient, so the server steps against it.)
  Axpy(-config_.global_lr / (q * u_count * s_count), total.value(),
       global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpSgdTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

void UldpSgdTrainer::AccountRestoredRounds(int64_t rounds) {
  tracker_.AdvanceRounds(rounds);
}

}  // namespace uldp
