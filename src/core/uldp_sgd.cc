#include "core/uldp_sgd.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

UldpSgdTrainer::UldpSgdTrainer(const FederatedDataset& data,
                               const Model& model, FlConfig config,
                               WeightingStrategy weighting,
                               double user_sample_rate)
    : data_(data),
      work_model_(model.Clone()),
      config_(config),
      user_sample_rate_(user_sample_rate),
      rng_(config.seed),
      tracker_(user_sample_rate < 1.0
                   ? PrivacyTracker::ForSubsampledGaussian(config.sigma,
                                                           user_sample_rate)
                   : PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  weights_ = ComputeWeights(data_, weighting);
  ULDP_CHECK(WeightsSatisfyUldpConstraint(weights_));
  name_ = weighting == WeightingStrategy::kEnhanced ? "ULDP-SGD-w"
                                                    : "ULDP-SGD";
  for (int s = 0; s < data_.num_silos(); ++s) {
    for (int u = 0; u < data_.num_users(); ++u) {
      const auto& idx = data_.RecordsOf(s, u);
      if (idx.empty()) continue;
      pairs_.push_back(Pair{s, u, data_.MakeExamples(idx)});
    }
  }
}

Status UldpSgdTrainer::RunRound(int round, Vec& global_params) {
  ULDP_CHECK_EQ(global_params.size(), work_model_->NumParams());
  const int s_count = data_.num_silos();
  const int u_count = data_.num_users();
  const size_t dim = global_params.size();
  const double q = user_sample_rate_;

  std::vector<bool> sampled(u_count, true);
  if (q < 1.0) {
    for (int u = 0; u < u_count; ++u) sampled[u] = rng_.Bernoulli(q);
  }

  std::vector<Vec> silo_grad(s_count, Vec(dim, 0.0));
  Vec grad(dim, 0.0);
  for (const Pair& pair : pairs_) {
    if (!sampled[pair.user]) continue;
    double w = weights_[pair.silo][pair.user];
    if (w == 0.0) continue;
    // Full-batch per-user gradient at the current global model
    // (Algorithm 3, lines 21-23).
    work_model_->SetParams(global_params);
    std::fill(grad.begin(), grad.end(), 0.0);
    std::vector<const Example*> batch;
    batch.reserve(pair.examples.size());
    for (const Example& ex : pair.examples) batch.push_back(&ex);
    work_model_->LossAndGrad(batch, &grad);
    ClipToL2Ball(grad, config_.clip);
    Axpy(w, grad, silo_grad[pair.silo]);
  }

  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip /
                    std::sqrt(static_cast<double>(s_count));
  for (int s = 0; s < s_count; ++s) {
    AddGaussianNoise(silo_grad[s], noise_std, rng_);
  }
  Vec total = AggregateDeltas(silo_grad, config_.secure_aggregation,
                              static_cast<uint64_t>(round));
  if (central) {
    AddGaussianNoise(total, config_.sigma * config_.clip, rng_);
  }
  // Descent step with the paper's 1/(q |U| |S|) scaling. (Algorithm 3
  // writes the update additively on the delta; for the SGD variant the
  // aggregated quantity is a gradient, so the server steps against it.)
  Axpy(-config_.global_lr / (q * u_count * s_count), total, global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpSgdTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

}  // namespace uldp
