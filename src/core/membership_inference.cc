#include "core/membership_inference.h"

#include "common/check.h"
#include "nn/metrics.h"

namespace uldp {

std::vector<double> UserMembershipScores(
    Model& model,
    const std::vector<std::vector<Example>>& per_user_records) {
  std::vector<double> scores(per_user_records.size(), 0.0);
  std::vector<const Example*> batch;
  for (size_t u = 0; u < per_user_records.size(); ++u) {
    const auto& records = per_user_records[u];
    if (records.empty()) continue;
    batch.clear();
    for (const Example& ex : records) batch.push_back(&ex);
    scores[u] = -model.LossAndGrad(batch, nullptr);
  }
  return scores;
}

double UserMembershipAttackAuc(
    Model& model, const std::vector<std::vector<Example>>& member_records,
    const std::vector<std::vector<Example>>& non_member_records) {
  std::vector<double> member_scores;
  std::vector<double> non_member_scores;
  auto all_member = UserMembershipScores(model, member_records);
  auto all_non_member = UserMembershipScores(model, non_member_records);
  for (size_t u = 0; u < member_records.size(); ++u) {
    if (!member_records[u].empty()) member_scores.push_back(all_member[u]);
  }
  for (size_t u = 0; u < non_member_records.size(); ++u) {
    if (!non_member_records[u].empty()) {
      non_member_scores.push_back(all_non_member[u]);
    }
  }
  return AucFromScores(member_scores, non_member_scores);
}

}  // namespace uldp
