#include "core/protocol_party.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "core/mask_tags.h"
#include "math/multi_exp.h"
#include "obs/trace.h"

namespace uldp {

namespace {

/// Theorem 4 condition (2): the worst-case integer magnitude
///   sum_s sum_u |E| n_su (C_LCM / N_u) + |S| |Z| C_LCM
/// must stay below n/2 (signed fixed-point headroom). |E|,|Z| < 2^63 by
/// the Encode range check.
Status CheckTheorem4Bound(const ProtocolConfig& config, int num_silos,
                          int num_users, const BigInt& c_lcm,
                          const BigInt& n) {
  BigInt e_max = BigInt(1) << 63;
  BigInt bound =
      c_lcm * e_max *
      BigInt(static_cast<uint64_t>(num_silos) *
             (static_cast<uint64_t>(num_users) * config.n_max + 1));
  if (bound >= n >> 1) {
    return Status::FailedPrecondition(
        "Theorem 4 overflow condition violated: increase paillier_bits or "
        "decrease n_max (C_LCM has " +
        std::to_string(c_lcm.BitLength()) + " bits, modulus " +
        std::to_string(n.BitLength()) + ")");
  }
  return Status::Ok();
}

uint64_t SlotCounter(size_t user, size_t slot) {
  return (static_cast<uint64_t>(user) << 32) | static_cast<uint64_t>(slot);
}

}  // namespace

int OtRealSlots(const ProtocolConfig& config) {
  return static_cast<int>(
      std::max(0.0, std::min(1.0, config.ot_sample_rate)) * config.ot_slots +
      0.5);
}

int StreamChunkUsers(const ProtocolConfig& config) {
  return config.stream_chunk_users > 0 ? config.stream_chunk_users : 0;
}

int StreamChunkCoords(const ProtocolConfig& config) {
  if (config.stream_chunk_users <= 0) return 0;
  return config.stream_chunk_coords > 0 ? config.stream_chunk_coords : 256;
}

int StreamWindow(const ProtocolConfig& config) {
  return config.stream_window > 0 ? config.stream_window : 4;
}

Status ProtocolParams::Derive() {
  if (num_silos < 2 || num_users < 1) {
    return Status::InvalidArgument("protocol needs >= 2 silos and >= 1 user");
  }
  if (public_key.n.IsZero()) {
    return Status::InvalidArgument("protocol params missing Paillier modulus");
  }
  public_key.n_squared = public_key.n * public_key.n;
  public_key.modulus_bits = public_key.n.BitLength();
  c_lcm = LcmUpTo(static_cast<uint64_t>(config.n_max));
  codec = FixedPointCodec(public_key.n, config.precision);
  auto pack = PackedCodec::Create(public_key.n, config.precision,
                                  config.pack_slots, config.pack_clip, c_lcm,
                                  num_silos, num_users);
  if (!pack.ok()) return pack.status();
  packed = std::move(pack.value());
  if (config.ot_slots > 0) {
    if (ot_group.p.IsZero() || ot_group.g.IsZero()) {
      return Status::InvalidArgument("OT mode requires the OT group");
    }
    ot_group.EnsureGeneratorTable();
  }
  if (config.stream_chunk_users > 0 && config.cache_enc_weights) {
    // The enc-weight cache is by definition a full round's worth of
    // resident ciphertexts — the opposite of the streaming contract.
    return Status::InvalidArgument(
        "stream_chunk_users is incompatible with cache_enc_weights");
  }
  return CheckTheorem4Bound(config, num_silos, num_users, c_lcm,
                            public_key.n);
}

// ---------------------------------------------------------------------------
// ServerCore

ServerCore::ServerCore(const ProtocolConfig& config, int num_silos,
                       int num_users)
    : root_(config.seed) {
  ULDP_CHECK_GE(num_silos, 2);
  ULDP_CHECK_GE(num_users, 1);
  ULDP_CHECK_GE(config.n_max, 1);
  params_.config = config;
  params_.num_silos = num_silos;
  params_.num_users = num_users;
}

Status ServerCore::GenerateKeys(ThreadPool& pool) {
  obs::TraceSpan span("core.generate_keys");
  const ProtocolConfig& config = params_.config;
  // The key is a pure function of the seed: the keygen entropy comes from a
  // dedicated Fork substream, so nothing else the server (or any silo)
  // draws can shift it.
  Rng keygen_rng = root_.Fork(0, 0, kRngStreamKeygen);
  ULDP_RETURN_IF_ERROR(Paillier::GenerateKeyPair(config.paillier_bits,
                                                 keygen_rng,
                                                 &params_.public_key,
                                                 &secret_key_, &pool));
  if (config.fast_paillier) {
    paillier_ =
        std::make_unique<PaillierContext>(params_.public_key, secret_key_);
  }
  if (config.ot_slots > 0) {
    Rng ot_rng = root_.Fork(0, 0, kRngStreamOtGroup);
    params_.ot_group =
        DhGroup::GenerateSafePrimeGroup(config.ot_group_bits, ot_rng);
  }
  ULDP_RETURN_IF_ERROR(params_.Derive());
  view_.doubly_blinded_histograms.assign(params_.num_silos, {});
  histogram_absorbed_.assign(params_.num_silos, false);
  keys_done_ = true;
  return Status::Ok();
}

Status ServerCore::AbsorbBlindedHistogram(int silo,
                                          std::vector<BigInt> blinded) {
  if (!keys_done_) {
    return Status::FailedPrecondition("GenerateKeys() has not run");
  }
  if (silo < 0 || silo >= params_.num_silos) {
    return Status::InvalidArgument("blinded histogram from unknown silo " +
                                   std::to_string(silo));
  }
  if (static_cast<int>(blinded.size()) != params_.num_users) {
    return Status::InvalidArgument("blinded histogram size != user count");
  }
  for (const BigInt& b : blinded) {
    if (b.IsNegative() || b >= params_.public_key.n) {
      return Status::InvalidArgument(
          "blinded histogram entry outside the field");
    }
  }
  view_.doubly_blinded_histograms[silo] = std::move(blinded);
  histogram_absorbed_[silo] = true;
  return Status::Ok();
}

Status ServerCore::FinalizeSetup() {
  obs::TraceSpan span("core.finalize_setup");
  if (!keys_done_) {
    return Status::FailedPrecondition("GenerateKeys() has not run");
  }
  for (int s = 0; s < params_.num_silos; ++s) {
    if (!histogram_absorbed_[s]) {
      return Status::FailedPrecondition("silo " + std::to_string(s) +
                                        " has not sent its histogram");
    }
  }
  const BigInt& n = params_.public_key.n;
  // B(N_u) = sum_s B'(n_su) = r_u * N_u mod n (pairwise masks cancel).
  view_.blinded_totals.assign(params_.num_users, BigInt(0));
  for (int u = 0; u < params_.num_users; ++u) {
    BigInt acc(0);
    for (int s = 0; s < params_.num_silos; ++s) {
      acc = acc.ModAdd(view_.doubly_blinded_histograms[s][u], n);
    }
    view_.blinded_totals[u] = std::move(acc);
  }
  b_inv_.assign(params_.num_users, BigInt(0));
  for (int u = 0; u < params_.num_users; ++u) {
    const BigInt& bt = view_.blinded_totals[u];
    if (bt.IsZero()) {
      // N_u = 0: the user holds no records anywhere; weight stays zero.
      continue;
    }
    auto inv = bt.ModInverse(n);
    if (!inv.ok()) return inv.status();
    b_inv_[u] = std::move(inv.value());
  }
  setup_done_ = true;
  return Status::Ok();
}

Result<BigInt> ServerCore::PEncrypt(const BigInt& m, Rng& rng) const {
  return params_.config.fast_paillier
             ? paillier_->Encrypt(m, rng)
             : Paillier::Encrypt(params_.public_key, m, rng);
}

Result<BigInt> ServerCore::PDecrypt(const BigInt& c) const {
  return params_.config.fast_paillier
             ? paillier_->Decrypt(c)
             : Paillier::Decrypt(params_.public_key, secret_key_, c);
}

Result<std::vector<BigInt>> ServerCore::EncryptWeights(
    uint64_t round, const std::vector<bool>& user_sampled, ThreadPool& pool) {
  obs::TraceSpan span("core.encrypt_weights", "round",
                      static_cast<int64_t>(round));
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  if (params_.config.ot_slots > 0) {
    return Status::FailedPrecondition(
        "OT mode derives the sampling mask privately; use OtSenderInit");
  }
  const int num_users = params_.num_users;
  if (static_cast<int>(user_sampled.size()) != num_users) {
    return Status::InvalidArgument("sampling mask size mismatch");
  }
  if (params_.config.cache_enc_weights && cache_valid_ &&
      cached_mask_ == user_sampled) {
    enc_cache_hits_.Add(1);
    return cached_enc_;
  }
  std::vector<BigInt> enc_weights(num_users);
  if (params_.config.fast_paillier) {
    // Randomizer pipeline: r^n mod n^2 is plaintext-independent, so
    // EncryptBatch batch-computes one randomizer per user on the pool
    // (drawing r from the same Fork(round, user) substream, in the same
    // order, as a direct Encrypt would), then encryption itself is a
    // single modular multiply per user.
    std::vector<BigInt> plains(num_users);
    for (int u = 0; u < num_users; ++u) {
      if (user_sampled[u]) plains[u] = b_inv_[u];
    }
    auto batch = paillier_->EncryptBatch(
        plains,
        [&](size_t u) {
          return root_.Fork(round, static_cast<uint64_t>(u),
                            kRngStreamEncrypt);
        },
        pool);
    if (!batch.ok()) return batch.status();
    enc_weights = std::move(batch.value());
  } else {
    std::vector<Status> user_status(num_users, Status::Ok());
    pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t ui) {
      const int u = static_cast<int>(ui);
      Rng user_rng = root_.Fork(round, static_cast<uint64_t>(u),
                                kRngStreamEncrypt);
      BigInt plain = user_sampled[u] ? b_inv_[u] : BigInt(0);
      auto c = Paillier::Encrypt(params_.public_key, plain, user_rng);
      if (!c.ok()) {
        user_status[u] = c.status();
        return;
      }
      enc_weights[u] = std::move(c.value());
    });
    ULDP_RETURN_IF_ERROR(FirstError(user_status));
  }
  if (params_.config.cache_enc_weights) {
    cached_enc_ = enc_weights;
    cached_mask_ = user_sampled;
    cache_valid_ = true;
  }
  return enc_weights;
}

Result<std::vector<BigInt>> ServerCore::EncryptWeightsRange(
    uint64_t round, const std::vector<bool>& user_sampled, int u0, int u1,
    ThreadPool& pool) {
  obs::TraceSpan span("core.encrypt_weights_range", "u0",
                      static_cast<int64_t>(u0));
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  if (params_.config.ot_slots > 0) {
    return Status::FailedPrecondition(
        "OT mode derives the sampling mask privately; use OtSenderInit");
  }
  const int num_users = params_.num_users;
  if (static_cast<int>(user_sampled.size()) != num_users) {
    return Status::InvalidArgument("sampling mask size mismatch");
  }
  if (u0 < 0 || u1 > num_users || u0 > u1) {
    return Status::InvalidArgument("user range out of bounds");
  }
  const int count = u1 - u0;
  std::vector<BigInt> enc_weights(count);
  if (params_.config.fast_paillier) {
    // Same randomizer pipeline as EncryptWeights, with the Fork substream
    // addressed by the absolute user index u0 + i: per-user randomness is
    // independent of how the round is chunked, so concatenated range calls
    // are bitwise identical to one full-vector call.
    std::vector<BigInt> plains(count);
    for (int i = 0; i < count; ++i) {
      if (user_sampled[u0 + i]) plains[i] = b_inv_[u0 + i];
    }
    auto batch = paillier_->EncryptBatch(
        plains,
        [&](size_t i) {
          return root_.Fork(round, static_cast<uint64_t>(u0) + i,
                            kRngStreamEncrypt);
        },
        pool);
    if (!batch.ok()) return batch.status();
    enc_weights = std::move(batch.value());
  } else {
    std::vector<Status> user_status(count, Status::Ok());
    pool.ParallelFor(static_cast<size_t>(count), [&](size_t i) {
      const int u = u0 + static_cast<int>(i);
      Rng user_rng =
          root_.Fork(round, static_cast<uint64_t>(u), kRngStreamEncrypt);
      BigInt plain = user_sampled[u] ? b_inv_[u] : BigInt(0);
      auto c = Paillier::Encrypt(params_.public_key, plain, user_rng);
      if (!c.ok()) {
        user_status[i] = c.status();
        return;
      }
      enc_weights[i] = std::move(c.value());
    });
    ULDP_RETURN_IF_ERROR(FirstError(user_status));
  }
  return enc_weights;
}

Result<std::vector<OtSenderPublic>> ServerCore::OtSenderInit(uint64_t round,
                                                             ThreadPool& pool) {
  obs::TraceSpan span("core.ot_sender_init", "round",
                      static_cast<int64_t>(round));
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  const ProtocolConfig& config = params_.config;
  if (config.ot_slots <= 0) {
    return Status::FailedPrecondition("OT mode is disabled");
  }
  const int num_users = params_.num_users;
  const size_t n_slots = static_cast<size_t>(config.ot_slots);
  ObliviousTransfer ot(params_.ot_group, n_slots);

  // Flat (user × (slot + 1)) sweep: lanes [0, slots) sample the per-slot
  // group elements C_i; the extra lane draws the sender secret r and runs
  // the A = g^r exponentiation, so sender-side exponentiations parallelize
  // across slots AND users even when one user dominates.
  std::vector<std::vector<BigInt>> slot_elems(num_users,
                                              std::vector<BigInt>(n_slots));
  std::vector<BigInt> secrets(num_users), elements(num_users);
  pool.ParallelFor(
      static_cast<size_t>(num_users) * (n_slots + 1), [&](size_t i) {
        const size_t u = i / (n_slots + 1), lane = i % (n_slots + 1);
        if (lane < n_slots) {
          Rng rng = root_.Fork(round, SlotCounter(u, lane),
                               kRngStreamOtSlotElem);
          slot_elems[u][lane] = ot.SampleSlotElement(rng);
        } else {
          Rng rng = root_.Fork(round, static_cast<uint64_t>(u),
                               kRngStreamOtSender);
          secrets[u] = ot.SampleSenderSecret(rng);
          elements[u] = ot.SenderElement(secrets[u]);
        }
      });

  // Per-user assembly plus the private real/dummy slot shuffle.
  ot_senders_.assign(num_users, {});
  ot_perms_.assign(num_users, {});
  pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t u) {
    ot_senders_[u] = ot.AssembleSender(std::move(slot_elems[u]),
                                       std::move(secrets[u]),
                                       std::move(elements[u]));
    ot_perms_[u].resize(config.ot_slots);
    std::iota(ot_perms_[u].begin(), ot_perms_[u].end(), 0);
    Rng shuffle_rng = root_.Fork(round, static_cast<uint64_t>(u),
                                 kRngStreamOtShuffle);
    shuffle_rng.Shuffle(ot_perms_[u]);
  });
  ot_round_ = round;
  ot_pending_ = true;

  std::vector<OtSenderPublic> publics(num_users);
  for (int u = 0; u < num_users; ++u) {
    publics[u].c = ot_senders_[u].c;
    publics[u].a = ot_senders_[u].a;
  }
  return publics;
}

Result<std::vector<std::vector<std::vector<uint8_t>>>>
ServerCore::OtEncryptSlots(uint64_t round,
                           const std::vector<BigInt>& receiver_bs,
                           ThreadPool& pool) {
  if (!ot_pending_ || ot_round_ != round) {
    return Status::FailedPrecondition(
        "OtEncryptSlots without a matching OtSenderInit");
  }
  const int num_users = params_.num_users;
  if (static_cast<int>(receiver_bs.size()) != num_users) {
    return Status::InvalidArgument("OT receiver message count mismatch");
  }
  const size_t n_slots = static_cast<size_t>(params_.config.ot_slots);
  const int real_slots = OtRealSlots(params_.config);
  const size_t clen = static_cast<size_t>(
                          (params_.public_key.n_squared.BitLength() + 7) / 8) +
                      8;
  ObliviousTransfer ot(params_.ot_group, n_slots);

  // Per-user B^{-1}, amortized across the user's slots.
  std::vector<BigInt> b_invs(num_users);
  std::vector<Status> user_status(num_users, Status::Ok());
  pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t u) {
    auto inv = ot.InvertReceiverMessage(receiver_bs[u]);
    if (!inv.ok()) {
      user_status[u] = inv.status();
      return;
    }
    b_invs[u] = std::move(inv.value());
  });
  ULDP_RETURN_IF_ERROR(FirstError(user_status));

  // Flat (user × slot) sweep: one Paillier encryption plus one OT pad
  // exponentiation per lane, each on its own Fork substream.
  std::vector<std::vector<std::vector<uint8_t>>> encrypted(
      num_users, std::vector<std::vector<uint8_t>>(n_slots));
  std::vector<Status> slot_status(static_cast<size_t>(num_users) * n_slots,
                                  Status::Ok());
  pool.ParallelFor(
      static_cast<size_t>(num_users) * n_slots, [&](size_t i) {
        const size_t u = i / n_slots, slot = i % n_slots;
        Rng enc_rng = root_.Fork(round, SlotCounter(u, slot),
                                 kRngStreamOtSlotEnc);
        const bool real = ot_perms_[u][slot] < real_slots;
        auto c = PEncrypt(real ? b_inv_[u] : BigInt(0), enc_rng);
        if (!c.ok()) {
          slot_status[i] = c.status();
          return;
        }
        encrypted[u][slot] = ot.SenderEncryptSlot(
            ot_senders_[u], b_invs[u], c.value().ToBytesLE(clen), slot);
      });
  ULDP_RETURN_IF_ERROR(FirstError(slot_status));
  return encrypted;
}

Result<std::vector<BigInt>> ServerCore::AggregateCiphertexts(
    const std::vector<std::vector<BigInt>>& silo_ciphers,
    ThreadPool& pool) const {
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  if (static_cast<int>(silo_ciphers.size()) != params_.num_silos) {
    return Status::InvalidArgument("cipher count != silo count");
  }
  const size_t dim = silo_ciphers[0].size();
  for (const auto& c : silo_ciphers) {
    if (c.size() != dim) {
      return Status::InvalidArgument("silo cipher dimension mismatch");
    }
    for (const BigInt& x : c) {
      if (x.IsNegative() || x >= params_.public_key.n_squared) {
        return Status::InvalidArgument("silo ciphertext outside Z_{n^2}");
      }
    }
  }
  std::vector<BigInt> product(dim, BigInt(1));
  pool.ParallelFor(dim, [&](size_t d) {
    for (int s = 0; s < params_.num_silos; ++s) {
      product[d] = Paillier::AddCiphertexts(params_.public_key, product[d],
                                            silo_ciphers[s][d]);
    }
  });
  return product;
}

Status ServerCore::AccumulateSiloCipher(const std::vector<BigInt>& cipher,
                                        std::vector<BigInt>* product) const {
  obs::TraceSpan span("core.accumulate_silo_cipher");
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  if (cipher.size() != product->size()) {
    return Status::InvalidArgument("silo cipher dimension mismatch");
  }
  for (const BigInt& x : cipher) {
    if (x.IsNegative() || x >= params_.public_key.n_squared) {
      return Status::InvalidArgument("silo ciphertext outside Z_{n^2}");
    }
  }
  for (size_t d = 0; d < cipher.size(); ++d) {
    (*product)[d] = Paillier::AddCiphertexts(params_.public_key,
                                             (*product)[d], cipher[d]);
  }
  return Status::Ok();
}

Status ServerCore::AccumulateSiloCipherRange(
    const std::vector<BigInt>& chunk, size_t offset,
    std::vector<BigInt>* product) const {
  obs::TraceSpan span("core.accumulate_silo_cipher_range", "offset",
                      static_cast<int64_t>(offset));
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  if (offset > product->size() || chunk.size() > product->size() - offset) {
    return Status::InvalidArgument("silo cipher chunk out of range");
  }
  for (const BigInt& x : chunk) {
    if (x.IsNegative() || x >= params_.public_key.n_squared) {
      return Status::InvalidArgument("silo ciphertext outside Z_{n^2}");
    }
  }
  for (size_t i = 0; i < chunk.size(); ++i) {
    (*product)[offset + i] = Paillier::AddCiphertexts(
        params_.public_key, (*product)[offset + i], chunk[i]);
  }
  return Status::Ok();
}

Result<Vec> ServerCore::DecryptAggregate(const std::vector<BigInt>& product,
                                         ThreadPool& pool,
                                         size_t model_dim) const {
  obs::TraceSpan span("core.decrypt_aggregate");
  if (!setup_done_) {
    return Status::FailedPrecondition("setup has not completed");
  }
  const PackedCodec& packed = params_.packed;
  if (model_dim == 0) {
    if (packed.active()) {
      return Status::InvalidArgument(
          "packed decryption requires the model dimension");
    }
    model_dim = product.size();
  }
  if (packed.PackedDim(model_dim) != product.size()) {
    return Status::InvalidArgument("aggregate dimension mismatch");
  }
  const size_t cdim = product.size();
  const size_t slots = static_cast<size_t>(packed.slots());
  Vec out(model_dim, 0.0);
  std::vector<Status> dim_status(cdim, Status::Ok());
  pool.ParallelFor(cdim, [&](size_t g) {
    auto plain = PDecrypt(product[g]);
    if (!plain.ok()) {
      dim_status[g] = plain.status();
      return;
    }
    if (packed.active()) {
      const size_t d0 = g * slots;
      dim_status[g] =
          packed.DecodeGroup(plain.value(), params_.codec, params_.c_lcm,
                             std::min(slots, model_dim - d0), &out[d0]);
    } else {
      out[g] = params_.codec.Decode(plain.value(), params_.c_lcm);
    }
  });
  ULDP_RETURN_IF_ERROR(FirstError(dim_status));
  return out;
}

// ---------------------------------------------------------------------------
// SiloCore

SiloCore::SiloCore(ProtocolParams params, int silo_id,
                   std::vector<int> histogram)
    : params_(std::move(params)),
      silo_id_(silo_id),
      histogram_(std::move(histogram)),
      root_(params_.config.seed) {
  ULDP_CHECK_GE(silo_id_, 0);
  ULDP_CHECK_LT(silo_id_, params_.num_silos);
  ULDP_CHECK_EQ(histogram_.size(), static_cast<size_t>(params_.num_users));
  if (params_.config.fast_paillier) {
    paillier_ = std::make_unique<PaillierContext>(params_.public_key);
  }
  dh_group_ = DhGroup::Rfc3526Modp2048();
  // The key pair is a pure function of (seed, silo id): the distributed
  // silo derives exactly the pair the in-process simulation would.
  Rng dh_rng = root_.Fork(0, static_cast<uint64_t>(silo_id_), kRngStreamDhKey);
  dh_key_ = GenerateDhKeyPair(dh_group_, dh_rng);
}

Status SiloCore::ComputePairKeys(const std::vector<BigInt>& dh_publics) {
  if (static_cast<int>(dh_publics.size()) != params_.num_silos) {
    return Status::InvalidArgument("DH directory size != silo count");
  }
  if (dh_publics[silo_id_] != dh_key_.public_key) {
    return Status::InvalidArgument(
        "DH directory does not contain this silo's public key");
  }
  pair_keys_.assign(params_.num_silos, ChaChaRng::Key{});
  for (int peer = 0; peer < params_.num_silos; ++peer) {
    if (peer == silo_id_) continue;
    auto shared = ComputeSharedSecret(dh_group_, dh_key_.secret_key,
                                      dh_publics[peer]);
    if (!shared.ok()) return shared.status();
    pair_keys_[peer] = ChaChaRng::DeriveKey(DeriveSharedSeedMaterial(
        shared.value(), "pairmask", silo_id_, peer));
  }
  pair_keys_done_ = true;
  return Status::Ok();
}

BigInt SiloCore::MakeSharedSeed() const {
  Rng seed_rng = root_.Fork(0, 0, kRngStreamSharedSeed);
  return BigInt::RandomBits(256, seed_rng);
}

void SiloCore::SetSharedSeed(const BigInt& r_seed) {
  shared_seed_key_ =
      ChaChaRng::DeriveKey("uldp-shared-seed|" + r_seed.ToHex());
  seed_set_ = true;
}

Result<std::vector<uint8_t>> SiloCore::PairStreamXor(
    int peer, uint64_t tag, uint32_t stream_id,
    std::vector<uint8_t> data) const {
  if (!pair_keys_done_) {
    return Status::FailedPrecondition("pairwise keys not derived yet");
  }
  if (peer < 0 || peer >= params_.num_silos || peer == silo_id_) {
    return Status::InvalidArgument("invalid relay peer " +
                                   std::to_string(peer));
  }
  ChaChaRng stream(pair_keys_[peer], ChaChaRng::MakeNonce(tag, stream_id));
  size_t i = 0;
  while (i < data.size()) {
    uint64_t block = stream.NextUint64();
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<uint8_t>(block >> (8 * b));
    }
  }
  return data;
}

BigInt SiloCore::BlindOf(int user) const {
  // All silos derive the same r_u from the shared seed R; the server never
  // learns R. r_u must be a unit of F_n — overwhelmingly likely (Eq. 4 of
  // the paper); regenerate with a counter otherwise.
  const BigInt& n = params_.public_key.n;
  for (uint32_t attempt = 0;; ++attempt) {
    ChaChaRng stream(shared_seed_key_,
                     ChaChaRng::MakeNonce(
                         MakeMaskTag(MaskPhase::kUserBlind,
                                     static_cast<uint64_t>(user)),
                         /*stream_id=*/attempt));
    BigInt r = stream.UniformBelow(n);
    if (!r.IsZero() && BigInt::Gcd(r, n) == BigInt(1)) return r;
  }
}

BigInt SiloCore::PairMask(int peer, uint64_t tag, int index) const {
  ChaChaRng stream(pair_keys_[peer],
                   ChaChaRng::MakeNonce(tag, static_cast<uint32_t>(index)));
  return stream.UniformBelow(params_.public_key.n);
}

Result<std::vector<BigInt>> SiloCore::BlindHistogram(ThreadPool& pool) const {
  obs::TraceSpan span("core.blind_histogram");
  if (!pair_keys_done_ || !seed_set_) {
    return Status::FailedPrecondition(
        "histogram blinding requires pair keys and the shared seed");
  }
  const BigInt& n = params_.public_key.n;
  const int num_users = params_.num_users;
  const uint64_t histogram_tag =
      MakeMaskTag(MaskPhase::kHistogramBlind, /*round=*/0);
  std::vector<BigInt> blinded(num_users);
  std::vector<Status> user_status(num_users, Status::Ok());
  pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t ui) {
    const int u = static_cast<int>(ui);
    if (histogram_[u] < 0) {
      user_status[u] = Status::InvalidArgument("negative histogram entry");
      return;
    }
    BigInt b = BlindOf(u).ModMul(
        BigInt(static_cast<int64_t>(histogram_[u])), n);
    // Pairwise additive masks (setup e): +mask toward larger peers,
    // -mask toward smaller, so the server-side sum cancels them.
    for (int other = 0; other < params_.num_silos; ++other) {
      if (other == silo_id_) continue;
      BigInt m = PairMask(other, histogram_tag, u);
      b = silo_id_ < other ? b.ModAdd(m, n) : b.ModSub(m, n);
    }
    blinded[u] = std::move(b);
  });
  ULDP_RETURN_IF_ERROR(FirstError(user_status));
  return blinded;
}

Result<std::vector<BigInt>> SiloCore::OtReceiverChoose(
    uint64_t round, const std::vector<OtSenderPublic>& senders,
    ThreadPool& pool) {
  obs::TraceSpan span("core.ot_receiver_choose", "round",
                      static_cast<int64_t>(round));
  if (!seed_set_) {
    return Status::FailedPrecondition("shared seed not set");
  }
  const ProtocolConfig& config = params_.config;
  if (config.ot_slots <= 0) {
    return Status::FailedPrecondition("OT mode is disabled");
  }
  const int num_users = params_.num_users;
  if (static_cast<int>(senders.size()) != num_users) {
    return Status::InvalidArgument("OT sender message count mismatch");
  }
  const size_t n_slots = static_cast<size_t>(config.ot_slots);
  for (const auto& s : senders) {
    if (s.c.size() != n_slots) {
      return Status::InvalidArgument("OT sender slot count mismatch");
    }
  }
  ObliviousTransfer ot(params_.ot_group, n_slots);
  const uint64_t choice_tag = MakeMaskTag(MaskPhase::kOtSlotChoice, round);
  ot_ks_.assign(num_users, BigInt(0));
  ot_sigmas_.assign(num_users, 0);
  std::vector<BigInt> bs(num_users);
  std::vector<Status> user_status(num_users, Status::Ok());
  pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t ui) {
    const int u = static_cast<int>(ui);
    // Shared-seed slot choice: identical across silos, hidden from the
    // server and — post-shuffle — uninformative to the silos.
    ChaChaRng choice(shared_seed_key_,
                     ChaChaRng::MakeNonce(choice_tag,
                                          static_cast<uint32_t>(u)));
    const size_t sigma = choice.NextUint64() % n_slots;
    Rng krng = root_.Fork(round, static_cast<uint64_t>(u),
                          kRngStreamOtReceiver);
    auto state = ot.ReceiverCommit(senders[u].c[sigma], sigma, krng);
    if (!state.ok()) {
      user_status[u] = state.status();
      return;
    }
    ot_ks_[u] = std::move(state.value().k);
    ot_sigmas_[u] = sigma;
    bs[u] = std::move(state.value().b);
  });
  ULDP_RETURN_IF_ERROR(FirstError(user_status));
  ot_round_ = round;
  ot_pending_ = true;
  return bs;
}

Result<std::vector<BigInt>> SiloCore::OtReceiverDecrypt(
    uint64_t round, const std::vector<OtSenderPublic>& senders,
    const std::vector<std::vector<std::vector<uint8_t>>>& encrypted,
    ThreadPool& pool) {
  obs::TraceSpan span("core.ot_receiver_decrypt", "round",
                      static_cast<int64_t>(round));
  if (!ot_pending_ || ot_round_ != round) {
    return Status::FailedPrecondition(
        "OtReceiverDecrypt without a matching OtReceiverChoose");
  }
  const int num_users = params_.num_users;
  const size_t n_slots = static_cast<size_t>(params_.config.ot_slots);
  if (static_cast<int>(senders.size()) != num_users ||
      static_cast<int>(encrypted.size()) != num_users) {
    return Status::InvalidArgument("OT ciphertext count mismatch");
  }
  for (const auto& e : encrypted) {
    if (e.size() != n_slots) {
      return Status::InvalidArgument("OT ciphertext slot count mismatch");
    }
  }
  ObliviousTransfer ot(params_.ot_group, n_slots);
  std::vector<BigInt> enc_weights(num_users);
  std::vector<Status> user_status(num_users, Status::Ok());
  // Flat per-user sweep: the pad exponentiation K = A^k dominates.
  pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t u) {
    BigInt key = ot.ReceiverKeyElement(senders[u].a, ot_ks_[u]);
    std::vector<uint8_t> plain =
        ot.ApplyPad(key, encrypted[u][ot_sigmas_[u]]);
    BigInt c = BigInt::FromBytesLE(plain);
    if (c >= params_.public_key.n_squared) {
      user_status[u] =
          Status::InvalidArgument("OT payload outside Z_{n^2}");
      return;
    }
    enc_weights[u] = std::move(c);
  });
  ULDP_RETURN_IF_ERROR(FirstError(user_status));
  return enc_weights;
}

BigInt SiloCore::PMulPlaintext(const BigInt& c, const BigInt& k) const {
  return params_.config.fast_paillier
             ? paillier_->MulPlaintext(c, k)
             : Paillier::MulPlaintext(params_.public_key, c, k);
}

void WeightTableCache::BeginRound(int num_users, bool keep) {
  if (!keep) {
    tables_.clear();
    base_.clear();
  }
  tables_.resize(num_users);
  base_.resize(num_users);
}

const FixedBaseTable* WeightTableCache::Ensure(const PaillierContext& ctx,
                                               int user,
                                               const BigInt& enc_weight,
                                               size_t uses) {
  if (enc_weight.IsNegative() ||
      enc_weight >= ctx.public_key().n_squared) {
    return nullptr;
  }
  if (tables_[user] != nullptr && base_[user] == enc_weight) {
    hits_.Add(1);
    return tables_[user].get();
  }
  tables_[user] = std::make_unique<FixedBaseTable>(
      ctx.MakeMulPlaintextTable(enc_weight, uses));
  base_[user] = enc_weight;
  return tables_[user].get();
}

void WeightTableCache::DropRange(int u0, int u1) {
  for (int u = u0; u < u1; ++u) tables_[u].reset();
}

std::vector<BigInt> SiloCore::NewCipherAccumulator(size_t dim) {
  return std::vector<BigInt>(dim, BigInt(1));
}

Status SiloCore::AccumulateUsers(
    int u0, int u1, const std::vector<BigInt>& enc_weights,
    const std::vector<std::unique_ptr<FixedBaseTable>>* tables,
    const std::vector<Vec>& deltas, size_t model_dim,
    std::vector<BigInt>* cipher, ThreadPool& pool) const {
  if (!seed_set_) {
  obs::TraceSpan span("core.accumulate_users", "u0",
                      static_cast<int64_t>(u0));
    return Status::FailedPrecondition("weighting requires the shared seed");
  }
  const int num_users = params_.num_users;
  if (static_cast<int>(enc_weights.size()) != num_users) {
    return Status::InvalidArgument("encrypted weight count mismatch");
  }
  if (static_cast<int>(deltas.size()) != num_users) {
    return Status::InvalidArgument("delta matrix size mismatch");
  }
  if (u0 < 0 || u1 > num_users || u0 > u1) {
    return Status::InvalidArgument("user batch out of range");
  }
  const PackedCodec& packed = params_.packed;
  const size_t cdim = cipher->size();
  if (cdim != packed.PackedDim(model_dim)) {
    return Status::InvalidArgument("cipher accumulator dimension mismatch");
  }
  const size_t slots = static_cast<size_t>(packed.slots());
  const BigInt& n = params_.public_key.n;
  const PaillierPublicKey& pk = params_.public_key;
  const BigInt c_lcm_mod_n = params_.c_lcm.Mod(n);

  // Per-user prep: validation plus the scalar base n_su * r_u * C_LCM
  // mod n (the delta encoding is per coordinate below).
  std::vector<Status> prep_status(u1 - u0, Status::Ok());
  std::vector<BigInt> bases(u1 - u0);
  std::vector<char> active(u1 - u0, 0);
  pool.ParallelFor(static_cast<size_t>(u1 - u0), [&](size_t i) {
    const int u = u0 + static_cast<int>(i);
    if (deltas[u].empty()) return;  // user has no records at this silo
    if (deltas[u].size() != model_dim) {
      prep_status[i] = Status::InvalidArgument("delta dimension mismatch");
      return;
    }
    if (enc_weights[u].IsNegative() || enc_weights[u] >= pk.n_squared) {
      prep_status[i] =
          Status::InvalidArgument("encrypted weight outside Z_{n^2}");
      return;
    }
    if (histogram_[u] == 0) return;
    active[i] = 1;
    bases[i] = BlindOf(u)
                   .ModMul(BigInt(static_cast<int64_t>(histogram_[u])), n)
                   .ModMul(c_lcm_mod_n, n);
  });
  ULDP_RETURN_IF_ERROR(FirstError(prep_status));

  // Packed or not, the per-user exponent for coordinate group g is the
  // group's (packed) delta encoding times the user's scalar base — the
  // aggregation stays a mod-n linear form, so slot digits add exactly like
  // unpacked coordinates.
  auto group_exponent = [&](int u, size_t g, Result<BigInt>* out) {
    if (packed.active()) {
      const size_t d0 = g * slots;
      *out = packed.EncodeGroup(deltas[u].data() + d0,
                                std::min(slots, model_dim - d0));
    } else {
      *out = params_.codec.Encode(deltas[u][g]);
    }
  };

  // Pippenger path: the whole batch's Enc(B_inv) bases convert into the
  // Montgomery domain once, then every coordinate group folds through one
  // shared-squaring multi-exponentiation.
  std::unique_ptr<MultiExp> multi;
  std::vector<int> multi_users;
  if (params_.config.multi_exp && params_.config.fast_paillier) {
    std::vector<BigInt> multi_bases;
    for (int u = u0; u < u1; ++u) {
      if (!active[u - u0]) continue;
      multi_users.push_back(u);
      multi_bases.push_back(enc_weights[u]);
    }
    if (!multi_bases.empty()) {
      multi = std::make_unique<MultiExp>(paillier_->mont_n_squared(),
                                         multi_bases);
    }
  }

  std::vector<Status> dim_status(cdim, Status::Ok());
  pool.ParallelFor(cdim, [&](size_t g) {
    if (multi != nullptr) {
      std::vector<BigInt> exps(multi_users.size(), BigInt(0));
      for (size_t i = 0; i < multi_users.size(); ++i) {
        const int u = multi_users[i];
        Result<BigInt> e = BigInt(0);
        group_exponent(u, g, &e);
        if (!e.ok()) {
          dim_status[g] = e.status();
          return;
        }
        if (e.value().IsZero()) continue;  // zero exponents are free
        exps[i] = e.value().ModMul(bases[u - u0], n);
      }
      (*cipher)[g] =
          Paillier::AddCiphertexts(pk, (*cipher)[g], multi->Product(exps));
      return;
    }
    for (int u = u0; u < u1; ++u) {
      if (!active[u - u0]) continue;
      Result<BigInt> e = BigInt(0);
      group_exponent(u, g, &e);
      if (!e.ok()) {
        dim_status[g] = e.status();
        return;
      }
      if (e.value().IsZero()) continue;
      BigInt scalar = e.value().ModMul(bases[u - u0], n);
      const FixedBaseTable* table =
          tables != nullptr ? (*tables)[u].get() : nullptr;
      BigInt term = table != nullptr
                        ? paillier_->MulPlaintextWithTable(*table, scalar)
                        : PMulPlaintext(enc_weights[u], scalar);
      (*cipher)[g] = Paillier::AddCiphertexts(pk, (*cipher)[g], term);
    }
  });
  return FirstError(dim_status);
}

Status SiloCore::AccumulateUsersChunk(const std::vector<BigInt>& enc_chunk,
                                      int u0, int u1,
                                      const std::vector<Vec>& deltas,
                                      size_t model_dim,
                                      std::vector<BigInt>* cipher,
                                      ThreadPool& pool) {
  obs::TraceSpan span("core.accumulate_users_chunk", "u0",
                      static_cast<int64_t>(u0));
  const int num_users = params_.num_users;
  if (u0 < 0 || u1 > num_users || u0 > u1) {
    return Status::InvalidArgument("user chunk out of range");
  }
  if (enc_chunk.size() != static_cast<size_t>(u1 - u0)) {
    return Status::InvalidArgument("encrypted weight chunk size mismatch");
  }
  if (static_cast<int>(enc_scratch_.size()) != num_users) {
    enc_scratch_.assign(static_cast<size_t>(num_users), BigInt());
  }
  for (int u = u0; u < u1; ++u) enc_scratch_[u] = enc_chunk[u - u0];
  const ProtocolConfig& config = params_.config;
  const bool use_multi_exp = config.multi_exp && config.fast_paillier;
  const bool use_tables =
      config.fast_paillier && config.fixed_base && !use_multi_exp;
  const size_t cdim = cipher->size();
  // keep = false: streaming excludes cache_enc_weights, so tables never
  // outlive the chunk that built them.
  table_cache_.BeginRound(num_users, /*keep=*/false);
  if (use_tables) {
    pool.ParallelFor(static_cast<size_t>(u1 - u0), [&](size_t i) {
      const int u = u0 + static_cast<int>(i);
      if (deltas[u].empty() || histogram_[u] == 0) return;
      table_cache_.Ensure(*paillier_, u, enc_scratch_[u], cdim);
    });
  }
  Status status = AccumulateUsers(
      u0, u1, enc_scratch_, use_tables ? &table_cache_.tables() : nullptr,
      deltas, model_dim, cipher, pool);
  if (use_tables) table_cache_.DropRange(u0, u1);
  for (int u = u0; u < u1; ++u) enc_scratch_[u] = BigInt();
  return status;
}

Status SiloCore::FinishRound(uint64_t round, const Vec& noise,
                             std::vector<BigInt>* cipher,
                             ThreadPool& pool) const {
  obs::TraceSpan span("core.finish_round", "round",
                      static_cast<int64_t>(round));
  if (!pair_keys_done_ || !seed_set_) {
    return Status::FailedPrecondition(
        "weighting requires pair keys and the shared seed");
  }
  const PackedCodec& packed = params_.packed;
  if (packed.PackedDim(noise.size()) != cipher->size()) {
    return Status::InvalidArgument("noise dimension mismatch");
  }
  const size_t cdim = cipher->size();
  const size_t slots = static_cast<size_t>(packed.slots());
  const BigInt& n = params_.public_key.n;
  const PaillierPublicKey& pk = params_.public_key;
  const BigInt c_lcm_mod_n = params_.c_lcm.Mod(n);
  // Encoded noise z' = Encode(z) * C_LCM, then the pairwise additive masks
  // (weighting (c)); the per-(packed-)coordinate lanes are independent, and
  // masks are drawn per ciphertext coordinate so packed and unpacked runs
  // stay within the same PRF tag space.
  const uint64_t weighting_tag =
      MakeMaskTag(MaskPhase::kRoundWeighting, round);
  // Pipelined runs precompute the round's combined masks while waiting on
  // the previous aggregate (PrecomputeRoundMasks); the cached values are
  // the identical PRF evaluations, so both branches are bitwise equal.
  const std::vector<BigInt>* pre =
      premask_valid_ && premask_round_ == round && premask_.size() == cdim
          ? &premask_
          : nullptr;
  std::vector<Status> dim_status(cdim, Status::Ok());
  pool.ParallelFor(cdim, [&](size_t g) {
    Result<BigInt> z = BigInt(0);
    if (packed.active()) {
      const size_t d0 = g * slots;
      z = packed.EncodeGroup(noise.data() + d0,
                             std::min(slots, noise.size() - d0));
    } else {
      z = params_.codec.Encode(noise[g]);
    }
    if (!z.ok()) {
      dim_status[g] = z.status();
      return;
    }
    BigInt z_scaled = z.value().ModMul(c_lcm_mod_n, n);
    (*cipher)[g] = Paillier::AddPlaintext(pk, (*cipher)[g], z_scaled);
    BigInt mask;
    if (pre != nullptr) {
      mask = (*pre)[g];
    } else {
      mask = BigInt(0);
      for (int other = 0; other < params_.num_silos; ++other) {
        if (other == silo_id_) continue;
        BigInt m = PairMask(other, weighting_tag, static_cast<int>(g));
        mask = silo_id_ < other ? mask.ModAdd(m, n) : mask.ModSub(m, n);
      }
    }
    (*cipher)[g] = Paillier::AddPlaintext(pk, (*cipher)[g], mask);
  });
  return FirstError(dim_status);
}

Status SiloCore::PrecomputeRoundMasks(uint64_t round, size_t dim,
                                      ThreadPool& pool) {
  obs::TraceSpan span("core.precompute_round_masks", "round",
                      static_cast<int64_t>(round));
  if (!pair_keys_done_) {
    return Status::FailedPrecondition(
        "mask precomputation requires pair keys");
  }
  // Callers pass the model dimension; masks live per ciphertext
  // coordinate, so packed runs precompute ceil(dim/slots) lanes.
  dim = params_.packed.PackedDim(dim);
  const BigInt& n = params_.public_key.n;
  const uint64_t weighting_tag =
      MakeMaskTag(MaskPhase::kRoundWeighting, round);
  premask_valid_ = false;
  premask_.assign(dim, BigInt(0));
  pool.ParallelFor(dim, [&](size_t d) {
    BigInt mask(0);
    for (int other = 0; other < params_.num_silos; ++other) {
      if (other == silo_id_) continue;
      BigInt m = PairMask(other, weighting_tag, static_cast<int>(d));
      mask = silo_id_ < other ? mask.ModAdd(m, n) : mask.ModSub(m, n);
    }
    premask_[d] = mask;
  });
  premask_round_ = round;
  premask_valid_ = true;
  return Status::Ok();
}

Result<std::vector<BigInt>> SiloCore::WeightMaskRound(
    uint64_t round, const std::vector<BigInt>& enc_weights,
    const std::vector<Vec>& deltas, const Vec& noise, ThreadPool& pool) {
  if (!pair_keys_done_ || !seed_set_) {
    return Status::FailedPrecondition(
        "weighting requires pair keys and the shared seed");
  }
  const int num_users = params_.num_users;
  const ProtocolConfig& config = params_.config;
  const size_t dim = noise.size();
  const size_t cdim = params_.packed.PackedDim(dim);

  // Pippenger multi-exponentiation amortizes one shared squaring chain
  // across the whole user batch, superseding per-user fixed-base tables.
  const bool use_multi_exp = config.multi_exp && config.fast_paillier;
  const bool use_tables =
      config.fast_paillier && config.fixed_base && !use_multi_exp;
  const bool keep_tables = use_tables && config.cache_enc_weights;
  table_cache_.BeginRound(num_users, keep_tables);

  // Users are swept in index-ordered batches: each batch builds its
  // fixed-base tables in parallel, the per-coordinate sweep consumes
  // them, and (unless the cache keeps them) the batch's tables are freed.
  // This bounds transient table memory at ~batch * 2 MB worst case
  // instead of O(num_users); the round output is an exact modular
  // product, so batching never changes a bit.
  const int user_batch = use_tables || use_multi_exp ? 128 : num_users;
  std::vector<BigInt> cipher = NewCipherAccumulator(cdim);
  for (int u0 = 0; u0 < num_users; u0 += user_batch) {
    const int u1 = std::min(num_users, u0 + user_batch);
    if (use_tables) {
      pool.ParallelFor(static_cast<size_t>(u1 - u0), [&](size_t i) {
        const int u = u0 + static_cast<int>(i);
        if (deltas[u].empty() || histogram_[u] == 0) return;
        table_cache_.Ensure(*paillier_, u, enc_weights[u], cdim);
      });
    }
    ULDP_RETURN_IF_ERROR(AccumulateUsers(
        u0, u1, enc_weights, use_tables ? &table_cache_.tables() : nullptr,
        deltas, dim, &cipher, pool));
    if (use_tables && !keep_tables) table_cache_.DropRange(u0, u1);
  }
  ULDP_RETURN_IF_ERROR(FinishRound(round, noise, &cipher, pool));
  return cipher;
}

}  // namespace uldp
