// ULDP-NAIVE (Algorithm 1): DP-FedAVG-style per-silo clipping, but since a
// user may appear in every silo, user-level sensitivity of the aggregate is
// C*|S| and each silo must add Gaussian noise with variance sigma^2 C^2 |S|
// (so the aggregate carries sigma^2 C^2 |S|^2). Satisfies ULDP at a large
// utility cost — the paper's "substantial noise" baseline.

#ifndef ULDP_CORE_ULDP_NAIVE_H_
#define ULDP_CORE_ULDP_NAIVE_H_

#include "dp/accountant.h"
#include "fl/local_trainer.h"
#include "fl/round_engine.h"

namespace uldp {

class UldpNaiveTrainer final : public FlAlgorithm {
 public:
  UldpNaiveTrainer(const FederatedDataset& data, const Model& model,
                   FlConfig config);
  ~UldpNaiveTrainer() override;

  Status RunRound(int round, Vec& global_params) override;
  Result<double> EpsilonSpent(double delta) const override;
  void AccountRestoredRounds(int64_t rounds) override;
  std::string name() const override { return "ULDP-NAIVE"; }

 private:
  /// Per-silo round work, shared by the sync and async engine paths.
  Status LocalSiloWork(uint64_t version, const Vec& snapshot, int silo,
                       Model& model, Vec& delta);

  const FederatedDataset& data_;
  FlConfig config_;
  Rng rng_;
  RoundEngine engine_;
  PrivacyTracker tracker_;
  std::vector<std::vector<Example>> silo_examples_;
};

}  // namespace uldp

#endif  // ULDP_CORE_ULDP_NAIVE_H_
