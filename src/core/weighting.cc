#include "core/weighting.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

std::vector<std::vector<double>> ComputeWeights(const FederatedDataset& data,
                                                WeightingStrategy strategy) {
  const int s_count = data.num_silos();
  const int u_count = data.num_users();
  std::vector<std::vector<double>> weights(
      s_count, std::vector<double>(u_count, 0.0));
  switch (strategy) {
    case WeightingStrategy::kUniform: {
      double w = 1.0 / s_count;
      for (int s = 0; s < s_count; ++s) {
        for (int u = 0; u < u_count; ++u) weights[s][u] = w;
      }
      break;
    }
    case WeightingStrategy::kEnhanced: {
      for (int u = 0; u < u_count; ++u) {
        int total = data.TotalCountOf(u);
        if (total == 0) continue;
        for (int s = 0; s < s_count; ++s) {
          weights[s][u] =
              static_cast<double>(data.CountOf(s, u)) / total;
        }
      }
      break;
    }
  }
  return weights;
}

bool WeightsSatisfyUldpConstraint(
    const std::vector<std::vector<double>>& weights, double tolerance) {
  if (weights.empty()) return false;
  size_t users = weights[0].size();
  for (const auto& row : weights) {
    if (row.size() != users) return false;
    for (double w : row) {
      if (w < -tolerance || !std::isfinite(w)) return false;
    }
  }
  for (size_t u = 0; u < users; ++u) {
    double sum = 0.0;
    for (const auto& row : weights) sum += row[u];
    if (sum > 1.0 + tolerance) return false;
  }
  return true;
}

}  // namespace uldp
