// Experiment runner: drives any FlAlgorithm for T rounds, evaluating the
// global model on the held-out test set and recording the accumulated ULDP
// epsilon — producing exactly the (utility curve, privacy curve) pairs the
// paper plots in Figures 4-9.

#ifndef ULDP_CORE_EXPERIMENT_H_
#define ULDP_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fl/local_trainer.h"

namespace uldp {

enum class UtilityMetric {
  kAccuracy,  // Creditcard / MNIST / HeartDisease
  kCIndex,    // TcgaBrca
};

struct ExperimentConfig {
  int rounds = 20;       // T
  double delta = 1e-5;   // reporting delta
  int eval_every = 1;    // evaluate every k rounds
  UtilityMetric metric = UtilityMetric::kAccuracy;
  uint64_t init_seed = 42;  // model initialization seed
  /// When non-empty, the run writes its session state (fl/session.h) to
  /// <checkpoint_dir>/session.ckpt every `checkpoint_every` rounds and on
  /// the final round; with `resume` set it first loads that file and
  /// continues from the recorded round. Because all training randomness
  /// comes from Fork(round, silo, ...) substreams, a resumed run is
  /// bitwise identical to the uninterrupted one on the same seed (the
  /// trainer's already-spent privacy budget is replayed through
  /// FlAlgorithm::AccountRestoredRounds).
  std::string checkpoint_dir;
  int checkpoint_every = 0;  // <= 0 disables checkpointing
  bool resume = false;
};

struct RoundRecord {
  int round = 0;         // 1-based, after this many rounds
  double test_loss = 0.0;
  double utility = 0.0;  // accuracy or C-index
  double epsilon = 0.0;  // accumulated ULDP epsilon (inf for DEFAULT)
};

/// Runs the algorithm; `eval_model` supplies the architecture and is used
/// for evaluation (its parameters are overwritten). Returns the per-round
/// metric trace.
Result<std::vector<RoundRecord>> RunExperiment(FlAlgorithm& algorithm,
                                               Model& eval_model,
                                               const FederatedDataset& data,
                                               const ExperimentConfig& config);

/// Mean/standard-deviation trace over repeated runs (the paper averages 5
/// runs per curve; the shaded bands are these standard deviations).
struct AveragedRoundRecord {
  int round = 0;
  double mean_loss = 0.0;
  double std_loss = 0.0;
  double mean_utility = 0.0;
  double std_utility = 0.0;
  double epsilon = 0.0;  // identical across seeds (accounting is exact)
};

/// Factory invoked once per seed: must return a fresh algorithm whose
/// training randomness is driven by `seed`.
using AlgorithmFactory =
    std::function<std::unique_ptr<FlAlgorithm>(uint64_t seed)>;

/// Runs `num_seeds` independent repetitions (seeds base_seed, base_seed+1,
/// ...; the model init also varies per seed) and aggregates the traces.
Result<std::vector<AveragedRoundRecord>> RunExperimentAveraged(
    const AlgorithmFactory& factory, Model& eval_model,
    const FederatedDataset& data, const ExperimentConfig& config,
    int num_seeds, uint64_t base_seed = 1);

/// Renders a trace as aligned rows (used by benches and examples).
void PrintTrace(const std::string& label,
                const std::vector<RoundRecord>& trace);

/// Renders an averaged trace (mean ± std columns).
void PrintAveragedTrace(const std::string& label,
                        const std::vector<AveragedRoundRecord>& trace);

}  // namespace uldp

#endif  // ULDP_CORE_EXPERIMENT_H_
