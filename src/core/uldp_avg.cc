#include "core/uldp_avg.h"

#include <cmath>

#include "common/check.h"
#include "common/table.h"
#include "core/private_weighting.h"

namespace uldp {

UldpAvgTrainer::UldpAvgTrainer(const FederatedDataset& data,
                               const Model& model, FlConfig config,
                               UldpAvgOptions options)
    : data_(data),
      config_(config),
      options_(options),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)),
      tracker_(options.user_sample_rate < 1.0
                   ? PrivacyTracker::ForSubsampledGaussian(
                         config.sigma, options.user_sample_rate)
                   : PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  ULDP_CHECK_GT(options_.user_sample_rate, 0.0);
  ULDP_CHECK_LE(options_.user_sample_rate, 1.0);
  WeightingStrategy strategy = options_.weighting;
  if (options_.private_protocol != nullptr) {
    // The protocol computes n_{s,u}/N_u weights inside the encryption.
    strategy = WeightingStrategy::kEnhanced;
  }
  weights_ = ComputeWeights(data_, strategy);
  ULDP_CHECK(WeightsSatisfyUldpConstraint(weights_));

  name_ = strategy == WeightingStrategy::kEnhanced ? "ULDP-AVG-w"
                                                   : "ULDP-AVG";
  if (options_.private_protocol != nullptr) name_ += "(private)";
  if (options_.user_sample_rate < 1.0) {
    name_ += "(q=" + FormatG(options_.user_sample_rate, 3) + ")";
  }

  silo_shards_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    for (int u = 0; u < data_.num_users(); ++u) {
      const auto& idx = data_.RecordsOf(s, u);
      if (idx.empty()) continue;
      silo_shards_[s].push_back(UserShard{u, data_.MakeExamples(idx)});
    }
  }
}

Status UldpAvgTrainer::RunRound(int round, Vec& global_params) {
  const int s_count = data_.num_silos();
  const int u_count = data_.num_users();
  const double q = options_.user_sample_rate;
  const uint64_t r = static_cast<uint64_t>(round);

  // Algorithm 4: the server Poisson-samples the user set for this round
  // (one substream per round, drawn in user order) and zeroes the weights
  // of unsampled users.
  std::vector<bool> sampled(u_count, true);
  if (q < 1.0) {
    Rng sampler = rng_.Fork(r, 0, kRngStreamSampling);
    for (int u = 0; u < u_count; ++u) sampled[u] = sampler.Bernoulli(q);
  }

  // Line 17: every silo adds N(0, sigma^2 C^2 / |S|) so the aggregate noise
  // matches user-level sensitivity C with multiplier sigma. In central
  // mode the server adds the equivalent N(0, sigma^2 C^2) once instead.
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip /
                    std::sqrt(static_cast<double>(s_count));
  const bool use_protocol = options_.private_protocol != nullptr;

  // Per-silo local work (Algorithm 3, lines 9-16): per-user training on a
  // Fork(round, silo, user) substream, clip, then weight. In the
  // private-protocol path we keep per-user clipped (unweighted) deltas
  // instead, since the weighting happens inside the encryption.
  std::vector<std::vector<Vec>> protocol_deltas;
  std::vector<Vec> silo_noise;
  if (use_protocol) {
    protocol_deltas.assign(s_count, std::vector<Vec>(u_count));
    silo_noise.assign(s_count, Vec());
  }
  auto local_work = [&](int s, Model& model, Vec& silo_delta) {
    for (const UserShard& shard : silo_shards_[s]) {
      if (!sampled[shard.user]) continue;
      double w = weights_[s][shard.user];
      if (w == 0.0 && !use_protocol) continue;
      model.SetParams(global_params);
      Rng local = rng_.Fork(r, static_cast<uint64_t>(s),
                            static_cast<uint64_t>(shard.user));
      TrainLocalSgd(model, shard.examples, config_.local_epochs,
                    config_.batch_size, config_.local_lr, local);
      Vec delta = model.GetParams();
      Axpy(-1.0, global_params, delta);
      ClipToL2Ball(delta, config_.clip);  // line 16: clip then weight
      if (use_protocol) {
        protocol_deltas[s][shard.user] = std::move(delta);
      } else {
        Axpy(w, delta, silo_delta);
      }
    }
    Rng noise = rng_.Fork(r, static_cast<uint64_t>(s), kRngStreamNoise);
    if (use_protocol) {
      silo_noise[s].assign(global_params.size(), 0.0);
      AddGaussianNoise(silo_noise[s], noise_std, noise);
    } else {
      AddGaussianNoise(silo_delta, noise_std, noise);
    }
    return Status::Ok();
  };

  Vec total;
  if (use_protocol) {
    ULDP_RETURN_IF_ERROR(
        engine_.RunSilos(global_params, local_work, nullptr));
    auto agg = options_.private_protocol->WeightingRound(
        r, protocol_deltas, silo_noise, sampled);
    if (!agg.ok()) return agg.status();
    total = std::move(agg.value());
  } else {
    auto agg = engine_.RunRound(round, global_params, local_work);
    if (!agg.ok()) return agg.status();
    total = std::move(agg.value());
  }
  if (central) {
    Rng server = rng_.Fork(r, 0, kRngStreamServer);
    AddGaussianNoise(total, config_.sigma * config_.clip, server);
  }

  // Server update (Algorithm 3 line 6 / Algorithm 4 line 10).
  Axpy(config_.global_lr / (q * u_count * s_count), total, global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpAvgTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

}  // namespace uldp
