#include "core/uldp_avg.h"

#include <cmath>

#include "common/check.h"
#include "common/table.h"
#include "core/private_weighting.h"

namespace uldp {

UldpAvgTrainer::UldpAvgTrainer(const FederatedDataset& data,
                               const Model& model, FlConfig config,
                               UldpAvgOptions options)
    : data_(data),
      work_model_(model.Clone()),
      config_(config),
      options_(options),
      rng_(config.seed),
      tracker_(options.user_sample_rate < 1.0
                   ? PrivacyTracker::ForSubsampledGaussian(
                         config.sigma, options.user_sample_rate)
                   : PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  ULDP_CHECK_GT(options_.user_sample_rate, 0.0);
  ULDP_CHECK_LE(options_.user_sample_rate, 1.0);
  WeightingStrategy strategy = options_.weighting;
  if (options_.private_protocol != nullptr) {
    // The protocol computes n_{s,u}/N_u weights inside the encryption.
    strategy = WeightingStrategy::kEnhanced;
  }
  weights_ = ComputeWeights(data_, strategy);
  ULDP_CHECK(WeightsSatisfyUldpConstraint(weights_));

  name_ = strategy == WeightingStrategy::kEnhanced ? "ULDP-AVG-w"
                                                   : "ULDP-AVG";
  if (options_.private_protocol != nullptr) name_ += "(private)";
  if (options_.user_sample_rate < 1.0) {
    name_ += "(q=" + FormatG(options_.user_sample_rate, 3) + ")";
  }

  for (int s = 0; s < data_.num_silos(); ++s) {
    for (int u = 0; u < data_.num_users(); ++u) {
      const auto& idx = data_.RecordsOf(s, u);
      if (idx.empty()) continue;
      pairs_.push_back(Pair{s, u, data_.MakeExamples(idx)});
    }
  }
}

Status UldpAvgTrainer::RunRound(int round, Vec& global_params) {
  ULDP_CHECK_EQ(global_params.size(), work_model_->NumParams());
  const int s_count = data_.num_silos();
  const int u_count = data_.num_users();
  const size_t dim = global_params.size();
  const double q = options_.user_sample_rate;

  // Algorithm 4: the server Poisson-samples the user set for this round and
  // zeroes the weights of unsampled users.
  std::vector<bool> sampled(u_count, true);
  if (q < 1.0) {
    for (int u = 0; u < u_count; ++u) sampled[u] = rng_.Bernoulli(q);
  }

  // Per-silo accumulators. In the private-protocol path we keep per-user
  // clipped (unweighted) deltas instead, since the weighting happens inside
  // the encryption.
  const bool use_protocol = options_.private_protocol != nullptr;
  std::vector<Vec> silo_delta(s_count, Vec(dim, 0.0));
  std::vector<std::vector<Vec>> protocol_deltas;
  if (use_protocol) {
    protocol_deltas.assign(s_count, std::vector<Vec>(u_count));
  }

  for (const Pair& pair : pairs_) {
    if (!sampled[pair.user]) continue;
    double w = weights_[pair.silo][pair.user];
    if (w == 0.0 && !use_protocol) continue;
    // Per-user local training (Algorithm 3, lines 9-15).
    work_model_->SetParams(global_params);
    TrainLocalSgd(*work_model_, pair.examples, config_.local_epochs,
                  config_.batch_size, config_.local_lr, rng_);
    Vec delta = work_model_->GetParams();
    Axpy(-1.0, global_params, delta);
    ClipToL2Ball(delta, config_.clip);  // line 16: clip then weight
    if (use_protocol) {
      protocol_deltas[pair.silo][pair.user] = std::move(delta);
    } else {
      Axpy(w, delta, silo_delta[pair.silo]);
    }
  }

  // Line 17: every silo adds N(0, sigma^2 C^2 / |S|) so the aggregate noise
  // matches user-level sensitivity C with multiplier sigma. In central
  // mode the server adds the equivalent N(0, sigma^2 C^2) once instead.
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip /
                    std::sqrt(static_cast<double>(s_count));
  Vec total;
  if (use_protocol) {
    std::vector<Vec> silo_noise(s_count, Vec(dim, 0.0));
    for (int s = 0; s < s_count; ++s) {
      AddGaussianNoise(silo_noise[s], noise_std, rng_);
    }
    auto agg = options_.private_protocol->WeightingRound(
        static_cast<uint64_t>(round), protocol_deltas, silo_noise, sampled);
    if (!agg.ok()) return agg.status();
    total = std::move(agg.value());
  } else {
    for (int s = 0; s < s_count; ++s) {
      AddGaussianNoise(silo_delta[s], noise_std, rng_);
    }
    total = AggregateDeltas(silo_delta, config_.secure_aggregation,
                            static_cast<uint64_t>(round));
  }
  if (central) {
    AddGaussianNoise(total, config_.sigma * config_.clip, rng_);
  }

  // Server update (Algorithm 3 line 6 / Algorithm 4 line 10).
  Axpy(config_.global_lr / (q * u_count * s_count), total, global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpAvgTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

}  // namespace uldp
