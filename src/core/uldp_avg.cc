#include "core/uldp_avg.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/table.h"
#include "core/private_weighting.h"

namespace uldp {

UldpAvgTrainer::UldpAvgTrainer(const FederatedDataset& data,
                               const Model& model, FlConfig config,
                               UldpAvgOptions options)
    : data_(data),
      config_(config),
      options_(options),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)),
      tracker_(options.user_sample_rate < 1.0
                   ? PrivacyTracker::ForSubsampledGaussian(
                         config.sigma, options.user_sample_rate)
                   : PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  ULDP_CHECK_GT(options_.user_sample_rate, 0.0);
  ULDP_CHECK_LE(options_.user_sample_rate, 1.0);
  WeightingStrategy strategy = options_.weighting;
  if (options_.private_protocol != nullptr) {
    // The protocol computes n_{s,u}/N_u weights inside the encryption.
    strategy = WeightingStrategy::kEnhanced;
  }
  weights_ = ComputeWeights(data_, strategy);
  ULDP_CHECK(WeightsSatisfyUldpConstraint(weights_));

  name_ = strategy == WeightingStrategy::kEnhanced ? "ULDP-AVG-w"
                                                   : "ULDP-AVG";
  if (options_.private_protocol != nullptr) name_ += "(private)";
  if (options_.user_sample_rate < 1.0) {
    name_ += "(q=" + FormatG(options_.user_sample_rate, 3) + ")";
  }

  silo_shards_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    for (int u = 0; u < data_.num_users(); ++u) {
      const auto& idx = data_.RecordsOf(s, u);
      if (idx.empty()) continue;
      silo_shards_[s].push_back(UserShard{u, data_.MakeExamples(idx)});
    }
  }
  if (config_.async_rounds) {
    // The private-protocol reduce is a lockstep multi-party computation —
    // the weighting encryption has no staleness-bounded analogue (yet).
    ULDP_CHECK_MSG(options_.private_protocol == nullptr,
                   "async_rounds is incompatible with the private protocol");
    Status started = engine_.StartAsync(
        [this](int version, int silo, const Vec& snapshot, Model& model,
               Vec& delta) {
          return LocalSiloWork(static_cast<uint64_t>(version), snapshot, silo,
                               model, delta);
        },
        AsyncOptionsFrom(config_));
    ULDP_CHECK_MSG(started.ok(), started.ToString());
  }
}

UldpAvgTrainer::~UldpAvgTrainer() { engine_.StopAsync(); }

std::vector<bool> UldpAvgTrainer::SampledMask(uint64_t version) {
  std::lock_guard<std::mutex> lock(mask_mu_);
  if (mask_version_ != version) {
    // Algorithm 4: the server Poisson-samples the user set for this round
    // (one substream per round, drawn in user order — independent of silo
    // scheduling); unsampled users' weights are zeroed.
    const int u_count = data_.num_users();
    mask_.assign(u_count, true);
    if (options_.user_sample_rate < 1.0) {
      Rng sampler = rng_.Fork(version, 0, kRngStreamSampling);
      for (int u = 0; u < u_count; ++u) {
        mask_[u] = sampler.Bernoulli(options_.user_sample_rate);
      }
    }
    mask_version_ = version;
  }
  return mask_;
}

Status UldpAvgTrainer::LocalSiloWork(uint64_t version, const Vec& snapshot,
                                     int silo, Model& model, Vec& silo_delta) {
  const int s_count = data_.num_silos();
  const std::vector<bool> sampled = SampledMask(version);

  // Line 17: every silo adds N(0, sigma^2 C^2 / |S|) so the aggregate noise
  // matches user-level sensitivity C with multiplier sigma. In central
  // mode the server adds the equivalent N(0, sigma^2 C^2) once instead.
  // Under async rounds with a partial buffer or a positive staleness
  // bound, each share is inflated by AsyncNoiseMargin so even the worst
  // flush carries the charged noise (see the FlConfig DP note).
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip *
                    AsyncNoiseMargin(config_, s_count) /
                    std::sqrt(static_cast<double>(s_count));

  // Per-user training on a Fork(version, silo, user) substream, clip, then
  // weight (Algorithm 3, lines 9-16).
  for (const UserShard& shard : silo_shards_[silo]) {
    if (!sampled[shard.user]) continue;
    double w = weights_[silo][shard.user];
    if (w == 0.0) continue;
    model.SetParams(snapshot);
    Rng local = rng_.Fork(version, static_cast<uint64_t>(silo),
                          static_cast<uint64_t>(shard.user));
    TrainLocalSgd(model, shard.examples, config_.local_epochs,
                  config_.batch_size, config_.local_lr, local);
    Vec delta = model.GetParams();
    Axpy(-1.0, snapshot, delta);
    ClipToL2Ball(delta, config_.clip);  // line 16: clip then weight
    Axpy(w, delta, silo_delta);
  }
  Rng noise = rng_.Fork(version, static_cast<uint64_t>(silo),
                        kRngStreamNoise);
  AddGaussianNoise(silo_delta, noise_std, noise);
  return Status::Ok();
}

Status UldpAvgTrainer::RunRound(int round, Vec& global_params) {
  const int s_count = data_.num_silos();
  const int u_count = data_.num_users();
  const double q = options_.user_sample_rate;
  const uint64_t r = static_cast<uint64_t>(round);
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const bool use_protocol = options_.private_protocol != nullptr;

  Vec total;
  if (use_protocol) {
    // Algorithm 4 mask, computed once at the server for the protocol call.
    std::vector<bool> sampled = SampledMask(r);
    const double noise_std =
        central ? 0.0
                : config_.sigma * config_.clip /
                      std::sqrt(static_cast<double>(s_count));
    // The protocol path keeps per-user clipped (unweighted) deltas since
    // the weighting happens inside the encryption. Each user's training
    // draws from its own Fork(round, silo, user) substream and fills its
    // own delta slot, so a silo's user sweep splits into independent
    // shard tasks (FlConfig::shard_users) with no effect on the bits —
    // the silo's noise share comes from its first shard, from the same
    // substream a whole-silo sweep would use.
    std::vector<std::vector<Vec>> protocol_deltas(s_count,
                                                  std::vector<Vec>(u_count));
    std::vector<Vec> silo_noise(s_count, Vec());
    std::vector<int> shard_counts(s_count, 1);
    if (config_.shard_users > 0) {
      for (int s = 0; s < s_count; ++s) {
        const int n = static_cast<int>(silo_shards_[s].size());
        shard_counts[s] =
            std::max(1, (n + config_.shard_users - 1) / config_.shard_users);
      }
    }
    auto shard_work = [&](int s, int shard, Model& model) {
      const std::vector<UserShard>& users = silo_shards_[s];
      const size_t per = config_.shard_users > 0
                             ? static_cast<size_t>(config_.shard_users)
                             : users.size();
      const size_t u0 = static_cast<size_t>(shard) * per;
      const size_t u1 = std::min(users.size(), u0 + per);
      for (size_t i = u0; i < u1; ++i) {
        const UserShard& user_shard = users[i];
        if (!sampled[user_shard.user]) continue;
        model.SetParams(global_params);
        Rng local = rng_.Fork(r, static_cast<uint64_t>(s),
                              static_cast<uint64_t>(user_shard.user));
        TrainLocalSgd(model, user_shard.examples, config_.local_epochs,
                      config_.batch_size, config_.local_lr, local);
        Vec delta = model.GetParams();
        Axpy(-1.0, global_params, delta);
        ClipToL2Ball(delta, config_.clip);
        protocol_deltas[s][user_shard.user] = std::move(delta);
      }
      if (shard == 0) {
        Rng noise = rng_.Fork(r, static_cast<uint64_t>(s), kRngStreamNoise);
        silo_noise[s].assign(global_params.size(), 0.0);
        AddGaussianNoise(silo_noise[s], noise_std, noise);
      }
      return Status::Ok();
    };
    ULDP_RETURN_IF_ERROR(
        engine_.RunSiloShards(global_params, shard_counts, shard_work));
    auto agg = options_.private_protocol->WeightingRound(
        r, protocol_deltas, silo_noise, sampled);
    if (!agg.ok()) return agg.status();
    total = std::move(agg.value());
  } else {
    auto agg =
        config_.async_rounds
            ? engine_.StepAsync(round, global_params)
            : engine_.RunRound(round, global_params,
                               [&](int s, Model& model, Vec& delta) {
                                 return LocalSiloWork(r, global_params, s,
                                                      model, delta);
                               });
    if (!agg.ok()) return agg.status();
    total = std::move(agg.value());
  }
  if (central) {
    Rng server = rng_.Fork(r, 0, kRngStreamServer);
    AddGaussianNoise(total, config_.sigma * config_.clip, server);
  }

  // Server update (Algorithm 3 line 6 / Algorithm 4 line 10).
  Axpy(config_.global_lr / (q * u_count * s_count), total, global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpAvgTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

void UldpAvgTrainer::AccountRestoredRounds(int64_t rounds) {
  tracker_.AdvanceRounds(rounds);
}

}  // namespace uldp
