// Protocol 1: the private weighting protocol. Computes the enhanced-weight
// aggregation  sum_s sum_u (n_{s,u}/N_u) * clipped_delta_{s,u} + noise
// without revealing any n_{s,u} (or N_u) to the server or to other silos:
//
//   Setup (once):
//     (a) server generates a Paillier key pair; silos run DH via the server;
//         everyone computes C_LCM = lcm(1..N_max);
//     (b) silos derive pairwise shared keys;
//     (c) silo 0 distributes a shared random seed R (encrypted, relayed);
//     (d) silos derive multiplicative blinds r_u from R and blind their
//         histograms: B(n_{s,u}) = r_u * n_{s,u} mod n;
//     (e) pairwise additive masks -> doubly blinded histograms -> server
//         sums to get B(N_u) = r_u * N_u mod n (masks cancel);
//     (f) server inverts: B_inv(N_u) = (r_u * N_u)^{-1} mod n.
//
//   Weighting (each round):
//     (a) server (optionally Poisson-samples users and) encrypts B_inv
//         under Paillier, broadcasts;
//     (b) each silo computes, per coordinate,
//         Enc(delta~) = Enc(B_inv)^(Encode(delta) * n_su * r_u * C_LCM)
//         — the r_u cancels the blind and C_LCM/N_u stays integral — then
//         sums ciphertexts over users and adds its encoded noise;
//     (c) silos apply pairwise additive masks homomorphically; the server
//         multiplies the ciphertexts (masks cancel), decrypts and decodes.
//
// The phase logic itself lives in core/protocol_party.h (ServerCore +
// SiloCore): this class is the *in-process orchestrator* that wires one
// server core to N silo cores with direct calls, records the per-party
// views (so the privacy properties — Theorem 5 — can be asserted in tests)
// and per-phase wall-times (Figure 10/11). The distributed driver
// (net/protocol_node.h) runs the same cores over a Transport; because
// every core value is derived from Rng::Fork substreams of the seed, a
// distributed round is bitwise identical to an in-process round.

#ifndef ULDP_CORE_PRIVATE_WEIGHTING_H_
#define ULDP_CORE_PRIVATE_WEIGHTING_H_

#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/protocol_party.h"
#include "nn/tensor.h"

namespace uldp {

/// Wall-clock seconds per protocol phase (Figure 10/11 measurements).
struct ProtocolTimings {
  double key_exchange_s = 0.0;   // setup (a)-(c)
  double histogram_s = 0.0;      // setup (d)-(f)
  double encrypt_weights_s = 0.0;  // weighting (a), per round, accumulated
  double silo_weighting_s = 0.0;   // weighting (b)+(c) silo side, summed
  double aggregation_s = 0.0;      // weighting (c): server ciphertext product
  double decryption_s = 0.0;       // server decrypt + decode
};

/// What silo s observed.
struct SiloProtocolView {
  /// Encrypted weights received each round (ciphertexts only).
  std::vector<BigInt> encrypted_weights;  // [user], last round
};

class PrivateWeightingProtocol {
 public:
  PrivateWeightingProtocol(ProtocolConfig config, int num_silos,
                           int num_users);

  /// Runs the setup phase. `silo_histograms[s][u]` = n_{s,u} — each silo's
  /// private input (this in-process simulation passes them in directly; the
  /// values never reach the server or other silo states un-blinded).
  /// Validates N_u <= N_max and the Theorem-4 overflow condition.
  Status Setup(const std::vector<std::vector<int>>& silo_histograms);

  /// One weighting round. clipped_deltas[s][u] is user u's clipped
  /// (unweighted) model delta at silo s (empty Vec if the user has no
  /// records there); silo_noise[s] is silo s's Gaussian noise vector;
  /// user_sampled is the server-side sampling mask (all-true when q = 1;
  /// ignored when OT-based private sub-sampling is enabled — then the
  /// protocol derives the mask internally from the shared seed).
  /// Returns sum_s sum_u (n_su/N_u) delta_su + sum_s noise_s.
  Result<Vec> WeightingRound(
      uint64_t round, const std::vector<std::vector<Vec>>& clipped_deltas,
      const std::vector<Vec>& silo_noise,
      const std::vector<bool>& user_sampled);

  /// Ground-truth sampling outcome of the last OT-mode round. In a real
  /// deployment *nobody* learns this (that is the point of the extension);
  /// the simulation records it so tests can verify the aggregation honored
  /// the hidden mask.
  const std::vector<bool>& last_ot_mask() const { return last_ot_mask_; }

  const ProtocolTimings& timings() const { return timings_; }
  const ServerProtocolView& server_view() const { return server_->view(); }
  const SiloProtocolView& silo_view(int s) const { return silo_views_[s]; }
  const PaillierPublicKey& public_key() const {
    return server_->params().public_key;
  }
  const BigInt& c_lcm() const { return server_->params().c_lcm; }
  bool setup_done() const { return setup_done_; }

  /// Cache counters (config.cache_enc_weights): rounds that reused the
  /// previous ciphertext vector, and per-user fixed-base tables reused
  /// across rounds. Both stay 0 with the default config.
  uint64_t enc_weight_cache_hits() const {
    return server_->enc_weight_cache_hits();
  }
  uint64_t weight_table_cache_hits() const { return weight_tables_.hits(); }

 private:
  ProtocolConfig config_;
  int num_silos_;
  int num_users_;
  PoolHandle pool_;

  std::unique_ptr<ServerCore> server_;
  std::vector<std::unique_ptr<SiloCore>> silos_;
  std::vector<std::vector<int>> histograms_;  // for table-use sizing

  // In-process shared fixed-base tables: every silo raises the SAME
  // ciphertext Enc(B_inv(N_u)), so the orchestrator builds one table per
  // user per batch and all silo cores consume it read-only (a distributed
  // silo builds its own inside WeightMaskRound). Entries persist across
  // rounds only under config.cache_enc_weights, keyed by the ciphertext.
  WeightTableCache weight_tables_;

  bool setup_done_ = false;
  ProtocolTimings timings_;
  std::vector<SiloProtocolView> silo_views_;
  std::vector<bool> last_ot_mask_;
};

}  // namespace uldp

#endif  // ULDP_CORE_PRIVATE_WEIGHTING_H_
