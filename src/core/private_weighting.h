// Protocol 1: the private weighting protocol. Computes the enhanced-weight
// aggregation  sum_s sum_u (n_{s,u}/N_u) * clipped_delta_{s,u} + noise
// without revealing any n_{s,u} (or N_u) to the server or to other silos:
//
//   Setup (once):
//     (a) server generates a Paillier key pair; silos run DH via the server;
//         everyone computes C_LCM = lcm(1..N_max);
//     (b) silos derive pairwise shared keys;
//     (c) silo 0 distributes a shared random seed R (encrypted, relayed);
//     (d) silos derive multiplicative blinds r_u from R and blind their
//         histograms: B(n_{s,u}) = r_u * n_{s,u} mod n;
//     (e) pairwise additive masks -> doubly blinded histograms -> server
//         sums to get B(N_u) = r_u * N_u mod n (masks cancel);
//     (f) server inverts: B_inv(N_u) = (r_u * N_u)^{-1} mod n.
//
//   Weighting (each round):
//     (a) server (optionally Poisson-samples users and) encrypts B_inv
//         under Paillier, broadcasts;
//     (b) each silo computes, per coordinate,
//         Enc(delta~) = Enc(B_inv)^(Encode(delta) * n_su * r_u * C_LCM)
//         — the r_u cancels the blind and C_LCM/N_u stays integral — then
//         sums ciphertexts over users and adds its encoded noise;
//     (c) silos apply pairwise additive masks homomorphically; the server
//         multiplies the ciphertexts (masks cancel), decrypts and decodes.
//
// The per-party views (what each actor received) are recorded so the
// privacy properties (Theorem 5) can be asserted in tests, and per-phase
// wall-times are recorded for the Figure 10/11 benchmarks.

#ifndef ULDP_CORE_PRIVATE_WEIGHTING_H_
#define ULDP_CORE_PRIVATE_WEIGHTING_H_

#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/chacha.h"
#include "crypto/dh.h"
#include "crypto/fixed_point.h"
#include "crypto/oblivious_transfer.h"
#include "crypto/paillier.h"
#include "crypto/paillier_ctx.h"
#include "nn/tensor.h"

namespace uldp {

struct ProtocolConfig {
  /// Paillier modulus bits (the paper's security parameter lambda is 3072;
  /// tests and the scaled-down benches use smaller).
  int paillier_bits = 1024;
  /// Upper bound N_max on records per user; C_LCM = lcm(1..N_max). Must be
  /// small enough that C_LCM plus slack fits below the modulus (Theorem 4
  /// condition (2)) — validated in Setup.
  int n_max = 100;
  /// Fixed-point precision P.
  double precision = 1e-10;
  uint64_t seed = 7;
  /// > 0 enables the OT-based private user-level sub-sampling extension
  /// (§4.1): the server offers P ciphertext slots per user (real Enc(B_inv)
  /// in a q-fraction of them after a private shuffle, Enc(0) in the rest)
  /// and silos fetch one slot via 1-out-of-P OT, so neither side learns the
  /// sampling outcome. The value is P (the slot count); representable
  /// rates are multiples of 1/P. In OT mode silos cannot skip unsampled
  /// users (they do not know who is sampled), which is exactly the extra
  /// cost §4.1 warns about.
  int ot_slots = 0;
  /// Sub-sampling rate used in OT mode (quantized to multiples of
  /// 1/ot_slots). Ignored when ot_slots == 0 (the server-side mask passed
  /// to WeightingRound is used instead).
  double ot_sample_rate = 1.0;
  /// Bit size of the safe-prime DH group backing the OT (simulation-scale
  /// default; a deployment would use a standardized group).
  int ot_group_bits = 384;
  /// Thread count for the protocol's parallel phases (per-user weight
  /// encryption, per-silo encrypted weighting and masking, per-coordinate
  /// aggregation and decryption). <= 0 resolves via ULDP_THREADS env /
  /// hardware concurrency. Results are bitwise independent of this value:
  /// all encryption randomness comes from Rng::Fork(round, user)
  /// substreams and reductions run in fixed index order.
  int num_threads = 0;
  /// Route Paillier work through the cached-context fast path (long-lived
  /// Montgomery contexts, CRT decryption, batched randomizer pipeline).
  /// The slow path (static Paillier shim, classic decryption) produces
  /// bitwise-identical round outputs; the switch exists so the micro bench
  /// can measure the speedup of a full protocol round before/after.
  bool fast_paillier = true;
  /// Use per-user fixed-base exponentiation tables in the silo-weighting
  /// loop: all `dim` MulPlaintext calls for one user share the base
  /// Enc(B_inv(N_u)), so one precomputed window table per user turns each
  /// coordinate's exponentiation into squaring-free table multiplies
  /// (math/fixed_base.h). Effective only with fast_paillier; outputs are
  /// bitwise identical either way — the switch exists so the micro bench
  /// can measure the weighting phase before/after.
  bool fixed_base = true;
};

/// Wall-clock seconds per protocol phase (Figure 10/11 measurements).
struct ProtocolTimings {
  double key_exchange_s = 0.0;   // setup (a)-(c)
  double histogram_s = 0.0;      // setup (d)-(f)
  double encrypt_weights_s = 0.0;  // weighting (a), per round, accumulated
  double silo_weighting_s = 0.0;   // weighting (b), summed over silos
  double aggregation_s = 0.0;      // weighting (c): masking + server product
  double decryption_s = 0.0;       // server decrypt + decode
};

/// What the server observed (for privacy assertions).
struct ServerProtocolView {
  /// Doubly blinded per-silo histograms as received in setup (e).
  std::vector<std::vector<BigInt>> doubly_blinded_histograms;  // [silo][user]
  /// Aggregated blinded totals B(N_u) = r_u * N_u mod n.
  std::vector<BigInt> blinded_totals;  // [user]
};

/// What silo s observed.
struct SiloProtocolView {
  /// Encrypted weights received each round (ciphertexts only).
  std::vector<BigInt> encrypted_weights;  // [user], last round
};

class PrivateWeightingProtocol {
 public:
  PrivateWeightingProtocol(ProtocolConfig config, int num_silos,
                           int num_users);

  /// Runs the setup phase. `silo_histograms[s][u]` = n_{s,u} — each silo's
  /// private input (this in-process simulation passes them in directly; the
  /// values never reach the server or other silo states un-blinded).
  /// Validates N_u <= N_max and the Theorem-4 overflow condition.
  Status Setup(const std::vector<std::vector<int>>& silo_histograms);

  /// One weighting round. clipped_deltas[s][u] is user u's clipped
  /// (unweighted) model delta at silo s (empty Vec if the user has no
  /// records there); silo_noise[s] is silo s's Gaussian noise vector;
  /// user_sampled is the server-side sampling mask (all-true when q = 1;
  /// ignored when OT-based private sub-sampling is enabled — then the
  /// protocol derives the mask internally from the shared seed).
  /// Returns sum_s sum_u (n_su/N_u) delta_su + sum_s noise_s.
  Result<Vec> WeightingRound(
      uint64_t round, const std::vector<std::vector<Vec>>& clipped_deltas,
      const std::vector<Vec>& silo_noise,
      const std::vector<bool>& user_sampled);

  /// Ground-truth sampling outcome of the last OT-mode round. In a real
  /// deployment *nobody* learns this (that is the point of the extension);
  /// the simulation records it so tests can verify the aggregation honored
  /// the hidden mask.
  const std::vector<bool>& last_ot_mask() const { return last_ot_mask_; }

  const ProtocolTimings& timings() const { return timings_; }
  const ServerProtocolView& server_view() const { return server_view_; }
  const SiloProtocolView& silo_view(int s) const { return silo_views_[s]; }
  const PaillierPublicKey& public_key() const { return public_key_; }
  const BigInt& c_lcm() const { return c_lcm_; }
  bool setup_done() const { return setup_done_; }

 private:
  /// Blind r_u for user u, derived from the silo-shared seed R.
  BigInt BlindOf(int user) const;
  /// Pairwise additive histogram/ciphertext mask between silos a and b.
  BigInt PairMask(int silo_a, int silo_b, uint64_t tag, int user) const;

  // Paillier operations, routed through the cached context
  // (config_.fast_paillier) or the static cold-path shim. Results are
  // bitwise identical either way.
  Result<BigInt> PEncrypt(const BigInt& m, Rng& rng) const;
  Result<BigInt> PDecrypt(const BigInt& c) const;
  BigInt PAddCiphertexts(const BigInt& c1, const BigInt& c2) const;
  BigInt PAddPlaintext(const BigInt& c, const BigInt& k) const;
  BigInt PMulPlaintext(const BigInt& c, const BigInt& k) const;

  ProtocolConfig config_;
  int num_silos_;
  int num_users_;

  // Server state.
  PaillierPublicKey public_key_;
  PaillierSecretKey secret_key_;
  /// Cached-context fast path for the key pair (built in Setup).
  std::unique_ptr<PaillierContext> paillier_;
  std::vector<BigInt> b_inv_;  // B_inv(N_u), server-side
  // Silo-shared state (the server never holds these).
  ChaChaRng::Key shared_seed_key_;                      // from R
  std::vector<std::vector<ChaChaRng::Key>> pair_keys_;  // [s][s'] DH-derived
  std::vector<std::vector<int>> histograms_;            // silo-private n_su
  BigInt c_lcm_;
  FixedPointCodec codec_{BigInt(5), 1e-10};  // re-initialized in Setup

  bool setup_done_ = false;
  Rng rng_;
  PoolHandle pool_;
  ProtocolTimings timings_;
  ServerProtocolView server_view_;
  std::vector<SiloProtocolView> silo_views_;
  // OT-mode state.
  DhGroup ot_group_;
  std::vector<bool> last_ot_mask_;
};

}  // namespace uldp

#endif  // ULDP_CORE_PRIVATE_WEIGHTING_H_
