// Typed tag domains for Protocol 1's PRF streams. Every pairwise mask and
// every shared-seed stream is a ChaCha20 evaluation keyed by a long-lived
// secret and addressed by a (tag, index) nonce; if two protocol phases ever
// issue the same (key, tag, index) triple, the identical mask appears in
// two places and the blinded-histogram privacy argument (Theorem 5's
// "masks are one-time pads" step) silently collapses. The seed code used a
// flat namespace — raw tag 0 for the histogram phase, the magic constant
// 0x5EC0000 + round for the weighting phase — which stayed collision-free
// only by inspection. This header makes the domain separation structural:
// a phase enum packed into the tag's high byte, the round number in the
// low 56 bits, with the packing checked at the call site.

#ifndef ULDP_CORE_MASK_TAGS_H_
#define ULDP_CORE_MASK_TAGS_H_

#include <cstdint>

#include "common/check.h"

namespace uldp {

/// Protocol phases that consume PRF streams. Values are part of the wire
/// discipline (both parties of a pair must derive the same tag): never
/// renumber, only append.
enum class MaskPhase : uint64_t {
  /// Setup (e): pairwise additive masks over the blinded histograms,
  /// indexed by user. One-shot (round is always 0).
  kHistogramBlind = 1,
  /// Weighting (c): per-round pairwise masks over the encrypted weighted
  /// sums, indexed by coordinate.
  kRoundWeighting = 2,
  /// OT-mode slot choice: per-round shared-seed stream picking each user's
  /// slot, indexed by user. (Keyed by the shared seed R rather than a
  /// pairwise key, but tagged from the same namespace so no two phases can
  /// alias even if their keys are ever unified.)
  kOtSlotChoice = 3,
  /// Multiplicative blind r_u derivation from the shared seed R, packed
  /// with the user id (the low-56 index) rather than a round; the nonce's
  /// stream slot carries the non-unit retry counter.
  kUserBlind = 4,
  /// OT-mode weight relay: the receiver silo re-encrypts the fetched
  /// Enc(B_inv) vector under each pairwise key before the server relays it,
  /// so the server cannot match fetched ciphertexts against its slots (that
  /// match would reveal the hidden sampling outcome). Per-round, the
  /// nonce's stream slot carries the destination silo.
  kOtWeightRelay = 5,
  /// Setup (c): silo 0 encrypts the shared random seed R under each
  /// pairwise key for the server to relay. One-shot (round is always 0);
  /// the nonce's stream slot carries the destination silo.
  kSeedRelay = 6,
  /// FL-layer secure aggregation: per-round pairwise masks over the silo
  /// deltas (fl/local_trainer.h MaskSiloDelta, and the async transport's
  /// masked mode), indexed by coordinate.
  kFlAggregation = 7,
};

/// Phase byte of a packed tag (inverse of MakeMaskTag).
inline MaskPhase MaskTagPhase(uint64_t tag) {
  return static_cast<MaskPhase>(tag >> 56);
}
/// Round (or index) bits of a packed tag.
inline uint64_t MaskTagRound(uint64_t tag) {
  return tag & ((1ull << 56) - 1);
}

/// Rounds must fit the 56 bits below the phase byte.
constexpr uint64_t kMaskTagRoundLimit = 1ull << 56;

/// Packs (phase, round) into a single stream tag. Distinct phases differ in
/// the high byte and distinct rounds in the low bits, so no two
/// (phase, round) pairs share a ChaCha stream under one key.
inline uint64_t MakeMaskTag(MaskPhase phase, uint64_t round) {
  ULDP_CHECK_LT(round, kMaskTagRoundLimit);
  return (static_cast<uint64_t>(phase) << 56) | round;
}

}  // namespace uldp

#endif  // ULDP_CORE_MASK_TAGS_H_
