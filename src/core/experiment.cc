#include "core/experiment.h"

#include <cmath>
#include <iostream>

#include "common/check.h"
#include "common/table.h"
#include "fl/session.h"
#include "nn/metrics.h"

namespace uldp {

Result<std::vector<RoundRecord>> RunExperiment(
    FlAlgorithm& algorithm, Model& eval_model, const FederatedDataset& data,
    const ExperimentConfig& config) {
  if (config.rounds < 1) {
    return Status::InvalidArgument("rounds must be >= 1");
  }
  if (data.test_examples().empty()) {
    return Status::InvalidArgument("dataset has no test examples");
  }
  if (config.resume && config.checkpoint_dir.empty()) {
    return Status::InvalidArgument("resume requires a checkpoint directory");
  }
  Rng init_rng(config.init_seed);
  eval_model.InitParams(init_rng);
  Vec global = eval_model.GetParams();

  const std::string ckpt_path =
      config.checkpoint_dir.empty() ? std::string()
                                    : config.checkpoint_dir + "/session.ckpt";
  int start_round = 0;
  if (config.resume) {
    auto state = SessionState::ReadFile(ckpt_path);
    if (!state.ok()) return state.status();
    if (state.value().seed != config.init_seed) {
      return Status::InvalidArgument(
          "checkpoint init seed " + std::to_string(state.value().seed) +
          " does not match the experiment's " +
          std::to_string(config.init_seed));
    }
    if (state.value().model.size() != global.size()) {
      return Status::InvalidArgument(
          "checkpoint model dimension does not match this experiment");
    }
    global = std::move(state.value().model);
    start_round = static_cast<int>(state.value().round);
    // The restored model already paid for its rounds; replay them into the
    // trainer's accountant so reported epsilon stays cumulative.
    algorithm.AccountRestoredRounds(start_round);
  }

  std::vector<RoundRecord> trace;
  trace.reserve(config.rounds / std::max(1, config.eval_every) + 1);
  for (int round = start_round; round < config.rounds; ++round) {
    ULDP_RETURN_IF_ERROR(algorithm.RunRound(round, global));
    if (!config.checkpoint_dir.empty() && config.checkpoint_every > 0 &&
        ((round + 1) % config.checkpoint_every == 0 ||
         round + 1 == config.rounds)) {
      SessionState state;
      state.seed = config.init_seed;
      state.dim = static_cast<uint32_t>(global.size());
      state.round = static_cast<uint64_t>(round + 1);
      state.model = global;
      ULDP_RETURN_IF_ERROR(state.WriteFile(ckpt_path));
    }
    if ((round + 1) % std::max(1, config.eval_every) != 0 &&
        round + 1 != config.rounds) {
      continue;
    }
    eval_model.SetParams(global);
    RoundRecord rec;
    rec.round = round + 1;
    rec.test_loss = MeanLoss(eval_model, data.test_examples());
    rec.utility = config.metric == UtilityMetric::kAccuracy
                      ? Accuracy(eval_model, data.test_examples())
                      : CIndex(eval_model, data.test_examples());
    auto eps = algorithm.EpsilonSpent(config.delta);
    if (!eps.ok()) return eps.status();
    rec.epsilon = eps.value();
    trace.push_back(rec);
  }
  return trace;
}

Result<std::vector<AveragedRoundRecord>> RunExperimentAveraged(
    const AlgorithmFactory& factory, Model& eval_model,
    const FederatedDataset& data, const ExperimentConfig& config,
    int num_seeds, uint64_t base_seed) {
  if (num_seeds < 1) {
    return Status::InvalidArgument("num_seeds must be >= 1");
  }
  std::vector<std::vector<RoundRecord>> traces;
  traces.reserve(num_seeds);
  for (int s = 0; s < num_seeds; ++s) {
    uint64_t seed = base_seed + static_cast<uint64_t>(s);
    std::unique_ptr<FlAlgorithm> algorithm = factory(seed);
    if (algorithm == nullptr) {
      return Status::InvalidArgument("algorithm factory returned null");
    }
    ExperimentConfig per_seed = config;
    per_seed.init_seed = config.init_seed + seed;
    auto trace = RunExperiment(*algorithm, eval_model, data, per_seed);
    if (!trace.ok()) return trace.status();
    if (!traces.empty() && trace.value().size() != traces[0].size()) {
      return Status::Internal("trace length mismatch across seeds");
    }
    traces.push_back(std::move(trace.value()));
  }
  std::vector<AveragedRoundRecord> out(traces[0].size());
  const double inv = 1.0 / num_seeds;
  for (size_t i = 0; i < out.size(); ++i) {
    AveragedRoundRecord& rec = out[i];
    rec.round = traces[0][i].round;
    rec.epsilon = traces[0][i].epsilon;
    for (const auto& t : traces) {
      rec.mean_loss += t[i].test_loss * inv;
      rec.mean_utility += t[i].utility * inv;
    }
    for (const auto& t : traces) {
      double dl = t[i].test_loss - rec.mean_loss;
      double du = t[i].utility - rec.mean_utility;
      rec.std_loss += dl * dl * inv;
      rec.std_utility += du * du * inv;
    }
    rec.std_loss = std::sqrt(rec.std_loss);
    rec.std_utility = std::sqrt(rec.std_utility);
  }
  return out;
}

void PrintTrace(const std::string& label,
                const std::vector<RoundRecord>& trace) {
  Table table({"method", "round", "test_loss", "utility", "epsilon"});
  for (const RoundRecord& r : trace) {
    table.AddRow({label, std::to_string(r.round), FormatG(r.test_loss),
                  FormatG(r.utility), FormatG(r.epsilon)});
  }
  table.Print(std::cout);
}

void PrintAveragedTrace(const std::string& label,
                        const std::vector<AveragedRoundRecord>& trace) {
  Table table({"method", "round", "loss_mean", "loss_std", "utility_mean",
               "utility_std", "epsilon"});
  for (const AveragedRoundRecord& r : trace) {
    table.AddRow({label, std::to_string(r.round), FormatG(r.mean_loss),
                  FormatG(r.std_loss), FormatG(r.mean_utility),
                  FormatG(r.std_utility), FormatG(r.epsilon)});
  }
  table.Print(std::cout);
}

}  // namespace uldp
