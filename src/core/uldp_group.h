// ULDP-GROUP-k (Algorithm 2): per-silo DP-SGD (record-level DP) combined
// with contribution-bounding flags B that cap every user at k records
// across all silos; (k, eps, delta)-Group DP then implies (eps, delta)-ULDP
// (Proposition 1). The flags are generated "for existing records to
// minimize waste" (§5.1) — privacy of flag generation is out of scope for
// this baseline, as in the paper.

#ifndef ULDP_CORE_ULDP_GROUP_H_
#define ULDP_CORE_ULDP_GROUP_H_

#include <string>

#include "dp/accountant.h"
#include "fl/local_trainer.h"
#include "fl/round_engine.h"

namespace uldp {

/// Group size selection (the paper evaluates k in {2, 8, median, max}).
struct GroupSizeSpec {
  enum class Kind { kFixed, kMedian, kMax } kind = Kind::kFixed;
  int fixed_k = 8;

  static GroupSizeSpec Fixed(int k) { return {Kind::kFixed, k}; }
  static GroupSizeSpec Median() { return {Kind::kMedian, 0}; }
  static GroupSizeSpec Max() { return {Kind::kMax, 0}; }
};

class UldpGroupTrainer final : public FlAlgorithm {
 public:
  /// `dp_sample_rate` is DP-SGD's per-record Poisson rate gamma;
  /// `dp_steps_per_round` the number of noisy steps each silo runs per
  /// round (the paper's Q epochs of DP-SGD).
  UldpGroupTrainer(const FederatedDataset& data, const Model& model,
                   FlConfig config, GroupSizeSpec group_size,
                   double dp_sample_rate, int dp_steps_per_round,
                   GroupConversionRoute route = GroupConversionRoute::kRdp);
  ~UldpGroupTrainer() override;

  Status RunRound(int round, Vec& global_params) override;
  Result<double> EpsilonSpent(double delta) const override;
  void AccountRestoredRounds(int64_t rounds) override;
  std::string name() const override { return name_; }

  /// Resolved group size k (after median/max evaluation on the dataset).
  int group_k() const { return group_k_; }
  /// Number of training records surviving the contribution bound.
  size_t num_kept_records() const;

 private:
  /// Per-silo round work, shared by the sync and async engine paths.
  Status LocalSiloWork(uint64_t version, const Vec& snapshot, int silo,
                       Model& model, Vec& delta);

  const FederatedDataset& data_;
  FlConfig config_;
  Rng rng_;
  RoundEngine engine_;
  int group_k_;
  double dp_sample_rate_;
  int dp_steps_per_round_;
  PrivacyTracker tracker_;
  std::string name_;
  // Filtered per-silo training sets (records kept by the flags B).
  std::vector<std::vector<Example>> silo_examples_;
};

}  // namespace uldp

#endif  // ULDP_CORE_ULDP_GROUP_H_
