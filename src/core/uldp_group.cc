#include "core/uldp_group.h"

#include <algorithm>

#include "common/check.h"
#include "fl/dp_sgd.h"

namespace uldp {

UldpGroupTrainer::UldpGroupTrainer(const FederatedDataset& data,
                                   const Model& model, FlConfig config,
                                   GroupSizeSpec group_size,
                                   double dp_sample_rate,
                                   int dp_steps_per_round,
                                   GroupConversionRoute route)
    : data_(data),
      config_(config),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)),
      group_k_(0),
      dp_sample_rate_(dp_sample_rate),
      dp_steps_per_round_(dp_steps_per_round),
      tracker_(PrivacyTracker::NonPrivate()) {
  switch (group_size.kind) {
    case GroupSizeSpec::Kind::kFixed:
      group_k_ = group_size.fixed_k;
      name_ = "ULDP-GROUP-" + std::to_string(group_k_);
      break;
    case GroupSizeSpec::Kind::kMedian:
      group_k_ = std::max(1, data_.MedianRecordsPerUser());
      name_ = "ULDP-GROUP-median(" + std::to_string(group_k_) + ")";
      break;
    case GroupSizeSpec::Kind::kMax:
      group_k_ = std::max(1, data_.MaxRecordsPerUser());
      name_ = "ULDP-GROUP-max(" + std::to_string(group_k_) + ")";
      break;
  }
  ULDP_CHECK_GE(group_k_, 1);
  tracker_ = PrivacyTracker::ForGroup(config_.sigma, dp_sample_rate_,
                                      dp_steps_per_round_, group_k_, route);

  // Flags B: keep the first k records of every user, walking records in a
  // deterministic shuffled order — the "generated for existing records to
  // minimize waste" strategy (§5.1). Records beyond the bound are dropped
  // from training entirely.
  std::vector<int> kept_count(data_.num_users(), 0);
  std::vector<int> order(data_.num_train_records());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng_.Shuffle(order);
  std::vector<bool> keep(order.size(), false);
  for (int idx : order) {
    const Record& r = data_.train_records()[idx];
    if (kept_count[r.user_id] < group_k_) {
      ++kept_count[r.user_id];
      keep[idx] = true;
    }
  }
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    std::vector<int> indices;
    for (int idx : data_.RecordsOfSilo(s)) {
      if (keep[idx]) indices.push_back(idx);
    }
    silo_examples_[s] = data_.MakeExamples(indices);
  }
  if (config_.async_rounds) {
    Status started = engine_.StartAsync(
        [this](int version, int silo, const Vec& snapshot, Model& model,
               Vec& delta) {
          return LocalSiloWork(static_cast<uint64_t>(version), snapshot, silo,
                               model, delta);
        },
        AsyncOptionsFrom(config_));
    ULDP_CHECK_MSG(started.ok(), started.ToString());
  }
}

UldpGroupTrainer::~UldpGroupTrainer() { engine_.StopAsync(); }

Status UldpGroupTrainer::LocalSiloWork(uint64_t version, const Vec& snapshot,
                                       int silo, Model& model, Vec& delta) {
  DpSgdOptions options;
  options.learning_rate = config_.local_lr;
  options.clip = config_.clip;
  options.sigma = config_.sigma;
  options.sample_rate = dp_sample_rate_;
  options.steps = dp_steps_per_round_;
  Rng local = rng_.Fork(version, static_cast<uint64_t>(silo));
  ULDP_RETURN_IF_ERROR(RunDpSgd(model, silo_examples_[silo], options, local));
  delta = model.GetParams();
  Axpy(-1.0, snapshot, delta);
  return Status::Ok();
}

size_t UldpGroupTrainer::num_kept_records() const {
  size_t n = 0;
  for (const auto& e : silo_examples_) n += e.size();
  return n;
}

Status UldpGroupTrainer::RunRound(int round, Vec& global_params) {
  auto total =
      config_.async_rounds
          ? engine_.StepAsync(round, global_params)
          : engine_.RunRound(round, global_params,
                             [&](int s, Model& model, Vec& delta) {
                               return LocalSiloWork(
                                   static_cast<uint64_t>(round),
                                   global_params, s, model, delta);
                             });
  if (!total.ok()) return total.status();
  Axpy(config_.global_lr / data_.num_silos(), total.value(), global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpGroupTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

void UldpGroupTrainer::AccountRestoredRounds(int64_t rounds) {
  tracker_.AdvanceRounds(rounds);
}

}  // namespace uldp
