// Per-user per-silo clipping weights W = (w_{s,u}) for ULDP-AVG/SGD.
// The ULDP guarantee requires sum_s w_{s,u} = 1 for every user (then a
// user's total contribution to the aggregated delta is at most C,
// Theorem 3). Two strategies from the paper:
//   uniform  : w_{s,u} = 1/|S|                      (§3.4, no privacy cost)
//   enhanced : w_{s,u} = n_{s,u} / N_u              (Eq. 3; needs the
//              private weighting protocol to compute without leaking
//              histograms — see core/private_weighting.h)

#ifndef ULDP_CORE_WEIGHTING_H_
#define ULDP_CORE_WEIGHTING_H_

#include <vector>

#include "data/dataset.h"

namespace uldp {

enum class WeightingStrategy {
  kUniform,
  kEnhanced,
};

/// weights[s][u] = w_{s,u}. For `kEnhanced`, users with no records get all-
/// zero weights (they contribute nothing anyway); for `kUniform`, weights
/// are 1/|S| everywhere, satisfying the sum-to-1 constraint exactly.
std::vector<std::vector<double>> ComputeWeights(const FederatedDataset& data,
                                                WeightingStrategy strategy);

/// Verifies the ULDP weight constraint: w >= 0 and sum_s w_{s,u} <= 1 for
/// every user (equality for users with records under both strategies).
/// Used by tests and by the trainers' debug checks.
bool WeightsSatisfyUldpConstraint(
    const std::vector<std::vector<double>>& weights, double tolerance = 1e-9);

}  // namespace uldp

#endif  // ULDP_CORE_WEIGHTING_H_
