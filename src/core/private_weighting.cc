#include "core/private_weighting.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"

namespace uldp {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

PrivateWeightingProtocol::PrivateWeightingProtocol(ProtocolConfig config,
                                                   int num_silos,
                                                   int num_users)
    : config_(config),
      num_silos_(num_silos),
      num_users_(num_users),
      rng_(config.seed),
      pool_(config.num_threads),
      silo_views_(num_silos) {
  ULDP_CHECK_GE(num_silos_, 2);
  ULDP_CHECK_GE(num_users_, 1);
  ULDP_CHECK_GE(config_.n_max, 1);
}

BigInt PrivateWeightingProtocol::BlindOf(int user) const {
  // All silos derive the same r_u from the shared seed R; the server never
  // learns R. r_u must be a unit of F_n — overwhelmingly likely (Eq. 4 of
  // the paper); regenerate with a counter otherwise.
  for (uint32_t attempt = 0;; ++attempt) {
    ChaChaRng stream(shared_seed_key_,
                     ChaChaRng::MakeNonce(static_cast<uint64_t>(user),
                                          /*stream_id=*/attempt));
    BigInt r = stream.UniformBelow(public_key_.n);
    if (!r.IsZero() && BigInt::Gcd(r, public_key_.n) == BigInt(1)) return r;
  }
}

BigInt PrivateWeightingProtocol::PairMask(int silo_a, int silo_b,
                                          uint64_t tag, int user) const {
  ChaChaRng stream(pair_keys_[silo_a][silo_b],
                   ChaChaRng::MakeNonce(tag, static_cast<uint32_t>(user)));
  return stream.UniformBelow(public_key_.n);
}

Result<BigInt> PrivateWeightingProtocol::PEncrypt(const BigInt& m,
                                                  Rng& rng) const {
  return config_.fast_paillier ? paillier_->Encrypt(m, rng)
                               : Paillier::Encrypt(public_key_, m, rng);
}

Result<BigInt> PrivateWeightingProtocol::PDecrypt(const BigInt& c) const {
  return config_.fast_paillier ? paillier_->Decrypt(c)
                               : Paillier::Decrypt(public_key_, secret_key_, c);
}

BigInt PrivateWeightingProtocol::PAddCiphertexts(const BigInt& c1,
                                                 const BigInt& c2) const {
  // Single-multiply ops have no fast/cold distinction (the context
  // delegates to the static implementation).
  return Paillier::AddCiphertexts(public_key_, c1, c2);
}

BigInt PrivateWeightingProtocol::PAddPlaintext(const BigInt& c,
                                               const BigInt& k) const {
  return Paillier::AddPlaintext(public_key_, c, k);
}

BigInt PrivateWeightingProtocol::PMulPlaintext(const BigInt& c,
                                               const BigInt& k) const {
  return config_.fast_paillier ? paillier_->MulPlaintext(c, k)
                               : Paillier::MulPlaintext(public_key_, c, k);
}

Status PrivateWeightingProtocol::Setup(
    const std::vector<std::vector<int>>& silo_histograms) {
  if (static_cast<int>(silo_histograms.size()) != num_silos_) {
    return Status::InvalidArgument("histogram count != silo count");
  }
  for (const auto& h : silo_histograms) {
    if (static_cast<int>(h.size()) != num_users_) {
      return Status::InvalidArgument("histogram size != user count");
    }
  }

  // -- Setup (a): keys and C_LCM ------------------------------------------
  auto t0 = Clock::now();
  // The two prime searches run concurrently on the protocol pool; the key
  // is a pure function of the seed regardless of thread count.
  ULDP_RETURN_IF_ERROR(Paillier::GenerateKeyPair(config_.paillier_bits, rng_,
                                                 &public_key_, &secret_key_,
                                                 &*pool_));
  if (config_.fast_paillier) {
    paillier_ = std::make_unique<PaillierContext>(public_key_, secret_key_);
  }
  c_lcm_ = LcmUpTo(static_cast<uint64_t>(config_.n_max));
  codec_ = FixedPointCodec(public_key_.n, config_.precision);

  // Theorem 4 condition (2): the worst-case integer magnitude
  //   sum_s sum_u |E| n_su (C_LCM / N_u) + |S| |Z| C_LCM
  // must stay below n/2 (signed fixed-point headroom). |E|,|Z| < 2^63 by
  // the Encode range check.
  {
    BigInt e_max = BigInt(1) << 63;
    BigInt bound =
        c_lcm_ * e_max *
        BigInt(static_cast<uint64_t>(num_silos_) *
               (static_cast<uint64_t>(num_users_) * config_.n_max + 1));
    if (bound >= public_key_.n >> 1) {
      return Status::FailedPrecondition(
          "Theorem 4 overflow condition violated: increase paillier_bits or "
          "decrease n_max (C_LCM has " +
          std::to_string(c_lcm_.BitLength()) + " bits, modulus " +
          std::to_string(public_key_.n.BitLength()) + ")");
    }
  }

  // -- Setup (b): DH pairwise keys (server relays public keys) ------------
  DhGroup group = DhGroup::Rfc3526Modp2048();
  std::vector<DhKeyPair> dh(num_silos_);
  for (int s = 0; s < num_silos_; ++s) dh[s] = GenerateDhKeyPair(group, rng_);
  pair_keys_.assign(num_silos_,
                    std::vector<ChaChaRng::Key>(num_silos_));
  for (int a = 0; a < num_silos_; ++a) {
    for (int b = a + 1; b < num_silos_; ++b) {
      auto shared = ComputeSharedSecret(group, dh[a].secret_key,
                                        dh[b].public_key);
      if (!shared.ok()) return shared.status();
      auto key = ChaChaRng::DeriveKey(
          DeriveSharedSeedMaterial(shared.value(), "pairmask", a, b));
      pair_keys_[a][b] = key;
      pair_keys_[b][a] = key;
    }
  }

  // -- Setup (c): silo 0 distributes the shared random seed R -------------
  // (encrypted under the pairwise keys; the server only relays ciphertext.)
  BigInt r_seed = BigInt::RandomBits(256, rng_);
  shared_seed_key_ = ChaChaRng::DeriveKey("uldp-shared-seed|" + r_seed.ToHex());
  if (config_.ot_slots > 0) {
    ot_group_ = DhGroup::GenerateSafePrimeGroup(config_.ot_group_bits, rng_);
  }
  timings_.key_exchange_s += SecondsSince(t0);

  // -- Setup (d)-(e): blinded histograms + secure aggregation --------------
  t0 = Clock::now();
  histograms_ = silo_histograms;
  for (int s = 0; s < num_silos_; ++s) {
    for (int u = 0; u < num_users_; ++u) {
      if (histograms_[s][u] < 0) {
        return Status::InvalidArgument("negative histogram entry");
      }
    }
  }
  // Validate N_u <= N_max.
  std::vector<int64_t> totals(num_users_, 0);
  for (int s = 0; s < num_silos_; ++s) {
    for (int u = 0; u < num_users_; ++u) totals[u] += histograms_[s][u];
  }
  for (int u = 0; u < num_users_; ++u) {
    if (totals[u] > config_.n_max) {
      return Status::InvalidArgument(
          "user " + std::to_string(u) + " has " + std::to_string(totals[u]) +
          " records > N_max=" + std::to_string(config_.n_max));
    }
  }

  server_view_.doubly_blinded_histograms.assign(num_silos_, {});
  const BigInt& n = public_key_.n;
  // Each silo blinds its histogram independently (BlindOf / PairMask are
  // pure PRF evaluations), so the silo loop runs on the pool.
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t si) {
    const int s = static_cast<int>(si);
    std::vector<BigInt> blinded(num_users_);
    for (int u = 0; u < num_users_; ++u) {
      BigInt b = BlindOf(u).ModMul(
          BigInt(static_cast<int64_t>(histograms_[s][u])), n);
      // Pairwise additive masks (setup e): +mask toward larger peers,
      // -mask toward smaller, so the server-side sum cancels them.
      for (int other = 0; other < num_silos_; ++other) {
        if (other == s) continue;
        BigInt m = PairMask(s, other, /*tag=*/0, u);
        b = s < other ? b.ModAdd(m, n) : b.ModSub(m, n);
      }
      blinded[u] = std::move(b);
    }
    server_view_.doubly_blinded_histograms[s] = std::move(blinded);
  });

  // Server aggregates: B(N_u) = sum_s B'(n_su) = r_u * N_u mod n.
  server_view_.blinded_totals.assign(num_users_, BigInt(0));
  for (int u = 0; u < num_users_; ++u) {
    BigInt acc(0);
    for (int s = 0; s < num_silos_; ++s) {
      acc = acc.ModAdd(server_view_.doubly_blinded_histograms[s][u], n);
    }
    server_view_.blinded_totals[u] = std::move(acc);
  }

  // -- Setup (f): server inverts the blinded totals ------------------------
  b_inv_.assign(num_users_, BigInt(0));
  for (int u = 0; u < num_users_; ++u) {
    const BigInt& bt = server_view_.blinded_totals[u];
    if (bt.IsZero()) {
      // N_u = 0: the user holds no records anywhere; weight stays zero.
      continue;
    }
    auto inv = bt.ModInverse(n);
    if (!inv.ok()) return inv.status();
    b_inv_[u] = std::move(inv.value());
  }
  timings_.histogram_s += SecondsSince(t0);
  setup_done_ = true;
  return Status::Ok();
}


Result<Vec> PrivateWeightingProtocol::WeightingRound(
    uint64_t round, const std::vector<std::vector<Vec>>& clipped_deltas,
    const std::vector<Vec>& silo_noise,
    const std::vector<bool>& user_sampled) {
  if (!setup_done_) {
    return Status::FailedPrecondition("Setup() has not completed");
  }
  if (static_cast<int>(clipped_deltas.size()) != num_silos_ ||
      static_cast<int>(silo_noise.size()) != num_silos_) {
    return Status::InvalidArgument("per-silo input size mismatch");
  }
  if (static_cast<int>(user_sampled.size()) != num_users_) {
    return Status::InvalidArgument("sampling mask size mismatch");
  }
  size_t dim = silo_noise[0].size();
  for (const auto& z : silo_noise) {
    if (z.size() != dim) {
      return Status::InvalidArgument("noise dimension mismatch");
    }
  }

  const BigInt& n = public_key_.n;

  // -- Weighting (a): server encrypts the (sampled) inverted weights ------
  // Users are independent; each draws its encryption randomness from a
  // Fork(round, user) substream, so the pool schedule never changes the
  // ciphertexts.
  auto t0 = Clock::now();
  std::vector<BigInt> enc_weights(num_users_);
  std::vector<Status> user_status(num_users_, Status::Ok());
  if (config_.ot_slots > 0) {
    // §4.1 extension: per user, the server lays out P slots — a
    // q-fraction hold Enc(B_inv), the rest Enc(0) — under a fresh private
    // shuffle; silos jointly (via the shared seed R) pick one slot and
    // fetch it by 1-out-of-P OT. Neither party learns the sampling result.
    const int slots = config_.ot_slots;
    const int real_slots = static_cast<int>(
        std::max(0.0, std::min(1.0, config_.ot_sample_rate)) * slots + 0.5);
    const size_t clen =
        static_cast<size_t>((public_key_.n_squared.BitLength() + 7) / 8) + 8;
    ObliviousTransfer ot(ot_group_, static_cast<size_t>(slots));
    // Byte-per-user scratch: std::vector<bool> packs bits, so concurrent
    // per-user writes would race on shared words.
    std::vector<char> ot_mask(num_users_, 1);
    pool_->ParallelFor(static_cast<size_t>(num_users_), [&](size_t ui) {
      const int u = static_cast<int>(ui);
      Rng user_rng = rng_.Fork(round, static_cast<uint64_t>(u),
                               kRngStreamEncrypt);
      // Receiver-side slot choice, identical across silos (from R).
      ChaChaRng choice(shared_seed_key_,
                       ChaChaRng::MakeNonce(0xA1100000ull + round,
                                            static_cast<uint32_t>(u)));
      size_t sigma = choice.NextUint64() % static_cast<uint64_t>(slots);
      // Server-side slot contents with a private permutation.
      std::vector<int> perm(slots);
      for (int i = 0; i < slots; ++i) perm[i] = i;
      user_rng.Shuffle(perm);
      std::vector<std::vector<uint8_t>> payload(slots);
      for (int i = 0; i < slots; ++i) {
        bool real = perm[i] < real_slots;
        auto c = PEncrypt(real ? b_inv_[u] : BigInt(0), user_rng);
        if (!c.ok()) {
          user_status[u] = c.status();
          return;
        }
        payload[i] = c.value().ToBytesLE(clen);
      }
      auto sender = ot.SenderInit(user_rng);
      auto receiver = ot.ReceiverChoose(sender, sigma, user_rng);
      if (!receiver.ok()) {
        user_status[u] = receiver.status();
        return;
      }
      auto encrypted = ot.SenderEncrypt(sender, receiver.value().b, payload);
      if (!encrypted.ok()) {
        user_status[u] = encrypted.status();
        return;
      }
      auto fetched =
          ot.ReceiverDecrypt(receiver.value(), sender, encrypted.value());
      if (!fetched.ok()) {
        user_status[u] = fetched.status();
        return;
      }
      enc_weights[u] = BigInt::FromBytesLE(fetched.value());
      ot_mask[u] = perm[sigma] < real_slots ? 1 : 0;
    });
    last_ot_mask_.assign(ot_mask.begin(), ot_mask.end());
  } else if (config_.fast_paillier) {
    // Randomizer pipeline: r^n mod n^2 is plaintext-independent, so
    // EncryptBatch first batch-computes one randomizer per user on the
    // pool (drawing r from the same Fork(round, user) substream, in the
    // same order, as a direct Encrypt would — ciphertexts stay bitwise
    // thread-count-invariant), then encryption itself is a single modular
    // multiply per user.
    std::vector<BigInt> plains(num_users_);
    for (int u = 0; u < num_users_; ++u) {
      if (user_sampled[u]) plains[u] = b_inv_[u];
    }
    auto batch = paillier_->EncryptBatch(
        plains,
        [&](size_t u) {
          return rng_.Fork(round, static_cast<uint64_t>(u),
                           kRngStreamEncrypt);
        },
        *pool_);
    if (!batch.ok()) return batch.status();
    enc_weights = std::move(batch.value());
  } else {
    pool_->ParallelFor(static_cast<size_t>(num_users_), [&](size_t ui) {
      const int u = static_cast<int>(ui);
      Rng user_rng = rng_.Fork(round, static_cast<uint64_t>(u),
                               kRngStreamEncrypt);
      BigInt plain = user_sampled[u] ? b_inv_[u] : BigInt(0);
      auto c = Paillier::Encrypt(public_key_, plain, user_rng);
      if (!c.ok()) {
        user_status[u] = c.status();
        return;
      }
      enc_weights[u] = std::move(c.value());
    });
  }
  ULDP_RETURN_IF_ERROR(FirstError(user_status));
  timings_.encrypt_weights_s += SecondsSince(t0);

  // Broadcast: every silo receives the same ciphertext vector (fetched via
  // OT in the private-sub-sampling extension; ciphertexts are semantically
  // secure either way).
  for (int s = 0; s < num_silos_; ++s) {
    silo_views_[s].encrypted_weights = enc_weights;
  }

  // -- Weighting (b): per-silo encrypted weighted sums --------------------
  // The dominant protocol cost (Figure 10/11). Silos are independent
  // actors, so the outer loop runs on the pool; everything inside is a
  // pure function of setup state.
  t0 = Clock::now();
  for (int s = 0; s < num_silos_; ++s) {
    if (static_cast<int>(clipped_deltas[s].size()) != num_users_) {
      return Status::InvalidArgument("delta matrix size mismatch");
    }
  }
  // Paillier g^m terms and scalar products, one ciphertext per coordinate.
  std::vector<std::vector<BigInt>> silo_cipher(
      num_silos_, std::vector<BigInt>(dim, BigInt(1)));
  std::vector<Status> silo_status(num_silos_, Status::Ok());
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t si) {
    const int s = static_cast<int>(si);
    const auto& deltas = clipped_deltas[s];
    for (int u = 0; u < num_users_; ++u) {
      if (deltas[u].empty()) continue;  // user has no records at this silo
      if (deltas[u].size() != dim) {
        silo_status[s] = Status::InvalidArgument("delta dimension mismatch");
        return;
      }
      if (histograms_[s][u] == 0) continue;
      // Per-user scalar base: n_su * r_u * C_LCM mod n (delta encoding is
      // per coordinate below).
      BigInt base = BlindOf(u)
                        .ModMul(BigInt(static_cast<int64_t>(histograms_[s][u])),
                                n)
                        .ModMul(c_lcm_.Mod(n), n);
      for (size_t d = 0; d < dim; ++d) {
        auto e = codec_.Encode(deltas[u][d]);
        if (!e.ok()) {
          silo_status[s] = e.status();
          return;
        }
        if (e.value().IsZero()) continue;
        BigInt scalar = e.value().ModMul(base, n);
        BigInt term = PMulPlaintext(enc_weights[u], scalar);
        silo_cipher[s][d] = PAddCiphertexts(silo_cipher[s][d], term);
      }
    }
    // Encoded noise z' = Encode(z) * C_LCM added homomorphically.
    for (size_t d = 0; d < dim; ++d) {
      auto z = codec_.Encode(silo_noise[s][d]);
      if (!z.ok()) {
        silo_status[s] = z.status();
        return;
      }
      BigInt z_scaled = z.value().ModMul(c_lcm_.Mod(n), n);
      silo_cipher[s][d] = PAddPlaintext(silo_cipher[s][d], z_scaled);
    }
  });
  ULDP_RETURN_IF_ERROR(FirstError(silo_status));
  timings_.silo_weighting_s += SecondsSince(t0);

  // -- Weighting (c): secure aggregation over ciphertexts -----------------
  t0 = Clock::now();
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t si) {
    const int s = static_cast<int>(si);
    for (size_t d = 0; d < dim; ++d) {
      BigInt mask(0);
      for (int other = 0; other < num_silos_; ++other) {
        if (other == s) continue;
        BigInt m = PairMask(s, other, /*tag=*/0x5EC0000 + round,
                            static_cast<int>(d));
        mask = s < other ? mask.ModAdd(m, n) : mask.ModSub(m, n);
      }
      silo_cipher[s][d] = PAddPlaintext(silo_cipher[s][d], mask);
    }
  });
  // Server-side ciphertext product: coordinates are independent; the silo
  // sum inside each coordinate keeps its fixed order.
  std::vector<BigInt> product(dim, BigInt(1));
  pool_->ParallelFor(dim, [&](size_t d) {
    for (int s = 0; s < num_silos_; ++s) {
      product[d] = PAddCiphertexts(product[d], silo_cipher[s][d]);
    }
  });
  timings_.aggregation_s += SecondsSince(t0);

  // Server decrypts and decodes (the only value it ever sees in the clear).
  t0 = Clock::now();
  Vec out(dim, 0.0);
  std::vector<Status> dim_status(dim, Status::Ok());
  // CRT decryption (mod p^2 / q^2 with half-size exponents) on the fast
  // path — the per-coordinate loop this protocol's decryption phase spends
  // its time in.
  pool_->ParallelFor(dim, [&](size_t d) {
    auto plain = PDecrypt(product[d]);
    if (!plain.ok()) {
      dim_status[d] = plain.status();
      return;
    }
    out[d] = codec_.Decode(plain.value(), c_lcm_);
  });
  ULDP_RETURN_IF_ERROR(FirstError(dim_status));
  timings_.decryption_s += SecondsSince(t0);
  return out;
}

}  // namespace uldp
