#include "core/private_weighting.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "core/mask_tags.h"
#include "math/fixed_base.h"

namespace uldp {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

PrivateWeightingProtocol::PrivateWeightingProtocol(ProtocolConfig config,
                                                   int num_silos,
                                                   int num_users)
    : config_(config),
      num_silos_(num_silos),
      num_users_(num_users),
      rng_(config.seed),
      pool_(config.num_threads),
      silo_views_(num_silos) {
  ULDP_CHECK_GE(num_silos_, 2);
  ULDP_CHECK_GE(num_users_, 1);
  ULDP_CHECK_GE(config_.n_max, 1);
}

BigInt PrivateWeightingProtocol::BlindOf(int user) const {
  // All silos derive the same r_u from the shared seed R; the server never
  // learns R. r_u must be a unit of F_n — overwhelmingly likely (Eq. 4 of
  // the paper); regenerate with a counter otherwise. The typed phase tag
  // keeps this stream family structurally disjoint from every other
  // consumer of the shared seed (see mask_tags.h).
  for (uint32_t attempt = 0;; ++attempt) {
    ChaChaRng stream(shared_seed_key_,
                     ChaChaRng::MakeNonce(
                         MakeMaskTag(MaskPhase::kUserBlind,
                                     static_cast<uint64_t>(user)),
                         /*stream_id=*/attempt));
    BigInt r = stream.UniformBelow(public_key_.n);
    if (!r.IsZero() && BigInt::Gcd(r, public_key_.n) == BigInt(1)) return r;
  }
}

BigInt PrivateWeightingProtocol::PairMask(int silo_a, int silo_b,
                                          uint64_t tag, int user) const {
  ChaChaRng stream(pair_keys_[silo_a][silo_b],
                   ChaChaRng::MakeNonce(tag, static_cast<uint32_t>(user)));
  return stream.UniformBelow(public_key_.n);
}

Result<BigInt> PrivateWeightingProtocol::PEncrypt(const BigInt& m,
                                                  Rng& rng) const {
  return config_.fast_paillier ? paillier_->Encrypt(m, rng)
                               : Paillier::Encrypt(public_key_, m, rng);
}

Result<BigInt> PrivateWeightingProtocol::PDecrypt(const BigInt& c) const {
  return config_.fast_paillier ? paillier_->Decrypt(c)
                               : Paillier::Decrypt(public_key_, secret_key_, c);
}

BigInt PrivateWeightingProtocol::PAddCiphertexts(const BigInt& c1,
                                                 const BigInt& c2) const {
  // Single-multiply ops have no fast/cold distinction (the context
  // delegates to the static implementation).
  return Paillier::AddCiphertexts(public_key_, c1, c2);
}

BigInt PrivateWeightingProtocol::PAddPlaintext(const BigInt& c,
                                               const BigInt& k) const {
  return Paillier::AddPlaintext(public_key_, c, k);
}

BigInt PrivateWeightingProtocol::PMulPlaintext(const BigInt& c,
                                               const BigInt& k) const {
  return config_.fast_paillier ? paillier_->MulPlaintext(c, k)
                               : Paillier::MulPlaintext(public_key_, c, k);
}

Status PrivateWeightingProtocol::Setup(
    const std::vector<std::vector<int>>& silo_histograms) {
  if (static_cast<int>(silo_histograms.size()) != num_silos_) {
    return Status::InvalidArgument("histogram count != silo count");
  }
  for (const auto& h : silo_histograms) {
    if (static_cast<int>(h.size()) != num_users_) {
      return Status::InvalidArgument("histogram size != user count");
    }
  }

  // -- Setup (a): keys and C_LCM ------------------------------------------
  auto t0 = Clock::now();
  // The two prime searches run concurrently on the protocol pool; the key
  // is a pure function of the seed regardless of thread count.
  ULDP_RETURN_IF_ERROR(Paillier::GenerateKeyPair(config_.paillier_bits, rng_,
                                                 &public_key_, &secret_key_,
                                                 &*pool_));
  if (config_.fast_paillier) {
    paillier_ = std::make_unique<PaillierContext>(public_key_, secret_key_);
  }
  c_lcm_ = LcmUpTo(static_cast<uint64_t>(config_.n_max));
  codec_ = FixedPointCodec(public_key_.n, config_.precision);

  // Theorem 4 condition (2): the worst-case integer magnitude
  //   sum_s sum_u |E| n_su (C_LCM / N_u) + |S| |Z| C_LCM
  // must stay below n/2 (signed fixed-point headroom). |E|,|Z| < 2^63 by
  // the Encode range check.
  {
    BigInt e_max = BigInt(1) << 63;
    BigInt bound =
        c_lcm_ * e_max *
        BigInt(static_cast<uint64_t>(num_silos_) *
               (static_cast<uint64_t>(num_users_) * config_.n_max + 1));
    if (bound >= public_key_.n >> 1) {
      return Status::FailedPrecondition(
          "Theorem 4 overflow condition violated: increase paillier_bits or "
          "decrease n_max (C_LCM has " +
          std::to_string(c_lcm_.BitLength()) + " bits, modulus " +
          std::to_string(public_key_.n.BitLength()) + ")");
    }
  }

  // -- Setup (b): DH pairwise keys (server relays public keys) ------------
  DhGroup group = DhGroup::Rfc3526Modp2048();
  std::vector<DhKeyPair> dh(num_silos_);
  for (int s = 0; s < num_silos_; ++s) dh[s] = GenerateDhKeyPair(group, rng_);
  pair_keys_.assign(num_silos_,
                    std::vector<ChaChaRng::Key>(num_silos_));
  for (int a = 0; a < num_silos_; ++a) {
    for (int b = a + 1; b < num_silos_; ++b) {
      auto shared = ComputeSharedSecret(group, dh[a].secret_key,
                                        dh[b].public_key);
      if (!shared.ok()) return shared.status();
      auto key = ChaChaRng::DeriveKey(
          DeriveSharedSeedMaterial(shared.value(), "pairmask", a, b));
      pair_keys_[a][b] = key;
      pair_keys_[b][a] = key;
    }
  }

  // -- Setup (c): silo 0 distributes the shared random seed R -------------
  // (encrypted under the pairwise keys; the server only relays ciphertext.)
  BigInt r_seed = BigInt::RandomBits(256, rng_);
  shared_seed_key_ = ChaChaRng::DeriveKey("uldp-shared-seed|" + r_seed.ToHex());
  if (config_.ot_slots > 0) {
    ot_group_ = DhGroup::GenerateSafePrimeGroup(config_.ot_group_bits, rng_);
    // Every OT slot element and key-agreement message is a generator power;
    // build the fixed-base table once here so the per-round OT copies share
    // it through the group's shared_ptr.
    ot_group_.EnsureGeneratorTable();
  }
  timings_.key_exchange_s += SecondsSince(t0);

  // -- Setup (d)-(e): blinded histograms + secure aggregation --------------
  t0 = Clock::now();
  histograms_ = silo_histograms;
  for (int s = 0; s < num_silos_; ++s) {
    for (int u = 0; u < num_users_; ++u) {
      if (histograms_[s][u] < 0) {
        return Status::InvalidArgument("negative histogram entry");
      }
    }
  }
  // Validate N_u <= N_max.
  std::vector<int64_t> totals(num_users_, 0);
  for (int s = 0; s < num_silos_; ++s) {
    for (int u = 0; u < num_users_; ++u) totals[u] += histograms_[s][u];
  }
  for (int u = 0; u < num_users_; ++u) {
    if (totals[u] > config_.n_max) {
      return Status::InvalidArgument(
          "user " + std::to_string(u) + " has " + std::to_string(totals[u]) +
          " records > N_max=" + std::to_string(config_.n_max));
    }
  }

  server_view_.doubly_blinded_histograms.assign(num_silos_, {});
  const BigInt& n = public_key_.n;
  // Each silo blinds its histogram independently (BlindOf / PairMask are
  // pure PRF evaluations), so the silo loop runs on the pool.
  const uint64_t histogram_tag =
      MakeMaskTag(MaskPhase::kHistogramBlind, /*round=*/0);
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t si) {
    const int s = static_cast<int>(si);
    std::vector<BigInt> blinded(num_users_);
    for (int u = 0; u < num_users_; ++u) {
      BigInt b = BlindOf(u).ModMul(
          BigInt(static_cast<int64_t>(histograms_[s][u])), n);
      // Pairwise additive masks (setup e): +mask toward larger peers,
      // -mask toward smaller, so the server-side sum cancels them.
      for (int other = 0; other < num_silos_; ++other) {
        if (other == s) continue;
        BigInt m = PairMask(s, other, histogram_tag, u);
        b = s < other ? b.ModAdd(m, n) : b.ModSub(m, n);
      }
      blinded[u] = std::move(b);
    }
    server_view_.doubly_blinded_histograms[s] = std::move(blinded);
  });

  // Server aggregates: B(N_u) = sum_s B'(n_su) = r_u * N_u mod n.
  server_view_.blinded_totals.assign(num_users_, BigInt(0));
  for (int u = 0; u < num_users_; ++u) {
    BigInt acc(0);
    for (int s = 0; s < num_silos_; ++s) {
      acc = acc.ModAdd(server_view_.doubly_blinded_histograms[s][u], n);
    }
    server_view_.blinded_totals[u] = std::move(acc);
  }

  // -- Setup (f): server inverts the blinded totals ------------------------
  b_inv_.assign(num_users_, BigInt(0));
  for (int u = 0; u < num_users_; ++u) {
    const BigInt& bt = server_view_.blinded_totals[u];
    if (bt.IsZero()) {
      // N_u = 0: the user holds no records anywhere; weight stays zero.
      continue;
    }
    auto inv = bt.ModInverse(n);
    if (!inv.ok()) return inv.status();
    b_inv_[u] = std::move(inv.value());
  }
  timings_.histogram_s += SecondsSince(t0);
  setup_done_ = true;
  return Status::Ok();
}


Result<Vec> PrivateWeightingProtocol::WeightingRound(
    uint64_t round, const std::vector<std::vector<Vec>>& clipped_deltas,
    const std::vector<Vec>& silo_noise,
    const std::vector<bool>& user_sampled) {
  if (!setup_done_) {
    return Status::FailedPrecondition("Setup() has not completed");
  }
  if (static_cast<int>(clipped_deltas.size()) != num_silos_ ||
      static_cast<int>(silo_noise.size()) != num_silos_) {
    return Status::InvalidArgument("per-silo input size mismatch");
  }
  if (static_cast<int>(user_sampled.size()) != num_users_) {
    return Status::InvalidArgument("sampling mask size mismatch");
  }
  size_t dim = silo_noise[0].size();
  for (const auto& z : silo_noise) {
    if (z.size() != dim) {
      return Status::InvalidArgument("noise dimension mismatch");
    }
  }

  const BigInt& n = public_key_.n;

  // -- Weighting (a): server encrypts the (sampled) inverted weights ------
  // Users are independent; each draws its encryption randomness from a
  // Fork(round, user) substream, so the pool schedule never changes the
  // ciphertexts.
  auto t0 = Clock::now();
  std::vector<BigInt> enc_weights(num_users_);
  std::vector<Status> user_status(num_users_, Status::Ok());
  if (config_.ot_slots > 0) {
    // §4.1 extension: per user, the server lays out P slots — a
    // q-fraction hold Enc(B_inv), the rest Enc(0) — under a fresh private
    // shuffle; silos jointly (via the shared seed R) pick one slot and
    // fetch it by 1-out-of-P OT. Neither party learns the sampling result.
    //
    // The per-slot work (one Paillier encryption plus one OT group
    // exponentiation per slot) dominates this phase, so it runs as one
    // flat (user × slot) sweep: each slot draws from its own
    // Fork(round, user‖slot) substream, which keeps the results bitwise
    // thread-count-invariant even when a single user's slots land on
    // different workers.
    const int slots = config_.ot_slots;
    const size_t n_slots = static_cast<size_t>(slots);
    const int real_slots = static_cast<int>(
        std::max(0.0, std::min(1.0, config_.ot_sample_rate)) * slots + 0.5);
    const size_t clen =
        static_cast<size_t>((public_key_.n_squared.BitLength() + 7) / 8) + 8;
    ObliviousTransfer ot(ot_group_, n_slots);
    // Byte-per-user scratch: std::vector<bool> packs bits, so concurrent
    // per-user writes would race on shared words.
    std::vector<char> ot_mask(num_users_, 1);
    const uint64_t choice_tag = MakeMaskTag(MaskPhase::kOtSlotChoice, round);
    auto slot_counter = [](size_t u, size_t slot) {
      return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(slot);
    };

    struct OtUserState {
      ObliviousTransfer::SenderState sender;
      ObliviousTransfer::ReceiverState receiver;
      BigInt receiver_b_inv;
      std::vector<int> perm;
    };
    std::vector<OtUserState> states(num_users_);

    // (a.1) Sender slot elements C_i: independent generator powers, one
    // substream per (user, slot).
    std::vector<std::vector<BigInt>> slot_elems(
        num_users_, std::vector<BigInt>(n_slots));
    pool_->ParallelFor(
        static_cast<size_t>(num_users_) * n_slots, [&](size_t i) {
          const size_t u = i / n_slots, slot = i % n_slots;
          Rng rng = rng_.Fork(round, slot_counter(u, slot),
                              kRngStreamOtSlotElem);
          slot_elems[u][slot] = ot.SampleSlotElement(rng);
        });

    // (a.2) Per-user message flow: private shuffle, shared slot choice
    // (identical across silos, from R), sender secret, receiver commit.
    pool_->ParallelFor(static_cast<size_t>(num_users_), [&](size_t ui) {
      const int u = static_cast<int>(ui);
      auto& st = states[ui];
      ChaChaRng choice(shared_seed_key_,
                       ChaChaRng::MakeNonce(choice_tag,
                                            static_cast<uint32_t>(u)));
      const size_t sigma = choice.NextUint64() % n_slots;
      st.perm.resize(slots);
      std::iota(st.perm.begin(), st.perm.end(), 0);
      Rng shuffle_rng = rng_.Fork(round, static_cast<uint64_t>(u),
                                  kRngStreamOtShuffle);
      shuffle_rng.Shuffle(st.perm);
      Rng flow_rng = rng_.Fork(round, static_cast<uint64_t>(u),
                               kRngStreamOtFlow);
      st.sender = ot.SenderInitWithSlots(std::move(slot_elems[ui]), flow_rng);
      auto receiver = ot.ReceiverChoose(st.sender, sigma, flow_rng);
      if (!receiver.ok()) {
        user_status[u] = receiver.status();
        return;
      }
      st.receiver = std::move(receiver.value());
      auto b_inv = ot.InvertReceiverMessage(st.receiver.b);
      if (!b_inv.ok()) {
        user_status[u] = b_inv.status();
        return;
      }
      st.receiver_b_inv = std::move(b_inv.value());
    });
    ULDP_RETURN_IF_ERROR(FirstError(user_status));

    // (a.3) The per-slot exponentiations, flattened across users AND the
    // slots within one user: Paillier payload encryption, then the OT
    // sender pad for the same slot. Per-(user, slot) status cells keep
    // failure reporting race-free.
    std::vector<std::vector<std::vector<uint8_t>>> encrypted(
        num_users_, std::vector<std::vector<uint8_t>>(n_slots));
    std::vector<Status> slot_status(static_cast<size_t>(num_users_) * n_slots,
                                    Status::Ok());
    pool_->ParallelFor(
        static_cast<size_t>(num_users_) * n_slots, [&](size_t i) {
          const size_t u = i / n_slots, slot = i % n_slots;
          const auto& st = states[u];
          Rng enc_rng = rng_.Fork(round, slot_counter(u, slot),
                                  kRngStreamOtSlotEnc);
          const bool real = st.perm[slot] < real_slots;
          auto c = PEncrypt(real ? b_inv_[u] : BigInt(0), enc_rng);
          if (!c.ok()) {
            slot_status[i] = c.status();
            return;
          }
          encrypted[u][slot] = ot.SenderEncryptSlot(
              st.sender, st.receiver_b_inv, c.value().ToBytesLE(clen), slot);
        });
    ULDP_RETURN_IF_ERROR(FirstError(slot_status));

    // (a.4) Receiver side: decrypt the chosen slot.
    pool_->ParallelFor(static_cast<size_t>(num_users_), [&](size_t ui) {
      const int u = static_cast<int>(ui);
      auto& st = states[ui];
      auto fetched = ot.ReceiverDecrypt(st.receiver, st.sender,
                                        encrypted[ui]);
      if (!fetched.ok()) {
        user_status[u] = fetched.status();
        return;
      }
      enc_weights[u] = BigInt::FromBytesLE(fetched.value());
      ot_mask[u] = st.perm[st.receiver.sigma] < real_slots ? 1 : 0;
    });
    last_ot_mask_.assign(ot_mask.begin(), ot_mask.end());
  } else if (config_.fast_paillier) {
    // Randomizer pipeline: r^n mod n^2 is plaintext-independent, so
    // EncryptBatch first batch-computes one randomizer per user on the
    // pool (drawing r from the same Fork(round, user) substream, in the
    // same order, as a direct Encrypt would — ciphertexts stay bitwise
    // thread-count-invariant), then encryption itself is a single modular
    // multiply per user.
    std::vector<BigInt> plains(num_users_);
    for (int u = 0; u < num_users_; ++u) {
      if (user_sampled[u]) plains[u] = b_inv_[u];
    }
    auto batch = paillier_->EncryptBatch(
        plains,
        [&](size_t u) {
          return rng_.Fork(round, static_cast<uint64_t>(u),
                           kRngStreamEncrypt);
        },
        *pool_);
    if (!batch.ok()) return batch.status();
    enc_weights = std::move(batch.value());
  } else {
    pool_->ParallelFor(static_cast<size_t>(num_users_), [&](size_t ui) {
      const int u = static_cast<int>(ui);
      Rng user_rng = rng_.Fork(round, static_cast<uint64_t>(u),
                               kRngStreamEncrypt);
      BigInt plain = user_sampled[u] ? b_inv_[u] : BigInt(0);
      auto c = Paillier::Encrypt(public_key_, plain, user_rng);
      if (!c.ok()) {
        user_status[u] = c.status();
        return;
      }
      enc_weights[u] = std::move(c.value());
    });
  }
  ULDP_RETURN_IF_ERROR(FirstError(user_status));
  timings_.encrypt_weights_s += SecondsSince(t0);

  // Broadcast: every silo receives the same ciphertext vector (fetched via
  // OT in the private-sub-sampling extension; ciphertexts are semantically
  // secure either way).
  for (int s = 0; s < num_silos_; ++s) {
    silo_views_[s].encrypted_weights = enc_weights;
  }

  // -- Weighting (b): per-silo encrypted weighted sums --------------------
  // The dominant protocol cost (Figure 10/11). Silos are independent
  // actors, so the outer loop runs on the pool; everything inside is a
  // pure function of setup state.
  t0 = Clock::now();
  for (int s = 0; s < num_silos_; ++s) {
    if (static_cast<int>(clipped_deltas[s].size()) != num_users_) {
      return Status::InvalidArgument("delta matrix size mismatch");
    }
  }
  // Fixed-base tables: every silo raises the SAME ciphertext
  // Enc(B_inv(N_u)) to a per-coordinate scalar, so one window table per
  // user (built once, shared read-only by all silo tasks) replaces the
  // sliding-window exponentiation's squarings for all dim * |silos with
  // the user| MulPlaintext calls. Table construction is a pure function of
  // the ciphertext, so building on the pool stays deterministic.
  const bool use_tables = config_.fast_paillier && config_.fixed_base;
  std::vector<uint32_t> silos_with_user;
  if (use_tables) {
    silos_with_user.assign(num_users_, 0);
    for (int s = 0; s < num_silos_; ++s) {
      for (int u = 0; u < num_users_; ++u) {
        if (histograms_[s][u] > 0 && !clipped_deltas[s][u].empty()) {
          ++silos_with_user[u];
        }
      }
    }
  }
  // Users are swept in index-ordered batches: each batch builds its tables
  // in parallel, every silo consumes them, then the batch's tables are
  // freed. This bounds transient table memory at ~batch * 2 MB worst case
  // (the per-table entry cap at a 1024-bit key) instead of O(num_users),
  // while keeping the per-(silo, coordinate) accumulation in the same
  // ascending-user order as an unbatched sweep — outputs are bitwise
  // unchanged. Without tables a single batch reproduces the plain loop.
  const int user_batch = use_tables ? 128 : num_users_;
  std::vector<std::unique_ptr<FixedBaseTable>> weight_tables(num_users_);
  // Per-user blinds are pure PRF evaluations shared by every silo, so they
  // are derived once per batch here rather than once per (silo, user) in
  // the sweep; same for the round-constant C_LCM mod n.
  std::vector<BigInt> user_blinds(num_users_);
  const BigInt c_lcm_mod_n = c_lcm_.Mod(n);
  // Paillier g^m terms and scalar products, one ciphertext per coordinate.
  std::vector<std::vector<BigInt>> silo_cipher(
      num_silos_, std::vector<BigInt>(dim, BigInt(1)));
  std::vector<Status> silo_status(num_silos_, Status::Ok());
  for (int u0 = 0; u0 < num_users_; u0 += user_batch) {
    const int u1 = std::min(num_users_, u0 + user_batch);
    pool_->ParallelFor(static_cast<size_t>(u1 - u0), [&](size_t i) {
      const size_t u = static_cast<size_t>(u0) + i;
      user_blinds[u] = BlindOf(static_cast<int>(u));
      if (!use_tables || silos_with_user[u] == 0) return;
      weight_tables[u] = std::make_unique<FixedBaseTable>(
          paillier_->MakeMulPlaintextTable(
              enc_weights[u],
              static_cast<size_t>(silos_with_user[u]) * dim));
    });
    pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t si) {
      const int s = static_cast<int>(si);
      if (!silo_status[s].ok()) return;  // earlier batch already failed
      const auto& deltas = clipped_deltas[s];
      for (int u = u0; u < u1; ++u) {
        if (deltas[u].empty()) continue;  // user has no records at this silo
        if (deltas[u].size() != dim) {
          silo_status[s] = Status::InvalidArgument("delta dimension mismatch");
          return;
        }
        if (histograms_[s][u] == 0) continue;
        // Per-user scalar base: n_su * r_u * C_LCM mod n (delta encoding
        // is per coordinate below).
        BigInt base =
            user_blinds[u]
                .ModMul(BigInt(static_cast<int64_t>(histograms_[s][u])), n)
                .ModMul(c_lcm_mod_n, n);
        for (size_t d = 0; d < dim; ++d) {
          auto e = codec_.Encode(deltas[u][d]);
          if (!e.ok()) {
            silo_status[s] = e.status();
            return;
          }
          if (e.value().IsZero()) continue;
          BigInt scalar = e.value().ModMul(base, n);
          BigInt term =
              weight_tables[u] != nullptr
                  ? paillier_->MulPlaintextWithTable(*weight_tables[u], scalar)
                  : PMulPlaintext(enc_weights[u], scalar);
          silo_cipher[s][d] = PAddCiphertexts(silo_cipher[s][d], term);
        }
      }
    });
    for (int u = u0; u < u1; ++u) weight_tables[u].reset();
  }
  ULDP_RETURN_IF_ERROR(FirstError(silo_status));
  // Encoded noise z' = Encode(z) * C_LCM added homomorphically, after all
  // user terms (same per-coordinate op order as the unbatched sweep).
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t si) {
    const int s = static_cast<int>(si);
    for (size_t d = 0; d < dim; ++d) {
      auto z = codec_.Encode(silo_noise[s][d]);
      if (!z.ok()) {
        silo_status[s] = z.status();
        return;
      }
      BigInt z_scaled = z.value().ModMul(c_lcm_mod_n, n);
      silo_cipher[s][d] = PAddPlaintext(silo_cipher[s][d], z_scaled);
    }
  });
  ULDP_RETURN_IF_ERROR(FirstError(silo_status));
  timings_.silo_weighting_s += SecondsSince(t0);

  // -- Weighting (c): secure aggregation over ciphertexts -----------------
  // Every (silo, coordinate) mask is an independent PRF evaluation, so the
  // generation + application sweep is flattened over silos × dim rather
  // than silos alone — with few silos and many coordinates the silo-level
  // loop left most workers idle.
  t0 = Clock::now();
  const uint64_t weighting_tag = MakeMaskTag(MaskPhase::kRoundWeighting, round);
  pool_->ParallelFor(static_cast<size_t>(num_silos_) * dim, [&](size_t i) {
    const int s = static_cast<int>(i / dim);
    const size_t d = i % dim;
    BigInt mask(0);
    for (int other = 0; other < num_silos_; ++other) {
      if (other == s) continue;
      BigInt m = PairMask(s, other, weighting_tag, static_cast<int>(d));
      mask = s < other ? mask.ModAdd(m, n) : mask.ModSub(m, n);
    }
    silo_cipher[s][d] = PAddPlaintext(silo_cipher[s][d], mask);
  });
  // Server-side ciphertext product: coordinates are independent; the silo
  // sum inside each coordinate keeps its fixed order.
  std::vector<BigInt> product(dim, BigInt(1));
  pool_->ParallelFor(dim, [&](size_t d) {
    for (int s = 0; s < num_silos_; ++s) {
      product[d] = PAddCiphertexts(product[d], silo_cipher[s][d]);
    }
  });
  timings_.aggregation_s += SecondsSince(t0);

  // Server decrypts and decodes (the only value it ever sees in the clear).
  t0 = Clock::now();
  Vec out(dim, 0.0);
  std::vector<Status> dim_status(dim, Status::Ok());
  // CRT decryption (mod p^2 / q^2 with half-size exponents) on the fast
  // path — the per-coordinate loop this protocol's decryption phase spends
  // its time in.
  pool_->ParallelFor(dim, [&](size_t d) {
    auto plain = PDecrypt(product[d]);
    if (!plain.ok()) {
      dim_status[d] = plain.status();
      return;
    }
    out[d] = codec_.Decode(plain.value(), c_lcm_);
  });
  ULDP_RETURN_IF_ERROR(FirstError(dim_status));
  timings_.decryption_s += SecondsSince(t0);
  return out;
}

}  // namespace uldp
