#include "core/private_weighting.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace uldp {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

PrivateWeightingProtocol::PrivateWeightingProtocol(ProtocolConfig config,
                                                   int num_silos,
                                                   int num_users)
    : config_(config),
      num_silos_(num_silos),
      num_users_(num_users),
      pool_(config.num_threads),
      server_(std::make_unique<ServerCore>(config, num_silos, num_users)),
      silo_views_(num_silos) {
  ULDP_CHECK_GE(num_silos_, 2);
  ULDP_CHECK_GE(num_users_, 1);
  ULDP_CHECK_GE(config_.n_max, 1);
}

Status PrivateWeightingProtocol::Setup(
    const std::vector<std::vector<int>>& silo_histograms) {
  if (static_cast<int>(silo_histograms.size()) != num_silos_) {
    return Status::InvalidArgument("histogram count != silo count");
  }
  for (const auto& h : silo_histograms) {
    if (static_cast<int>(h.size()) != num_users_) {
      return Status::InvalidArgument("histogram size != user count");
    }
    for (int count : h) {
      if (count < 0) {
        return Status::InvalidArgument("negative histogram entry");
      }
    }
  }
  // Validate N_u <= N_max. (A deployment cannot check this directly — no
  // party knows N_u — which is why Theorem 4 budgets N_max headroom; the
  // simulation holds all inputs and checks it up front.)
  std::vector<int64_t> totals(num_users_, 0);
  for (int s = 0; s < num_silos_; ++s) {
    for (int u = 0; u < num_users_; ++u) totals[u] += silo_histograms[s][u];
  }
  for (int u = 0; u < num_users_; ++u) {
    if (totals[u] > config_.n_max) {
      return Status::InvalidArgument(
          "user " + std::to_string(u) + " has " + std::to_string(totals[u]) +
          " records > N_max=" + std::to_string(config_.n_max));
    }
  }

  // -- Setup (a): server key generation (+ Theorem-4 check) ----------------
  auto t0 = Clock::now();
  ULDP_RETURN_IF_ERROR(server_->GenerateKeys(*pool_));

  // -- Setup (b): per-silo DH key pairs; pairwise keys from the directory.
  // Each silo's pair is a Fork(0, silo) substream of the seed, so the key
  // exchange needs only the public-key directory — exactly what the server
  // relays in the distributed driver.
  histograms_ = silo_histograms;
  silos_.clear();
  for (int s = 0; s < num_silos_; ++s) {
    silos_.push_back(std::make_unique<SiloCore>(server_->params(), s,
                                                silo_histograms[s]));
  }
  std::vector<BigInt> directory(num_silos_);
  for (int s = 0; s < num_silos_; ++s) {
    directory[s] = silos_[s]->dh_key().public_key;
  }
  std::vector<Status> silo_status(num_silos_, Status::Ok());
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    silo_status[s] = silos_[s]->ComputePairKeys(directory);
  });
  ULDP_RETURN_IF_ERROR(FirstError(silo_status));

  // -- Setup (c): silo 0 distributes the shared random seed R -------------
  // (in the distributed driver it travels encrypted under the pairwise
  // keys and the server only relays ciphertext; in process it is handed
  // over directly).
  BigInt r_seed = silos_[0]->MakeSharedSeed();
  for (int s = 0; s < num_silos_; ++s) silos_[s]->SetSharedSeed(r_seed);
  timings_.key_exchange_s += SecondsSince(t0);

  // -- Setup (d)-(f): blinded histograms + secure aggregation --------------
  t0 = Clock::now();
  for (int s = 0; s < num_silos_; ++s) {
    auto blinded = silos_[s]->BlindHistogram(*pool_);
    if (!blinded.ok()) return blinded.status();
    ULDP_RETURN_IF_ERROR(
        server_->AbsorbBlindedHistogram(s, std::move(blinded.value())));
  }
  ULDP_RETURN_IF_ERROR(server_->FinalizeSetup());
  timings_.histogram_s += SecondsSince(t0);
  setup_done_ = true;
  return Status::Ok();
}

Result<Vec> PrivateWeightingProtocol::WeightingRound(
    uint64_t round, const std::vector<std::vector<Vec>>& clipped_deltas,
    const std::vector<Vec>& silo_noise,
    const std::vector<bool>& user_sampled) {
  if (!setup_done_) {
    return Status::FailedPrecondition("Setup() has not completed");
  }
  if (static_cast<int>(clipped_deltas.size()) != num_silos_ ||
      static_cast<int>(silo_noise.size()) != num_silos_) {
    return Status::InvalidArgument("per-silo input size mismatch");
  }
  if (static_cast<int>(user_sampled.size()) != num_users_) {
    return Status::InvalidArgument("sampling mask size mismatch");
  }
  size_t dim = silo_noise[0].size();
  for (const auto& z : silo_noise) {
    if (z.size() != dim) {
      return Status::InvalidArgument("noise dimension mismatch");
    }
  }

  // -- Weighting (a): the server encrypts the (sampled) inverted weights.
  // In OT mode the §4.1 extension runs instead: the server offers P
  // shuffled slots per user (real Enc(B_inv) in a q-fraction, Enc(0) in
  // the rest) and the joint receiver fetches one by 1-out-of-P OT, so
  // neither side learns the sampling outcome.
  auto t0 = Clock::now();
  const int chunk_users = StreamChunkUsers(config_);
  const bool streaming = chunk_users > 0;
  std::vector<BigInt> enc_weights;
  if (config_.ot_slots > 0) {
    auto senders = server_->OtSenderInit(round, *pool_);
    if (!senders.ok()) return senders.status();
    auto bs = silos_[0]->OtReceiverChoose(round, senders.value(), *pool_);
    if (!bs.ok()) return bs.status();
    auto slots = server_->OtEncryptSlots(round, bs.value(), *pool_);
    if (!slots.ok()) return slots.status();
    auto fetched = silos_[0]->OtReceiverDecrypt(round, senders.value(),
                                                slots.value(), *pool_);
    if (!fetched.ok()) return fetched.status();
    enc_weights = std::move(fetched.value());
    // Ground truth of the hidden sampling outcome: only the simulation —
    // holding both the sender's shuffles and the receiver's choices — can
    // reconstruct it.
    const int real_slots = OtRealSlots(config_);
    const auto& perms = server_->ot_perms();
    const auto& sigmas = silos_[0]->ot_sigmas();
    last_ot_mask_.assign(num_users_, false);
    for (int u = 0; u < num_users_; ++u) {
      last_ot_mask_[u] = perms[u][sigmas[u]] < real_slots;
    }
  } else if (!streaming) {
    auto enc = server_->EncryptWeights(round, user_sampled, *pool_);
    if (!enc.ok()) return enc.status();
    enc_weights = std::move(enc.value());
  }
  // (streaming && !OT: ciphertexts are produced chunk by chunk below and
  // never materialized as a full vector anywhere.)
  timings_.encrypt_weights_s += SecondsSince(t0);

  // Broadcast: every silo receives the same ciphertext vector (fetched via
  // OT in the private-sub-sampling extension; ciphertexts are semantically
  // secure either way). A streamed round only ever holds one chunk, so the
  // recorded view stays empty.
  for (int s = 0; s < num_silos_; ++s) {
    silo_views_[s].encrypted_weights = enc_weights;
  }

  // -- Weighting (b)+(c), silo side: encrypted weighted sums, encoded
  // noise, pairwise masks. Every silo raises the SAME ciphertext
  // Enc(B_inv(N_u)), so the orchestrator sweeps users in index-ordered
  // batches: each batch builds one fixed-base table per user (in
  // parallel), every silo core consumes the batch read-only on the pool,
  // then the batch's tables are freed — bounding transient table memory
  // while paying one table build per user instead of one per
  // (silo, user). A distributed silo endpoint runs the same phases via
  // SiloCore::WeightMaskRound with its own tables; outputs are exact
  // modular products either way, so both layouts are bitwise identical.
  t0 = Clock::now();
  for (int s = 0; s < num_silos_; ++s) {
    if (static_cast<int>(clipped_deltas[s].size()) != num_users_) {
      return Status::InvalidArgument("delta matrix size mismatch");
    }
  }
  const size_t cdim = server_->params().packed.PackedDim(dim);
  if (streaming) {
    // Streaming sweep: encrypt -> fold -> discard in chunks of
    // stream_chunk_users. Each silo folds the chunk into its running
    // accumulator with its own (chunk-lifetime) tables, so peak resident
    // ciphertexts are O(chunk), not O(users). Every per-user value comes
    // from a Fork(round, user) substream and every fold is an exact
    // modular product, so this path is bitwise identical to the
    // materializing sweep below.
    std::vector<std::vector<BigInt>> silo_ciphers(num_silos_);
    for (int s = 0; s < num_silos_; ++s) {
      silo_ciphers[s] = SiloCore::NewCipherAccumulator(cdim);
    }
    std::vector<Status> silo_status(num_silos_, Status::Ok());
    for (int u0 = 0; u0 < num_users_; u0 += chunk_users) {
      const int u1 = std::min(num_users_, u0 + chunk_users);
      auto tenc = Clock::now();
      std::vector<BigInt> enc_chunk;
      if (config_.ot_slots > 0) {
        // OT mode fetched the full vector interactively above; the silo
        // fold still runs chunked.
        enc_chunk.assign(enc_weights.begin() + u0, enc_weights.begin() + u1);
      } else {
        auto ec =
            server_->EncryptWeightsRange(round, user_sampled, u0, u1, *pool_);
        if (!ec.ok()) return ec.status();
        enc_chunk = std::move(ec.value());
      }
      timings_.encrypt_weights_s += SecondsSince(tenc);
      pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
        if (!silo_status[s].ok()) return;  // earlier chunk already failed
        silo_status[s] = silos_[s]->AccumulateUsersChunk(
            enc_chunk, u0, u1, clipped_deltas[s], dim, &silo_ciphers[s],
            *pool_);
      });
      ULDP_RETURN_IF_ERROR(FirstError(silo_status));
    }
    pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
      silo_status[s] = silos_[s]->FinishRound(round, silo_noise[s],
                                              &silo_ciphers[s], *pool_);
    });
    ULDP_RETURN_IF_ERROR(FirstError(silo_status));
    timings_.silo_weighting_s += SecondsSince(t0);

    // Server side: fold each silo's cipher in coordinate chunks — the
    // arrival pattern of the chunked wire frames — into the running
    // product.
    t0 = Clock::now();
    const size_t chunk_coords = static_cast<size_t>(StreamChunkCoords(config_));
    std::vector<BigInt> product = SiloCore::NewCipherAccumulator(cdim);
    for (int s = 0; s < num_silos_; ++s) {
      for (size_t c0 = 0; c0 < cdim; c0 += chunk_coords) {
        const size_t c1 = std::min(cdim, c0 + chunk_coords);
        std::vector<BigInt> slice(silo_ciphers[s].begin() + c0,
                                  silo_ciphers[s].begin() + c1);
        ULDP_RETURN_IF_ERROR(
            server_->AccumulateSiloCipherRange(slice, c0, &product));
      }
    }
    timings_.aggregation_s += SecondsSince(t0);

    t0 = Clock::now();
    auto out = server_->DecryptAggregate(product, *pool_, dim);
    if (!out.ok()) return out.status();
    timings_.decryption_s += SecondsSince(t0);
    return out;
  }
  const bool use_multi_exp = config_.multi_exp && config_.fast_paillier;
  const bool use_tables =
      config_.fast_paillier && config_.fixed_base && !use_multi_exp;
  const bool keep_tables = use_tables && config_.cache_enc_weights;
  weight_tables_.BeginRound(num_users_, keep_tables);
  std::vector<uint32_t> silos_with_user;
  if (use_tables) {
    silos_with_user.assign(num_users_, 0);
    for (int s = 0; s < num_silos_; ++s) {
      for (int u = 0; u < num_users_; ++u) {
        if (histograms_[s][u] > 0 && !clipped_deltas[s][u].empty()) {
          ++silos_with_user[u];
        }
      }
    }
  }
  std::vector<std::vector<BigInt>> silo_ciphers(num_silos_);
  for (int s = 0; s < num_silos_; ++s) {
    silo_ciphers[s] = SiloCore::NewCipherAccumulator(cdim);
  }
  std::vector<Status> silo_status(num_silos_, Status::Ok());
  const int user_batch = use_tables || use_multi_exp ? 128 : num_users_;
  for (int u0 = 0; u0 < num_users_; u0 += user_batch) {
    const int u1 = std::min(num_users_, u0 + user_batch);
    if (use_tables) {
      const PaillierContext* ctx = silos_[0]->eval_context();
      pool_->ParallelFor(static_cast<size_t>(u1 - u0), [&](size_t i) {
        const int u = u0 + static_cast<int>(i);
        if (silos_with_user[u] == 0) return;
        weight_tables_.Ensure(*ctx, u, enc_weights[u],
                              static_cast<size_t>(silos_with_user[u]) * cdim);
      });
    }
    pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
      if (!silo_status[s].ok()) return;  // earlier batch already failed
      silo_status[s] = silos_[s]->AccumulateUsers(
          u0, u1, enc_weights,
          use_tables ? &weight_tables_.tables() : nullptr,
          clipped_deltas[s], dim, &silo_ciphers[s], *pool_);
    });
    ULDP_RETURN_IF_ERROR(FirstError(silo_status));
    if (use_tables && !keep_tables) weight_tables_.DropRange(u0, u1);
  }
  pool_->ParallelFor(static_cast<size_t>(num_silos_), [&](size_t s) {
    silo_status[s] = silos_[s]->FinishRound(round, silo_noise[s],
                                            &silo_ciphers[s], *pool_);
  });
  ULDP_RETURN_IF_ERROR(FirstError(silo_status));
  timings_.silo_weighting_s += SecondsSince(t0);

  // -- Weighting (c), server side: ciphertext product (masks cancel)...
  t0 = Clock::now();
  auto product = server_->AggregateCiphertexts(silo_ciphers, *pool_);
  if (!product.ok()) return product.status();
  timings_.aggregation_s += SecondsSince(t0);

  // ...then decrypt and decode (the only value the server sees in the
  // clear).
  t0 = Clock::now();
  auto out = server_->DecryptAggregate(product.value(), *pool_, dim);
  if (!out.ok()) return out.status();
  timings_.decryption_s += SecondsSince(t0);
  return out;
}

}  // namespace uldp
