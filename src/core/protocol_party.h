// Per-party phase logic for Protocol 1, factored behind message
// boundaries. ServerCore holds everything the aggregation server computes
// (Paillier keys, blinded-histogram aggregation, weight encryption, OT
// sender side, ciphertext aggregation and decryption); SiloCore holds
// everything one silo computes (DH keys, pairwise masks, histogram
// blinding, OT receiver side, the encrypted weighted sum). Every value
// crossing between them is a plain message payload — BigInt vectors, OT
// flows, byte strings — never shared state.
//
// Both the in-process simulation (core/private_weighting.h orchestrates a
// ServerCore plus N SiloCores with direct calls) and the distributed
// driver (net/protocol_node.h moves the same payloads over a Transport)
// run on these cores, so a distributed round is bitwise identical to an
// in-process round by construction.
//
// Determinism contract: no core ever draws from a shared sequential
// generator. Every random value is a Rng::Fork substream of the protocol
// seed addressed by (round, party/user, stream id) — see rng.h — so a
// remote endpoint holding only the public ProtocolConfig reconstructs
// exactly the randomness the simulation would have used. (The shared seed
// makes this a faithful *simulation* of the message flow, not a deployment
// key-management scheme; see the class comments.)

#ifndef ULDP_CORE_PROTOCOL_PARTY_H_
#define ULDP_CORE_PROTOCOL_PARTY_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/chacha.h"
#include "crypto/dh.h"
#include "crypto/fixed_point.h"
#include "crypto/oblivious_transfer.h"
#include "crypto/paillier.h"
#include "crypto/paillier_ctx.h"
#include "math/fixed_base.h"
#include "nn/tensor.h"
#include "obs/metrics.h"

namespace uldp {

struct ProtocolConfig {
  /// Paillier modulus bits (the paper's security parameter lambda is 3072;
  /// tests and the scaled-down benches use smaller).
  int paillier_bits = 1024;
  /// Upper bound N_max on records per user; C_LCM = lcm(1..N_max). Must be
  /// small enough that C_LCM plus slack fits below the modulus (Theorem 4
  /// condition (2)) — validated during key generation.
  int n_max = 100;
  /// Fixed-point precision P.
  double precision = 1e-10;
  uint64_t seed = 7;
  /// > 0 enables the OT-based private user-level sub-sampling extension
  /// (§4.1): the server offers P ciphertext slots per user (real Enc(B_inv)
  /// in a q-fraction of them after a private shuffle, Enc(0) in the rest)
  /// and silos fetch one slot via 1-out-of-P OT, so neither side learns the
  /// sampling outcome. The value is P (the slot count); representable
  /// rates are multiples of 1/P. In OT mode silos cannot skip unsampled
  /// users (they do not know who is sampled), which is exactly the extra
  /// cost §4.1 warns about.
  int ot_slots = 0;
  /// Sub-sampling rate used in OT mode (quantized to multiples of
  /// 1/ot_slots). Ignored when ot_slots == 0 (the server-side mask passed
  /// to WeightingRound is used instead).
  double ot_sample_rate = 1.0;
  /// Bit size of the safe-prime DH group backing the OT (simulation-scale
  /// default; a deployment would use a standardized group).
  int ot_group_bits = 384;
  /// Thread count for the protocol's parallel phases (per-user weight
  /// encryption, per-silo encrypted weighting and masking, per-coordinate
  /// aggregation and decryption). <= 0 resolves via ULDP_THREADS env /
  /// hardware concurrency. Results are bitwise independent of this value:
  /// all encryption randomness comes from Rng::Fork substreams and every
  /// reduction is an exact modular product.
  int num_threads = 0;
  /// Route Paillier work through the cached-context fast path (long-lived
  /// Montgomery contexts, CRT decryption, batched randomizer pipeline).
  /// The slow path (static Paillier shim, classic decryption) produces
  /// bitwise-identical round outputs; the switch exists so the micro bench
  /// can measure the speedup of a full protocol round before/after.
  bool fast_paillier = true;
  /// Use per-user fixed-base exponentiation tables in the silo-weighting
  /// loop: all `dim` MulPlaintext calls for one user share the base
  /// Enc(B_inv(N_u)), so one precomputed window table per user turns each
  /// coordinate's exponentiation into squaring-free table multiplies
  /// (math/fixed_base.h). Effective only with fast_paillier; outputs are
  /// bitwise identical either way — the switch exists so the micro bench
  /// can measure the weighting phase before/after.
  bool fixed_base = true;
  /// Reuse the previous round's encrypted weights (and with fixed_base the
  /// per-user MulPlaintext tables derived from them) when OT is off and the
  /// sampling mask is unchanged. Ciphertexts are semantically secure, so
  /// resending one is safe against the silos; the trade is that the server
  /// skips re-randomization and each silo retains one table per user
  /// across rounds (up to ~2 MB per user at a 1024-bit key). Off by
  /// default: enabling it changes which randomizers a round consumes, so
  /// cached and uncached runs produce different (equally valid) outputs.
  bool cache_enc_weights = false;
  /// Multi-round pipelining (party-local, like num_threads — peers need
  /// not agree and the message flow is unchanged). Server: precompute
  /// round r+1's encrypted weights on a background thread while round r's
  /// silo ciphers are in flight, and fold arriving ciphers into the
  /// aggregate incrementally instead of barrier-gathering. Silo:
  /// precompute round r+1's pairwise masks while waiting for round r's
  /// result. Every precomputed value comes from the same Fork substreams
  /// and PRF evaluations the inline path would use, so outputs are
  /// bitwise identical with the knob on or off (tested). Ignored in OT
  /// mode (the OT round is an interactive multi-step exchange).
  bool pipeline = false;
  /// Ciphertext packing factor: k > 1 packs k fixed-point weights into
  /// every Paillier plaintext as signed radix-2^B slots, so the weighting
  /// phase ships and folds ceil(dim/k) ciphertexts instead of dim. B is
  /// sized from C_LCM · (pack_clip/precision) · (users + silos) plus guard
  /// bits, so aggregation provably cannot carry across slots; Setup
  /// rejects configs where k·B cannot fit the modulus. Packed aggregates
  /// decode bitwise identical to unpacked ones (crypto/fixed_point.h).
  /// Both endpoints must agree (part of the wire digest).
  int pack_slots = 1;
  /// Per-coordinate magnitude bound |delta|, |noise| <= pack_clip the
  /// packing carry guard is sized for; violations are hard errors at
  /// encode time. Ignored when pack_slots == 1 (the unpacked path keeps
  /// the original n/2 headroom of Theorem 4).
  double pack_clip = 64.0;
  /// Fold the weighting phase through Pippenger bucket multi-
  /// exponentiation (math/multi_exp.h): per coordinate group, all active
  /// users' Enc(B_inv)^scalar terms share one squaring chain instead of
  /// one sliding-window exponentiation each. Party-local like
  /// fast_paillier (peers need not agree); outputs are bitwise identical
  /// either way. Effective only with fast_paillier; supersedes the
  /// per-user fixed-base tables when set.
  bool multi_exp = false;
  /// > 0 enables memory-bounded streaming rounds: the server encrypts and
  /// ships Enc(B_inv) in chunks of this many users, each silo folds a
  /// chunk into its running cipher accumulator and discards it before the
  /// next arrives, and the silo->server cipher travels as chunked frames
  /// the server folds on arrival. Peak resident per-user ciphertexts drop
  /// from O(users) to O(stream_chunk_users); because every per-user value
  /// comes from a Fork(round, user) substream and every fold is an exact
  /// modular product, streamed rounds are bitwise identical to
  /// materializing ones. Changes the distributed message flow, so both
  /// endpoints must agree (part of the wire digest). 0 = materialize (the
  /// classic path). Incompatible with cache_enc_weights (the cache is by
  /// definition a round's worth of resident ciphertexts).
  int stream_chunk_users = 0;
  /// Ciphertext coordinates per chunked SiloCipher/MaskedVector wire
  /// frame when streaming is on (stream_chunk_users > 0). Bounds the
  /// largest weighting-phase frame to ~chunk * ciphertext_bytes instead
  /// of dim * ciphertext_bytes. <= 0 picks a default (256). Part of the
  /// wire digest (both endpoints must frame identically).
  int stream_chunk_coords = 0;
  /// Flow-control credit window for chunked streams: a sender keeps at
  /// most this many unacknowledged chunks in flight before blocking on a
  /// StreamAck. Sender-local pacing (receivers ack every chunk), so peers
  /// need not agree and it stays out of the wire digest. <= 0 -> 4.
  int stream_window = 0;
};

/// Effective chunk sizes for streaming mode (resolving the <= 0 defaults);
/// both return 0 when streaming is off.
int StreamChunkUsers(const ProtocolConfig& config);
int StreamChunkCoords(const ProtocolConfig& config);
int StreamWindow(const ProtocolConfig& config);

/// Derived slot count of real (non-dummy) ciphertexts in OT mode.
int OtRealSlots(const ProtocolConfig& config);

/// Public protocol parameters every party ends up holding after key setup.
/// The server generates them; remote silos receive the non-derivable parts
/// (Paillier n, the OT group) in the SetupParams message and rebuild the
/// rest (C_LCM, the codec) locally.
struct ProtocolParams {
  ProtocolConfig config;
  int num_silos = 0;
  int num_users = 0;
  PaillierPublicKey public_key;
  BigInt c_lcm;
  DhGroup ot_group;  // populated iff config.ot_slots > 0
  FixedPointCodec codec{BigInt(5), 1e-10};
  /// Slot layout for config.pack_slots > 1 (inactive otherwise); built by
  /// Derive(), which rejects configurations whose carry guard cannot fit
  /// the modulus.
  PackedCodec packed;

  /// Rebuilds the derived fields (n², C_LCM, codec, OT Montgomery state)
  /// from config + public_key (+ ot_group p, g if OT is on). Used by
  /// remote silos after receiving the SetupParams message.
  Status Derive();
};

/// What the server observed (for privacy assertions).
struct ServerProtocolView {
  /// Doubly blinded per-silo histograms as received in setup (e).
  std::vector<std::vector<BigInt>> doubly_blinded_histograms;  // [silo][user]
  /// Aggregated blinded totals B(N_u) = r_u * N_u mod n.
  std::vector<BigInt> blinded_totals;  // [user]
};

/// Public half of one user's OT sender state: the per-slot group elements
/// and A = g^r. This is exactly the first OT message on the wire.
struct OtSenderPublic {
  std::vector<BigInt> c;
  BigInt a;
};

/// Server-side phase logic. Owns the Paillier secret key, the inverted
/// blinded totals B_inv(N_u), and the OT sender state; never sees a raw
/// histogram, an unmasked silo sum, or the OT sampling outcome.
class ServerCore {
 public:
  ServerCore(const ProtocolConfig& config, int num_silos, int num_users);

  /// Setup (a): generates the Paillier key pair (and the OT group when
  /// enabled) from Fork substreams of config.seed, derives C_LCM and the
  /// codec, and checks the Theorem-4 overflow condition.
  Status GenerateKeys(ThreadPool& pool);
  const ProtocolParams& params() const { return params_; }
  bool keys_done() const { return keys_done_; }

  /// Setup (e): records silo `silo`'s doubly blinded histogram. Values
  /// must be field elements (< n).
  Status AbsorbBlindedHistogram(int silo, std::vector<BigInt> blinded);
  /// Setup (e)-(f): sums the blinded histograms (masks cancel) and inverts
  /// the blinded totals. Requires every silo's histogram absorbed.
  Status FinalizeSetup();
  bool setup_done() const { return setup_done_; }
  const ServerProtocolView& view() const { return view_; }

  /// Weighting (a), server-side sampling (OT off): Enc(B_inv(N_u)) for
  /// sampled users, Enc(0) otherwise; randomness from Fork(round, user).
  /// With config.cache_enc_weights, returns the previous round's
  /// ciphertexts when the mask is unchanged.
  Result<std::vector<BigInt>> EncryptWeights(
      uint64_t round, const std::vector<bool>& user_sampled, ThreadPool& pool);
  /// Streaming variant: encrypts only users [u0, u1) (returning u1 - u0
  /// ciphertexts). Randomness still comes from Fork(round, u) addressed by
  /// the *absolute* user index, so concatenating range calls reproduces
  /// EncryptWeights bit for bit while holding only one chunk resident.
  /// Never consults the enc-weight cache (streaming excludes it).
  Result<std::vector<BigInt>> EncryptWeightsRange(
      uint64_t round, const std::vector<bool>& user_sampled, int u0, int u1,
      ThreadPool& pool);
  uint64_t enc_weight_cache_hits() const { return enc_cache_hits_.value(); }

  /// Weighting (a), OT mode, sender step 1: per-user slot elements, sender
  /// secrets (A = g^r runs inside the flat user × slot sweep), and the
  /// private real/dummy slot shuffles. Returns the public sender messages.
  Result<std::vector<OtSenderPublic>> OtSenderInit(uint64_t round,
                                                   ThreadPool& pool);
  /// Weighting (a), OT mode, sender step 2: encrypts every (user, slot)
  /// payload — Enc(B_inv) in shuffled real slots, Enc(0) in dummies —
  /// under the per-slot OT pads derived from the receiver commitments.
  Result<std::vector<std::vector<std::vector<uint8_t>>>> OtEncryptSlots(
      uint64_t round, const std::vector<BigInt>& receiver_bs,
      ThreadPool& pool);
  /// Ground-truth slot shuffles of the last OtSenderInit — simulation
  /// diagnostic only (a real server never learns the receiver's slot).
  const std::vector<std::vector<int>>& ot_perms() const { return ot_perms_; }

  /// Weighting (c), server side: per-coordinate product of the masked
  /// silo ciphertexts (pairwise masks cancel).
  Result<std::vector<BigInt>> AggregateCiphertexts(
      const std::vector<std::vector<BigInt>>& silo_ciphers,
      ThreadPool& pool) const;
  /// Staleness-aware accumulate path: folds one silo's masked cipher into
  /// the running per-coordinate product as it lands, so the server never
  /// barrier-gathers the full cohort. Ciphertext aggregation is an exact
  /// modular product — commutative and associative — so any arrival order
  /// yields bitwise-identical aggregates to AggregateCiphertexts.
  /// `product` starts as dim ciphertext identities (BigInt(1)).
  Status AccumulateSiloCipher(const std::vector<BigInt>& cipher,
                              std::vector<BigInt>* product) const;
  /// Chunked-streaming variant: folds `chunk` into product coordinates
  /// [offset, offset + chunk.size()). The fold is the same exact modular
  /// product, so folding a cipher chunk-by-chunk as frames arrive is
  /// bitwise identical to folding it whole.
  Status AccumulateSiloCipherRange(const std::vector<BigInt>& chunk,
                                   size_t offset,
                                   std::vector<BigInt>* product) const;
  /// Decrypts and decodes the aggregate — the only plaintext the server
  /// ever sees. With packing active, `product` holds ceil(dim/k) group
  /// ciphertexts and `model_dim` (the unpacked coordinate count) is
  /// required to size the output; 0 means "unpacked, infer from product".
  Result<Vec> DecryptAggregate(const std::vector<BigInt>& product,
                               ThreadPool& pool, size_t model_dim = 0) const;

 private:
  Result<BigInt> PEncrypt(const BigInt& m, Rng& rng) const;
  Result<BigInt> PDecrypt(const BigInt& c) const;

  ProtocolParams params_;
  PaillierSecretKey secret_key_;
  std::unique_ptr<PaillierContext> paillier_;
  std::vector<BigInt> b_inv_;  // B_inv(N_u)
  ServerProtocolView view_;
  std::vector<bool> histogram_absorbed_;
  bool keys_done_ = false;
  bool setup_done_ = false;
  Rng root_;  // Fork-only root; never drawn from directly

  // Encrypted-weight cache (config.cache_enc_weights). The hit counter is
  // registry-backed (src/obs) so metrics snapshots report it; the accessor
  // above reads this instance exactly as before.
  std::vector<BigInt> cached_enc_;
  std::vector<bool> cached_mask_;
  bool cache_valid_ = false;
  obs::Counter enc_cache_hits_{"core.enc_weight_cache_hits"};

  // OT sender round state.
  uint64_t ot_round_ = 0;
  bool ot_pending_ = false;
  std::vector<ObliviousTransfer::SenderState> ot_senders_;
  std::vector<std::vector<int>> ot_perms_;
};

/// Ciphertext-keyed cache of per-user fixed-base MulPlaintext tables for
/// the silo-weighting loop. One instance is shared by the in-process
/// orchestrator across all silo cores; each distributed silo endpoint
/// owns its own. Entries persist across rounds only when BeginRound runs
/// with keep = true (config.cache_enc_weights): the key is the ciphertext
/// itself, so fresh round randomness or a changed sampling mask
/// invalidates an entry automatically.
class WeightTableCache {
 public:
  /// Sizes the cache for the round; keep = false drops every old entry.
  void BeginRound(int num_users, bool keep);
  /// Returns the table for (user, enc_weight), building it over `ctx`'s
  /// cached n² context when missing or stale and counting a hit
  /// otherwise. Returns null (caching nothing) when enc_weight is outside
  /// Z_{n²} — the weighting sweep rejects such inputs with a proper
  /// Status. Safe to call concurrently for distinct users.
  const FixedBaseTable* Ensure(const PaillierContext& ctx, int user,
                               const BigInt& enc_weight, size_t uses);
  /// Frees the tables of users [u0, u1) — the batch-bounded transient
  /// memory discipline of the weighting sweep.
  void DropRange(int u0, int u1);
  const std::vector<std::unique_ptr<FixedBaseTable>>& tables() const {
    return tables_;
  }
  uint64_t hits() const { return hits_.value(); }

 private:
  std::vector<BigInt> base_;
  std::vector<std::unique_ptr<FixedBaseTable>> tables_;
  obs::Counter hits_{"core.weight_table_cache_hits"};
};

/// Silo-side phase logic. Owns the silo's private histogram, its DH key
/// pair, the pairwise mask keys, and the silo-shared seed R; never sees
/// the Paillier secret key or another silo's counts.
class SiloCore {
 public:
  /// `params` must have public_key (and ot_group in OT mode) populated.
  SiloCore(ProtocolParams params, int silo_id, std::vector<int> histogram);

  int silo_id() const { return silo_id_; }
  const ProtocolParams& params() const { return params_; }
  /// Setup (b): this silo's DH key pair — a pure function of
  /// (seed, silo id), so the remote silo derives the same pair the
  /// simulation would.
  const DhKeyPair& dh_key() const { return dh_key_; }
  /// Setup (b): derives the pairwise mask keys from the full directory of
  /// silo DH public keys (relayed by the server).
  Status ComputePairKeys(const std::vector<BigInt>& dh_publics);

  /// Setup (c), silo 0 only: derives the shared random seed R.
  BigInt MakeSharedSeed() const;
  void SetSharedSeed(const BigInt& r_seed);
  bool has_shared_seed() const { return seed_set_; }

  /// XOR-stream encryption under the pairwise key with `peer`, addressed
  /// by a typed mask tag and a stream id. Symmetric (the same call
  /// decrypts); used for the seed and OT-weight relays the server only
  /// ever sees as opaque bytes.
  Result<std::vector<uint8_t>> PairStreamXor(
      int peer, uint64_t tag, uint32_t stream_id,
      std::vector<uint8_t> data) const;

  /// Setup (d)-(e): multiplicatively blinds the histogram with r_u and
  /// applies the pairwise additive masks.
  Result<std::vector<BigInt>> BlindHistogram(ThreadPool& pool) const;

  /// Weighting (a), OT mode, receiver step: the shared-seed slot choice
  /// sigma and the commitment B = C_sigma * g^{-k} per user.
  Result<std::vector<BigInt>> OtReceiverChoose(
      uint64_t round, const std::vector<OtSenderPublic>& senders,
      ThreadPool& pool);
  /// Weighting (a), OT mode, receiver step 2: decrypts the chosen slot of
  /// every user (the pad exponentiation K = A^k runs in a flat sweep).
  Result<std::vector<BigInt>> OtReceiverDecrypt(
      uint64_t round, const std::vector<OtSenderPublic>& senders,
      const std::vector<std::vector<std::vector<uint8_t>>>& encrypted,
      ThreadPool& pool);
  /// Slot choices of the last OT round — simulation diagnostic.
  const std::vector<size_t>& ot_sigmas() const { return ot_sigmas_; }

  /// Weighting (b) + (c) for this silo: the encrypted weighted sum over
  /// its users, the encoded noise, and the pairwise additive masks.
  /// `deltas[u]` is empty when user u has no records here; non-empty
  /// entries must all have noise.size() coordinates. This is the
  /// self-contained entry point a distributed silo endpoint uses; it is
  /// composed from the batch-level pieces below, which the in-process
  /// orchestrator drives directly so one fixed-base table per user can be
  /// shared read-only across all silo cores.
  Result<std::vector<BigInt>> WeightMaskRound(
      uint64_t round, const std::vector<BigInt>& enc_weights,
      const std::vector<Vec>& deltas, const Vec& noise, ThreadPool& pool);

  /// Fresh per-coordinate accumulator for phase (b): one ciphertext
  /// identity per shipped coordinate — PackedDim(model dim) of them when
  /// packing is active.
  static std::vector<BigInt> NewCipherAccumulator(size_t dim);

  /// This silo's evaluation-only Paillier context (null unless
  /// fast_paillier). Tables built over it are a pure function of the
  /// ciphertext and modulus, so any party's build is bitwise identical
  /// and safe to share read-only — the orchestrator feeds it to a shared
  /// WeightTableCache.
  const PaillierContext* eval_context() const { return paillier_.get(); }

  /// Phase (b) for users [u0, u1): accumulates this silo's encrypted
  /// weighted terms into `cipher` (from NewCipherAccumulator, size =
  /// PackedDim(model_dim); model_dim is the unpacked coordinate count,
  /// i.e. the noise dimension). `tables`, when non-null, maps user →
  /// fixed-base table for enc_weights[u] (null entries fall back to plain
  /// MulPlaintext); with config.multi_exp the per-group fold runs through
  /// Pippenger instead. Parallelizes over coordinates on `pool`; the
  /// result is an exact modular product, so batching, scheduling, packing,
  /// and the multi-exp path never change a bit.
  Status AccumulateUsers(
      int u0, int u1, const std::vector<BigInt>& enc_weights,
      const std::vector<std::unique_ptr<FixedBaseTable>>* tables,
      const std::vector<Vec>& deltas, size_t model_dim,
      std::vector<BigInt>* cipher, ThreadPool& pool) const;

  /// Streaming phase (b): folds users [u0, u1) given only that chunk of
  /// ciphertexts (enc_chunk[i] = Enc(B_inv) for user u0 + i), building and
  /// dropping this silo's own fixed-base tables for the chunk. The caller
  /// discards enc_chunk afterwards, so peak resident ciphertexts stay at
  /// O(chunk) instead of O(users); concatenated chunk folds reproduce
  /// WeightMaskRound's accumulator bit for bit (exact modular products).
  /// Finish with FinishRound as usual.
  Status AccumulateUsersChunk(const std::vector<BigInt>& enc_chunk, int u0,
                              int u1, const std::vector<Vec>& deltas,
                              size_t model_dim, std::vector<BigInt>* cipher,
                              ThreadPool& pool);

  /// Phase (b) tail + (c): adds the encoded noise (packed into groups when
  /// packing is active), then this silo's pairwise additive masks for the
  /// round — one mask per shipped coordinate.
  Status FinishRound(uint64_t round, const Vec& noise,
                     std::vector<BigInt>* cipher, ThreadPool& pool) const;

  /// Pipelining hook: precomputes the combined per-coordinate pairwise
  /// mask vector for `round` so a waiting silo can overlap next-round
  /// mask generation with the server's current-round aggregation. `dim`
  /// is the model (unpacked) dimension; the packed mask count is derived
  /// internally. FinishRound(round, ...) consumes the cache when it
  /// matches (same round and dimension) and recomputes inline otherwise;
  /// the cached values are the identical PRF evaluations, so outputs
  /// never change.
  Status PrecomputeRoundMasks(uint64_t round, size_t dim, ThreadPool& pool);

  /// Fixed-base tables reused from a previous round because the encrypted
  /// weight was unchanged (config.cache_enc_weights).
  uint64_t weight_table_cache_hits() const { return table_cache_.hits(); }

 private:
  BigInt BlindOf(int user) const;
  BigInt PairMask(int peer, uint64_t tag, int index) const;
  BigInt PMulPlaintext(const BigInt& c, const BigInt& k) const;

  ProtocolParams params_;
  int silo_id_ = 0;
  std::vector<int> histogram_;
  std::unique_ptr<PaillierContext> paillier_;  // evaluation-only
  DhGroup dh_group_;
  DhKeyPair dh_key_;
  std::vector<ChaChaRng::Key> pair_keys_;  // [peer]; self entry unused
  bool pair_keys_done_ = false;
  ChaChaRng::Key shared_seed_key_{};
  bool seed_set_ = false;
  Rng root_;  // Fork-only root

  // OT receiver round state.
  uint64_t ot_round_ = 0;
  bool ot_pending_ = false;
  std::vector<BigInt> ot_ks_;
  std::vector<size_t> ot_sigmas_;

  // Per-user fixed-base tables for WeightMaskRound (the distributed
  // endpoint path; the in-process orchestrator shares one cache across
  // silo cores instead).
  WeightTableCache table_cache_;

  // AccumulateUsersChunk scratch: a full-size vector of (mostly empty)
  // BigInts so the chunk can be addressed by absolute user index through
  // AccumulateUsers. Holds at most one chunk's ciphertexts at a time.
  std::vector<BigInt> enc_scratch_;

  // PrecomputeRoundMasks cache, consumed by FinishRound. Written by the
  // owner's prefetch step and read after it joins the prefetch thread, so
  // no lock is needed (join is the happens-before edge).
  std::vector<BigInt> premask_;
  uint64_t premask_round_ = 0;
  bool premask_valid_ = false;
};

}  // namespace uldp

#endif  // ULDP_CORE_PROTOCOL_PARTY_H_
