#include "core/uldp_naive.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

UldpNaiveTrainer::UldpNaiveTrainer(const FederatedDataset& data,
                                   const Model& model, FlConfig config)
    : data_(data),
      config_(config),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)),
      tracker_(PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    silo_examples_[s] = data_.MakeExamples(data_.RecordsOfSilo(s));
  }
}

Status UldpNaiveTrainer::RunRound(int round, Vec& global_params) {
  const int s_count = data_.num_silos();
  // Each silo adds N(0, sigma^2 C^2 |S|) per coordinate — user-level
  // sensitivity across silos is C|S| (Algorithm 1, line 14). Central mode
  // adds the equivalent N(0, sigma^2 C^2 |S|^2) once at the server.
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip *
                    std::sqrt(static_cast<double>(s_count));
  const uint64_t r = static_cast<uint64_t>(round);
  auto total = engine_.RunRound(
      round, global_params, [&](int s, Model& model, Vec& delta) {
        Rng local = rng_.Fork(r, static_cast<uint64_t>(s));
        TrainLocalSgd(model, silo_examples_[s], config_.local_epochs,
                      config_.batch_size, config_.local_lr, local);
        delta = model.GetParams();
        Axpy(-1.0, global_params, delta);  // trained - global (Alg. 1 line
                                           // 12, sign normalized to descent)
        ClipToL2Ball(delta, config_.clip);
        Rng noise = rng_.Fork(r, static_cast<uint64_t>(s), kRngStreamNoise);
        AddGaussianNoise(delta, noise_std, noise);
        return Status::Ok();
      });
  if (!total.ok()) return total.status();
  if (central) {
    Rng server = rng_.Fork(r, 0, kRngStreamServer);
    AddGaussianNoise(total.value(), config_.sigma * config_.clip * s_count,
                     server);
  }
  Axpy(config_.global_lr / s_count, total.value(), global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpNaiveTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

}  // namespace uldp
