#include "core/uldp_naive.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

UldpNaiveTrainer::UldpNaiveTrainer(const FederatedDataset& data,
                                   const Model& model, FlConfig config)
    : data_(data),
      config_(config),
      rng_(config.seed),
      engine_(model, data.num_silos(), EngineConfigFrom(config)),
      tracker_(PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    silo_examples_[s] = data_.MakeExamples(data_.RecordsOfSilo(s));
  }
  if (config_.async_rounds) {
    Status started = engine_.StartAsync(
        [this](int version, int silo, const Vec& snapshot, Model& model,
               Vec& delta) {
          return LocalSiloWork(static_cast<uint64_t>(version), snapshot, silo,
                               model, delta);
        },
        AsyncOptionsFrom(config_));
    ULDP_CHECK_MSG(started.ok(), started.ToString());
  }
}

UldpNaiveTrainer::~UldpNaiveTrainer() { engine_.StopAsync(); }

Status UldpNaiveTrainer::LocalSiloWork(uint64_t version, const Vec& snapshot,
                                       int silo, Model& model, Vec& delta) {
  // Each silo adds N(0, sigma^2 C^2 |S|) per coordinate — user-level
  // sensitivity across silos is C|S| (Algorithm 1, line 14). Central mode
  // adds the equivalent N(0, sigma^2 C^2 |S|^2) once at the server.
  // Async flushes of K <= |S| shares need no inflation here: a K-entry
  // flush has sensitivity <= C * sum(alpha_i) while its pooled noise is
  // sigma C sqrt(|S| * sum(alpha_i^2)), and Cauchy-Schwarz keeps the
  // ratio at or above the charged sigma for every K <= |S|.
  const int s_count = data_.num_silos();
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip *
                    std::sqrt(static_cast<double>(s_count));
  Rng local = rng_.Fork(version, static_cast<uint64_t>(silo));
  TrainLocalSgd(model, silo_examples_[silo], config_.local_epochs,
                config_.batch_size, config_.local_lr, local);
  delta = model.GetParams();
  Axpy(-1.0, snapshot, delta);  // trained - global (Alg. 1 line 12, sign
                                // normalized to descent)
  ClipToL2Ball(delta, config_.clip);
  Rng noise = rng_.Fork(version, static_cast<uint64_t>(silo),
                        kRngStreamNoise);
  AddGaussianNoise(delta, noise_std, noise);
  return Status::Ok();
}

Status UldpNaiveTrainer::RunRound(int round, Vec& global_params) {
  const int s_count = data_.num_silos();
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const uint64_t r = static_cast<uint64_t>(round);
  auto total =
      config_.async_rounds
          ? engine_.StepAsync(round, global_params)
          : engine_.RunRound(round, global_params,
                             [&](int s, Model& model, Vec& delta) {
                               return LocalSiloWork(r, global_params, s,
                                                    model, delta);
                             });
  if (!total.ok()) return total.status();
  if (central) {
    Rng server = rng_.Fork(r, 0, kRngStreamServer);
    AddGaussianNoise(total.value(), config_.sigma * config_.clip * s_count,
                     server);
  }
  Axpy(config_.global_lr / s_count, total.value(), global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpNaiveTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

void UldpNaiveTrainer::AccountRestoredRounds(int64_t rounds) {
  tracker_.AdvanceRounds(rounds);
}

}  // namespace uldp
