#include "core/uldp_naive.h"

#include <cmath>

#include "common/check.h"

namespace uldp {

UldpNaiveTrainer::UldpNaiveTrainer(const FederatedDataset& data,
                                   const Model& model, FlConfig config)
    : data_(data),
      work_model_(model.Clone()),
      config_(config),
      rng_(config.seed),
      tracker_(PrivacyTracker::ForGaussian(config.sigma)) {
  ULDP_CHECK_GT(config_.clip, 0.0);
  silo_examples_.resize(data_.num_silos());
  for (int s = 0; s < data_.num_silos(); ++s) {
    silo_examples_[s] = data_.MakeExamples(data_.RecordsOfSilo(s));
  }
}

Status UldpNaiveTrainer::RunRound(int round, Vec& global_params) {
  ULDP_CHECK_EQ(global_params.size(), work_model_->NumParams());
  const int s_count = data_.num_silos();
  // Each silo adds N(0, sigma^2 C^2 |S|) per coordinate — user-level
  // sensitivity across silos is C|S| (Algorithm 1, line 14). Central mode
  // adds the equivalent N(0, sigma^2 C^2 |S|^2) once at the server.
  const bool central = config_.noise_placement == NoisePlacement::kCentral;
  const double noise_std =
      central ? 0.0
              : config_.sigma * config_.clip *
                    std::sqrt(static_cast<double>(s_count));
  std::vector<Vec> deltas;
  deltas.reserve(s_count);
  for (int s = 0; s < s_count; ++s) {
    work_model_->SetParams(global_params);
    TrainLocalSgd(*work_model_, silo_examples_[s], config_.local_epochs,
                  config_.batch_size, config_.local_lr, rng_);
    Vec delta = work_model_->GetParams();
    Axpy(-1.0, global_params, delta);  // trained - global (Alg. 1 line 12,
                                       // sign normalized to descent)
    ClipToL2Ball(delta, config_.clip);
    AddGaussianNoise(delta, noise_std, rng_);
    deltas.push_back(std::move(delta));
  }
  Vec total = AggregateDeltas(deltas, config_.secure_aggregation,
                              static_cast<uint64_t>(round));
  if (central) {
    AddGaussianNoise(total, config_.sigma * config_.clip * s_count, rng_);
  }
  Axpy(config_.global_lr / s_count, total, global_params);
  tracker_.AdvanceRounds(1);
  return Status::Ok();
}

Result<double> UldpNaiveTrainer::EpsilonSpent(double delta) const {
  return tracker_.Epsilon(delta);
}

}  // namespace uldp
