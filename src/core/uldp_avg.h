// ULDP-AVG (Algorithm 3) — the paper's main algorithm — plus user-level
// sub-sampling (Algorithm 4) and the enhanced weighting strategy (Eq. 3).
//
// Each silo trains a per-user local model for Q epochs on that user's
// records only, clips the per-user delta to C, scales it by w_{s,u}
// (sum_s w_{s,u} = 1), sums over users, and adds N(0, sigma^2 C^2 / |S|).
// Because each user's total contribution across silos is at most C, the
// aggregate is one user-level Gaussian mechanism with multiplier sigma
// (Theorem 3) — no group-privacy blow-up.
//
// Silo rounds run on the shared RoundEngine: per-user local training draws
// from Rng::Fork(round, silo, user) substreams, so the schedule (thread
// count, work stealing) never changes the trained model.

#ifndef ULDP_CORE_ULDP_AVG_H_
#define ULDP_CORE_ULDP_AVG_H_

#include <mutex>
#include <string>

#include "core/weighting.h"
#include "dp/accountant.h"
#include "fl/local_trainer.h"
#include "fl/round_engine.h"

namespace uldp {

class PrivateWeightingProtocol;

struct UldpAvgOptions {
  WeightingStrategy weighting = WeightingStrategy::kUniform;
  /// User-level Poisson sub-sampling rate q (Algorithm 4); 1.0 disables.
  double user_sample_rate = 1.0;
  /// When set, the weighted aggregation runs through Protocol 1 (Paillier +
  /// blinding + secure aggregation) instead of plaintext weighting. Implies
  /// the enhanced weighting strategy — that is what the protocol computes.
  PrivateWeightingProtocol* private_protocol = nullptr;
};

class UldpAvgTrainer final : public FlAlgorithm {
 public:
  UldpAvgTrainer(const FederatedDataset& data, const Model& model,
                 FlConfig config, UldpAvgOptions options = {});
  ~UldpAvgTrainer() override;

  Status RunRound(int round, Vec& global_params) override;
  Result<double> EpsilonSpent(double delta) const override;
  void AccountRestoredRounds(int64_t rounds) override;
  std::string name() const override { return name_; }

  const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  /// Per-silo round work for the plaintext-weighting path, shared by the
  /// sync and async engine paths.
  Status LocalSiloWork(uint64_t version, const Vec& snapshot, int silo,
                       Model& model, Vec& delta);
  /// The round's Poisson sampling mask (Algorithm 4) — a pure function of
  /// the version, memoized so per-silo callbacks don't each redo the
  /// O(users) derivation.
  std::vector<bool> SampledMask(uint64_t version);

  const FederatedDataset& data_;
  FlConfig config_;
  UldpAvgOptions options_;
  Rng rng_;
  RoundEngine engine_;
  PrivacyTracker tracker_;
  std::string name_;
  std::vector<std::vector<double>> weights_;  // [silo][user]
  struct UserShard {
    int user;
    std::vector<Example> examples;
  };
  // Per-silo lists of users with records there — the silo actor's work.
  std::vector<std::vector<UserShard>> silo_shards_;
  // SampledMask memo (async workers query it concurrently).
  std::mutex mask_mu_;
  uint64_t mask_version_ = ~0ull;
  std::vector<bool> mask_;
};

}  // namespace uldp

#endif  // ULDP_CORE_ULDP_AVG_H_
