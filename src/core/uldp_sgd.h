// ULDP-SGD (Algorithm 3, SGD variant): one weighted-clipped full-batch
// gradient per user per round instead of multi-epoch local training —
// the DP-FedSGD analogue of ULDP-AVG, preferable only on fast networks.

#ifndef ULDP_CORE_ULDP_SGD_H_
#define ULDP_CORE_ULDP_SGD_H_

#include <mutex>
#include <string>

#include "core/weighting.h"
#include "dp/accountant.h"
#include "fl/local_trainer.h"
#include "fl/round_engine.h"

namespace uldp {

class UldpSgdTrainer final : public FlAlgorithm {
 public:
  UldpSgdTrainer(const FederatedDataset& data, const Model& model,
                 FlConfig config,
                 WeightingStrategy weighting = WeightingStrategy::kUniform,
                 double user_sample_rate = 1.0);
  ~UldpSgdTrainer() override;

  Status RunRound(int round, Vec& global_params) override;
  Result<double> EpsilonSpent(double delta) const override;
  void AccountRestoredRounds(int64_t rounds) override;
  std::string name() const override { return name_; }

 private:
  /// Per-silo round work, shared by the sync and async engine paths. The
  /// round's user-sampling mask comes from SampledMask, so every silo and
  /// both engine paths see identical masks.
  Status LocalSiloWork(uint64_t version, const Vec& snapshot, int silo,
                       Model& model, Vec& delta);
  /// The round's Poisson sampling mask — a pure function of the version
  /// (one dedicated Fork substream, drawn in user order), memoized so the
  /// per-silo callbacks don't each redo the O(users) derivation.
  std::vector<bool> SampledMask(uint64_t version);

  const FederatedDataset& data_;
  FlConfig config_;
  double user_sample_rate_;
  Rng rng_;
  RoundEngine engine_;
  PrivacyTracker tracker_;
  std::string name_;
  std::vector<std::vector<double>> weights_;
  struct UserShard {
    int user;
    std::vector<Example> examples;
  };
  // Per-silo lists of users with records there — the silo actor's work.
  std::vector<std::vector<UserShard>> silo_shards_;
  // SampledMask memo (async workers query it concurrently).
  std::mutex mask_mu_;
  uint64_t mask_version_ = ~0ull;
  std::vector<bool> mask_;
};

}  // namespace uldp

#endif  // ULDP_CORE_ULDP_SGD_H_
