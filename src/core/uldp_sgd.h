// ULDP-SGD (Algorithm 3, SGD variant): one weighted-clipped full-batch
// gradient per user per round instead of multi-epoch local training —
// the DP-FedSGD analogue of ULDP-AVG, preferable only on fast networks.

#ifndef ULDP_CORE_ULDP_SGD_H_
#define ULDP_CORE_ULDP_SGD_H_

#include <string>

#include "core/weighting.h"
#include "dp/accountant.h"
#include "fl/local_trainer.h"
#include "fl/round_engine.h"

namespace uldp {

class UldpSgdTrainer final : public FlAlgorithm {
 public:
  UldpSgdTrainer(const FederatedDataset& data, const Model& model,
                 FlConfig config,
                 WeightingStrategy weighting = WeightingStrategy::kUniform,
                 double user_sample_rate = 1.0);

  Status RunRound(int round, Vec& global_params) override;
  Result<double> EpsilonSpent(double delta) const override;
  std::string name() const override { return name_; }

 private:
  const FederatedDataset& data_;
  FlConfig config_;
  double user_sample_rate_;
  Rng rng_;
  RoundEngine engine_;
  PrivacyTracker tracker_;
  std::string name_;
  std::vector<std::vector<double>> weights_;
  struct UserShard {
    int user;
    std::vector<Example> examples;
  };
  // Per-silo lists of users with records there — the silo actor's work.
  std::vector<std::vector<UserShard>> silo_shards_;
};

}  // namespace uldp

#endif  // ULDP_CORE_ULDP_SGD_H_
