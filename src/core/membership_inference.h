// User-level membership inference evaluation — the paper's stated future
// direction ("empirically compare the privacy protection of user/record-
// level DP in FL in terms of ... user/record-level membership inference").
//
// Threat model: the adversary holds the final global model and a user's
// complete record set, and guesses whether that user participated in
// training. We use the loss-threshold attack of Yeom et al. lifted to the
// user level: the membership score of a user is the negative mean loss of
// the model on the user's records (members tend to be fit better).
//
// Evaluation: train on a "member" population, hold out a disjoint
// "non-member" population from the same distribution, and report the AUC
// of separating the two by score. AUC 0.5 = no leakage; user-level DP with
// small epsilon should force AUC toward 0.5 while non-private training
// does not.

#ifndef ULDP_CORE_MEMBERSHIP_INFERENCE_H_
#define ULDP_CORE_MEMBERSHIP_INFERENCE_H_

#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace uldp {

/// Per-user membership scores: score[u] = -mean_loss(model, records of u).
/// Users without records get score 0 and should be excluded by the caller.
std::vector<double> UserMembershipScores(
    Model& model, const std::vector<std::vector<Example>>& per_user_records);

/// AUC of the user-level loss-threshold attack: `member_records[u]` are the
/// records of users that were in the training set, `non_member_records[u]`
/// of users that were not (same data distribution). Empty user slots are
/// skipped.
double UserMembershipAttackAuc(
    Model& model,
    const std::vector<std::vector<Example>>& member_records,
    const std::vector<std::vector<Example>>& non_member_records);

}  // namespace uldp

#endif  // ULDP_CORE_MEMBERSHIP_INFERENCE_H_
