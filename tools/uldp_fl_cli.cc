// Command-line experiment runner: the downstream-user entry point for
// running any Uldp-FL algorithm on a built-in synthetic dataset or a CSV
// file without writing C++.
//
//   uldp_fl_cli --dataset=creditcard --method=uldp-avg-w --rounds=30
//               --users=100 --silos=5 --allocation=zipf --sigma=5
//   uldp_fl_cli --csv=transactions.csv --label-column=30 ...
//
// Run with --help for the full flag list.

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/uldp_avg.h"
#include "core/uldp_group.h"
#include "core/uldp_naive.h"
#include "core/uldp_sgd.h"
#include "data/allocation.h"
#include "data/csv_loader.h"
#include "data/synthetic.h"
#include "dp/calibration.h"
#include "fl/fedavg.h"

namespace uldp {
namespace {

struct Flags {
  std::string dataset = "creditcard";  // creditcard|mnist|heart|tcga
  std::string csv;                     // overrides dataset when set
  int label_column = -1;
  std::string method = "uldp-avg";  // default|uldp-naive|uldp-group|
                                    // uldp-avg|uldp-avg-w|uldp-sgd
  std::string allocation = "zipf";  // uniform|zipf
  int users = 100;
  int silos = 5;
  int rounds = 20;
  int eval_every = 5;
  int records = 6000;
  int group_k = 8;
  double sigma = 5.0;
  double clip = 1.0;
  double local_lr = 0.1;
  double global_lr = 0.0;  // 0 = method default
  double delta = 1e-5;
  double user_sample_rate = 1.0;
  double target_epsilon = 0.0;  // > 0: calibrate sigma instead of --sigma
  int local_epochs = 2;
  uint64_t seed = 1;
  int num_seeds = 1;  // > 1 averages runs
  int threads = 0;    // round-engine threads (0 = auto)
};

void PrintHelp() {
  std::cout <<
      "uldp_fl_cli — run a cross-silo user-level-DP FL experiment\n\n"
      "  --dataset=creditcard|mnist|heart|tcga   built-in synthetic data\n"
      "  --csv=PATH --label-column=N             or load a CSV instead\n"
      "  --method=default|uldp-naive|uldp-group|uldp-avg|uldp-avg-w|"
      "uldp-sgd\n"
      "  --allocation=uniform|zipf   user/silo record allocation\n"
      "  --users=N --silos=N --records=N\n"
      "  --rounds=T --eval-every=K --local-epochs=Q\n"
      "  --sigma=S --clip=C --local-lr=LR --global-lr=LR --delta=D\n"
      "  --target-epsilon=E          calibrate sigma for this budget\n"
      "  --user-sample-rate=Q        user-level sub-sampling (Alg. 4)\n"
      "  --group-k=K                 group size for uldp-group\n"
      "  --seed=N --num-seeds=M      M > 1 reports mean±std over seeds\n"
      "  --threads=N                 silo-round threads (0 = auto;\n"
      "                              results are identical for any N)\n";
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      std::exit(0);
    } else if (ParseFlag(arg, "dataset", &value)) {
      flags.dataset = value;
    } else if (ParseFlag(arg, "csv", &value)) {
      flags.csv = value;
    } else if (ParseFlag(arg, "label-column", &value)) {
      flags.label_column = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "method", &value)) {
      flags.method = value;
    } else if (ParseFlag(arg, "allocation", &value)) {
      flags.allocation = value;
    } else if (ParseFlag(arg, "users", &value)) {
      flags.users = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "silos", &value)) {
      flags.silos = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "rounds", &value)) {
      flags.rounds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "eval-every", &value)) {
      flags.eval_every = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "records", &value)) {
      flags.records = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "group-k", &value)) {
      flags.group_k = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "sigma", &value)) {
      flags.sigma = std::atof(value.c_str());
    } else if (ParseFlag(arg, "clip", &value)) {
      flags.clip = std::atof(value.c_str());
    } else if (ParseFlag(arg, "local-lr", &value)) {
      flags.local_lr = std::atof(value.c_str());
    } else if (ParseFlag(arg, "global-lr", &value)) {
      flags.global_lr = std::atof(value.c_str());
    } else if (ParseFlag(arg, "delta", &value)) {
      flags.delta = std::atof(value.c_str());
    } else if (ParseFlag(arg, "user-sample-rate", &value)) {
      flags.user_sample_rate = std::atof(value.c_str());
    } else if (ParseFlag(arg, "target-epsilon", &value)) {
      flags.target_epsilon = std::atof(value.c_str());
    } else if (ParseFlag(arg, "local-epochs", &value)) {
      flags.local_epochs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "num-seeds", &value)) {
      flags.num_seeds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::atoi(value.c_str());
    } else {
      return Status::InvalidArgument("unknown flag: " + arg +
                                     " (try --help)");
    }
  }
  return flags;
}

struct LoadedData {
  std::unique_ptr<FederatedDataset> dataset;
  std::unique_ptr<Model> model;
  UtilityMetric metric = UtilityMetric::kAccuracy;
};

Result<LoadedData> LoadData(const Flags& flags) {
  Rng rng(flags.seed);
  LoadedData out;
  AllocationOptions alloc;
  if (flags.allocation == "zipf") {
    alloc.kind = AllocationKind::kZipf;
  } else if (flags.allocation == "uniform") {
    alloc.kind = AllocationKind::kUniform;
  } else {
    return Status::InvalidArgument("unknown allocation: " + flags.allocation);
  }

  if (!flags.csv.empty()) {
    CsvOptions csv;
    csv.label_column = flags.label_column;
    auto records = LoadCsvRecords(flags.csv, csv);
    if (!records.ok()) return records.status();
    auto all = std::move(records.value());
    // 80/20 train/test split.
    size_t split = all.size() * 4 / 5;
    std::vector<Record> train(all.begin(), all.begin() + split);
    std::vector<Record> test(all.begin() + split, all.end());
    ULDP_RETURN_IF_ERROR(AllocateUsersAndSilos(train, flags.users,
                                               flags.silos, alloc, rng));
    int classes = 0;
    for (const auto& r : train) classes = std::max(classes, r.label + 1);
    if (classes < 2) {
      return Status::InvalidArgument(
          "CSV training requires --label-column with >= 2 classes");
    }
    size_t dim = train[0].features.size();
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(train), std::move(test), flags.users, flags.silos);
    out.model = MakeMlp({dim, 16}, static_cast<size_t>(classes));
    return out;
  }

  if (flags.dataset == "creditcard") {
    auto data = MakeCreditcardLike(flags.records, flags.records / 4, rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersAndSilos(data.train, flags.users,
                                               flags.silos, alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        flags.silos);
    out.model = MakeMlp({30, 16}, 2);
  } else if (flags.dataset == "mnist") {
    auto data = MakeMnistLike(flags.records, flags.records / 5, rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersAndSilos(data.train, flags.users,
                                               flags.silos, alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        flags.silos);
    out.model = MakeMlp({196, 48}, 10);
  } else if (flags.dataset == "heart") {
    auto data = MakeHeartDiseaseLike(rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersWithinSilos(
        data.train, flags.users, data.num_silos, alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        data.num_silos);
    out.model = MakeMlp({13}, 2);
  } else if (flags.dataset == "tcga") {
    AllocationOptions cox_alloc = alloc;
    cox_alloc.min_records_per_pair = 2;
    auto data = MakeTcgaBrcaLike(rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersWithinSilos(
        data.train, flags.users, data.num_silos, cox_alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        data.num_silos);
    out.model = std::make_unique<CoxRegression>(39);
    out.metric = UtilityMetric::kCIndex;
  } else {
    return Status::InvalidArgument("unknown dataset: " + flags.dataset);
  }
  return out;
}

Result<std::unique_ptr<FlAlgorithm>> MakeAlgorithm(const Flags& flags,
                                                   const FederatedDataset& fd,
                                                   const Model& model,
                                                   double sigma,
                                                   uint64_t seed) {
  FlConfig config;
  config.local_lr = flags.local_lr;
  config.clip = flags.clip;
  config.sigma = sigma;
  config.local_epochs = flags.local_epochs;
  config.seed = seed;
  config.num_threads = flags.threads;

  auto lr_or = [&](double fallback) {
    return flags.global_lr > 0.0 ? flags.global_lr : fallback;
  };
  std::unique_ptr<FlAlgorithm> alg;
  if (flags.method == "default") {
    config.global_lr = lr_or(1.0);
    alg = std::make_unique<FedAvgTrainer>(fd, model, config);
  } else if (flags.method == "uldp-naive") {
    config.global_lr = lr_or(1.0);
    alg = std::make_unique<UldpNaiveTrainer>(fd, model, config);
  } else if (flags.method == "uldp-group") {
    config.global_lr = lr_or(1.0);
    alg = std::make_unique<UldpGroupTrainer>(
        fd, model, config, GroupSizeSpec::Fixed(flags.group_k), 0.1, 10);
  } else if (flags.method == "uldp-avg" || flags.method == "uldp-avg-w") {
    config.global_lr = lr_or(30.0);
    UldpAvgOptions options;
    options.user_sample_rate = flags.user_sample_rate;
    if (flags.method == "uldp-avg-w") {
      options.weighting = WeightingStrategy::kEnhanced;
    }
    alg = std::make_unique<UldpAvgTrainer>(fd, model, config, options);
  } else if (flags.method == "uldp-sgd") {
    config.global_lr = lr_or(50.0);
    alg = std::make_unique<UldpSgdTrainer>(fd, model, config,
                                           WeightingStrategy::kUniform,
                                           flags.user_sample_rate);
  } else {
    return Status::InvalidArgument("unknown method: " + flags.method +
                                   " (try --help)");
  }
  return alg;
}

int Run(int argc, char** argv) {
  auto flags_or = ParseFlags(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n";
    return 2;
  }
  const Flags& flags = flags_or.value();

  double sigma = flags.sigma;
  if (flags.target_epsilon > 0.0 && flags.method != "default") {
    auto calibrated = SigmaForTargetEpsilon(flags.target_epsilon, flags.delta,
                                            flags.rounds,
                                            flags.user_sample_rate);
    if (!calibrated.ok()) {
      std::cerr << "sigma calibration: " << calibrated.status().ToString()
                << "\n";
      return 1;
    }
    sigma = calibrated.value();
    std::cout << "Calibrated sigma = " << sigma << " for ("
              << flags.target_epsilon << ", " << flags.delta << ")-ULDP over "
              << flags.rounds << " rounds.\n";
  }

  auto data_or = LoadData(flags);
  if (!data_or.ok()) {
    std::cerr << data_or.status().ToString() << "\n";
    return 1;
  }
  LoadedData& data = data_or.value();
  std::cout << "Dataset: " << data.dataset->num_train_records()
            << " records, " << data.dataset->num_users() << " users, "
            << data.dataset->num_silos() << " silos (mean "
            << data.dataset->MeanRecordsPerUser() << " records/user)\n";

  ExperimentConfig experiment;
  experiment.rounds = flags.rounds;
  experiment.eval_every = flags.eval_every;
  experiment.delta = flags.delta;
  experiment.metric = data.metric;

  if (flags.num_seeds > 1) {
    AlgorithmFactory factory = [&](uint64_t seed)
        -> std::unique_ptr<FlAlgorithm> {
      auto alg = MakeAlgorithm(flags, *data.dataset, *data.model, sigma,
                               seed);
      if (!alg.ok()) return nullptr;
      return std::move(alg.value());
    };
    auto trace = RunExperimentAveraged(factory, *data.model, *data.dataset,
                                       experiment, flags.num_seeds,
                                       flags.seed);
    if (!trace.ok()) {
      std::cerr << trace.status().ToString() << "\n";
      return 1;
    }
    PrintAveragedTrace(flags.method, trace.value());
    return 0;
  }

  auto alg = MakeAlgorithm(flags, *data.dataset, *data.model, sigma,
                           flags.seed);
  if (!alg.ok()) {
    std::cerr << alg.status().ToString() << "\n";
    return 1;
  }
  auto trace =
      RunExperiment(*alg.value(), *data.model, *data.dataset, experiment);
  if (!trace.ok()) {
    std::cerr << trace.status().ToString() << "\n";
    return 1;
  }
  PrintTrace(alg.value()->name(), trace.value());
  return 0;
}

}  // namespace
}  // namespace uldp

int main(int argc, char** argv) { return uldp::Run(argc, argv); }
