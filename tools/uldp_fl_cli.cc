// Command-line experiment runner: the downstream-user entry point for
// running any Uldp-FL algorithm on a built-in synthetic dataset or a CSV
// file without writing C++ — and for driving the distributed Protocol 1
// over TCP.
//
//   uldp_fl_cli --dataset=creditcard --method=uldp-avg-w --rounds=30
//               --users=100 --silos=5 --allocation=zipf --sigma=5
//   uldp_fl_cli --csv=transactions.csv --label-column=30 ...
//
//   # distributed Protocol 1 (one server, N silo clients on loopback):
//   uldp_fl_cli --serve=7100 --silos=2 --users=8 --dim=16 --rounds=2
//   uldp_fl_cli --connect=127.0.0.1:7100 --silo-id=0 --silos=2 --users=8
//               --dim=16
//
// Run with --help for the full flag list.

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/parse.h"
#include "core/experiment.h"
#include "fl/session.h"
#include "core/private_weighting.h"
#include "core/uldp_avg.h"
#include "core/uldp_group.h"
#include "core/uldp_naive.h"
#include "core/uldp_sgd.h"
#include "data/allocation.h"
#include "data/csv_loader.h"
#include "data/synthetic.h"
#include "dp/calibration.h"
#include "fl/fedavg.h"
#include "net/demo.h"
#include "net/protocol_node.h"
#include "net/tcp.h"
#include "net/transcript.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace uldp {
namespace {

struct Flags {
  std::string dataset = "creditcard";  // creditcard|mnist|heart|tcga
  std::string csv;                     // overrides dataset when set
  int label_column = -1;
  std::string method = "uldp-avg";  // default|uldp-naive|uldp-group|
                                    // uldp-avg|uldp-avg-w|uldp-sgd
  std::string allocation = "zipf";  // uniform|zipf
  int users = 100;
  int silos = 5;
  int rounds = 20;
  int eval_every = 5;
  int records = 6000;
  int group_k = 8;
  double sigma = 5.0;
  double clip = 1.0;
  double local_lr = 0.1;
  double global_lr = 0.0;  // 0 = method default
  double delta = 1e-5;
  double user_sample_rate = 1.0;
  double target_epsilon = 0.0;  // > 0: calibrate sigma instead of --sigma
  int local_epochs = 2;
  uint64_t seed = 1;
  int num_seeds = 1;  // > 1 averages runs
  int threads = 0;    // round-engine threads (0 = auto)
  int shard_users = 0;  // split silo sweeps into user shards (0 = off)
  // Asynchronous staleness-bounded rounds.
  bool async = false;      // local: async trainers; with --serve/--connect:
                           // async FL demo over the transport layer
  int max_staleness = 0;   // staleness bound tau
  int async_buffer = 0;    // arrivals per server step (0 = silos)
  // Elastic membership (async server/clients).
  bool elastic = false;    // dynamic membership: mid-run joins + eviction
  int min_silos = 0;       // fail below this active population (0 = 1)
  bool masked = false;     // submit pairwise-masked deltas (secure agg)
  // Checkpoint/resume (local experiments and the async server).
  std::string checkpoint_dir;  // write <dir>/session.ckpt
  int checkpoint_every = 0;    // every K rounds (0 = off)
  bool resume = false;         // load the checkpoint and continue
  // Fault injection (--fail-silo=ID:ROUND / --join-silo=ID:ROUND).
  double straggler = 0.0;  // async client: seconds of compute per step
  int fail_silo = -1;  // this silo crashes when released with ROUND
  int fail_round = -1;
  int join_silo = -1;  // this silo joins mid-run at version >= ROUND
  int join_round = -1;
  // Distributed Protocol 1 modes.
  int serve = -1;           // >= 0: run a protocol server on this port
                            // (0 picks an ephemeral port and prints it)
  std::string connect;      // host:port: run a silo client
  int silo_id = -1;         // required with --connect
  int dim = 16;             // demo model dimension
  int paillier_bits = 512;  // protocol modulus (demo scale)
  int n_max = 30;           // protocol N_max
  int ot_slots = 0;         // > 0: OT-based private sub-sampling, P slots
  int pack_slots = 1;       // ciphertext packing slots (1 = unpacked)
  bool verify = false;      // server: compare against the in-process run
  bool pipeline = false;    // protocol: multi-round pipelining (this party)
  int net_timeout = 0;      // seconds; recv/handshake deadline on TCP (0=off)
  // Streaming rounds (bounded peak RSS; must match on every party).
  int stream_chunk_users = 0;   // > 0: stream enc weights in user chunks
  int stream_chunk_coords = 0;  // cipher-upload chunk size (0 = default)
  int stream_window = 0;        // unacked chunks in flight (0 = default)
  int max_frame_bytes = 0;      // wire frame payload cap (0 = default)
  // Tamper-evident transcripts (src/net/transcript.h).
  std::string record_transcript;  // dir: write this party's transcript
  std::string verify_transcript;  // file: verify chain/HMAC + replay
  std::string hmac_key;           // hex key for the keyed chain finalizer
  // Telemetry (src/obs/) — strictly passive: results are bitwise
  // identical with or without these.
  std::string metrics_out;  // write the metrics registry JSON on exit
  std::string trace_out;    // record spans, write Chrome trace JSON on exit
  int stats_port = -1;      // >= 0: live Prometheus endpoint (servers;
                            // 0 picks an ephemeral port and prints it)
};

void PrintHelp() {
  std::cout <<
      "uldp_fl_cli — run a cross-silo user-level-DP FL experiment\n\n"
      "  --dataset=creditcard|mnist|heart|tcga   built-in synthetic data\n"
      "  --csv=PATH --label-column=N             or load a CSV instead\n"
      "  --method=default|uldp-naive|uldp-group|uldp-avg|uldp-avg-w|"
      "uldp-sgd\n"
      "  --allocation=uniform|zipf   user/silo record allocation\n"
      "  --users=N --silos=N --records=N\n"
      "  --rounds=T --eval-every=K --local-epochs=Q\n"
      "  --sigma=S --clip=C --local-lr=LR --global-lr=LR --delta=D\n"
      "  --target-epsilon=E          calibrate sigma for this budget\n"
      "  --user-sample-rate=Q        user-level sub-sampling (Alg. 4)\n"
      "  --group-k=K                 group size for uldp-group\n"
      "  --seed=N --num-seeds=M      M > 1 reports mean±std over seeds\n"
      "  --threads=N                 silo-round threads (0 = auto;\n"
      "                              results are identical for any N)\n"
      "  --shard-users=K             split each silo's private-protocol\n"
      "                              user sweep into shards of K users so\n"
      "                              one dominant silo no longer owns the\n"
      "                              critical path (bitwise identical;\n"
      "                              0 = one task per silo)\n"
      "  --async                     asynchronous staleness-bounded rounds:\n"
      "                              silo deltas apply as they land instead\n"
      "                              of barrier-waiting on the slowest silo\n"
      "  --max-staleness=T           accept updates up to T versions stale\n"
      "                              (discounted 1/(1+tau); 0 = barrier,\n"
      "                              bitwise-identical to sync)\n"
      "  --async-buffer=K            arrivals per server step (0 = silos)\n"
      "  --checkpoint-dir=PATH       write PATH/session.ckpt (local runs\n"
      "                              and the async server)\n"
      "  --checkpoint-every=K        checkpoint every K rounds and on the\n"
      "                              final round (required with\n"
      "                              --checkpoint-dir)\n"
      "  --resume                    load the checkpoint and continue; the\n"
      "                              resumed run is bitwise identical to an\n"
      "                              uninterrupted one on the same seed\n\n"
      "Distributed Protocol 1 (src/net/): a server plus one client per\n"
      "silo exchange every phase as wire frames over TCP and produce\n"
      "bitwise-identical aggregates to the in-process simulation.\n"
      "  --serve=PORT                run the protocol server (0 = pick an\n"
      "                              ephemeral port and print it)\n"
      "  --connect=HOST:PORT --silo-id=K   run silo K's client\n"
      "  --dim=D --paillier-bits=B --n-max=N   demo protocol shape\n"
      "  --ot-slots=P                OT-based private user sub-sampling\n"
      "                              with P slots (0 = off); all parties\n"
      "                              must agree\n"
      "  --pack-slots=K              pack K fixed-point coordinates per\n"
      "                              Paillier ciphertext (1 = unpacked);\n"
      "                              all parties must agree\n"
      "  --verify                    server: also run the in-process\n"
      "                              protocol and require bitwise equality\n"
      "  --pipeline                  overlap round r+1 precomputation with\n"
      "                              round r aggregation (party-local;\n"
      "                              outputs bitwise identical)\n"
      "  --net-timeout=SECONDS       TCP recv/handshake deadline — a hung\n"
      "                              peer fails fast instead of blocking\n"
      "                              forever (0 = off)\n"
      "  --stream-chunk-users=K      stream encrypted weights K users at a\n"
      "                              time and fold silo ciphers chunk by\n"
      "                              chunk: peak resident ciphertexts are\n"
      "                              O(K), independent of --users, and the\n"
      "                              aggregates stay bitwise identical\n"
      "                              (0 = materialize whole rounds)\n"
      "  --stream-chunk-coords=C     cipher-upload coordinates per chunk\n"
      "                              (0 = default 256)\n"
      "  --stream-window=W           unacknowledged chunks in flight per\n"
      "                              peer (0 = default 4)\n"
      "  --max-frame-bytes=B         reject any wire frame whose payload\n"
      "                              exceeds B bytes before allocating it\n"
      "                              (0 = default cap)\n"
      "Tamper-evident transcripts (src/net/transcript.h; see\n"
      "docs/transcripts.md):\n"
      "  --record-transcript=DIR     record every frame this party sends or\n"
      "                              receives as a hash-chained transcript\n"
      "                              in DIR (server.ult / siloK.ult /\n"
      "                              async-*.ult), written on every exit\n"
      "                              path including failures; recording is\n"
      "                              passive — the run's bytes and results\n"
      "                              are unchanged\n"
      "  --verify-transcript=FILE    verify a recorded transcript: trailing\n"
      "                              digest, SHA-256 hash chain, optional\n"
      "                              HMAC, then a deterministic replay\n"
      "                              through the real protocol drivers that\n"
      "                              must reproduce every recorded outbound\n"
      "                              frame byte-for-byte (protocol roles;\n"
      "                              async roles verify chain + HMAC only)\n"
      "  --hmac-key=HEX              keyed chain finalizer: with\n"
      "                              --record-transcript, bind the chain\n"
      "                              head to this key; with\n"
      "                              --verify-transcript, require and check\n"
      "                              the binding (a forger who re-hashes a\n"
      "                              doctored chain fails without the key)\n"
      "With --async, --serve/--connect run the asynchronous FL demo over\n"
      "TCP (StalenessInfo/RoundAck frames) instead of Protocol 1;\n"
      "--verify requires --max-staleness=0, where the distributed run is\n"
      "bitwise-identical to the synchronous engine.\n"
      "Elastic membership (async demo only):\n"
      "  --elastic                   server: admit mid-run join requests at\n"
      "                              flush boundaries and evict dead silos\n"
      "                              instead of failing the run\n"
      "  --min-silos=N               fail the run if the active population\n"
      "                              drops below N (default 1)\n"
      "  --masked                    silos upload pairwise-masked deltas\n"
      "                              (core/masking.h); the server only sees\n"
      "                              the unmasked sum, which is bitwise\n"
      "                              identical to the plain reduce\n"
      "  --straggler=SECONDS         async client: sleep this long per\n"
      "                              local step (slows the run so kill/\n"
      "                              resume drills can land mid-run)\n"
      "  --fail-silo=ID:ROUND        the client running silo ID crashes\n"
      "                              (closes its socket mid-round) once\n"
      "                              released with version >= ROUND\n"
      "  --join-silo=ID:ROUND        silo ID joins mid-run: its client\n"
      "                              sends a join request admitted at the\n"
      "                              first flush with version >= ROUND;\n"
      "                              the server waits for one fewer silo\n"
      "                              before starting\n"
      "All parties must be started with the same --silos/--users/--seed\n"
      "and protocol shape flags (enforced by a config digest at join\n"
      "time); --dim must match too, but a mismatch only surfaces as a\n"
      "dimension error at round time. --rounds/--threads are\n"
      "server-/party-local.\n"
      "Observability (src/obs/; passive — results are bitwise identical\n"
      "with or without these, in every mode):\n"
      "  --metrics-out=PATH          write the metrics registry snapshot\n"
      "                              (counters, gauges, histograms) as JSON\n"
      "                              on exit — including failed runs\n"
      "  --trace-out=PATH            record phase/chunk trace spans and\n"
      "                              write Chrome trace-event JSON on exit\n"
      "                              (load in about://tracing or Perfetto)\n"
      "  --stats-port=PORT           servers: live Prometheus text endpoint\n"
      "                              on 127.0.0.1:PORT (0 = pick an\n"
      "                              ephemeral port and print it)\n";
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

/// Strict numeric flag parsing: any malformed or out-of-range value is a
/// clear error instead of atoi's silent 0.
Status ParseIntInto(const std::string& value, const std::string& name,
                    int64_t min, int64_t max, int* out) {
  auto v = ParseInt(value, min, max, "--" + name);
  if (!v.ok()) return v.status();
  *out = static_cast<int>(v.value());
  return Status::Ok();
}

Status ParseDoubleInto(const std::string& value, const std::string& name,
                       double* out) {
  auto v = ParseDouble(value, "--" + name);
  if (!v.ok()) return v.status();
  *out = v.value();
  return Status::Ok();
}

/// Parses the fault-injection flags' "ID:ROUND" form.
Status ParseSiloRound(const std::string& value, const std::string& name,
                      int* silo, int* round) {
  size_t colon = value.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == value.size()) {
    return Status::InvalidArgument("--" + name + " expects ID:ROUND, got \"" +
                                   value + "\"");
  }
  ULDP_RETURN_IF_ERROR(
      ParseIntInto(value.substr(0, colon), name, 0, (1 << 16) - 1, silo));
  ULDP_RETURN_IF_ERROR(
      ParseIntInto(value.substr(colon + 1), name, 0, 1 << 24, round));
  return Status::Ok();
}

Result<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      std::exit(0);
    } else if (arg == "--verify") {
      flags.verify = true;
    } else if (arg == "--async") {
      flags.async = true;
    } else if (arg == "--pipeline") {
      flags.pipeline = true;
    } else if (arg == "--elastic") {
      flags.elastic = true;
    } else if (arg == "--masked") {
      flags.masked = true;
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (ParseFlag(arg, "min-silos", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "min-silos", 1, 1 << 16, &flags.min_silos));
    } else if (ParseFlag(arg, "checkpoint-dir", &value)) {
      flags.checkpoint_dir = value;
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "checkpoint-every", 1, 1 << 24,
                                        &flags.checkpoint_every));
    } else if (ParseFlag(arg, "straggler", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseDoubleInto(value, "straggler", &flags.straggler));
    } else if (ParseFlag(arg, "fail-silo", &value)) {
      ULDP_RETURN_IF_ERROR(ParseSiloRound(value, "fail-silo",
                                          &flags.fail_silo,
                                          &flags.fail_round));
    } else if (ParseFlag(arg, "join-silo", &value)) {
      ULDP_RETURN_IF_ERROR(ParseSiloRound(value, "join-silo",
                                          &flags.join_silo,
                                          &flags.join_round));
    } else if (ParseFlag(arg, "max-staleness", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "max-staleness", 0, 1 << 20,
                                        &flags.max_staleness));
    } else if (ParseFlag(arg, "async-buffer", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "async-buffer", 0, 1 << 16,
                                        &flags.async_buffer));
    } else if (ParseFlag(arg, "net-timeout", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "net-timeout", 0, 1 << 20,
                                        &flags.net_timeout));
    } else if (ParseFlag(arg, "stream-chunk-users", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "stream-chunk-users", 0,
                                        1 << 24, &flags.stream_chunk_users));
    } else if (ParseFlag(arg, "stream-chunk-coords", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "stream-chunk-coords", 0,
                                        1 << 20, &flags.stream_chunk_coords));
    } else if (ParseFlag(arg, "stream-window", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "stream-window", 0, 1 << 16,
                                        &flags.stream_window));
    } else if (ParseFlag(arg, "max-frame-bytes", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "max-frame-bytes", 0,
                                        1 << 30, &flags.max_frame_bytes));
    } else if (ParseFlag(arg, "dataset", &value)) {
      flags.dataset = value;
    } else if (ParseFlag(arg, "csv", &value)) {
      flags.csv = value;
    } else if (ParseFlag(arg, "label-column", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "label-column", -1, 1 << 20,
                                        &flags.label_column));
    } else if (ParseFlag(arg, "method", &value)) {
      flags.method = value;
    } else if (ParseFlag(arg, "allocation", &value)) {
      flags.allocation = value;
    } else if (ParseFlag(arg, "users", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "users", 1, 1 << 24, &flags.users));
    } else if (ParseFlag(arg, "silos", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "silos", 1, 1 << 16, &flags.silos));
    } else if (ParseFlag(arg, "rounds", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "rounds", 1, 1 << 24, &flags.rounds));
    } else if (ParseFlag(arg, "eval-every", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "eval-every", 1, 1 << 24, &flags.eval_every));
    } else if (ParseFlag(arg, "records", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "records", 1, 1 << 28, &flags.records));
    } else if (ParseFlag(arg, "group-k", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "group-k", 1, 1 << 24, &flags.group_k));
    } else if (ParseFlag(arg, "sigma", &value)) {
      ULDP_RETURN_IF_ERROR(ParseDoubleInto(value, "sigma", &flags.sigma));
    } else if (ParseFlag(arg, "clip", &value)) {
      ULDP_RETURN_IF_ERROR(ParseDoubleInto(value, "clip", &flags.clip));
    } else if (ParseFlag(arg, "local-lr", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseDoubleInto(value, "local-lr", &flags.local_lr));
    } else if (ParseFlag(arg, "global-lr", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseDoubleInto(value, "global-lr", &flags.global_lr));
    } else if (ParseFlag(arg, "delta", &value)) {
      ULDP_RETURN_IF_ERROR(ParseDoubleInto(value, "delta", &flags.delta));
    } else if (ParseFlag(arg, "user-sample-rate", &value)) {
      ULDP_RETURN_IF_ERROR(ParseDoubleInto(value, "user-sample-rate",
                                           &flags.user_sample_rate));
    } else if (ParseFlag(arg, "target-epsilon", &value)) {
      ULDP_RETURN_IF_ERROR(ParseDoubleInto(value, "target-epsilon",
                                           &flags.target_epsilon));
    } else if (ParseFlag(arg, "local-epochs", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "local-epochs", 1, 1 << 20,
                                        &flags.local_epochs));
    } else if (ParseFlag(arg, "seed", &value)) {
      auto seed = ParseUint(value, ~0ull, "--seed");
      if (!seed.ok()) return seed.status();
      flags.seed = seed.value();
    } else if (ParseFlag(arg, "num-seeds", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "num-seeds", 1, 1 << 16, &flags.num_seeds));
    } else if (ParseFlag(arg, "threads", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "threads", 0, 1 << 14, &flags.threads));
    } else if (ParseFlag(arg, "shard-users", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "shard-users", 0, 1 << 24,
                                        &flags.shard_users));
    } else if (ParseFlag(arg, "serve", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "serve", 0, 65535, &flags.serve));
    } else if (ParseFlag(arg, "connect", &value)) {
      flags.connect = value;
    } else if (ParseFlag(arg, "silo-id", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "silo-id", 0, (1 << 16) - 1, &flags.silo_id));
    } else if (ParseFlag(arg, "dim", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "dim", 1, 1 << 20, &flags.dim));
    } else if (ParseFlag(arg, "paillier-bits", &value)) {
      ULDP_RETURN_IF_ERROR(ParseIntInto(value, "paillier-bits", 64, 8192,
                                        &flags.paillier_bits));
    } else if (ParseFlag(arg, "n-max", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "n-max", 1, 1 << 16, &flags.n_max));
    } else if (ParseFlag(arg, "ot-slots", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "ot-slots", 0, 1 << 16, &flags.ot_slots));
    } else if (ParseFlag(arg, "pack-slots", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "pack-slots", 1, 1 << 10, &flags.pack_slots));
    } else if (ParseFlag(arg, "record-transcript", &value)) {
      flags.record_transcript = value;
    } else if (ParseFlag(arg, "verify-transcript", &value)) {
      flags.verify_transcript = value;
    } else if (ParseFlag(arg, "hmac-key", &value)) {
      flags.hmac_key = value;
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(arg, "trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(arg, "stats-port", &value)) {
      ULDP_RETURN_IF_ERROR(
          ParseIntInto(value, "stats-port", 0, 65535, &flags.stats_port));
    } else {
      return Status::InvalidArgument("unknown flag: " + arg +
                                     " (try --help)");
    }
  }
  if (flags.serve >= 0 && !flags.connect.empty()) {
    return Status::InvalidArgument(
        "--serve and --connect are mutually exclusive");
  }
  if (!flags.connect.empty() && flags.silo_id < 0) {
    return Status::InvalidArgument("--connect requires --silo-id");
  }
  if ((flags.serve >= 0 || !flags.connect.empty()) && flags.silos < 2) {
    return Status::InvalidArgument(
        "the distributed protocol needs --silos >= 2");
  }
  if (!flags.connect.empty() && flags.silo_id >= flags.silos) {
    return Status::OutOfRange("--silo-id must be < --silos");
  }
  if (flags.stream_chunk_users > 0 && flags.async) {
    return Status::InvalidArgument(
        "--stream-chunk-users applies to Protocol 1, not the async FL demo");
  }
  if ((flags.ot_slots > 0 || flags.pack_slots > 1) && flags.async) {
    return Status::InvalidArgument(
        "--ot-slots/--pack-slots apply to Protocol 1, not the async FL demo");
  }
  if (flags.stats_port >= 0 && flags.serve < 0) {
    return Status::InvalidArgument(
        "--stats-port runs on the servers; it requires --serve");
  }
  if ((flags.stream_chunk_coords > 0 || flags.stream_window > 0) &&
      flags.stream_chunk_users <= 0) {
    return Status::InvalidArgument(
        "--stream-chunk-coords/--stream-window require --stream-chunk-users");
  }
  if (flags.async_buffer > flags.silos) {
    return Status::InvalidArgument("--async-buffer must be <= --silos");
  }
  if ((flags.max_staleness > 0 || flags.async_buffer > 0) && !flags.async) {
    return Status::InvalidArgument(
        "--max-staleness/--async-buffer require --async");
  }
  if (flags.async && flags.verify &&
      (flags.max_staleness != 0 ||
       (flags.async_buffer != 0 && flags.async_buffer != flags.silos))) {
    return Status::InvalidArgument(
        "--verify needs --max-staleness=0 and a full --async-buffer (the "
        "barrier case); a staleness-bounded or partial-buffer run over a "
        "real network has no deterministic reference)");
  }
  const bool distributed_async =
      flags.async && (flags.serve >= 0 || !flags.connect.empty());
  if ((flags.elastic || flags.masked) && !distributed_async) {
    return Status::InvalidArgument(
        "--elastic/--masked apply to the distributed async demo "
        "(--async with --serve or --connect)");
  }
  if (flags.min_silos > 0 && !flags.elastic) {
    return Status::InvalidArgument("--min-silos requires --elastic");
  }
  if (flags.min_silos > flags.silos) {
    return Status::InvalidArgument("--min-silos must be <= --silos");
  }
  if (flags.straggler < 0) {
    return Status::InvalidArgument("--straggler must be >= 0");
  }
  if (flags.straggler > 0 && !flags.async) {
    return Status::InvalidArgument("--straggler requires --async");
  }
  if ((flags.fail_silo >= 0 || flags.join_silo >= 0) && !flags.elastic) {
    return Status::InvalidArgument(
        "--fail-silo/--join-silo require --elastic (a fixed cohort treats "
        "any departure as fatal)");
  }
  if ((flags.fail_silo >= flags.silos || flags.join_silo >= flags.silos)) {
    return Status::OutOfRange("--fail-silo/--join-silo ID must be < --silos");
  }
  if (flags.masked &&
      (flags.elastic || flags.max_staleness != 0 ||
       (flags.async_buffer != 0 && flags.async_buffer != flags.silos))) {
    return Status::InvalidArgument(
        "--masked needs the full fixed cohort every step (no --elastic, "
        "--max-staleness=0, full --async-buffer): pairwise masks only "
        "cancel when all silos contribute");
  }
  if (flags.verify && (flags.elastic || flags.masked)) {
    return Status::InvalidArgument(
        "--verify replays the plain fixed-cohort schedule; drop --elastic/"
        "--masked");
  }
  if (flags.resume && flags.checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  if (!flags.verify_transcript.empty() &&
      (flags.serve >= 0 || !flags.connect.empty() ||
       !flags.record_transcript.empty())) {
    return Status::InvalidArgument(
        "--verify-transcript is its own mode; drop --serve/--connect/"
        "--record-transcript");
  }
  if (!flags.record_transcript.empty() && flags.serve < 0 &&
      flags.connect.empty()) {
    return Status::InvalidArgument(
        "--record-transcript applies to the distributed modes "
        "(--serve/--connect); local runs have no wire traffic to record");
  }
  if (!flags.hmac_key.empty() && flags.record_transcript.empty() &&
      flags.verify_transcript.empty()) {
    return Status::InvalidArgument(
        "--hmac-key requires --record-transcript or --verify-transcript");
  }
  if (!flags.checkpoint_dir.empty() && flags.checkpoint_every <= 0 &&
      !flags.resume) {
    return Status::InvalidArgument(
        "--checkpoint-dir requires --checkpoint-every=K (K >= 1)");
  }
  if (!flags.checkpoint_dir.empty() &&
      (!flags.connect.empty() || (flags.serve >= 0 && !flags.async))) {
    return Status::InvalidArgument(
        "checkpointing applies to local experiments and the async server, "
        "not silo clients or the Protocol 1 server");
  }
  if (!flags.checkpoint_dir.empty() && flags.num_seeds > 1) {
    return Status::InvalidArgument(
        "checkpointing a multi-seed averaged run is not supported (the "
        "seeds would overwrite each other's session.ckpt)");
  }
  return flags;
}

ProtocolConfig NetProtocolConfig(const Flags& flags) {
  ProtocolConfig config;
  config.paillier_bits = flags.paillier_bits;
  config.n_max = flags.n_max;
  config.seed = flags.seed;
  config.num_threads = flags.threads;
  config.pipeline = flags.pipeline;
  config.stream_chunk_users = flags.stream_chunk_users;
  config.stream_chunk_coords = flags.stream_chunk_coords;
  config.stream_window = flags.stream_window;
  config.ot_slots = flags.ot_slots;
  config.pack_slots = flags.pack_slots;
  return config;
}

net::AsyncRoundsConfig NetAsyncConfig(const Flags& flags) {
  net::AsyncRoundsConfig config;
  config.max_staleness = flags.max_staleness;
  config.buffer_size = flags.async_buffer;
  config.step_scale = 1.0 / flags.silos;
  config.seed = flags.seed;
  config.elastic = flags.elastic;
  config.min_silos = flags.min_silos > 0 ? flags.min_silos : 1;
  config.masked = flags.masked;
  return config;
}

/// Applies the per-connection transport flags to a TCP endpoint:
/// --net-timeout (handshake + recv deadline) and --max-frame-bytes
/// (payload cap enforced before allocation).
Status ApplyNetTimeout(net::TcpTransport& transport, const Flags& flags) {
  if (flags.max_frame_bytes > 0) {
    transport.set_max_frame_payload(
        static_cast<uint32_t>(flags.max_frame_bytes));
  }
  if (flags.net_timeout <= 0) return Status::Ok();
  return transport.SetRecvTimeout(flags.net_timeout * 1000);
}

/// Holds a party's live transcript recorder and writes the file when it
/// goes out of scope — every exit path of a Run* function, success or
/// failure, leaves a chain-valid (possibly partial) transcript behind,
/// the same always-flush discipline as FlushTelemetry. Null `log` means
/// recording is off and the destructor is a no-op.
struct TranscriptFlusher {
  std::shared_ptr<net::TranscriptLog> log;
  std::string path;

  TranscriptFlusher() = default;
  TranscriptFlusher(TranscriptFlusher&&) = default;
  TranscriptFlusher& operator=(TranscriptFlusher&&) = default;
  ~TranscriptFlusher() {
    if (log == nullptr) return;
    Status wrote = log->WriteFile(path);
    if (!wrote.ok()) {
      std::cerr << "record-transcript: " << wrote.ToString() << "\n";
      return;
    }
    std::cout << "transcript written to " << path << " ("
              << log->entry_count() << " frames)" << std::endl;
  }
};

/// Builds this party's transcript recorder (--record-transcript), or a
/// null flusher when recording is off. The file name encodes the role so
/// one directory collects a whole cohort's transcripts.
Result<TranscriptFlusher> MakeTranscriptRecorder(const Flags& flags) {
  TranscriptFlusher out;
  if (flags.record_transcript.empty()) return out;
  std::vector<uint8_t> key;
  if (!flags.hmac_key.empty()) {
    auto parsed = net::ParseHexKey(flags.hmac_key);
    if (!parsed.ok()) return parsed.status();
    key = std::move(parsed.value());
  }
  const bool serving = flags.serve >= 0;
  net::TranscriptMeta meta;
  std::string name;
  if (flags.async) {
    // Async transcripts carry chain + HMAC evidence only (no replay), so
    // the meta records the run shape without a protocol config digest.
    meta.role = serving ? net::TranscriptRole::kAsyncServer
                        : net::TranscriptRole::kAsyncSilo;
    meta.silo_id = serving ? 0 : static_cast<uint32_t>(flags.silo_id);
    meta.num_silos = static_cast<uint32_t>(flags.silos);
    meta.dim = static_cast<uint32_t>(flags.dim);
    meta.rounds = serving ? static_cast<uint64_t>(flags.rounds) : 0;
    meta.seed = flags.seed;
    name = serving ? "async-server.ult"
                   : "async-silo" + std::to_string(flags.silo_id) + ".ult";
  } else {
    meta = net::TranscriptMeta::FromProtocolConfig(
        NetProtocolConfig(flags),
        serving ? net::TranscriptRole::kProtocolServer
                : net::TranscriptRole::kProtocolSilo,
        serving ? 0 : static_cast<uint32_t>(flags.silo_id), flags.silos,
        flags.users, flags.dim,
        serving ? static_cast<uint64_t>(flags.rounds) : 0);
    name = serving ? "server.ult"
                   : "silo" + std::to_string(flags.silo_id) + ".ult";
  }
  out.log = std::make_shared<net::TranscriptLog>(meta, std::move(key));
  out.path = flags.record_transcript + "/" + name;
  return out;
}

int RunServeAsync(const Flags& flags) {
  auto listener = net::TcpListener::Listen(flags.serve);
  if (!listener.ok()) {
    std::cerr << listener.status().ToString() << "\n";
    return 1;
  }
  std::cout << "uldp_fl_cli: async round server listening on port "
            << listener.value().port() << " (" << flags.silos << " silos, dim "
            << flags.dim << ", " << flags.rounds << " steps, max staleness "
            << flags.max_staleness << ")" << std::endl;

  auto recorder = MakeTranscriptRecorder(flags);
  if (!recorder.ok()) {
    std::cerr << recorder.status().ToString() << "\n";
    return 2;
  }
  // Declared before the server so a failure path flushes the transcript
  // only after the server (and its receive threads) are torn down.
  TranscriptFlusher transcript = std::move(recorder.value());
  // Transcript peer ids are the accept counter (shared with the elastic
  // acceptor thread below, hence atomic).
  std::atomic<uint32_t> accept_count{0};

  net::AsyncRoundsConfig config = NetAsyncConfig(flags);
  net::AsyncRoundServer server(config, flags.silos, flags.dim);
  if (!flags.checkpoint_dir.empty()) {
    server.SetCheckpoint(flags.checkpoint_dir, flags.checkpoint_every);
  }
  if (flags.resume) {
    auto state =
        SessionState::ReadFile(flags.checkpoint_dir + "/session.ckpt");
    if (!state.ok()) {
      std::cerr << "resume: " << state.status().ToString() << "\n";
      return 1;
    }
    uint64_t resumed_round = state.value().round;
    Status restored = server.RestoreSession(std::move(state.value()));
    if (!restored.ok()) {
      std::cerr << "resume: " << restored.ToString() << "\n";
      return 1;
    }
    std::cout << "resuming from " << flags.checkpoint_dir
              << "/session.ckpt at round " << resumed_round << std::endl;
  }

  // With --join-silo one member of the cohort connects mid-run, so the
  // initial barrier waits for one fewer silo; the elastic accept thread
  // below picks up the late joiner.
  const int initial_cohort = flags.silos - (flags.join_silo >= 0 ? 1 : 0);
  while (server.connected_silos() < initial_cohort) {
    auto conn = listener.value().Accept();
    if (!conn.ok()) {
      std::cerr << conn.status().ToString() << "\n";
      return 1;
    }
    Status limited = ApplyNetTimeout(*conn.value(), flags);
    if (!limited.ok()) {
      std::cerr << limited.ToString() << "\n";
      return 1;
    }
    if (transcript.log != nullptr) {
      conn.value()->BindTranscript(transcript.log,
                                   accept_count.fetch_add(1));
    }
    Status added = server.AddConnection(std::move(conn.value()));
    if (!added.ok()) {
      std::cerr << "rejected join: " << added.ToString() << std::endl;
      continue;
    }
    std::cout << "silo connected (" << server.connected_silos() << "/"
              << initial_cohort << ")" << std::endl;
  }

  // Elastic runs keep accepting mid-run join requests while the round
  // loop executes; closing the listener after the run unblocks Accept.
  std::thread acceptor;
  if (flags.elastic) {
    acceptor = std::thread([&listener, &server, &flags, &transcript,
                            &accept_count]() {
      for (;;) {
        auto conn = listener.value().Accept();
        if (!conn.ok()) return;  // listener closed: the run is over
        if (!ApplyNetTimeout(*conn.value(), flags).ok()) continue;
        if (transcript.log != nullptr) {
          conn.value()->BindTranscript(transcript.log,
                                       accept_count.fetch_add(1));
        }
        Status added = server.AddConnection(std::move(conn.value()));
        if (!added.ok()) {
          std::cerr << "rejected join: " << added.ToString() << std::endl;
        }
      }
    });
  }

  Result<Vec> out = [&]() -> Result<Vec> {
    if (flags.resume) return server.Resume(flags.rounds);
    Vec global(flags.dim, 0.0);
    return server.Run(flags.rounds, global);
  }();
  if (acceptor.joinable()) {
    listener.value().Close();
    acceptor.join();
  }
  if (!out.ok()) {
    std::cerr << out.status().ToString() << "\n";
    return 1;
  }
  std::cout << "async rounds done: applied " << server.stats().applied
            << ", rejected " << server.stats().rejected << ", dropped "
            << server.stats().dropped << ", max staleness "
            << server.stats().max_staleness_seen;
  if (flags.elastic) {
    std::cout << "; evictions " << server.evictions() << ", admissions "
              << server.admissions();
  }
  std::cout << "; params[0.." << std::min<size_t>(3, out.value().size())
            << ") =";
  for (size_t d = 0; d < std::min<size_t>(3, out.value().size()); ++d) {
    std::cout << " " << out.value()[d];
  }
  std::cout << std::endl;
  {
    // A grep-friendly whole-model fingerprint so the kill-and-resume smoke
    // can compare runs without parsing float prints.
    net::WireWriter w;
    w.F64Vec(out.value());
    std::cout << "final params digest " << std::hex
              << net::WireDigest(w.buffer()) << std::dec << std::endl;
  }

  if (flags.verify) {
    // Serial replay of the staleness-bounded update rule at tau = 0 (the
    // barrier case): identical work, identical reduce — bitwise equal.
    AsyncAggregator reference(flags.silos, 0, 0);
    Vec ref(flags.dim, 0.0);
    for (int r = 0; r < flags.rounds; ++r) {
      for (int s = 0; s < flags.silos; ++s) {
        Vec delta;
        Status worked = net::MakeAsyncDemoWork(flags.seed, s, flags.dim)(
            static_cast<uint64_t>(r), ref, &delta);
        if (!worked.ok()) {
          std::cerr << "verify work: " << worked.ToString() << "\n";
          return 1;
        }
        reference.Offer(s, r, std::move(delta));
      }
      Vec sum = reference.Flush(false, static_cast<uint64_t>(r), nullptr);
      Axpy(config.step_scale, sum, ref);
    }
    if (ref != out.value()) {
      std::cerr << "VERIFY FAILED: distributed async parameters differ from "
                   "the synchronous engine\n";
      return 1;
    }
    std::cout << "verify: distributed async run bitwise-matches the "
                 "synchronous engine" << std::endl;
  }
  return 0;
}

int RunConnectAsync(const Flags& flags) {
  auto hp = ParseHostPort(flags.connect, "--connect");
  if (!hp.ok()) {
    std::cerr << hp.status().ToString() << "\n";
    return 2;
  }
  auto transport = net::TcpTransport::Connect(hp.value().host,
                                              hp.value().port);
  if (!transport.ok()) {
    std::cerr << transport.status().ToString() << "\n";
    return 1;
  }
  Status limited = ApplyNetTimeout(*transport.value(), flags);
  if (!limited.ok()) {
    std::cerr << limited.ToString() << "\n";
    return 1;
  }
  auto recorder = MakeTranscriptRecorder(flags);
  if (!recorder.ok()) {
    std::cerr << recorder.status().ToString() << "\n";
    return 2;
  }
  TranscriptFlusher transcript = std::move(recorder.value());
  if (transcript.log != nullptr) {
    transport.value()->BindTranscript(transcript.log, 0);
  }
  std::cout << "async silo " << flags.silo_id << " connected to "
            << flags.connect << std::endl;
  net::AsyncDemoOptions options;
  options.sleep_seconds = flags.straggler;
  if (flags.fail_silo == flags.silo_id) {
    options.fail_at_version = flags.fail_round;
  }
  if (flags.join_silo == flags.silo_id) {
    options.join_at_version = flags.join_round;
  }
  Status status = net::RunAsyncDemoSilo(NetAsyncConfig(flags), flags.silo_id,
                                        flags.silos, flags.dim,
                                        *transport.value(), options);
  if (!status.ok()) {
    if (options.fail_at_version >= 0 &&
        status.message().find("injected silo failure") != std::string::npos) {
      // The --fail-silo drill fired as scheduled: an expected outcome for
      // the churn smoke, not an error.
      std::cout << "async silo " << flags.silo_id
                << " crashed as scheduled: " << status.ToString()
                << std::endl;
      return 0;
    }
    std::cerr << "async silo " << flags.silo_id << ": " << status.ToString()
              << "\n";
    return 1;
  }
  std::cout << "async silo " << flags.silo_id << " finished" << std::endl;
  return 0;
}

int RunServe(const Flags& flags) {
  auto listener = net::TcpListener::Listen(flags.serve);
  if (!listener.ok()) {
    std::cerr << listener.status().ToString() << "\n";
    return 1;
  }
  std::cout << "uldp_fl_cli: protocol server listening on port "
            << listener.value().port() << " (" << flags.silos << " silos, "
            << flags.users << " users, dim " << flags.dim << ", "
            << flags.rounds << " rounds)" << std::endl;

  auto recorder = MakeTranscriptRecorder(flags);
  if (!recorder.ok()) {
    std::cerr << recorder.status().ToString() << "\n";
    return 2;
  }
  // Declared before the server so a failure path flushes the transcript
  // only after the server (and its receive threads) are torn down.
  TranscriptFlusher transcript = std::move(recorder.value());
  ProtocolConfig config = NetProtocolConfig(flags);
  net::ProtocolServer server(config, flags.silos, flags.users);
  // Transcript peer ids are the accept counter — a rejected join still
  // consumes an id, so its recorded Join/Error exchange replays as a
  // rejected join instead of polluting the next peer's stream.
  uint32_t accept_count = 0;
  while (server.connected_silos() < flags.silos) {
    auto conn = listener.value().Accept();
    if (!conn.ok()) {
      std::cerr << conn.status().ToString() << "\n";
      return 1;
    }
    Status limited = ApplyNetTimeout(*conn.value(), flags);
    if (!limited.ok()) {
      std::cerr << limited.ToString() << "\n";
      return 1;
    }
    if (transcript.log != nullptr) {
      conn.value()->BindTranscript(transcript.log, accept_count++);
    }
    Status added = server.AddConnection(std::move(conn.value()));
    if (!added.ok()) {
      // A rejected join (bad id, mismatched config) is the client's
      // problem; keep serving the cohort.
      std::cerr << "rejected join: " << added.ToString() << std::endl;
      continue;
    }
    std::cout << "silo connected (" << server.connected_silos() << "/"
              << flags.silos << ")" << std::endl;
  }

  Status setup = server.RunSetup();
  if (!setup.ok()) {
    std::cerr << "setup: " << setup.ToString() << "\n";
    return 1;
  }
  std::cout << "setup complete" << std::endl;

  std::vector<bool> mask(flags.users, true);
  std::vector<Vec> aggregates;
  for (int r = 0; r < flags.rounds; ++r) {
    auto out = server.RunRound(static_cast<uint64_t>(r), mask);
    if (!out.ok()) {
      std::cerr << "round " << r << ": " << out.status().ToString() << "\n";
      return 1;
    }
    std::cout << "round " << r << " aggregate[0.."
              << std::min<size_t>(3, out.value().size()) << ") =";
    for (size_t d = 0; d < std::min<size_t>(3, out.value().size()); ++d) {
      std::cout << " " << out.value()[d];
    }
    std::cout << std::endl;
    aggregates.push_back(std::move(out.value()));
  }
  Status shutdown = server.Shutdown();
  if (!shutdown.ok()) {
    std::cerr << "shutdown: " << shutdown.ToString() << "\n";
    return 1;
  }
  for (const auto& phase : server.phase_stats()) {
    std::cout << "phase " << phase.phase << ": sent " << phase.bytes_sent
              << " B, received " << phase.bytes_received << " B in "
              << phase.seconds << " s" << std::endl;
  }

  if (flags.verify) {
    // Replays the exact same protocol in process (same seed, same demo
    // inputs) and requires bitwise equality — the transport subsystem's
    // core invariant, checkable from the command line.
    net::DemoInputs in = net::MakeDemoInputs(flags.seed, flags.silos,
                                             flags.users, flags.dim);
    PrivateWeightingProtocol protocol(config, flags.silos, flags.users);
    Status ps = protocol.Setup(in.histograms);
    if (!ps.ok()) {
      std::cerr << "verify setup: " << ps.ToString() << "\n";
      return 1;
    }
    for (int r = 0; r < flags.rounds; ++r) {
      auto out = protocol.WeightingRound(static_cast<uint64_t>(r), in.deltas,
                                         in.noise, mask);
      if (!out.ok()) {
        std::cerr << "verify round: " << out.status().ToString() << "\n";
        return 1;
      }
      if (out.value() != aggregates[r]) {
        std::cerr << "VERIFY FAILED: round " << r
                  << " distributed aggregate differs from in-process run\n";
        return 1;
      }
    }
    std::cout << "verify: distributed aggregates bitwise-match the "
                 "in-process run" << std::endl;
  }
  return 0;
}

int RunConnect(const Flags& flags) {
  auto hp = ParseHostPort(flags.connect, "--connect");
  if (!hp.ok()) {
    std::cerr << hp.status().ToString() << "\n";
    return 2;
  }
  auto transport = net::TcpTransport::Connect(hp.value().host,
                                              hp.value().port);
  if (!transport.ok()) {
    std::cerr << transport.status().ToString() << "\n";
    return 1;
  }
  Status limited = ApplyNetTimeout(*transport.value(), flags);
  if (!limited.ok()) {
    std::cerr << limited.ToString() << "\n";
    return 1;
  }
  auto recorder = MakeTranscriptRecorder(flags);
  if (!recorder.ok()) {
    std::cerr << recorder.status().ToString() << "\n";
    return 2;
  }
  TranscriptFlusher transcript = std::move(recorder.value());
  if (transcript.log != nullptr) {
    transport.value()->BindTranscript(transcript.log, 0);
  }
  std::cout << "silo " << flags.silo_id << " connected to " << flags.connect
            << std::endl;
  Status status = net::RunDemoSilo(NetProtocolConfig(flags), flags.silo_id,
                                   flags.silos, flags.users, flags.dim,
                                   flags.seed, *transport.value());
  if (!status.ok()) {
    std::cerr << "silo " << flags.silo_id << ": " << status.ToString()
              << "\n";
    return 1;
  }
  std::cout << "silo " << flags.silo_id << " finished" << std::endl;
  return 0;
}

struct LoadedData {
  std::unique_ptr<FederatedDataset> dataset;
  std::unique_ptr<Model> model;
  UtilityMetric metric = UtilityMetric::kAccuracy;
};

Result<LoadedData> LoadData(const Flags& flags) {
  Rng rng(flags.seed);
  LoadedData out;
  AllocationOptions alloc;
  if (flags.allocation == "zipf") {
    alloc.kind = AllocationKind::kZipf;
  } else if (flags.allocation == "uniform") {
    alloc.kind = AllocationKind::kUniform;
  } else {
    return Status::InvalidArgument("unknown allocation: " + flags.allocation);
  }

  if (!flags.csv.empty()) {
    CsvOptions csv;
    csv.label_column = flags.label_column;
    auto records = LoadCsvRecords(flags.csv, csv);
    if (!records.ok()) return records.status();
    auto all = std::move(records.value());
    // 80/20 train/test split.
    size_t split = all.size() * 4 / 5;
    std::vector<Record> train(all.begin(), all.begin() + split);
    std::vector<Record> test(all.begin() + split, all.end());
    ULDP_RETURN_IF_ERROR(AllocateUsersAndSilos(train, flags.users,
                                               flags.silos, alloc, rng));
    int classes = 0;
    for (const auto& r : train) classes = std::max(classes, r.label + 1);
    if (classes < 2) {
      return Status::InvalidArgument(
          "CSV training requires --label-column with >= 2 classes");
    }
    size_t dim = train[0].features.size();
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(train), std::move(test), flags.users, flags.silos);
    out.model = MakeMlp({dim, 16}, static_cast<size_t>(classes));
    return out;
  }

  if (flags.dataset == "creditcard") {
    auto data = MakeCreditcardLike(flags.records, flags.records / 4, rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersAndSilos(data.train, flags.users,
                                               flags.silos, alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        flags.silos);
    out.model = MakeMlp({30, 16}, 2);
  } else if (flags.dataset == "mnist") {
    auto data = MakeMnistLike(flags.records, flags.records / 5, rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersAndSilos(data.train, flags.users,
                                               flags.silos, alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        flags.silos);
    out.model = MakeMlp({196, 48}, 10);
  } else if (flags.dataset == "heart") {
    auto data = MakeHeartDiseaseLike(rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersWithinSilos(
        data.train, flags.users, data.num_silos, alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        data.num_silos);
    out.model = MakeMlp({13}, 2);
  } else if (flags.dataset == "tcga") {
    AllocationOptions cox_alloc = alloc;
    cox_alloc.min_records_per_pair = 2;
    auto data = MakeTcgaBrcaLike(rng);
    ULDP_RETURN_IF_ERROR(AllocateUsersWithinSilos(
        data.train, flags.users, data.num_silos, cox_alloc, rng));
    out.dataset = std::make_unique<FederatedDataset>(
        std::move(data.train), std::move(data.test), flags.users,
        data.num_silos);
    out.model = std::make_unique<CoxRegression>(39);
    out.metric = UtilityMetric::kCIndex;
  } else {
    return Status::InvalidArgument("unknown dataset: " + flags.dataset);
  }
  return out;
}

Result<std::unique_ptr<FlAlgorithm>> MakeAlgorithm(const Flags& flags,
                                                   const FederatedDataset& fd,
                                                   const Model& model,
                                                   double sigma,
                                                   uint64_t seed) {
  FlConfig config;
  config.local_lr = flags.local_lr;
  config.clip = flags.clip;
  config.sigma = sigma;
  config.local_epochs = flags.local_epochs;
  config.seed = seed;
  config.num_threads = flags.threads;
  config.shard_users = flags.shard_users;
  config.async_rounds = flags.async;
  config.max_staleness = flags.max_staleness;
  config.async_buffer = flags.async_buffer;

  auto lr_or = [&](double fallback) {
    return flags.global_lr > 0.0 ? flags.global_lr : fallback;
  };
  std::unique_ptr<FlAlgorithm> alg;
  if (flags.method == "default") {
    config.global_lr = lr_or(1.0);
    alg = std::make_unique<FedAvgTrainer>(fd, model, config);
  } else if (flags.method == "uldp-naive") {
    config.global_lr = lr_or(1.0);
    alg = std::make_unique<UldpNaiveTrainer>(fd, model, config);
  } else if (flags.method == "uldp-group") {
    config.global_lr = lr_or(1.0);
    alg = std::make_unique<UldpGroupTrainer>(
        fd, model, config, GroupSizeSpec::Fixed(flags.group_k), 0.1, 10);
  } else if (flags.method == "uldp-avg" || flags.method == "uldp-avg-w") {
    config.global_lr = lr_or(30.0);
    UldpAvgOptions options;
    options.user_sample_rate = flags.user_sample_rate;
    if (flags.method == "uldp-avg-w") {
      options.weighting = WeightingStrategy::kEnhanced;
    }
    alg = std::make_unique<UldpAvgTrainer>(fd, model, config, options);
  } else if (flags.method == "uldp-sgd") {
    config.global_lr = lr_or(50.0);
    alg = std::make_unique<UldpSgdTrainer>(fd, model, config,
                                           WeightingStrategy::kUniform,
                                           flags.user_sample_rate);
  } else {
    return Status::InvalidArgument("unknown method: " + flags.method +
                                   " (try --help)");
  }
  return alg;
}

int RunLocal(const Flags& flags) {
  double sigma = flags.sigma;
  if (flags.target_epsilon > 0.0 && flags.method != "default") {
    auto calibrated = SigmaForTargetEpsilon(flags.target_epsilon, flags.delta,
                                            flags.rounds,
                                            flags.user_sample_rate);
    if (!calibrated.ok()) {
      std::cerr << "sigma calibration: " << calibrated.status().ToString()
                << "\n";
      return 1;
    }
    sigma = calibrated.value();
    std::cout << "Calibrated sigma = " << sigma << " for ("
              << flags.target_epsilon << ", " << flags.delta << ")-ULDP over "
              << flags.rounds << " rounds.\n";
  }

  auto data_or = LoadData(flags);
  if (!data_or.ok()) {
    std::cerr << data_or.status().ToString() << "\n";
    return 1;
  }
  LoadedData& data = data_or.value();
  std::cout << "Dataset: " << data.dataset->num_train_records()
            << " records, " << data.dataset->num_users() << " users, "
            << data.dataset->num_silos() << " silos (mean "
            << data.dataset->MeanRecordsPerUser() << " records/user)\n";

  ExperimentConfig experiment;
  experiment.rounds = flags.rounds;
  experiment.eval_every = flags.eval_every;
  experiment.delta = flags.delta;
  experiment.metric = data.metric;
  experiment.checkpoint_dir = flags.checkpoint_dir;
  experiment.checkpoint_every = flags.checkpoint_every;
  experiment.resume = flags.resume;

  if (flags.num_seeds > 1) {
    AlgorithmFactory factory = [&](uint64_t seed)
        -> std::unique_ptr<FlAlgorithm> {
      auto alg = MakeAlgorithm(flags, *data.dataset, *data.model, sigma,
                               seed);
      if (!alg.ok()) return nullptr;
      return std::move(alg.value());
    };
    auto trace = RunExperimentAveraged(factory, *data.model, *data.dataset,
                                       experiment, flags.num_seeds,
                                       flags.seed);
    if (!trace.ok()) {
      std::cerr << trace.status().ToString() << "\n";
      return 1;
    }
    PrintAveragedTrace(flags.method, trace.value());
    return 0;
  }

  auto alg = MakeAlgorithm(flags, *data.dataset, *data.model, sigma,
                           flags.seed);
  if (!alg.ok()) {
    std::cerr << alg.status().ToString() << "\n";
    return 1;
  }
  auto trace =
      RunExperiment(*alg.value(), *data.model, *data.dataset, experiment);
  if (!trace.ok()) {
    std::cerr << trace.status().ToString() << "\n";
    return 1;
  }
  PrintTrace(alg.value()->name(), trace.value());
  return 0;
}

int RunVerifyTranscript(const Flags& flags) {
  auto file = net::TranscriptFile::ReadFile(flags.verify_transcript);
  if (!file.ok()) {
    std::cerr << "verify-transcript: " << file.status().ToString() << "\n";
    return 1;
  }
  const net::TranscriptMeta& meta = file.value().meta;
  std::cout << "transcript " << flags.verify_transcript << ": role "
            << net::TranscriptRoleName(meta.role) << ", silo "
            << meta.silo_id << ", " << meta.num_silos << " silos, "
            << meta.num_users << " users, dim " << meta.dim << ", "
            << meta.rounds << " rounds, " << file.value().entries.size()
            << " frames" << std::endl;
  std::vector<uint8_t> key;
  if (!flags.hmac_key.empty()) {
    auto parsed = net::ParseHexKey(flags.hmac_key);
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 2;
    }
    key = std::move(parsed.value());
  }
  net::ReplayReport report;
  Status verified = net::VerifyTranscript(
      file.value(), flags.hmac_key.empty() ? nullptr : &key, &report);
  if (!verified.ok()) {
    std::cerr << "transcript verification FAILED: " << verified.ToString()
              << "\n";
    return 1;
  }
  std::cout << "hash chain OK over " << report.entries << " frames"
            << std::endl;
  if (report.hmac_verified) {
    std::cout << "HMAC OK (chain head bound to the supplied key)"
              << std::endl;
  } else if (report.hmac_skipped) {
    std::cout << "warning: transcript carries an HMAC but no --hmac-key was "
                 "supplied; keyed check skipped" << std::endl;
  }
  if (report.replay_skipped) {
    std::cout << "replay skipped (async-role transcript: chain + HMAC "
                 "evidence only)" << std::endl;
  } else {
    std::cout << "replay OK: reproduced " << report.frames_matched
              << " outbound frames byte-for-byte, consumed "
              << report.frames_fed << " inbound frames" << std::endl;
  }
  std::cout << "transcript verified" << std::endl;
  return 0;
}

int Dispatch(const Flags& flags) {
  if (!flags.verify_transcript.empty()) {
    return RunVerifyTranscript(flags);
  }
  if (flags.serve >= 0) {
    return flags.async ? RunServeAsync(flags) : RunServe(flags);
  }
  if (!flags.connect.empty()) {
    return flags.async ? RunConnectAsync(flags) : RunConnect(flags);
  }
  return RunLocal(flags);
}

/// Writes the end-of-run telemetry artifacts. Runs after every mode
/// dispatch — including failed rounds, FailAll teardowns, and injected
/// silo crashes — so an aborted run still leaves a complete metrics
/// snapshot and a valid (tmp+rename, never truncated) trace file.
void FlushTelemetry(const Flags& flags) {
  if (!flags.metrics_out.empty()) {
    Status s =
        obs::MetricsRegistry::Global().WriteJsonFile(flags.metrics_out);
    if (!s.ok()) {
      std::cerr << "metrics-out: " << s.ToString() << "\n";
    }
  }
  if (!flags.trace_out.empty()) {
    Status s = obs::TraceBuffer::Global().WriteJson(flags.trace_out);
    if (!s.ok()) {
      std::cerr << "trace-out: " << s.ToString() << "\n";
    }
  }
}

int Run(int argc, char** argv) {
  auto flags_or = ParseFlags(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n";
    return 2;
  }
  const Flags& flags = flags_or.value();

  if (!flags.trace_out.empty()) {
    obs::TraceBuffer::Global().Enable();
  }
  std::unique_ptr<obs::StatsServer> stats;
  if (flags.stats_port >= 0) {
    auto started = obs::StatsServer::Start(flags.stats_port);
    if (!started.ok()) {
      std::cerr << "stats-port: " << started.status().ToString() << "\n";
      return 1;
    }
    stats = std::move(started.value());
    std::cout << "live stats on http://127.0.0.1:" << stats->port()
              << std::endl;
  }

  int rc = Dispatch(flags);
  if (stats != nullptr) stats->Stop();
  FlushTelemetry(flags);
  return rc;
}

}  // namespace
}  // namespace uldp

int main(int argc, char** argv) { return uldp::Run(argc, argv); }
