#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_*.json against committed baselines.

Each baseline file in bench/baselines/ names one bench and a list of
checks over its samples:

    {
      "bench": "async_rounds",            # matches BENCH_<bench>.json
      "required": true,                   # fail when the bench JSON is absent
      "checks": [
        {"metric": "async_speedup", "min": 1.5},
        {"metric": "bitwise_divergence", "max": 0},
        {"metric": "round_seconds", "labels": {"mode": "async"},
         "baseline": 0.05, "max_regression": 0.25}
      ]
    }

Check kinds (combinable):
  min / max            absolute bounds on the measured value
  baseline + max_regression
                       latency gate: fail when value > baseline * (1 + r)
                       (r = 0.25 means ">25% regression fails")
  agg: "max" | "min"   fold every matching sample into one value first —
                       the memory-ceiling shape: {"metric":
                       "peak_rss_bytes", "agg": "max", "max": 2e8} gates
                       the worst peak across all configurations with one
                       lower-is-better ceiling

A sample is located by metric name plus a labels subset match; exactly one
sample must match unless "agg" folds them. Any bitwise_divergence-style
flag is gated with {"max": 0}. Exit code 0 = all gates green, 1 =
regression or malformed input.

Updating baselines after an intentional perf change:
  cmake --build build -j && (cd build && ULDP_BENCH_SMOKE=1 ./bench_<name>)
  then copy the new values into bench/baselines/<name>.json and commit
  them with the change that moved the numbers. Baselines are measured in
  CI's smoke mode (ULDP_BENCH_SMOKE=1) on the standard CI runner class;
  re-measure them when the runner hardware changes.
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def match_samples(samples, metric, labels):
    """Samples whose metric matches and whose labels contain `labels`."""
    out = []
    for sample in samples:
        if sample.get("metric") != metric:
            continue
        have = sample.get("labels", {})
        if all(have.get(k) == v for k, v in labels.items()):
            out.append(sample)
    return out


def run_check(bench_name, samples, check):
    """Returns a list of failure strings (empty = check passed)."""
    metric = check.get("metric")
    if not metric:
        return ["%s: check is missing a metric name" % bench_name]
    labels = check.get("labels", {})
    where = metric + (str(labels) if labels else "")
    matches = match_samples(samples, metric, labels)
    agg = check.get("agg")
    if agg is not None:
        if agg not in ("max", "min"):
            return ["%s: %s has unknown agg %r" % (bench_name, where, agg)]
        if not matches:
            return ["%s: %s matched no samples" % (bench_name, where)]
        values = [s.get("value") for s in matches]
        if not all(isinstance(v, (int, float)) for v in values):
            return ["%s: %s has a non-numeric value" % (bench_name, where)]
        value = max(values) if agg == "max" else min(values)
        where += "[agg=%s over %d]" % (agg, len(values))
    else:
        if len(matches) != 1:
            return [
                "%s: %s matched %d samples (need exactly 1)"
                % (bench_name, where, len(matches))
            ]
        value = matches[0].get("value")
        if not isinstance(value, (int, float)):
            return ["%s: %s has a non-numeric value" % (bench_name, where)]
    failures = []
    if "min" in check and value < check["min"]:
        failures.append(
            "%s: %s = %g is below the floor %g"
            % (bench_name, where, value, check["min"])
        )
    if "max" in check and value > check["max"]:
        failures.append(
            "%s: %s = %g is above the ceiling %g"
            % (bench_name, where, value, check["max"])
        )
    if "baseline" in check:
        regression = check.get("max_regression", 0.25)
        limit = check["baseline"] * (1.0 + regression)
        if value > limit:
            failures.append(
                "%s: %s = %g regressed >%d%% over baseline %g (limit %g)"
                % (
                    bench_name,
                    where,
                    value,
                    round(regression * 100),
                    check["baseline"],
                    limit,
                )
            )
    return failures


def check_baseline_file(bench_dir, baseline_path):
    """Gates one baseline file; returns (failures, skipped_reason)."""
    baseline = load_json(baseline_path)
    bench_name = baseline.get("bench")
    if not bench_name:
        return (["%s: missing \"bench\" name" % baseline_path], None)
    bench_path = os.path.join(bench_dir, "BENCH_%s.json" % bench_name)
    if not os.path.exists(bench_path):
        if baseline.get("required", True):
            return (
                ["%s: %s not found (bench did not run?)"
                 % (bench_name, bench_path)],
                None,
            )
        return ([], "%s: no %s, skipped (optional)" % (bench_name, bench_path))
    bench = load_json(bench_path)
    samples = bench.get("samples", [])
    failures = []
    for check in baseline.get("checks", []):
        failures.extend(run_check(bench_name, samples, check))
    return (failures, None)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir", default="build",
        help="directory holding the BENCH_*.json files (default: build)")
    parser.add_argument(
        "--baselines", default="bench/baselines",
        help="directory of committed baseline files")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.baselines):
        print("check_bench: baseline directory %s not found" % args.baselines)
        return 1
    baseline_files = sorted(
        os.path.join(args.baselines, name)
        for name in os.listdir(args.baselines)
        if name.endswith(".json")
    )
    if not baseline_files:
        print("check_bench: no baselines in %s" % args.baselines)
        return 1

    failures = []
    for path in baseline_files:
        try:
            file_failures, skipped = check_baseline_file(args.bench_dir, path)
        except (OSError, ValueError) as err:
            file_failures, skipped = (["%s: %s" % (path, err)], None)
        if skipped:
            print("check_bench: " + skipped)
        failures.extend(file_failures)

    if failures:
        for failure in failures:
            print("check_bench: FAIL " + failure)
        return 1
    print("check_bench: all bench gates green (%d baseline file(s))"
          % len(baseline_files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
