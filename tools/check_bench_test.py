#!/usr/bin/env python3
"""Unit tests for the bench-regression gate (tools/check_bench.py).

Run directly or via ctest (registered as check_bench_test). The synthetic
2x-regression case is the acceptance check: a bench whose latency doubled
against its committed baseline must turn the gate red.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench  # noqa: E402


def write_json(path, obj):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(obj, f)


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.bench_dir = os.path.join(self.tmp.name, "build")
        self.baseline_dir = os.path.join(self.tmp.name, "baselines")
        os.makedirs(self.bench_dir)
        os.makedirs(self.baseline_dir)

    def tearDown(self):
        self.tmp.cleanup()

    def run_gate(self):
        return check_bench.main(
            ["--bench-dir", self.bench_dir, "--baselines", self.baseline_dir]
        )

    def write_bench(self, name, samples):
        write_json(
            os.path.join(self.bench_dir, "BENCH_%s.json" % name),
            {"bench": name, "samples": samples},
        )

    def write_baseline(self, name, checks, required=True):
        write_json(
            os.path.join(self.baseline_dir, name + ".json"),
            {"bench": name, "required": required, "checks": checks},
        )

    def test_green_within_baseline(self):
        self.write_bench(
            "demo",
            [
                {"metric": "round_seconds", "value": 0.11,
                 "labels": {"mode": "async"}},
                {"metric": "bitwise_divergence", "value": 0, "labels": {}},
            ],
        )
        self.write_baseline(
            "demo",
            [
                {"metric": "round_seconds", "labels": {"mode": "async"},
                 "baseline": 0.1, "max_regression": 0.25},
                {"metric": "bitwise_divergence", "max": 0},
            ],
        )
        self.assertEqual(self.run_gate(), 0)

    def test_synthetic_2x_regression_fails(self):
        # The acceptance case: latency doubled against the baseline.
        self.write_bench(
            "demo",
            [{"metric": "round_seconds", "value": 0.2,
              "labels": {"mode": "async"}}],
        )
        self.write_baseline(
            "demo",
            [{"metric": "round_seconds", "labels": {"mode": "async"},
              "baseline": 0.1, "max_regression": 0.25}],
        )
        self.assertEqual(self.run_gate(), 1)

    def test_bitwise_divergence_flag_fails(self):
        self.write_bench(
            "demo",
            [{"metric": "bitwise_divergence", "value": 1, "labels": {}}],
        )
        self.write_baseline(
            "demo", [{"metric": "bitwise_divergence", "max": 0}]
        )
        self.assertEqual(self.run_gate(), 1)

    def test_floor_check_fails_below_min(self):
        self.write_bench(
            "demo", [{"metric": "async_speedup", "value": 1.2, "labels": {}}]
        )
        self.write_baseline("demo", [{"metric": "async_speedup", "min": 1.5}])
        self.assertEqual(self.run_gate(), 1)

    def test_labels_select_the_right_sample(self):
        self.write_bench(
            "demo",
            [
                {"metric": "round_seconds", "value": 9.0,
                 "labels": {"mode": "sync"}},
                {"metric": "round_seconds", "value": 0.1,
                 "labels": {"mode": "async"}},
            ],
        )
        self.write_baseline(
            "demo",
            [{"metric": "round_seconds", "labels": {"mode": "async"},
              "baseline": 0.1, "max_regression": 0.25}],
        )
        self.assertEqual(self.run_gate(), 0)

    def test_missing_metric_fails(self):
        self.write_bench("demo", [])
        self.write_baseline("demo", [{"metric": "async_speedup", "min": 1.0}])
        self.assertEqual(self.run_gate(), 1)

    def test_ambiguous_match_fails(self):
        self.write_bench(
            "demo",
            [
                {"metric": "round_seconds", "value": 0.1,
                 "labels": {"mode": "a"}},
                {"metric": "round_seconds", "value": 0.2,
                 "labels": {"mode": "b"}},
            ],
        )
        self.write_baseline(
            "demo", [{"metric": "round_seconds", "max": 1.0}]
        )
        self.assertEqual(self.run_gate(), 1)

    def test_missing_required_bench_fails(self):
        self.write_baseline("demo", [{"metric": "x", "min": 0}])
        self.assertEqual(self.run_gate(), 1)

    def test_missing_optional_bench_skips(self):
        self.write_baseline(
            "demo", [{"metric": "x", "min": 0}], required=False
        )
        # A second, satisfied baseline keeps the run meaningful.
        self.write_bench(
            "other", [{"metric": "y", "value": 1, "labels": {}}]
        )
        self.write_baseline("other", [{"metric": "y", "min": 1}])
        self.assertEqual(self.run_gate(), 0)

    def test_malformed_bench_json_fails(self):
        with open(os.path.join(self.bench_dir, "BENCH_demo.json"), "w",
                  encoding="utf-8") as f:
            f.write("{not json")
        self.write_baseline("demo", [{"metric": "x", "min": 0}])
        self.assertEqual(self.run_gate(), 1)


if __name__ == "__main__":
    unittest.main()
