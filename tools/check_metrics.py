#!/usr/bin/env python3
"""Telemetry-artifact gate: validates the metrics JSON snapshots
(schema uldp.metrics.v1, MetricsRegistry::WriteJsonFile) and Chrome
trace-event files (TraceBuffer::WriteJson) the CLI writes via
--metrics-out / --trace-out.

Checks are structural (the file is well-formed and internally
consistent: histogram bucket counts sum to the recorded count, bucket
bounds ascend, trace events are complete "X" events sorted by
timestamp) plus caller-specified presence floors:

  check_metrics.py --metrics m.json \
      --require-metric net.transport.bytes_sent \
      --require-metric net.mux.frames:5 \
      --require-hist net.mux.dispatch_ns \
      --trace t.json --require-span proto.round:2

A requirement is NAME or NAME:MIN (MIN defaults to 1): the named
counter/gauge must exist with value >= MIN, the named histogram must
have count >= MIN, the named span must appear >= MIN times. Exits
nonzero listing every violation.
"""

import argparse
import json
import sys

SCHEMA = "uldp.metrics.v1"


def parse_requirement(spec):
    """NAME or NAME:MIN -> (name, min)."""
    name, sep, floor = spec.rpartition(":")
    if sep and floor.lstrip("-").isdigit():
        return name, int(floor)
    return spec, 1


def load_json(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        errors.append("%s: %s" % (path, e))
        return None


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_metrics_doc(doc, path, errors):
    """Structural checks on one metrics snapshot; returns the doc's
    (counters+gauges, histograms) maps for requirement checks."""
    values, hists = {}, {}
    if not isinstance(doc, dict):
        errors.append("%s: top level is not an object" % path)
        return values, hists
    if doc.get("schema") != SCHEMA:
        errors.append(
            "%s: schema is %r, want %r" % (path, doc.get("schema"), SCHEMA)
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append("%s: missing %r object" % (path, section))
            return values, hists
    for name, v in doc["counters"].items():
        if not is_count(v):
            errors.append(
                "%s: counter %s has non-count value %r" % (path, name, v)
            )
        values[name] = v
    for name, v in doc["gauges"].items():
        if not isinstance(v, int) or isinstance(v, bool):
            errors.append(
                "%s: gauge %s has non-integer value %r" % (path, name, v)
            )
        values[name] = v
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict) or not is_count(h.get("count")) \
                or not is_count(h.get("sum")) \
                or not isinstance(h.get("buckets"), list):
            errors.append("%s: histogram %s is malformed" % (path, name))
            continue
        total, prev_le = 0, -1
        ok = True
        for b in h["buckets"]:
            if not isinstance(b, dict) or not is_count(b.get("count")) \
                    or not is_count(b.get("le")):
                errors.append(
                    "%s: histogram %s has a malformed bucket" % (path, name)
                )
                ok = False
                break
            if b["le"] <= prev_le:
                errors.append(
                    "%s: histogram %s bucket bounds not ascending"
                    % (path, name)
                )
                ok = False
                break
            prev_le = b["le"]
            total += b["count"]
        if ok and total != h["count"]:
            errors.append(
                "%s: histogram %s bucket counts sum to %d, count says %d"
                % (path, name, total, h["count"])
            )
        hists[name] = h
    return values, hists


def check_trace_doc(doc, path, errors):
    """Structural checks on one Chrome trace; returns span-name counts."""
    spans = {}
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        errors.append("%s: no traceEvents array" % path)
        return spans
    prev_ts = -1.0
    for i, e in enumerate(doc["traceEvents"]):
        if not isinstance(e, dict):
            errors.append("%s: event %d is not an object" % (path, i))
            continue
        name = e.get("name")
        if not isinstance(name, str) or not name:
            errors.append("%s: event %d has no name" % (path, i))
            continue
        if e.get("ph") != "X":
            errors.append(
                "%s: event %d (%s) is not a complete event" % (path, i, name)
            )
        for field in ("ts", "dur"):
            v = e.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or v < 0:
                errors.append(
                    "%s: event %d (%s) has bad %s: %r"
                    % (path, i, name, field, v)
                )
        ts = e.get("ts")
        if isinstance(ts, (int, float)) and not isinstance(ts, bool):
            if ts < prev_ts:
                errors.append(
                    "%s: event %d (%s) breaks timestamp order"
                    % (path, i, name)
                )
            prev_ts = ts
        spans[name] = spans.get(name, 0) + 1
    return spans


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate --metrics-out / --trace-out artifacts."
    )
    parser.add_argument("--metrics", action="append", default=[],
                        help="metrics JSON file (repeatable; all merge for "
                             "requirement checks)")
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace JSON file (repeatable)")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME[:MIN]",
                        help="counter/gauge present with value >= MIN")
    parser.add_argument("--require-hist", action="append", default=[],
                        metavar="NAME[:MIN]",
                        help="histogram present with count >= MIN")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME[:MIN]",
                        help="trace span present >= MIN times")
    args = parser.parse_args(argv)

    if not args.metrics and not args.trace:
        parser.error("nothing to check: pass --metrics and/or --trace")
    if args.require_span and not args.trace:
        parser.error("--require-span needs --trace")
    if (args.require_metric or args.require_hist) and not args.metrics:
        parser.error("--require-metric/--require-hist need --metrics")

    errors = []
    values, hists, spans = {}, {}, {}
    for path in args.metrics:
        doc = load_json(path, errors)
        if doc is None:
            continue
        v, h = check_metrics_doc(doc, path, errors)
        # Merge across files (server + silo snapshots): counters sum,
        # histograms keep the larger count — requirements are floors, so
        # any-file-satisfies is the useful semantic.
        for name, val in v.items():
            values[name] = values.get(name, 0) + val
        for name, hist in h.items():
            if name not in hists or hist["count"] > hists[name]["count"]:
                hists[name] = hist
    for path in args.trace:
        doc = load_json(path, errors)
        if doc is None:
            continue
        for name, n in check_trace_doc(doc, path, errors).items():
            spans[name] = spans.get(name, 0) + n

    for spec in args.require_metric:
        name, floor = parse_requirement(spec)
        if name not in values:
            errors.append("required metric %s not found" % name)
        elif values[name] < floor:
            errors.append(
                "metric %s = %d, want >= %d" % (name, values[name], floor)
            )
    for spec in args.require_hist:
        name, floor = parse_requirement(spec)
        if name not in hists:
            errors.append("required histogram %s not found" % name)
        elif hists[name]["count"] < floor:
            errors.append(
                "histogram %s count = %d, want >= %d"
                % (name, hists[name]["count"], floor)
            )
    for spec in args.require_span:
        name, floor = parse_requirement(spec)
        if spans.get(name, 0) < floor:
            errors.append(
                "trace span %s seen %d times, want >= %d"
                % (name, spans.get(name, 0), floor)
            )

    if errors:
        for e in errors:
            print("check_metrics: FAIL: %s" % e, file=sys.stderr)
        return 1
    print(
        "check_metrics: OK (%d metrics files, %d traces, %d span names)"
        % (len(args.metrics), len(args.trace), len(spans))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
