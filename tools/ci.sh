#!/usr/bin/env bash
# CI entry point: configure (the top-level CMakeLists enforces
# -Wall -Wextra), build everything, and run the test suite — the repo's
# tier-1 verify. Usage: tools/ci.sh [build-dir]
#
# SANITIZE=1 tools/ci.sh [build-dir] instead builds with ASan+UBSan
# (-DULDP_SANITIZE=ON) and runs the fast unit-test subset sanitized —
# the substrate suites where boundary off-by-ones live (BigInt,
# Montgomery/fixed-base, fixed point, CSV, masks, Paillier, DH/OT).
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ "${SANITIZE:-0}" = "1" ]; then
  # Separate default build dir: writing ULDP_SANITIZE=ON into the plain
  # build/ cache would leave later non-sanitized runs silently sanitized.
  BUILD_DIR="${1:-build-asan}"
  FAST_TESTS='^(bigint_test|montgomery_primes_test|fixed_base_test|fixed_point_test|csv_loader_test|mask_tags_test|secure_agg_test|sha_chacha_test|common_test|parallel_test|paillier_test|paillier_ctx_test|dh_test|oblivious_transfer_test|net_wire_test|net_transport_test|parse_test|async_rounds_test|multi_exp_test|packed_codec_test|net_stream_test|shard_round_test|session_test|membership_test|obs_test)$'
  cmake -B "$BUILD_DIR" -S . -DULDP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$JOBS"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" -R "$FAST_TESTS"
  exit 0
fi

BUILD_DIR="${1:-build}"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Crypto fast-path micro bench in smoke mode: produces
# BENCH_micro_crypto.json in the build dir (uploaded by CI alongside the
# fig11 artifact) and fails the run if the cached-context fast path or the
# fixed-base weighting tables ever disagree bitwise with the cold path.
if [ -x "$BUILD_DIR/bench_micro_crypto" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_micro_crypto)
fi

# Transport-subsystem bench in smoke mode: produces
# BENCH_net_protocol.json (per-transport round latency + bytes on the wire
# per phase) and fails if any transport's aggregates diverge bitwise from
# the in-process protocol.
if [ -x "$BUILD_DIR/bench_net_protocol" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_net_protocol)
fi

# Async-rounds bench in smoke mode: produces BENCH_async_rounds.json
# (sync vs staleness-bounded async step latency under an injected 2x
# straggler, plus transport-backed async and pipelined-protocol runs) and
# fails on bitwise divergence from the synchronous engine or an async
# speedup below 1.5x.
if [ -x "$BUILD_DIR/bench_async_rounds" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_async_rounds)
fi

# Streaming-round bench in smoke mode: produces BENCH_stream_scaling.json
# (peak RSS and largest round-phase frame, materializing vs streaming, at
# two user counts) and fails on bitwise divergence; check_bench then gates
# the streamed frame ceiling and the RSS growth ratio.
if [ -x "$BUILD_DIR/bench_stream_scaling" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_stream_scaling)
fi

# Membership-churn bench in smoke mode: produces
# BENCH_membership_churn.json (static vs churn step throughput, eviction
# and admission counts, checkpoint/resume identity) and fails if the
# churn run diverges from its active-set schedule reference or a resumed
# run diverges from the uninterrupted one.
if [ -x "$BUILD_DIR/bench_membership_churn" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_membership_churn)
fi

# Telemetry-overhead bench in smoke mode: produces BENCH_obs_overhead.json
# (traced vs untraced round latency interleaved min-of-N, NullSpan vs bare
# loop) and fails on bitwise divergence; check_bench then gates the <=2%
# traced-round ceiling and the zero-cost compiled-out span shape.
if [ -x "$BUILD_DIR/bench_obs_overhead" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_obs_overhead)
fi

# Docs-vs-code lint: every MessageType/StreamKind enumerator must appear
# in docs/wire.md and every relative markdown link must resolve, so the
# wire documentation cannot silently drift from src/net/messages.h.
python3 tools/check_docs.py

# Bench-regression gate: every committed baseline in bench/baselines/ is
# compared against the BENCH_*.json the smoke benches just wrote; a >25%
# latency regression, a lost speedup floor, or any bitwise-divergence flag
# fails the run (see tools/check_bench.py for the update procedure).
python3 tools/check_bench.py --bench-dir "$BUILD_DIR" \
    --baselines bench/baselines

# Loopback-TCP smoke round: a real uldp_fl_cli protocol server on an
# ephemeral port plus two silo client processes, with --verify asserting
# the distributed aggregates bitwise-match the in-process run.
if [ -x "$BUILD_DIR/uldp_fl_cli" ]; then
  SMOKE_LOG="$BUILD_DIR/net_smoke_server.log"
  # --net-timeout: every TCP recv (handshake included) gets a deadline, so
  # a hung or never-connecting client fails this step in ~2 minutes
  # instead of hanging the workflow until the job timeout.
  SMOKE_ARGS="--silos=2 --users=6 --dim=8 --paillier-bits=512 --seed=11 \
--net-timeout=120"
  rm -f "$SMOKE_LOG"
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --serve=0 --rounds=2 --verify $SMOKE_ARGS \
      > "$SMOKE_LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$SMOKE_LOG" \
            2>/dev/null | head -n1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "net smoke: server never reported its port" >&2
    cat "$SMOKE_LOG" >&2 || true
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=0 \
      $SMOKE_ARGS &
  C0=$!
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=1 \
      $SMOKE_ARGS &
  C1=$!
  FAIL=0
  wait "$SERVER_PID" || FAIL=1
  wait "$C0" || FAIL=1
  wait "$C1" || FAIL=1
  cat "$SMOKE_LOG"
  if [ "$FAIL" != "0" ]; then
    echo "net smoke: loopback-TCP protocol round FAILED" >&2
    exit 1
  fi
  echo "net smoke: loopback-TCP protocol round OK (port $PORT)"

  # Async-rounds loopback smoke: the staleness-bounded FL server plus two
  # silo clients over real TCP, --verify asserting bitwise identity to the
  # synchronous engine at max_staleness=0.
  ASYNC_LOG="$BUILD_DIR/net_async_smoke_server.log"
  ASYNC_ARGS="--async --silos=2 --users=6 --dim=8 --seed=11 --net-timeout=120"
  rm -f "$ASYNC_LOG"
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --serve=0 --rounds=3 --verify $ASYNC_ARGS \
      > "$ASYNC_LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$ASYNC_LOG" \
            2>/dev/null | head -n1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "async smoke: server never reported its port" >&2
    cat "$ASYNC_LOG" >&2 || true
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=0 \
      $ASYNC_ARGS &
  C0=$!
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=1 \
      $ASYNC_ARGS &
  C1=$!
  FAIL=0
  wait "$SERVER_PID" || FAIL=1
  wait "$C0" || FAIL=1
  wait "$C1" || FAIL=1
  cat "$ASYNC_LOG"
  if [ "$FAIL" != "0" ]; then
    echo "async smoke: loopback-TCP staleness-bounded rounds FAILED" >&2
    exit 1
  fi
  echo "async smoke: loopback-TCP staleness-bounded rounds OK (port $PORT)"

  # Elastic-churn loopback smoke: three silos over real TCP with dynamic
  # membership — silo 0 crashes once released with version >= 2 (evicted,
  # its buffered update dropped), silo 2 joins mid-run at version >= 3
  # (admitted at the next flush). The crashing client exits 0 ("crashed
  # as scheduled"); the server must still finish all rounds.
  CHURN_LOG="$BUILD_DIR/net_churn_smoke_server.log"
  CHURN_ARGS="--async --elastic --min-silos=1 --silos=3 --users=6 --dim=8 \
--seed=11 --net-timeout=120 --fail-silo=0:2 --join-silo=2:3"
  rm -f "$CHURN_LOG"
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --serve=0 --rounds=6 $CHURN_ARGS \
      > "$CHURN_LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$CHURN_LOG" \
            2>/dev/null | head -n1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "churn smoke: server never reported its port" >&2
    cat "$CHURN_LOG" >&2 || true
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=0 \
      $CHURN_ARGS &
  C0=$!
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=1 \
      $CHURN_ARGS &
  C1=$!
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=2 \
      $CHURN_ARGS &
  C2=$!
  FAIL=0
  wait "$SERVER_PID" || FAIL=1
  wait "$C0" || FAIL=1
  wait "$C1" || FAIL=1
  wait "$C2" || FAIL=1
  cat "$CHURN_LOG"
  if [ "$FAIL" != "0" ]; then
    echo "churn smoke: elastic evict + late-join run FAILED" >&2
    exit 1
  fi
  if ! grep -q "evictions 1" "$CHURN_LOG" || \
     ! grep -q "admissions 1" "$CHURN_LOG"; then
    echo "churn smoke: expected exactly one eviction and one admission" >&2
    exit 1
  fi
  echo "churn smoke: elastic evict + late-join run OK (port $PORT)"

  # Kill-and-resume loopback smoke: a checkpointing async server is
  # SIGKILLed mid-run (clients slowed with --straggler so the kill lands
  # between rounds), then a fresh server --resumes from the surviving
  # session.ckpt with new clients; its final params digest must match an
  # uninterrupted run's bit for bit.
  RESUME_ARGS="--async --silos=2 --users=6 --dim=8 --seed=11 \
--net-timeout=120"
  CKPT_DIR="$BUILD_DIR/resume_smoke_ckpt"
  rm -rf "$CKPT_DIR" && mkdir -p "$CKPT_DIR"
  run_async_pair() {  # $1=log $2=extra server args $3=extra client args
    local log="$1" server_args="$2" client_args="$3" port="" pid c0 c1
    rm -f "$log"
    # shellcheck disable=SC2086
    "$BUILD_DIR/uldp_fl_cli" --serve=0 --rounds=6 $RESUME_ARGS \
        $server_args > "$log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
      port="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$log" \
              2>/dev/null | head -n1)"
      [ -n "$port" ] && break
      sleep 0.1
    done
    if [ -z "$port" ]; then
      echo "resume smoke: server never reported its port" >&2
      cat "$log" >&2 || true
      kill "$pid" 2>/dev/null || true
      return 1
    fi
    # shellcheck disable=SC2086
    "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$port" --silo-id=0 \
        $RESUME_ARGS $client_args > /dev/null 2>&1 &
    c0=$!
    # shellcheck disable=SC2086
    "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$port" --silo-id=1 \
        $RESUME_ARGS $client_args > /dev/null 2>&1 &
    c1=$!
    SMOKE_SERVER_PID=$pid
    SMOKE_CLIENT_PIDS="$c0 $c1"
    return 0
  }
  # Reference: uninterrupted 6-round run.
  run_async_pair "$BUILD_DIR/resume_smoke_ref.log" "" "" || exit 1
  FAIL=0
  wait "$SMOKE_SERVER_PID" || FAIL=1
  for pid in $SMOKE_CLIENT_PIDS; do wait "$pid" || FAIL=1; done
  if [ "$FAIL" != "0" ]; then
    echo "resume smoke: reference run FAILED" >&2
    cat "$BUILD_DIR/resume_smoke_ref.log" >&2
    exit 1
  fi
  REF_DIGEST="$(sed -n 's/.*final params digest \([0-9a-f]*\).*/\1/p' \
      "$BUILD_DIR/resume_smoke_ref.log" | head -n1)"
  # Interrupted run: checkpoint every round, kill -9 the server once the
  # first checkpoint lands (~0.3 s/round via --straggler, so the run is
  # nowhere near done). The orphaned clients then fail; ignore them.
  run_async_pair "$BUILD_DIR/resume_smoke_cut.log" \
      "--checkpoint-dir=$CKPT_DIR --checkpoint-every=1" \
      "--straggler=0.3" || exit 1
  for _ in $(seq 1 200); do
    [ -f "$CKPT_DIR/session.ckpt" ] && break
    sleep 0.1
  done
  if [ ! -f "$CKPT_DIR/session.ckpt" ]; then
    echo "resume smoke: no checkpoint appeared before the kill" >&2
    kill "$SMOKE_SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  if ! kill -9 "$SMOKE_SERVER_PID" 2>/dev/null; then
    echo "resume smoke: server finished before the kill; raise --straggler" \
        >&2
    exit 1
  fi
  wait "$SMOKE_SERVER_PID" 2>/dev/null || true
  for pid in $SMOKE_CLIENT_PIDS; do wait "$pid" 2>/dev/null || true; done
  # Resume: fresh server + clients continue from the surviving checkpoint.
  run_async_pair "$BUILD_DIR/resume_smoke_res.log" \
      "--checkpoint-dir=$CKPT_DIR --resume" "" || exit 1
  FAIL=0
  wait "$SMOKE_SERVER_PID" || FAIL=1
  for pid in $SMOKE_CLIENT_PIDS; do wait "$pid" || FAIL=1; done
  cat "$BUILD_DIR/resume_smoke_res.log"
  if [ "$FAIL" != "0" ]; then
    echo "resume smoke: resumed run FAILED" >&2
    exit 1
  fi
  RES_DIGEST="$(sed -n 's/.*final params digest \([0-9a-f]*\).*/\1/p' \
      "$BUILD_DIR/resume_smoke_res.log" | head -n1)"
  if [ -z "$REF_DIGEST" ] || [ "$REF_DIGEST" != "$RES_DIGEST" ]; then
    echo "resume smoke: digest mismatch (ref=$REF_DIGEST res=$RES_DIGEST)" >&2
    exit 1
  fi
  echo "resume smoke: kill-and-resume run bitwise-identical" \
      "(digest $REF_DIGEST)"

  # Telemetry loopback smoke: a fully instrumented distributed round with
  # OT weight distribution, ciphertext packing, and chunked streaming all
  # on (--verify asserts the instrumented run still bitwise-matches the
  # in-process protocol). The server and silo 0 each write
  # --metrics-out/--trace-out; tools/check_metrics.py then validates both
  # snapshots structurally and requires the migrated counters, the
  # epoll-mux histograms, per-chunk stream telemetry on the sender side,
  # and a trace covering every Protocol 1 phase plus the OT round, the
  # streamed cipher folds, and mux dispatch.
  OBS_LOG="$BUILD_DIR/obs_smoke_server.log"
  OBS_ARGS="--silos=2 --users=6 --dim=8 --paillier-bits=512 --seed=11 \
--net-timeout=120 --ot-slots=4 --pack-slots=2 --stream-chunk-users=4"
  rm -f "$BUILD_DIR"/obs_smoke_server_metrics.json \
      "$BUILD_DIR"/obs_smoke_server_trace.json \
      "$BUILD_DIR"/obs_smoke_silo0_metrics.json \
      "$BUILD_DIR"/obs_smoke_silo0_trace.json \
      "$OBS_LOG"
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --serve=0 --rounds=2 --verify $OBS_ARGS \
      --metrics-out="$BUILD_DIR/obs_smoke_server_metrics.json" \
      --trace-out="$BUILD_DIR/obs_smoke_server_trace.json" \
      > "$OBS_LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$OBS_LOG" \
            2>/dev/null | head -n1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "obs smoke: server never reported its port" >&2
    cat "$OBS_LOG" >&2 || true
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=0 \
      $OBS_ARGS \
      --metrics-out="$BUILD_DIR/obs_smoke_silo0_metrics.json" \
      --trace-out="$BUILD_DIR/obs_smoke_silo0_trace.json" &
  C0=$!
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=1 \
      $OBS_ARGS &
  C1=$!
  FAIL=0
  wait "$SERVER_PID" || FAIL=1
  wait "$C0" || FAIL=1
  wait "$C1" || FAIL=1
  cat "$OBS_LOG"
  if [ "$FAIL" != "0" ]; then
    echo "obs smoke: instrumented loopback round FAILED" >&2
    exit 1
  fi
  # Server side: migrated transport/prefetch/core counters, mux
  # histograms, and one complete span per protocol phase per round.
  python3 tools/check_metrics.py \
      --metrics "$BUILD_DIR/obs_smoke_server_metrics.json" \
      --trace "$BUILD_DIR/obs_smoke_server_trace.json" \
      --require-metric net.transport.bytes_sent \
      --require-metric net.transport.bytes_received \
      --require-metric net.mux.frames \
      --require-metric net.mux.epoll_wakeups \
      --require-metric net.server.prefetch_hits:0 \
      --require-metric core.enc_weight_cache_hits:0 \
      --require-metric core.weight_table_cache_hits:0 \
      --require-hist net.mux.dispatch_ns \
      --require-hist net.mux.epoll_wait_ns \
      --require-hist net.transport.frame_bytes \
      --require-hist net.server.phase_ns.aggregate \
      --require-span proto.round:2 \
      --require-span proto.phase.setup \
      --require-span proto.phase.enc_weights:2 \
      --require-span proto.phase.silo_ciphers:2 \
      --require-span proto.phase.aggregate:2 \
      --require-span proto.ot_round:2 \
      --require-span stream.fold.silo_cipher \
      --require-span mux.drain
  # Silo side: per-chunk stream telemetry lives in the sender process.
  python3 tools/check_metrics.py \
      --metrics "$BUILD_DIR/obs_smoke_silo0_metrics.json" \
      --trace "$BUILD_DIR/obs_smoke_silo0_trace.json" \
      --require-metric net.stream.silo-cipher.chunks_sent:2 \
      --require-metric net.stream.silo-cipher.chunk_bytes \
      --require-hist net.stream.silo-cipher.ack_wait_ns \
      --require-span silo.setup \
      --require-span silo.round:2 \
      --require-span silo.ot_round:2 \
      --require-span silo.upload_cipher:2 \
      --require-span stream.chunk.silo_cipher:2
  echo "obs smoke: instrumented loopback round OK (port $PORT)"

  # Transcript smoke: record a 2-silo loopback run with OT weight
  # distribution, ciphertext packing, and chunked streaming all on, then
  # --verify-transcript all three transcripts (hash chain + keyed HMAC +
  # byte-exact deterministic replay through the real party drivers), and
  # finally corrupt one byte of the server transcript and assert the
  # verifier rejects it with a nonzero exit.
  TR_LOG="$BUILD_DIR/transcript_smoke_server.log"
  TR_DIR="$BUILD_DIR/transcript_smoke"
  TR_KEY="00112233aabbcc"
  TR_ARGS="--silos=2 --users=6 --dim=8 --paillier-bits=512 --n-max=8 \
--seed=11 --net-timeout=120 --ot-slots=4 --pack-slots=2 \
--stream-chunk-users=4 --record-transcript=$TR_DIR --hmac-key=$TR_KEY"
  rm -rf "$TR_DIR" && mkdir -p "$TR_DIR"
  rm -f "$TR_LOG"
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --serve=0 --rounds=2 --verify $TR_ARGS \
      > "$TR_LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$TR_LOG" \
            2>/dev/null | head -n1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "transcript smoke: server never reported its port" >&2
    cat "$TR_LOG" >&2 || true
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
  fi
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=0 \
      $TR_ARGS &
  C0=$!
  # shellcheck disable=SC2086
  "$BUILD_DIR/uldp_fl_cli" --connect=127.0.0.1:"$PORT" --silo-id=1 \
      $TR_ARGS &
  C1=$!
  FAIL=0
  wait "$SERVER_PID" || FAIL=1
  wait "$C0" || FAIL=1
  wait "$C1" || FAIL=1
  cat "$TR_LOG"
  if [ "$FAIL" != "0" ]; then
    echo "transcript smoke: recorded loopback round FAILED" >&2
    exit 1
  fi
  for t in server silo0 silo1; do
    if [ ! -f "$TR_DIR/$t.ult" ]; then
      echo "transcript smoke: $TR_DIR/$t.ult was not written" >&2
      exit 1
    fi
    if ! "$BUILD_DIR/uldp_fl_cli" \
        --verify-transcript="$TR_DIR/$t.ult" --hmac-key="$TR_KEY"; then
      echo "transcript smoke: $t.ult failed verification" >&2
      exit 1
    fi
  done
  # One flipped byte (mid-file, past the header) must be detected.
  cp "$TR_DIR/server.ult" "$TR_DIR/server_corrupt.ult"
  printf '\377' | dd of="$TR_DIR/server_corrupt.ult" bs=1 seek=2000 \
      conv=notrunc status=none
  if "$BUILD_DIR/uldp_fl_cli" \
      --verify-transcript="$TR_DIR/server_corrupt.ult" \
      --hmac-key="$TR_KEY" 2>/dev/null; then
    echo "transcript smoke: corrupted transcript was ACCEPTED" >&2
    exit 1
  fi
  echo "transcript smoke: record + verify + corruption-reject OK" \
      "(port $PORT)"
fi
