#!/usr/bin/env bash
# CI entry point: configure (the top-level CMakeLists enforces
# -Wall -Wextra), build everything, and run the test suite — the repo's
# tier-1 verify. Usage: tools/ci.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"
