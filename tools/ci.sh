#!/usr/bin/env bash
# CI entry point: configure (the top-level CMakeLists enforces
# -Wall -Wextra), build everything, and run the test suite — the repo's
# tier-1 verify. Usage: tools/ci.sh [build-dir]
#
# SANITIZE=1 tools/ci.sh [build-dir] instead builds with ASan+UBSan
# (-DULDP_SANITIZE=ON) and runs the fast unit-test subset sanitized —
# the substrate suites where boundary off-by-ones live (BigInt,
# Montgomery/fixed-base, fixed point, CSV, masks, Paillier, DH/OT).
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ "${SANITIZE:-0}" = "1" ]; then
  # Separate default build dir: writing ULDP_SANITIZE=ON into the plain
  # build/ cache would leave later non-sanitized runs silently sanitized.
  BUILD_DIR="${1:-build-asan}"
  FAST_TESTS='^(bigint_test|montgomery_primes_test|fixed_base_test|fixed_point_test|csv_loader_test|mask_tags_test|secure_agg_test|sha_chacha_test|common_test|parallel_test|paillier_test|paillier_ctx_test|dh_test|oblivious_transfer_test)$'
  cmake -B "$BUILD_DIR" -S . -DULDP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$JOBS"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" -R "$FAST_TESTS"
  exit 0
fi

BUILD_DIR="${1:-build}"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Crypto fast-path micro bench in smoke mode: produces
# BENCH_micro_crypto.json in the build dir (uploaded by CI alongside the
# fig11 artifact) and fails the run if the cached-context fast path or the
# fixed-base weighting tables ever disagree bitwise with the cold path.
if [ -x "$BUILD_DIR/bench_micro_crypto" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_micro_crypto)
fi
