#!/usr/bin/env bash
# CI entry point: configure (the top-level CMakeLists enforces
# -Wall -Wextra), build everything, and run the test suite — the repo's
# tier-1 verify. Usage: tools/ci.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Crypto fast-path micro bench in smoke mode: produces
# BENCH_micro_crypto.json in the build dir (uploaded by CI alongside the
# fig11 artifact) and fails the run if the cached-context fast path ever
# disagrees bitwise with the cold path.
if [ -x "$BUILD_DIR/bench_micro_crypto" ]; then
  (cd "$BUILD_DIR" && ULDP_BENCH_SMOKE=1 ./bench_micro_crypto)
fi
